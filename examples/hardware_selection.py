"""Hardware selection via inverse safety analysis.

A procurement-style question the forward analysis cannot answer directly:
*which soft-error rate can this system tolerate?*  Using the inverse
analyses of :mod:`repro.safety.margins`, this example derives, for the
Example 3.1 system:

1. the maximal per-execution failure probability each re-execution
   profile absorbs while keeping the HI level inside its DO-178B ceiling;
2. the equivalent Poisson soft-error rates (events/hour), the figure a
   component datasheet quotes;
3. how the required profile (and hence processor load) grows as hardware
   quality degrades — the cost curve behind the paper's observation that
   "with safer and more expensive hardware, the system schedulability
   will be improved".

Run:  python examples/hardware_selection.py
"""

from repro.experiments.tables import example31_taskset
from repro.model.criticality import CriticalityRole
from repro.model.fault_rates import rate_from_failure_probability
from repro.safety.margins import (
    max_tolerable_failure_probability,
    required_profile_for_probability,
)


def main() -> None:
    system = example31_taskset()
    hi_utilization = system.utilization(CriticalityRole.HI)
    print("system: Example 3.1 (HI = DO-178B level B, PFH < 1e-7)\n")

    print("1) hardware tolerance per re-execution profile")
    print(f"   {'n':>3} {'max tolerable f':>18} {'~soft-error rate':>22}")
    for n in range(1, 6):
        f_max = max_tolerable_failure_probability(
            system, CriticalityRole.HI, executions=n
        )
        # Convert via the shortest HI WCET (most conservative exposure).
        wcet = min(t.wcet for t in system.hi_tasks)
        rate = rate_from_failure_probability(min(f_max, 0.999), wcet)
        print(f"   {n:>3} {f_max:>18.3e} {rate:>18.3e} /h")

    print("\n2) required profile (and HI load) as hardware degrades")
    print(f"   {'f':>10} {'n needed':>9} {'HI load n*U_HI':>16}")
    for f in (1e-9, 1e-7, 1e-5, 1e-3, 1e-2, 1e-1):
        n = required_profile_for_probability(system, CriticalityRole.HI, f)
        if n is None:
            print(f"   {f:>10.0e} {'—':>9} {'(unreachable)':>16}")
            continue
        print(f"   {f:>10.0e} {n:>9} {n * hi_utilization:>16.4f}")

    f3 = max_tolerable_failure_probability(system, CriticalityRole.HI, 3)
    print(f"\nTakeaway: the paper's operating point f = 1e-5 sits inside the "
          f"n = 3 tolerance\n({f3:.2e}); cheaper parts up to that "
          f"probability certify without extra load.")


if __name__ == "__main__":
    main()
