"""End-to-end certification workflow: JSON in, evidence out.

The workflow a system integrator would follow with this library:

1. describe the system in a JSON file (see :mod:`repro.io`);
2. run the analysis toolchain (`analyse_system`) to pick profiles and a
   scheduling strategy;
3. cross-check the analytical bounds with Monte-Carlo simulation;
4. archive the rendered report.

Run:  python examples/certification_workflow.py
"""

import json
import tempfile

from repro import analyse_system, load_taskset, render_report
from repro.model.criticality import CriticalityRole
from repro.safety.pfh import pfh_plain
from repro.model.faults import ReexecutionProfile
from repro.model.task import Task, TaskSet
from repro.sim.montecarlo import estimate_pfh

SYSTEM = {
    "name": "engine-monitor",
    "criticality": {"hi": "B", "lo": "C"},
    "tasks": [
        {"name": "pressure", "period": 50, "wcet": 4, "criticality": "HI",
         "failure_probability": 1e-5},
        {"name": "vibration", "period": 80, "wcet": 6, "criticality": "HI",
         "failure_probability": 1e-5},
        {"name": "trend", "period": 200, "wcet": 30, "criticality": "LO",
         "failure_probability": 1e-5},
        {"name": "uplink", "period": 400, "wcet": 55, "criticality": "LO",
         "failure_probability": 1e-5},
    ],
}


def main() -> None:
    # 1. The system description arrives as JSON.
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as handle:
        json.dump(SYSTEM, handle)
        path = handle.name
    system = load_taskset(path)

    # 2. Analyse: profiles, safety bounds, strategy recommendation.
    report = analyse_system(system, operation_hours=10.0,
                            degradation_factor=6.0)
    print(render_report(report))

    if not report.feasible:
        print("\nsystem not certifiable — stop here")
        return

    # 3. Monte-Carlo cross-check of the accepted configuration at an
    #    inflated failure probability (rare events made observable).
    accepted = (
        report.degrade_result
        if report.degrade_result and report.degrade_result.success
        else report.kill_result
    )
    scale = 2000.0
    estimate = estimate_pfh(
        system, accepted, CriticalityRole.HI,
        hours_per_run=1.0, runs=5, probability_scale=scale, seed=7,
    )
    scaled_tasks = [
        Task(t.name, t.period, t.deadline, t.wcet, t.criticality,
             min(t.failure_probability * scale, 0.5))
        for t in system
    ]
    scaled = TaskSet(scaled_tasks, system.spec)
    bound = pfh_plain(
        scaled, CriticalityRole.HI,
        ReexecutionProfile.uniform(scaled, accepted.n_hi, accepted.n_lo),
    )
    low, high = estimate.confidence_interval()
    print(f"\nMonte-Carlo check at f x{scale:g}: observed "
          f"{estimate.mean:.3g} failures/h "
          f"(95% CI [{low:.3g}, {high:.3g}]) vs bound {bound:.3g}")
    assert estimate.consistent_with_bound(bound)
    print("OK: simulation is consistent with the certified bound.")


if __name__ == "__main__":
    main()
