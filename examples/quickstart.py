"""Quickstart: design a fault-tolerant dual-criticality system.

Walks the full public API on the paper's motivating example (Example 3.1):
model tasks, quantify safety, run FT-S, inspect the converted task set and
simulate the accepted design.

Run:  python examples/quickstart.py
"""

from repro import (
    CriticalityRole,
    DualCriticalitySpec,
    ReexecutionProfile,
    Task,
    TaskSet,
    ft_edf_vd,
    pfh_plain,
)
from repro.sim import simulate_ft_result


def main() -> None:
    # 1. Model the system: five sporadic tasks on one processor, two
    #    criticalities, every job failing with probability 1e-5 due to
    #    transient hardware faults (Table 2 of the paper).
    spec = DualCriticalitySpec.from_names(hi="B", lo="D")
    tasks = [
        Task("nav",   period=60, deadline=60, wcet=5,
             criticality=CriticalityRole.HI, failure_probability=1e-5),
        Task("ctrl",  period=25, deadline=25, wcet=4,
             criticality=CriticalityRole.HI, failure_probability=1e-5),
        Task("disp",  period=40, deadline=40, wcet=7,
             criticality=CriticalityRole.LO, failure_probability=1e-5),
        Task("log",   period=90, deadline=90, wcet=6,
             criticality=CriticalityRole.LO, failure_probability=1e-5),
        Task("radio", period=70, deadline=70, wcet=8,
             criticality=CriticalityRole.LO, failure_probability=1e-5),
    ]
    system = TaskSet(tasks, spec, name="quickstart")
    print(system.describe())
    print()

    # 2. Safety without fault tolerance: a single execution per job leaves
    #    the HI (DO-178B level B) tasks far above their 1e-7 PFH ceiling.
    once = ReexecutionProfile.uniform(system, 1, 1)
    print(f"pfh(HI) with no re-execution: "
          f"{pfh_plain(system, CriticalityRole.HI, once):.3e} "
          f"(ceiling {spec.pfh_requirement(CriticalityRole.HI):g})")

    # 3. FT-S (Algorithm 2): find re-execution + killing profiles that make
    #    the system both safe and schedulable under EDF-VD.
    result = ft_edf_vd(system)
    assert result.success, result.failure
    print(f"\nFT-S succeeded: n_HI={result.n_hi}, n_LO={result.n_lo}, "
          f"kill LO tasks at the {result.adaptation + 1}-th HI execution")
    print(f"pfh(HI) = {result.pfh_hi:.3e}, U_MC = {result.u_mc:.5f}")
    print("\nConverted mixed-criticality task set (Lemma 4.1):")
    print(result.mc_taskset.describe())

    # 4. Validate empirically: simulate 10 minutes with faults inflated
    #    1000x; HI tasks must never miss a deadline.
    metrics = simulate_ft_result(
        system, result, horizon=600_000.0, seed=42, probability_scale=1000.0
    )
    print("\nSimulation (faults inflated 1000x):")
    print(metrics.describe())
    assert metrics.deadline_misses(CriticalityRole.HI) == 0
    print("\nOK: no HI deadline miss — the FT-S guarantee holds.")


if __name__ == "__main__":
    main()
