"""Multi-level avionics system: beyond dual criticality.

The paper restricts its analysis to two criticality levels "for ease of
presentation"; this example exercises the library's multi-level
generalisation on a four-level avionics workload (DO-178B levels A-D):

- **flight-ctl** (A): inner-loop flight control;
- **autopilot / nav** (B): guidance;
- **flightplan / display** (C): mission functions with a real (1e-5)
  safety ceiling;
- **maint-log** (D): maintenance logging, not safety-related.

FT-S-ML searches the adaptation *boundary* — which levels to protect and
which to adapt — and the two mechanisms land on different answers:

- task killing protects A/B/C and kills only the level-D logger (killing
  level C would violate its ceiling);
- service degradation can afford to adapt C *and* D (degradation keeps
  level C inside 1e-5), relieving more load.

Run:  python examples/multilevel_avionics.py
"""

from repro.core.backends import EDFVDBackend, EDFVDDegradationBackend
from repro.model.criticality import DO178BLevel
from repro.multilevel import MLTask, MLTaskSet, ft_schedule_multilevel

A, B, C, D = (DO178BLevel.A, DO178BLevel.B, DO178BLevel.C, DO178BLevel.D)


def build_system() -> MLTaskSet:
    return MLTaskSet(
        [
            MLTask("flight-ctl", period=50, deadline=50, wcet=2,
                   level=A, failure_probability=1e-6),
            MLTask("autopilot", period=100, deadline=100, wcet=5,
                   level=B, failure_probability=1e-5),
            MLTask("nav", period=200, deadline=200, wcet=10,
                   level=B, failure_probability=1e-5),
            MLTask("flightplan", period=500, deadline=500, wcet=60,
                   level=C, failure_probability=1e-5),
            MLTask("display", period=250, deadline=250, wcet=25,
                   level=C, failure_probability=1e-5),
            MLTask("maint-log", period=1000, deadline=1000, wcet=250,
                   level=D, failure_probability=1e-5),
        ],
        name="avionics-4level",
    )


def main() -> None:
    system = build_system()
    print(system.describe())
    print()

    for backend in (EDFVDBackend(), EDFVDDegradationBackend(6.0)):
        result = ft_schedule_multilevel(system, backend)
        print(f"{backend.name}: "
              f"{'SUCCESS' if result.success else 'FAILURE'} — {result.reason}")
        if not result.success:
            continue
        profiles = ", ".join(
            f"{level.name}:{n}" for level, n in result.level_profiles.items()
        )
        print(f"  re-execution profiles per level: {profiles}")
        if result.boundary is not None:
            protected = [
                lvl.name for lvl in system.levels() if lvl >= result.boundary
            ]
            adapted = [
                lvl.name for lvl in system.levels() if lvl < result.boundary
            ]
            print(f"  protected levels: {', '.join(protected)}; "
                  f"adapted levels: {', '.join(adapted)} "
                  f"(n'={result.adaptation})")
            for level, value in result.pfh_adapted.items():
                ceiling = level.pfh_ceiling
                status = "ok" if value < ceiling else "no ceiling"
                print(f"    pfh({level.name}) adapted = {value:.3e} "
                      f"(ceiling {ceiling:g}, {status})")
        print()

    kill = ft_schedule_multilevel(system, EDFVDBackend())
    degrade = ft_schedule_multilevel(system, EDFVDDegradationBackend(6.0))
    assert kill.boundary is C and degrade.boundary is B
    print("Takeaway: the paper's dual-criticality insight generalises — "
          "killing must protect\nevery safety-related level (boundary C), "
          "while degradation can adapt level C too\n(boundary B), because "
          "it preserves enough service to stay inside the 1e-5 ceiling.")


if __name__ == "__main__":
    main()
