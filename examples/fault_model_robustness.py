"""Robustness of the safety bounds to the independence assumption.

The paper's fault model assumes each execution fails *independently* with
probability f, which gives the per-round failure probability f^n behind
every PFH bound.  This study asks: what happens when faults are bursty
(positively correlated), as radiation events spanning several executions
would be?

Using the two-state Markov fault injector at the *same average rate*, it
measures the per-round failure rate of a probe task for increasing burst
lengths and compares against the independent-model prediction f^n.

Expected outcome: independent faults respect f^n; bursts inflate the
round-failure rate by orders of magnitude — re-execution still helps, but
certifying against correlated faults requires burst-aware bounds (outside
the paper's model; an honest threat to validity).

Run:  python examples/fault_model_robustness.py
"""

from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.faults import FaultToleranceConfig, ReexecutionProfile
from repro.model.task import Task, TaskSet
from repro.sim.engine import Simulator
from repro.sim.fault_injection import BernoulliFaultInjector, BurstyFaultInjector
from repro.sim.policies import EDFPolicy

AVERAGE_F = 0.05
ATTEMPTS = 2
HORIZON = 2_000_000.0  # 20000 probe jobs


def measure(injector) -> tuple[float, int]:
    probe = Task("probe", 100, 100, 10, CriticalityRole.HI, AVERAGE_F)
    filler = Task("idle", 100_000, 100_000, 1, CriticalityRole.LO, 0.0)
    system = TaskSet(
        [probe, filler], DualCriticalitySpec.from_names("B", "D")
    )
    config = FaultToleranceConfig(
        reexecution=ReexecutionProfile({"probe": ATTEMPTS, "idle": 1})
    )
    metrics = Simulator(system, EDFPolicy(), config, injector).run(HORIZON)
    counters = metrics.counters("probe")
    return counters.fault_exhausted / counters.released, counters.released


def main() -> None:
    prediction = AVERAGE_F**ATTEMPTS
    print(f"probe task: f = {AVERAGE_F}, n = {ATTEMPTS} attempts; "
          f"independent model predicts f^n = {prediction:.2e} per round\n")
    print(f"{'fault process':<34}{'round failure rate':>20}{'vs f^n':>10}")
    print("-" * 64)

    rate, released = measure(BernoulliFaultInjector(seed=1))
    print(f"{'independent (Bernoulli)':<34}{rate:>20.2e}"
          f"{rate / prediction:>9.1f}x")

    for switchiness, label in ((0.2, "short bursts"),
                               (0.05, "medium bursts"),
                               (0.01, "long bursts")):
        injector = BurstyFaultInjector(
            AVERAGE_F, burst_probability=0.9,
            switchiness=switchiness, seed=1,
        )
        rate, _ = measure(injector)
        print(f"{f'bursty ({label}, s={switchiness})':<34}"
              f"{rate:>20.2e}{rate / prediction:>9.1f}x")

    print(f"\n({released} probe rounds per configuration)")
    print(
        "\nTakeaway: the f^n bound — and with it eq. (2)'s PFH — holds "
        "only under the\npaper's independence assumption.  Correlated "
        "bursts at the same average rate\ninflate round failures by "
        "orders of magnitude; burst-aware certification\nneeds fault "
        "models beyond this paper's."
    )


if __name__ == "__main__":
    main()
