"""Partitioned multiprocessor scaling study.

The paper is a uniprocessor analysis; this example exercises the
library's partitioned extension (FT-MP): how the acceptance ratio of
heavily loaded fault-tolerant systems grows with the processor count,
and what a concrete partition looks like.

Run:  python examples/multicore_scaling.py
"""

import numpy as np

from repro.core.backends import EDFVDBackend
from repro.gen.taskset import generate_taskset
from repro.model.criticality import DualCriticalitySpec
from repro.multicore import ft_schedule_partitioned

SPEC = DualCriticalitySpec.from_names("B", "D")
UTILIZATIONS = (0.8, 1.2, 1.6, 2.4)
PROCESSORS = (1, 2, 4)
SETS = 40


def main() -> None:
    backend = EDFVDBackend()

    print("acceptance ratio by raw utilization and processor count "
          f"({SETS} sets/cell):\n")
    header = f"{'U':>6} " + " ".join(f"{f'm={m}':>8}" for m in PROCESSORS)
    print(header)
    print("-" * len(header))
    for point, utilization in enumerate(UTILIZATIONS):
        row = [f"{utilization:>6.2f}"]
        for m in PROCESSORS:
            accepted = 0
            for index in range(SETS):
                rng = np.random.default_rng([point, index])
                taskset = generate_taskset(utilization, SPEC, rng)
                if ft_schedule_partitioned(taskset, m, backend).success:
                    accepted += 1
            row.append(f"{accepted / SETS:>8.2f}")
        print(" ".join(row))

    # A concrete partition for inspection.
    taskset = generate_taskset(1.6, SPEC, 7)
    result = ft_schedule_partitioned(taskset, 2, backend)
    assert result.success
    print(f"\nexample partition of a U = 1.6 system on 2 processors "
          f"(n'={result.adaptation}):")
    print(result.partition.describe())
    print("\nEvery processor is an independent instance of the paper's "
          "uniprocessor problem;\nthe safety bounds (eqs. 2/5/7) are "
          "processor-count independent because the\nmode-switch trigger "
          "is global.")


if __name__ == "__main__":
    main()
