"""The flight management system case study (Section 5.1, Figs. 1-2).

Reproduces the paper's FMS narrative end to end on the pinned Table 4
instance:

1. the minimal re-execution profiles are n_HI = 3, n_LO = 2;
2. with those profiles alone the FMS is unschedulable;
3. killing the level-C flightplan tasks would restore schedulability for
   n' <= 2, but at n' = 2 their PFH is ~1e-1 — five orders above the
   level-C ceiling, so FT-EDF-VD fails;
4. degrading them instead (df = 6) keeps pfh(LO) ~ 1e-11 and FT-S succeeds
   with n' = 2.

Run:  python examples/fms_case_study.py
"""

from repro import CriticalityRole, ReexecutionProfile, ft_edf_vd, \
    ft_edf_vd_degradation
from repro.analysis import schedulable_without_adaptation
from repro.core import minimal_reexecution_profiles
from repro.experiments import render_fig1, render_fig2, run_fig1, run_fig2
from repro.gen import FMS_DEGRADATION_FACTOR, canonical_fms


def main() -> None:
    fms = canonical_fms()
    print("FMS instance (Table 4 ranges, pinned seed):")
    print(fms.describe())

    # Step 1: safety alone.
    profiles = minimal_reexecution_profiles(fms)
    print(f"\nminimal re-execution profiles: n_HI={profiles.n_hi}, "
          f"n_LO={profiles.n_lo} (paper: 3, 2)")

    # Step 2: schedulability without adaptation.
    reexecution = ReexecutionProfile.uniform(fms, profiles.n_hi, profiles.n_lo)
    feasible = schedulable_without_adaptation(fms, reexecution)
    inflated = profiles.n_hi * fms.utilization(
        CriticalityRole.HI
    ) + profiles.n_lo * fms.utilization(CriticalityRole.LO)
    print(f"EDF with all re-executions budgeted: U = {inflated:.4f} -> "
          f"{'schedulable' if feasible else 'NOT schedulable'}")

    # Step 3: task killing (Fig. 1).
    kill = ft_edf_vd(fms)
    print(f"\nFT-EDF-VD with task killing: "
          f"{'SUCCESS' if kill.success else f'FAILURE ({kill.failure.value})'}")
    print(render_fig1(run_fig1(fms)))

    # Step 4: service degradation (Fig. 2).
    degrade = ft_edf_vd_degradation(fms, FMS_DEGRADATION_FACTOR)
    print(f"\nFT-EDF-VD with service degradation (df="
          f"{FMS_DEGRADATION_FACTOR:g}): "
          f"{'SUCCESS' if degrade.success else 'FAILURE'}"
          + (f" with n'_HI={degrade.adaptation}, "
             f"pfh(LO)={degrade.pfh_lo:.2e}" if degrade.success else ""))
    print(render_fig2(run_fig2(fms)))

    print(
        "\nConclusion (paper, Section 5.1): if safety matters for the less "
        "critical tasks,\nservice degradation is the proper mechanism — "
        "killing violates their PFH ceiling outright."
    )


if __name__ == "__main__":
    main()
