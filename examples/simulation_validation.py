"""Cross-validation of the analytical PFH bounds against simulation.

The paper's safety lemmas give closed-form *upper bounds*; this example
checks them empirically.  Failure probabilities are inflated by a known
scale so that failures become observable in a few simulated hours, the
simulator counts actual temporal failures (fault exhaustion, deadline
misses, kills), and the observed per-hour rates are compared against the
eq. (2) bound evaluated at the scaled probability.

Run:  python examples/simulation_validation.py
"""

from repro import (
    CriticalityRole,
    ReexecutionProfile,
    Task,
    TaskSet,
    ft_edf_vd,
    pfh_plain,
)
from repro.experiments.tables import example31_taskset
from repro.model.task import HOUR_MS
from repro.sim import simulate_ft_result

SCALE = 2000.0  # f: 1e-5 -> 0.02 per execution
HOURS = 10.0


def scaled_copy(taskset: TaskSet) -> TaskSet:
    tasks = [
        Task(t.name, t.period, t.deadline, t.wcet, t.criticality,
             min(t.failure_probability * SCALE, 0.5))
        for t in taskset
    ]
    return TaskSet(tasks, taskset.spec, name=f"{taskset.name}-scaled")


def main() -> None:
    system = example31_taskset()
    result = ft_edf_vd(system)
    assert result.success

    print(f"simulating {HOURS:g} h with failure probabilities x{SCALE:g} "
          f"(f = {1e-5 * SCALE:g} per execution)...")
    metrics = simulate_ft_result(
        system, result, horizon=HOURS * HOUR_MS, seed=2024,
        probability_scale=SCALE,
    )
    print(metrics.describe())

    # The analytical bound, evaluated at the scaled probability.  Observed
    # failure counts are Poisson-distributed around (at most) the bound, so
    # the comparison must allow sampling noise: we accept anything below
    # the bound plus four Poisson standard deviations.
    scaled = scaled_copy(system)
    profile = ReexecutionProfile.uniform(scaled, result.n_hi, result.n_lo)
    bound_hi = pfh_plain(scaled, CriticalityRole.HI, profile)
    observed_hi = metrics.empirical_pfh(CriticalityRole.HI)
    expected_failures = bound_hi * HOURS
    tolerance = 4.0 * expected_failures**0.5
    print(f"\nHI level: observed {observed_hi:.4g} failures/h vs "
          f"eq. (2) bound {bound_hi:.4g} failures/h")
    hi_jobs = metrics.released(CriticalityRole.HI)
    hi_failures = metrics.temporal_failures(CriticalityRole.HI)
    print(f"({hi_failures} HI failures over {hi_jobs} HI jobs; the bound "
          f"predicts at most {expected_failures:.1f} +/- "
          f"{tolerance:.1f} over the mission)")
    assert hi_failures <= expected_failures + tolerance, (
        "bound violated beyond 4-sigma Poisson noise!"
    )

    print("\nOK: the analytical bound dominates the observed failure rate "
          "(within sampling noise), as Lemma 3.1 guarantees.")


if __name__ == "__main__":
    main()
