"""Inspecting a fault-tolerant schedule with the trace recorder.

Builds a small dual-criticality system, scripts a transient-fault burst
that drives a HI task into its third execution, and renders the resulting
schedule as an ASCII Gantt chart — showing the re-executions, the mode
switch and the killing of the LO tasks.

Run:  python examples/trace_inspection.py
"""

from repro import (
    AdaptationProfile,
    CriticalityRole,
    DualCriticalitySpec,
    FaultToleranceConfig,
    ReexecutionProfile,
    Task,
    TaskSet,
)
from repro.sim import (
    EDFVDPolicy,
    ScriptedFaultInjector,
    Simulator,
    TraceEventKind,
    TraceRecorder,
)


def main() -> None:
    spec = DualCriticalitySpec.from_names("B", "D")
    tasks = [
        Task("ctrl", period=100, deadline=100, wcet=15,
             criticality=CriticalityRole.HI, failure_probability=1e-5),
        Task("telemetry", period=80, deadline=80, wcet=10,
             criticality=CriticalityRole.LO, failure_probability=1e-5),
        Task("display", period=150, deadline=150, wcet=25,
             criticality=CriticalityRole.LO, failure_probability=1e-5),
    ]
    system = TaskSet(tasks, spec, name="trace-demo")
    config = FaultToleranceConfig(
        reexecution=ReexecutionProfile.uniform(system, n_hi=3, n_lo=1),
        adaptation=AdaptationProfile.uniform(system, 2),  # kill at attempt 3
    )

    # Script: ctrl's second job faults twice -> third attempt -> mode
    # switch -> telemetry/display are killed from then on.
    injector = ScriptedFaultInjector(
        {"ctrl": [False, True, True, False]}
    )
    trace = TraceRecorder()
    simulator = Simulator(
        system, EDFVDPolicy(0.6), config, injector, trace=trace
    )
    metrics = simulator.run(600.0)

    print("schedule (one row per task, # = executing, | = mode switch):\n")
    print(trace.gantt(until=600.0))
    print()
    print("events:")
    for event in trace.events:
        if event.kind in (TraceEventKind.FAULT, TraceEventKind.KILL,
                          TraceEventKind.MODE_SWITCH):
            print(f"  t={event.time:6.1f}  {event.kind.value:<12} {event.task}"
                  + (f" (attempt {event.attempt})" if event.attempt else ""))
    print()
    print(metrics.describe())

    assert metrics.hi_mode_entered
    assert metrics.deadline_misses(CriticalityRole.HI) == 0
    print("\nOK: the HI task absorbed two faults and never missed; the LO "
          "tasks were killed at the mode switch, exactly as the model "
          "prescribes.")


if __name__ == "__main__":
    main()
