"""Schedulability study on synthetic task sets (a compact Fig. 3).

Sweeps system utilization with the Appendix C generator and compares the
acceptance ratio with and without runtime adaptation for both mechanisms
and both LO-criticality bindings.  Uses 100 task sets per point so the
study finishes in about a minute; pass ``--sets 500 --full-grid`` for the
paper-scale run.

Run:  python examples/schedulability_study.py [--sets N] [--full-grid]
"""

import argparse

from repro.experiments import (
    FIG3_PANELS,
    render_fig3_panel,
    run_fig3_panel,
)
from repro.experiments.fig3 import DEFAULT_UTILIZATIONS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sets", type=int, default=100,
                        help="task sets per data point (paper: 500)")
    parser.add_argument("--full-grid", action="store_true",
                        help="use the full utilization grid")
    parser.add_argument("--f", type=float, default=1e-5,
                        help="per-execution failure probability")
    args = parser.parse_args()

    utilizations = (
        DEFAULT_UTILIZATIONS if args.full_grid
        else (0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
    )

    for key in ("a", "b", "c", "d"):
        panel = FIG3_PANELS[key]
        result = run_fig3_panel(
            panel, args.f, utilizations, sets_per_point=args.sets
        )
        print(result.render())
        print()
        print(render_fig3_panel(result))
        print()

    print(
        "Shapes to look for (paper, Section 5.2): panels (a)/(c) show a\n"
        "clear gap between the two curves; panel (b) shows almost none\n"
        "(killing level-C tasks violates their safety); panel (d) shows\n"
        "degradation still helping where killing cannot."
    )


if __name__ == "__main__":
    main()
