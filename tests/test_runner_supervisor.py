"""End-to-end tests for the campaign supervisor (in-process).

These drive :func:`repro.runner.run_campaign` on the cheap ``tables``
campaign through real worker processes: success, graceful degradation,
watchdog timeouts, resume, configuration errors, a full chaos run
whose results must match a clean run byte for byte, and the worker
pool's determinism contract (``--jobs N`` byte-identical to serial,
fresh / resumed / under chaos).  Process-level SIGKILL/SIGINT
integration lives in test_campaign_kill_resume.py.
"""

import json
import multiprocessing
import os
import shutil

import pytest

from repro.runner import (
    CampaignConfigError,
    ChaosInjector,
    RetryPolicy,
    run_campaign,
)

FAST_RETRY = RetryPolicy(max_retries=0, base_delay=0.0)


def _run(tmp_path, options, subdir="out", **kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("timeout", 60.0)
    return run_campaign(
        "tables",
        options=options,
        output_dir=str(tmp_path / subdir),
        **kwargs,
    )


class TestSuccessfulCampaign:
    def test_writes_results_checkpoint_and_coverage(self, tmp_path):
        report = _run(tmp_path, {"tables": ["table1"]})
        assert report.exit_code == 0
        out = tmp_path / "out"
        assert (out / "table1.json").exists()
        assert (out / "table1.csv").exists()
        assert (out / "tables.checkpoint.jsonl").exists()
        coverage = json.loads((out / "tables.coverage.json").read_text())
        assert coverage["shards"] == 1
        assert coverage["completed"] == 1
        assert coverage["failed"] == 0
        assert coverage["retried_shards"] == []

    def test_result_matches_direct_computation(self, tmp_path):
        from repro.experiments.tables import table2_example31

        _run(tmp_path, {"tables": ["table2"]})
        written = json.loads((tmp_path / "out" / "table2.json").read_text())
        assert written == json.loads(
            json.dumps(table2_example31().to_dict())
        )

    def test_events_are_reported(self, tmp_path):
        events = []
        _run(tmp_path, {"tables": ["table1"]}, on_event=events.append)
        assert any("shard table1" in e for e in events)


class TestGracefulDegradation:
    def test_unknown_shard_degrades_not_crashes(self, tmp_path):
        report = _run(tmp_path, {"tables": ["table1", "missing"]})
        assert report.exit_code == 3
        assert [o.spec.id for o in report.failed] == ["missing"]
        assert "KeyError" in report.failed[0].errors[0]
        # the completed shard is still finalised
        assert (tmp_path / "out" / "table1.json").exists()
        coverage = json.loads(
            (tmp_path / "out" / "tables.coverage.json").read_text()
        )
        assert [s["id"] for s in coverage["failed_shards"]] == ["missing"]

    def test_failed_shard_respects_retry_budget(self, tmp_path):
        report = _run(
            tmp_path,
            {"tables": ["missing"]},
            retry=RetryPolicy(max_retries=2, base_delay=0.0),
        )
        [outcome] = report.failed
        assert outcome.attempts == 3
        assert len(outcome.errors) == 3

    def test_watchdog_reaps_hung_shard(self, tmp_path):
        report = _run(
            tmp_path,
            {"tables": ["table1"]},
            timeout=0.2,
            shard_delay=5.0,  # worker sleeps past the watchdog budget
        )
        assert report.exit_code == 3
        [outcome] = report.failed
        assert "timed out" in outcome.errors[0]


class TestResume:
    def test_resume_skips_completed_shards_byte_identically(self, tmp_path):
        options = {"tables": ["table1", "table2"]}
        _run(tmp_path, options)
        out = tmp_path / "out"
        originals = {
            name: (out / name).read_bytes()
            for name in ("table1.json", "table1.csv", "table2.json")
        }
        for name in originals:
            (out / name).unlink()
        report = _run(tmp_path, options, resume=True)
        assert report.exit_code == 0
        assert len(report.resumed) == 2
        for name, original in originals.items():
            assert (out / name).read_bytes() == original
        coverage = json.loads((out / "tables.coverage.json").read_text())
        assert coverage["resumed"] == 2

    def test_resume_without_checkpoint_refused(self, tmp_path):
        with pytest.raises(CampaignConfigError, match="no usable checkpoint"):
            _run(tmp_path, {"tables": ["table1"]}, resume=True)

    def test_resume_with_changed_options_refused(self, tmp_path):
        _run(tmp_path, {"tables": ["table1"]})
        with pytest.raises(CampaignConfigError, match="options changed"):
            _run(tmp_path, {"tables": ["table1", "table2"]}, resume=True)

    def test_resume_with_foreign_checkpoint_refused(self, tmp_path):
        _run(tmp_path, {"tables": ["table1"]})
        out = tmp_path / "out"
        # masquerade the tables checkpoint as a fig1 one
        shutil.copy(
            out / "tables.checkpoint.jsonl", out / "fig1.checkpoint.jsonl"
        )
        with pytest.raises(CampaignConfigError, match="belongs to campaign"):
            run_campaign(
                "fig1",
                output_dir=str(out),
                resume=True,
                retry=FAST_RETRY,
                timeout=60.0,
            )

    def test_resume_reexecutes_torn_records(self, tmp_path):
        options = {"tables": ["table1", "table2"]}
        _run(tmp_path, options)
        out = tmp_path / "out"
        original = (out / "table2.json").read_bytes()
        checkpoint = out / "tables.checkpoint.jsonl"
        assert ChaosInjector.truncate_checkpoint(str(checkpoint))
        (out / "table2.json").unlink()
        report = _run(tmp_path, options, resume=True)
        assert report.exit_code == 0
        # the torn shard was re-executed, not resumed
        assert len(report.resumed) == 1
        assert (out / "table2.json").read_bytes() == original


class TestConfigErrors:
    def test_empty_plan_rejected(self, tmp_path):
        with pytest.raises(CampaignConfigError, match="no shards"):
            _run(tmp_path, {"tables": []})

    def test_duplicate_shard_ids_rejected(self, tmp_path):
        with pytest.raises(CampaignConfigError, match="duplicate"):
            _run(tmp_path, {"tables": ["table1", "table1"]})

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown campaign"):
            run_campaign("fig9", output_dir=str(tmp_path))


class TestChaosCampaign:
    def test_chaos_run_completes_with_identical_results(self, tmp_path):
        options = {"tables": ["table1", "table2", "table3", "table4"]}
        clean = _run(tmp_path, options, subdir="clean")
        assert clean.exit_code == 0
        events = []
        chaotic = _run(
            tmp_path,
            options,
            subdir="chaos",
            chaos_seed=42,
            timeout=1.0,
            retry=RetryPolicy(max_retries=2, base_delay=0.05, max_delay=0.2),
            on_event=events.append,
        )
        # every injected fault was absorbed: the campaign still completes
        assert chaotic.exit_code == 0
        assert not chaotic.failed
        plan = ChaosInjector(42, [s.spec.id for s in chaotic.outcomes]).plan()
        retried_ids = {o.spec.id for o in chaotic.retried}
        for shard_id, action in plan.items():
            if action in ("crash", "hang"):
                assert shard_id in retried_ids
        assert any(o.recovered for o in chaotic.outcomes)  # torn checkpoint
        assert any("chaos: injecting" in e for e in events)
        # ...and the outputs are indistinguishable from a clean run
        for name in ("table1", "table2", "table3", "table4"):
            for ext in (".json", ".csv"):
                assert (tmp_path / "chaos" / f"{name}{ext}").read_bytes() == (
                    tmp_path / "clean" / f"{name}{ext}"
                ).read_bytes()
        coverage = json.loads(
            (tmp_path / "chaos" / "tables.coverage.json").read_text()
        )
        assert coverage["chaos_seed"] == 42
        assert coverage["retried_shards"]


class TestParallelCampaign:
    """The --jobs determinism contract (see docs/robustness.md)."""

    OPTIONS = {"tables": ["table1", "table2", "table3", "table4"]}
    FILES = [
        f"table{i}{ext}" for i in range(1, 5) for ext in (".json", ".csv")
    ]

    def _bytes(self, tmp_path, subdir):
        out = tmp_path / subdir
        return {name: (out / name).read_bytes() for name in self.FILES}

    @staticmethod
    def _coverage_sans_timing(tmp_path, subdir):
        coverage = json.loads(
            (tmp_path / subdir / "tables.coverage.json").read_text()
        )
        del coverage["executed_seconds"]
        for entry in coverage["retried_shards"] + coverage["failed_shards"]:
            del entry["duration_s"]
        return coverage

    def test_pool_results_byte_identical_to_serial(self, tmp_path):
        serial = _run(tmp_path, self.OPTIONS, subdir="j1", jobs=1)
        pooled = _run(tmp_path, self.OPTIONS, subdir="j4", jobs=4)
        assert serial.exit_code == 0
        assert pooled.exit_code == 0
        assert self._bytes(tmp_path, "j1") == self._bytes(tmp_path, "j4")
        assert self._coverage_sans_timing(
            tmp_path, "j1"
        ) == self._coverage_sans_timing(tmp_path, "j4")

    def test_pool_resume_byte_identical_to_serial(self, tmp_path):
        _run(tmp_path, self.OPTIONS, subdir="serial", jobs=1)
        _run(tmp_path, self.OPTIONS, subdir="pool", jobs=4)
        out = tmp_path / "pool"
        for name in self.FILES:
            (out / name).unlink()
        resumed = _run(tmp_path, self.OPTIONS, subdir="pool", resume=True,
                       jobs=4)
        assert resumed.exit_code == 0
        assert len(resumed.resumed) == 4
        assert self._bytes(tmp_path, "pool") == self._bytes(
            tmp_path, "serial"
        )

    def test_chaos_pool_converges_to_clean_serial(self, tmp_path):
        clean = _run(tmp_path, self.OPTIONS, subdir="clean", jobs=1)
        assert clean.exit_code == 0
        chaotic = _run(
            tmp_path,
            self.OPTIONS,
            subdir="chaos",
            jobs=4,
            chaos_seed=42,
            timeout=1.0,
            retry=RetryPolicy(max_retries=2, base_delay=0.05, max_delay=0.2),
        )
        assert chaotic.exit_code == 0
        assert not chaotic.failed
        assert self._bytes(tmp_path, "clean") == self._bytes(
            tmp_path, "chaos"
        )

    def test_resume_restores_recorded_attempts(self, tmp_path):
        chaotic = _run(
            tmp_path,
            self.OPTIONS,
            jobs=4,
            chaos_seed=42,
            timeout=1.0,
            retry=RetryPolicy(max_retries=2, base_delay=0.05, max_delay=0.2),
        )
        assert chaotic.exit_code == 0
        recorded = {o.spec.id: o.attempts for o in chaotic.outcomes}
        assert any(attempts > 1 for attempts in recorded.values())
        resumed = _run(tmp_path, self.OPTIONS, resume=True, jobs=4)
        assert all(o.resumed for o in resumed.outcomes)
        assert {o.spec.id: o.attempts for o in resumed.outcomes} == recorded
        assert all(o.duration_s is None for o in resumed.outcomes)

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="patching the worker entry point requires fork",
    )
    def test_received_payload_beats_nonzero_exit(self, tmp_path, monkeypatch):
        # Regression: a worker that delivers its ok-payload and then dies
        # with a nonzero exit must count as a success, not burn a retry.
        import repro.runner.supervisor as supervisor_module

        real_worker = supervisor_module.shard_worker

        def send_then_die(conn, experiment, params, chaos_action, delay):
            real_worker(conn, experiment, params, chaos_action, delay)
            os._exit(1)

        monkeypatch.setattr(
            supervisor_module, "shard_worker", send_then_die
        )
        report = _run(tmp_path, {"tables": ["table1"]})
        assert report.exit_code == 0
        [outcome] = report.outcomes
        assert outcome.completed
        assert outcome.attempts == 1
        assert outcome.errors == []
        assert (tmp_path / "out" / "table1.json").exists()

    def test_jobs_below_one_rejected(self, tmp_path):
        with pytest.raises(CampaignConfigError, match="jobs"):
            _run(tmp_path, {"tables": ["table1"]}, jobs=0)
