"""Tests for safety under service degradation — eqs. (6)-(9), Lemma 3.4."""

import math

import pytest

from repro.model.criticality import CriticalityRole
from repro.model.faults import AdaptationProfile, ReexecutionProfile
from repro.model.task import HOUR_MS, Task, TaskSet
from repro.safety.degradation import (
    omega,
    pfh_lo_degradation,
    pfh_lo_degradation_scenario,
)
from repro.safety.killing import pfh_lo_killing, survival_probability
from repro.safety.pfh import max_rounds, pfh_plain


class TestOmega:
    def test_undegraded_matches_round_count(self, example31):
        """omega(1, t) = sum r_i(n_i, t) * f^n over the LO tasks."""
        reexecution = ReexecutionProfile.uniform(example31, 3, 2)
        value = omega(example31, reexecution, 1.0, HOUR_MS)
        expected = sum(
            max_rounds(t, 2, HOUR_MS) * t.failure_probability**2
            for t in example31.lo_tasks
        )
        assert value == pytest.approx(expected, rel=1e-12)

    def test_eq6_with_stretched_period(self):
        """Hand-checked eq. (6) for a single LO task."""
        lo = Task("lo", 100.0, 100.0, 10.0, CriticalityRole.LO, 1e-2)
        hi = Task("hi", 100.0, 100.0, 1.0, CriticalityRole.HI, 1e-2)
        ts = TaskSet([hi, lo])
        reexecution = ReexecutionProfile({"lo": 2, "hi": 2})
        t = 1000.0
        # floor((1000 - 20) / (6 * 100)) + 1 = 2 rounds, each failing 1e-4
        assert omega(ts, reexecution, 6.0, t) == pytest.approx(2e-4)

    def test_decreases_with_degradation_factor(self, example31):
        reexecution = ReexecutionProfile.uniform(example31, 3, 2)
        values = [
            omega(example31, reexecution, df, HOUR_MS)
            for df in (1.0, 2.0, 6.0, 20.0)
        ]
        for bigger, smaller in zip(values, values[1:]):
            assert smaller <= bigger

    def test_only_lo_tasks_contribute(self, example31):
        no_lo = example31.with_tasks(example31.hi_tasks)
        reexecution = ReexecutionProfile.uniform(no_lo, 3, 2)
        assert omega(no_lo, reexecution, 1.0, HOUR_MS) == 0.0

    def test_rejects_factor_below_one(self, example31):
        reexecution = ReexecutionProfile.uniform(example31, 3, 2)
        with pytest.raises(ValueError, match="factor"):
            omega(example31, reexecution, 0.9, HOUR_MS)

    def test_rejects_negative_horizon(self, example31):
        reexecution = ReexecutionProfile.uniform(example31, 3, 2)
        with pytest.raises(ValueError, match="horizon"):
            omega(example31, reexecution, 1.0, -1.0)


class TestPfhLoDegradation:
    def _profiles(self, ts):
        return (
            ReexecutionProfile.uniform(ts, 3, 2),
            AdaptationProfile.uniform(ts, 2),
        )

    def test_eq7_factorisation(self, example31):
        """pfh(LO) = (1 - R(t)) * omega(1, t) / OS exactly."""
        reexecution, adaptation = self._profiles(example31)
        os_hours = 10.0
        t = os_hours * HOUR_MS
        expected = (
            (1.0 - survival_probability(example31, adaptation, t))
            * omega(example31, reexecution, 1.0, t)
            / os_hours
        )
        value = pfh_lo_degradation(example31, reexecution, adaptation, os_hours)
        assert value == pytest.approx(expected, rel=1e-12)

    def test_never_worse_than_plain(self, example31):
        """Section 3.4: degradation can only improve LO safety vs eq. (2)."""
        reexecution, adaptation = self._profiles(example31)
        degraded = pfh_lo_degradation(example31, reexecution, adaptation, 1.0)
        plain = pfh_plain(example31, CriticalityRole.LO, reexecution)
        assert degraded <= plain

    def test_far_below_killing(self, fms):
        """Paper: at n' = 2 degradation is ~10 orders safer than killing."""
        reexecution = ReexecutionProfile.uniform(fms, 3, 2)
        adaptation = AdaptationProfile.uniform(fms, 2)
        killing = pfh_lo_killing(fms, reexecution, adaptation, 10.0)
        degradation = pfh_lo_degradation(fms, reexecution, adaptation, 10.0)
        assert degradation < killing
        assert math.log10(killing) - math.log10(degradation) > 8.0

    def test_fms_order_of_magnitude_matches_paper(self, fms):
        """Paper, Section 5.1: degradation at n' = 2 gives pfh ~ 1e-11."""
        reexecution = ReexecutionProfile.uniform(fms, 3, 2)
        adaptation = AdaptationProfile.uniform(fms, 2)
        value = pfh_lo_degradation(fms, reexecution, adaptation, 10.0)
        assert -12.0 <= math.log10(value) <= -10.0

    def test_decreases_with_adaptation_profile(self, example31):
        reexecution = ReexecutionProfile.uniform(example31, 3, 2)
        values = [
            pfh_lo_degradation(
                example31,
                reexecution,
                AdaptationProfile.uniform(example31, n),
                10.0,
            )
            for n in (1, 2, 3)
        ]
        assert values[0] > values[1] > values[2]

    def test_rejects_nonpositive_operation_hours(self, example31):
        reexecution, adaptation = self._profiles(example31)
        with pytest.raises(ValueError, match="operation hours"):
            pfh_lo_degradation(example31, reexecution, adaptation, -2.0)


class TestScenarioBound:
    """Eq. (9) and its maximisation at t0 = t (proof of Lemma 3.4)."""

    def test_maximised_at_full_horizon(self, example31):
        reexecution = ReexecutionProfile.uniform(example31, 3, 2)
        adaptation = AdaptationProfile.uniform(example31, 2)
        os_hours = 2.0
        horizon = os_hours * HOUR_MS
        at_end = pfh_lo_degradation_scenario(
            example31, reexecution, adaptation, 6.0, horizon, os_hours
        )
        for fraction in (0.0, 0.25, 0.5, 0.75, 0.9):
            earlier = pfh_lo_degradation_scenario(
                example31, reexecution, adaptation, 6.0,
                fraction * horizon, os_hours,
            )
            assert earlier <= at_end + 1e-18

    def test_scenario_at_end_matches_eq7(self, example31):
        reexecution = ReexecutionProfile.uniform(example31, 3, 2)
        adaptation = AdaptationProfile.uniform(example31, 2)
        os_hours = 1.0
        at_end = pfh_lo_degradation_scenario(
            example31, reexecution, adaptation, 6.0, os_hours * HOUR_MS, os_hours
        )
        eq7 = pfh_lo_degradation(example31, reexecution, adaptation, os_hours)
        assert at_end == pytest.approx(eq7, rel=1e-12)

    def test_rejects_trigger_outside_window(self, example31):
        reexecution = ReexecutionProfile.uniform(example31, 3, 2)
        adaptation = AdaptationProfile.uniform(example31, 2)
        with pytest.raises(ValueError, match="trigger"):
            pfh_lo_degradation_scenario(
                example31, reexecution, adaptation, 6.0, 2 * HOUR_MS, 1.0
            )


class TestUniformSeriesEvaluator:
    """The candidate-series evaluator must be bit-identical to eq. (7)."""

    def test_bit_identical_to_direct_path(self, fms):
        from repro.safety.degradation import pfh_lo_degradation_uniform

        for n_prime in (1, 2, 3):
            fast = pfh_lo_degradation_uniform(fms, 3, 2, n_prime, 10.0)
            slow = pfh_lo_degradation(
                fms,
                ReexecutionProfile.uniform(fms, 3, 2),
                AdaptationProfile.uniform(fms, n_prime),
                10.0,
            )
            assert fast == slow  # same float ops in the same order

    def test_bit_identical_on_generated_corpus(self):
        import numpy as np

        from repro.gen.taskset import generate_taskset
        from repro.model.criticality import DualCriticalitySpec
        from repro.safety.degradation import pfh_lo_degradation_uniform

        spec = DualCriticalitySpec.from_names("B", "C")
        for seed in range(4):
            rng = np.random.default_rng([43, seed])
            taskset = generate_taskset(0.9, spec, rng)
            for n_prime in (1, 3):
                fast = pfh_lo_degradation_uniform(taskset, 3, 2, n_prime, 10.0)
                slow = pfh_lo_degradation(
                    taskset,
                    ReexecutionProfile.uniform(taskset, 3, 2),
                    AdaptationProfile.uniform(taskset, n_prime),
                    10.0,
                )
                assert fast == slow
