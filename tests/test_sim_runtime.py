"""Tests for the FT-S -> simulator wiring and cross-validation runs."""

import pytest

from repro.core.ftmc import ft_edf_vd, ft_edf_vd_degradation
from repro.model.criticality import CriticalityRole
from repro.sim.runtime import build_simulator, simulate_ft_result


class TestBuildSimulator:
    def test_rejects_failed_results(self, fms):
        failed = ft_edf_vd(fms)  # FMS killing fails (Fig. 1)
        assert not failed.success
        with pytest.raises(ValueError, match="failed FT-S"):
            build_simulator(fms, failed)

    def test_kill_configuration(self, example31):
        result = ft_edf_vd(example31)
        sim = build_simulator(example31, result)
        assert sim.config.mechanism == "kill"
        assert sim.config.reexecution["tau1"] == 3
        assert sim.config.adaptation["tau1"] == 2

    def test_degrade_configuration(self, fms):
        result = ft_edf_vd_degradation(fms, 6.0)
        sim = build_simulator(fms, result)
        assert sim.config.mechanism == "degrade"
        assert sim.config.degradation_factor == 6.0

    def test_policy_uses_analysis_x(self, example31):
        from repro.sim.policies import EDFVDPolicy

        result = ft_edf_vd(example31)
        sim = build_simulator(example31, result)
        assert isinstance(sim.policy, EDFVDPolicy)
        assert sim.policy.x == pytest.approx(0.7556, abs=1e-3)


class TestFaultFreeValidation:
    """With no faults injected, an FT-S-accepted system must not miss."""

    def test_example31_no_misses(self, example31):
        result = ft_edf_vd(example31)
        metrics = simulate_ft_result(
            example31, result, horizon=360_000.0, seed=1, probability_scale=0.0
        )
        assert metrics.deadline_misses() == 0
        assert not metrics.hi_mode_entered

    def test_fms_degradation_no_misses(self, fms):
        result = ft_edf_vd_degradation(fms, 6.0)
        metrics = simulate_ft_result(
            fms, result, horizon=360_000.0, seed=1, probability_scale=0.0
        )
        assert metrics.deadline_misses() == 0


class TestFaultyValidation:
    def test_hi_tasks_never_miss_under_heavy_faults(self, example31):
        """The MC guarantee: HI deadlines hold through mode switches."""
        result = ft_edf_vd(example31)
        metrics = simulate_ft_result(
            example31,
            result,
            horizon=720_000.0,
            seed=3,
            probability_scale=1000.0,  # f = 1e-2 per execution
        )
        assert metrics.deadline_misses(CriticalityRole.HI) == 0
        assert metrics.fault_exhaustions(CriticalityRole.HI) >= 0

    def test_mode_switch_happens_with_inflated_faults(self, example31):
        result = ft_edf_vd(example31)
        metrics = simulate_ft_result(
            example31,
            result,
            horizon=3_600_000.0,
            seed=3,
            probability_scale=5000.0,  # f = 5e-2: third attempts certain
        )
        assert metrics.hi_mode_entered
        assert metrics.kills(CriticalityRole.LO) >= 0

    def test_seed_reproducibility(self, example31):
        result = ft_edf_vd(example31)
        a = simulate_ft_result(example31, result, 360_000.0, seed=11,
                               probability_scale=1000.0)
        b = simulate_ft_result(example31, result, 360_000.0, seed=11,
                               probability_scale=1000.0)
        assert a.outcome_histogram() == b.outcome_histogram()

    def test_different_seeds_differ(self, example31):
        result = ft_edf_vd(example31)
        a = simulate_ft_result(example31, result, 720_000.0, seed=1,
                               probability_scale=2000.0)
        b = simulate_ft_result(example31, result, 720_000.0, seed=2,
                               probability_scale=2000.0)
        assert (
            a.counters("tau1").faults_injected
            != b.counters("tau1").faults_injected
            or a.outcome_histogram() != b.outcome_histogram()
        )


class TestEmpiricalAgainstAnalytical:
    def test_empirical_pfh_below_analytical_bound(self, example31):
        """Scaled-fault simulation stays under the matching eq.-(2) bound.

        With scale s, the empirical per-hour failure rate of the HI level
        must (statistically) stay below the analytical bound computed at
        the scaled probability — the bound is conservative.
        """
        from repro.model.faults import ReexecutionProfile
        from repro.model.task import Task, TaskSet
        from repro.safety.pfh import pfh_plain

        scale = 2000.0  # f = 0.02
        result = ft_edf_vd(example31)
        metrics = simulate_ft_result(
            example31, result, horizon=10 * 3_600_000.0, seed=7,
            probability_scale=scale,
        )
        scaled_tasks = [
            Task(t.name, t.period, t.deadline, t.wcet, t.criticality,
                 t.failure_probability * scale)
            for t in example31
        ]
        scaled = TaskSet(scaled_tasks, example31.spec)
        profile = ReexecutionProfile.uniform(scaled, result.n_hi, result.n_lo)
        bound = pfh_plain(scaled, CriticalityRole.HI, profile)
        # Failure counts are Poisson around (at most) bound * hours; allow
        # four standard deviations of sampling noise.
        hours = 10.0
        expected = bound * hours
        observed = metrics.temporal_failures(CriticalityRole.HI)
        assert observed <= expected + 4.0 * expected**0.5
