"""Tests for the Monte-Carlo PFH estimator."""

import pytest

from repro.core.ftmc import ft_edf_vd
from repro.model.criticality import CriticalityRole
from repro.sim.montecarlo import PFHEstimate, estimate_pfh


class TestPFHEstimate:
    def test_mean(self):
        estimate = PFHEstimate(CriticalityRole.HI, hours=4.0, failures=8,
                               released=1000, runs=4)
        assert estimate.mean == 2.0

    def test_zero_hours(self):
        estimate = PFHEstimate(CriticalityRole.HI, hours=0.0, failures=0,
                               released=0, runs=0)
        assert estimate.mean == 0.0
        assert estimate.confidence_interval() == (0.0, 0.0)

    def test_interval_contains_mean(self):
        estimate = PFHEstimate(CriticalityRole.LO, hours=10.0, failures=25,
                               released=10_000, runs=10)
        low, high = estimate.confidence_interval()
        assert low <= estimate.mean <= high

    def test_zero_failures_interval_starts_at_zero(self):
        estimate = PFHEstimate(CriticalityRole.HI, hours=5.0, failures=0,
                               released=100, runs=5)
        low, high = estimate.confidence_interval()
        assert low == 0.0
        assert high > 0.0  # zero observations still leave uncertainty

    def test_interval_narrows_with_exposure(self):
        few = PFHEstimate(CriticalityRole.HI, hours=1.0, failures=10,
                          released=100, runs=1)
        many = PFHEstimate(CriticalityRole.HI, hours=100.0, failures=1000,
                           released=10_000, runs=100)
        few_width = few.confidence_interval()[1] - few.confidence_interval()[0]
        many_width = (
            many.confidence_interval()[1] - many.confidence_interval()[0]
        )
        assert many_width < few_width  # same rate, more data

    def test_consistency_check(self):
        estimate = PFHEstimate(CriticalityRole.HI, hours=10.0, failures=20,
                               released=1000, runs=10)
        assert estimate.consistent_with_bound(5.0)  # bound above the CI
        assert not estimate.consistent_with_bound(0.01)  # clearly violated


class TestEstimatePfh:
    @pytest.fixture(scope="class")
    def configured(self, request):
        from repro.experiments.tables import example31_taskset

        taskset = example31_taskset()
        result = ft_edf_vd(taskset)
        assert result.success
        return taskset, result

    def test_fault_free_sees_nothing(self, configured):
        taskset, result = configured
        estimate = estimate_pfh(
            taskset, result, CriticalityRole.HI,
            hours_per_run=0.05, runs=3, probability_scale=0.0,
        )
        assert estimate.failures == 0
        assert estimate.released > 0
        assert estimate.runs == 3

    def test_scaled_faults_observed_on_lo(self, configured):
        """LO tasks run once (n_LO = 1), so scaled faults show up."""
        taskset, result = configured
        estimate = estimate_pfh(
            taskset, result, CriticalityRole.LO,
            hours_per_run=0.1, runs=2, probability_scale=3000.0,
        )
        assert estimate.failures > 0
        assert estimate.mean > 0.0

    def test_deterministic_given_seed(self, configured):
        taskset, result = configured
        a = estimate_pfh(taskset, result, CriticalityRole.LO,
                         hours_per_run=0.05, runs=2,
                         probability_scale=3000.0, seed=9)
        b = estimate_pfh(taskset, result, CriticalityRole.LO,
                         hours_per_run=0.05, runs=2,
                         probability_scale=3000.0, seed=9)
        assert a.failures == b.failures

    def test_estimate_records_seed_and_scale(self, configured):
        """The estimate carries everything needed to reproduce it."""
        taskset, result = configured
        estimate = estimate_pfh(taskset, result, CriticalityRole.LO,
                                hours_per_run=0.05, runs=2,
                                probability_scale=3000.0, seed=9)
        assert estimate.seed == 9
        assert estimate.probability_scale == 3000.0
        replay = estimate_pfh(taskset, result, CriticalityRole.LO,
                              hours_per_run=0.05, runs=estimate.runs,
                              probability_scale=estimate.probability_scale,
                              seed=estimate.seed)
        assert replay.failures == estimate.failures
        assert replay.released == estimate.released

    def test_default_seed_recorded_as_zero(self, configured):
        taskset, result = configured
        estimate = estimate_pfh(taskset, result, CriticalityRole.HI,
                                hours_per_run=0.05, runs=1,
                                probability_scale=0.0)
        assert estimate.seed == 0
        assert estimate.probability_scale == 0.0

    def test_validation(self, configured):
        taskset, result = configured
        with pytest.raises(ValueError, match="run"):
            estimate_pfh(taskset, result, CriticalityRole.HI, runs=0)
        with pytest.raises(ValueError, match="hours"):
            estimate_pfh(taskset, result, CriticalityRole.HI,
                         hours_per_run=0.0)
