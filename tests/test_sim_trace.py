"""Tests for the execution trace recorder and its engine integration."""

import pytest

from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.faults import (
    AdaptationProfile,
    FaultToleranceConfig,
    ReexecutionProfile,
)
from repro.model.task import Task, TaskSet
from repro.sim.engine import Simulator
from repro.sim.fault_injection import ScriptedFaultInjector
from repro.sim.policies import EDFPolicy
from repro.sim.trace import Segment, TraceEventKind, TraceRecorder

HI = CriticalityRole.HI
LO = CriticalityRole.LO


def _run(tasks, horizon, injector=None, adaptation=None, n_hi=1):
    ts = TaskSet(tasks, DualCriticalitySpec.from_names("B", "D"))
    config = FaultToleranceConfig(
        reexecution=ReexecutionProfile.uniform(ts, n_hi, 1),
        adaptation=(
            AdaptationProfile.uniform(ts, adaptation)
            if adaptation is not None
            else None
        ),
    )
    trace = TraceRecorder()
    sim = Simulator(ts, EDFPolicy(), config, injector, trace=trace)
    metrics = sim.run(horizon)
    return trace, metrics


class TestSegments:
    def test_contiguous_execution_merges(self):
        trace, _ = _run([Task("a", 100, 100, 10, HI)], 100.0)
        segments = trace.segments_of("a")
        assert segments == [Segment("a", 0.0, 10.0, 1)]

    def test_preemption_splits_segments(self):
        trace, _ = _run(
            [Task("hi", 20, 20, 5, HI), Task("lo", 100, 100, 40, LO)], 100.0
        )
        lo_segments = trace.segments_of("lo")
        assert len(lo_segments) >= 3  # split by the HI releases

    def test_busy_time_matches_metrics(self):
        trace, metrics = _run(
            [Task("a", 50, 50, 7, HI), Task("b", 80, 80, 11, LO)], 400.0
        )
        assert trace.busy_time() == pytest.approx(metrics.busy_time)

    def test_attempts_distinguished(self):
        injector = ScriptedFaultInjector({"a": [True, False]})
        trace, _ = _run(
            [Task("a", 100, 100, 10, HI, 0.5)], 100.0, injector, n_hi=2
        )
        attempts = {s.attempt for s in trace.segments_of("a")}
        assert attempts == {1, 2}


class TestEvents:
    def test_release_events(self):
        trace, _ = _run([Task("a", 100, 100, 10, HI)], 300.0)
        releases = trace.events_of(TraceEventKind.RELEASE)
        assert [e.time for e in releases] == [0.0, 100.0, 200.0]

    def test_fault_and_completion_events(self):
        injector = ScriptedFaultInjector({"a": [True, False]})
        trace, _ = _run(
            [Task("a", 100, 100, 10, HI, 0.5)], 100.0, injector, n_hi=2
        )
        assert len(trace.events_of(TraceEventKind.FAULT)) == 1
        assert len(trace.events_of(TraceEventKind.ATTEMPT_OK)) == 1
        assert len(trace.events_of(TraceEventKind.COMPLETE)) == 1

    def test_mode_switch_and_kill_events(self):
        injector = ScriptedFaultInjector({"hi": [True, True, False]})
        trace, metrics = _run(
            [
                Task("hi", 100, 100, 10, HI, 0.5),
                Task("lo", 100, 100, 50, LO),
            ],
            400.0,
            injector,
            adaptation=2,
            n_hi=3,
        )
        assert trace.mode_switch_time is not None
        assert trace.mode_switch_time == metrics.mode_switch_time
        assert len(trace.events_of(TraceEventKind.KILL)) >= 1

    def test_no_mode_switch_without_trigger(self):
        trace, _ = _run([Task("a", 100, 100, 10, HI)], 300.0)
        assert trace.mode_switch_time is None


class TestGantt:
    def test_renders_rows_per_task(self):
        trace, _ = _run(
            [Task("a", 50, 50, 7, HI), Task("b", 80, 80, 11, LO)], 200.0
        )
        chart = trace.gantt()
        lines = chart.splitlines()
        assert any(line.startswith("a ") for line in lines)
        assert any(line.startswith("b ") for line in lines)
        assert "#" in chart

    def test_empty_trace(self):
        assert "no execution" in TraceRecorder().gantt()

    def test_mode_switch_marker(self):
        injector = ScriptedFaultInjector({"hi": [True, True, False]})
        trace, _ = _run(
            [
                Task("hi", 100, 100, 10, HI, 0.5),
                Task("lo", 100, 100, 50, LO),
            ],
            400.0,
            injector,
            adaptation=2,
            n_hi=3,
        )
        chart = trace.gantt()
        assert "mode switch at" in chart
