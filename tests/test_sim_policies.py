"""Unit tests for the scheduling policies' priority keys."""

import pytest

from repro.model.criticality import CriticalityRole
from repro.model.task import Task
from repro.sim.jobs import Job
from repro.sim.policies import EDFPolicy, EDFVDPolicy, FixedPriorityPolicy

HI = CriticalityRole.HI
LO = CriticalityRole.LO


def _job(name, criticality, release, period=100.0, deadline=None):
    task = Task(name, period, deadline or period, 10.0, criticality, 1e-5)
    return Job(
        task=task,
        release=release,
        absolute_deadline=release + task.deadline,
        max_attempts=1,
        execution_time=10.0,
    )


class TestEDFPolicy:
    def test_orders_by_absolute_deadline(self):
        policy = EDFPolicy()
        early = _job("a", HI, 0.0, deadline=50.0)
        late = _job("b", LO, 0.0, deadline=80.0)
        assert policy.priority_key(early, False) < policy.priority_key(
            late, False
        )

    def test_mode_oblivious(self):
        policy = EDFPolicy()
        job = _job("a", HI, 0.0)
        assert policy.priority_key(job, False) == policy.priority_key(job, True)


class TestFixedPriorityPolicy:
    def test_orders_by_static_priority(self):
        policy = FixedPriorityPolicy({"a": 2, "b": 1})
        a = _job("a", HI, 0.0, deadline=10.0)
        b = _job("b", LO, 0.0, deadline=500.0)
        # b outranks a despite its later deadline.
        assert policy.priority_key(b, False) < policy.priority_key(a, False)

    def test_unknown_task_raises(self):
        policy = FixedPriorityPolicy({})
        with pytest.raises(KeyError, match="priority"):
            policy.priority_key(_job("ghost", HI, 0.0), False)


class TestEDFVDPolicy:
    def test_virtual_deadline_for_hi_in_lo_mode(self):
        policy = EDFVDPolicy(0.5)
        hi = _job("hi", HI, 100.0, period=80.0, deadline=80.0)
        assert policy.virtual_deadline(hi) == pytest.approx(100.0 + 40.0)
        assert policy.priority_key(hi, False) == (140.0,)

    def test_lo_tasks_keep_real_deadlines(self):
        policy = EDFVDPolicy(0.5)
        lo = _job("lo", LO, 100.0, period=80.0, deadline=80.0)
        assert policy.virtual_deadline(lo) == 180.0

    def test_hi_mode_restores_real_deadlines(self):
        policy = EDFVDPolicy(0.5)
        hi = _job("hi", HI, 100.0, period=80.0, deadline=80.0)
        assert policy.priority_key(hi, True) == (180.0,)

    def test_virtual_deadline_promotes_hi(self):
        """The whole point of EDF-VD: x < 1 can flip the EDF order."""
        policy = EDFVDPolicy(0.5)
        hi = _job("hi", HI, 0.0, period=100.0, deadline=100.0)
        lo = _job("lo", LO, 0.0, period=80.0, deadline=80.0)
        plain = EDFPolicy()
        assert plain.priority_key(lo, False) < plain.priority_key(hi, False)
        assert policy.priority_key(hi, False) < policy.priority_key(lo, False)

    @pytest.mark.parametrize("x", [0.0, -0.5, 1.01])
    def test_factor_validation(self, x):
        with pytest.raises(ValueError, match="factor"):
            EDFVDPolicy(x)

    def test_factor_one_degenerates_to_edf_for_implicit(self):
        policy = EDFVDPolicy(1.0)
        hi = _job("hi", HI, 0.0, period=100.0, deadline=100.0)
        assert policy.virtual_deadline(hi) == hi.absolute_deadline
