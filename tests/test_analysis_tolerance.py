"""Tests for the shared numeric tolerance policy of the analyses."""

import math

import pytest

from repro.analysis.tolerance import (
    CONVERGENCE_EPS,
    PROB_EPS,
    REL_EPS,
    UTIL_EPS,
    ceil_div,
    converged,
    exceeds,
    floor_div,
    job_count,
    strictly_below,
    utilization_exceeds,
    within,
)


class TestComparisons:
    def test_exceeds_needs_more_than_slack(self):
        assert not exceeds(1.0 + REL_EPS / 2, 1.0)
        assert exceeds(1.0 + 3 * REL_EPS, 1.0)

    def test_within_complements_exceeds(self):
        for a, b in [(1.0, 1.0), (2.0, 1.0), (1.0 + REL_EPS / 2, 1.0)]:
            assert within(a, b) == (not exceeds(a, b))

    def test_strictly_below_excludes_near_equal(self):
        assert not strictly_below(1.0 - REL_EPS / 2, 1.0)
        assert strictly_below(1.0 - 3 * REL_EPS, 1.0)

    def test_slack_is_relative_at_large_scale(self):
        """At t ~ 1e9 an absolute 1e-9 would be far below one ulp."""
        big = 1e9
        assert within(big * (1.0 + REL_EPS / 2), big)
        assert exceeds(big * (1.0 + 3 * REL_EPS), big)

    def test_slack_floored_at_scale_one(self):
        """Near zero the slack stays REL_EPS, not zero."""
        assert within(REL_EPS / 2, 0.0)
        assert exceeds(3 * REL_EPS, 0.0)


class TestSnappedDivisions:
    def test_floor_div_exact(self):
        assert floor_div(9.0, 3.0) == 3

    def test_floor_div_snaps_up_across_boundary(self):
        """A quotient a few ulps below an integer counts the integer.

        (4.1 - 0.2) / 0.3 is exactly 13 over the rationals but lands a
        couple of ulps short in binary floating point; the snapped floor
        must still see all 13 periods.
        """
        assert (4.1 - 0.2) / 0.3 < 13.0  # the raw quotient really is short
        assert floor_div(4.1 - 0.2, 0.3) == 13

    def test_floor_div_does_not_snap_far_values(self):
        assert floor_div(0.29, 0.3) == 0

    def test_ceil_div_snaps_down_across_boundary(self):
        assert ceil_div(0.1 + 0.2, 0.3) == 1

    def test_ceil_div_exact(self):
        assert ceil_div(10.0, 3.0) == 4

    def test_floor_ceil_agree_on_near_integers(self):
        """Both snap to the same integer when the quotient is boundary-close."""
        for n, d in [(4.1 - 0.2, 0.3), (0.3 * 7, 0.3), (0.1 + 0.2, 0.3)]:
            q = n / d
            assert abs(q - round(q)) < REL_EPS * max(1.0, abs(q))
            assert floor_div(n, d) == ceil_div(n, d) == round(q)


class TestJobCount:
    def test_zero_before_first_deadline(self):
        assert job_count(7.9, 8.0, 10.0) == 0

    def test_one_at_first_deadline(self):
        assert job_count(8.0, 8.0, 10.0) == 1

    def test_boundary_instant_counts_the_job(self):
        """t = D + 13T with non-representable T must count 14 jobs."""
        assert job_count(4.1, 0.2, 0.3) == 14

    def test_negative_arguments_clamp_to_zero_jobs(self):
        assert job_count(0.0, 5.0, 10.0) <= 0


class TestUtilizationAndConvergence:
    def test_utilization_boundary(self):
        assert not utilization_exceeds(1.0)
        assert not utilization_exceeds(1.0 + UTIL_EPS / 2)
        assert utilization_exceeds(1.0 + 1e-9)

    def test_custom_bound(self):
        assert utilization_exceeds(0.76, 0.75)
        assert not utilization_exceeds(0.75, 0.75)

    def test_converged(self):
        assert converged(1.0, 1.0)
        assert converged(1.0 + CONVERGENCE_EPS / 10, 1.0)
        assert not converged(1.1, 1.0)

    def test_constants_ordering(self):
        """The per-domain epsilons keep their documented magnitudes."""
        assert PROB_EPS < UTIL_EPS <= CONVERGENCE_EPS < REL_EPS < 1e-6
        assert math.isclose(REL_EPS, 1e-9)
