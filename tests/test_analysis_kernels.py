"""Oracle-equivalence tests: vectorized kernels vs the scalar reference.

The NumPy kernels of :mod:`repro.analysis.kernels` must return *identical
verdicts* (and matching numbers) to the scalar paths they accelerate, on
the same corpora the experiments draw from.  The scalar implementations
are the reference oracle; every divergence is a kernel bug.
"""

import math

import numpy as np
import pytest

from repro.analysis import kernels
from repro.analysis.dbf_mc import dbf_mc_analyse
from repro.analysis.edf import (
    Workload,
    demand_bound_function,
    edf_processor_demand_test,
    edf_processor_demand_test_reference,
)
from repro.analysis.qpa import (
    _max_deadline_at_or_below,
    _max_deadline_strictly_below,
    _VECTOR_MIN_TASKS,
    qpa_schedulable,
)
from repro.core.conversion import convert_uniform
from repro.gen.taskset import GeneratorConfig, generate_taskset
from repro.model.criticality import DualCriticalitySpec

pytestmark = pytest.mark.skipif(
    not kernels.numpy_enabled(),
    reason="NumPy kernels disabled (REPRO_NO_NUMPY or missing NumPy)",
)

_SPEC = DualCriticalitySpec.from_names("B", "C")
_MANY_TASKS = GeneratorConfig(u_min=0.004, u_max=0.02, p_hi=0.5)


def _workload(seed: int, utilization: float, ratio: float) -> list[Workload]:
    gen = np.random.default_rng(seed)
    taskset = generate_taskset(utilization, _SPEC, gen, config=_MANY_TASKS)
    return [Workload(t.period, ratio * t.period, t.wcet) for t in taskset]


class TestNumpyToggle:
    def test_env_disables_kernels(self, monkeypatch):
        monkeypatch.setenv(kernels.NO_NUMPY_ENV, "1")
        assert not kernels.numpy_enabled()

    def test_zero_and_empty_keep_kernels_on(self, monkeypatch):
        for value in ("", "0"):
            monkeypatch.setenv(kernels.NO_NUMPY_ENV, value)
            assert kernels.numpy_enabled()


class TestDbfKernels:
    @pytest.mark.parametrize("seed", range(4))
    def test_dbf_batch_matches_scalar(self, seed):
        workload = _workload(seed, 0.7, ratio=0.8)
        arrays = kernels.workload_arrays(workload)
        horizon = max(w.deadline for w in workload) * 6.0
        instants = np.linspace(0.0, horizon, 257)
        batch = kernels.dbf_batch(*arrays, instants)
        for t, demand in zip(instants, batch):
            assert demand == pytest.approx(
                demand_bound_function(workload, float(t)), rel=1e-12
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_dbf_single_matches_scalar(self, seed):
        workload = _workload(seed, 0.7, ratio=0.8)
        arrays = kernels.workload_arrays(workload)
        for t in (0.0, 1.0, 200.0, 4.1, 1234.5):
            assert kernels.dbf_single(*arrays, t) == pytest.approx(
                demand_bound_function(workload, t), rel=1e-12
            )

    def test_dbf_single_snaps_boundary_instants(self):
        """The kernel inherits the tolerance-aware job-count floor."""
        workload = [Workload(0.3, 0.2, 0.2)]
        arrays = kernels.workload_arrays(workload)
        # 4.1 = 0.2 + 13 * 0.3 over the rationals; the raw float floor
        # sees only 13 jobs, the snapped one all 14.
        assert kernels.dbf_single(*arrays, 4.1) == pytest.approx(14 * 0.2)

    @pytest.mark.parametrize("seed", range(4))
    def test_deadline_points_match_scalar_enumeration(self, seed):
        workload = _workload(seed, 0.7, ratio=0.8)
        periods, deadlines, wcets = kernels.workload_arrays(workload)
        horizon = max(w.deadline for w in workload) * 4.0
        points = kernels.deadline_points(periods, deadlines, horizon)
        expected = set()
        for w in workload:
            k = 0
            while True:
                t = w.deadline + k * w.period
                if t > horizon * (1.0 + 1e-9):
                    break
                if t > 0:
                    expected.add(t)
                k += 1
        assert sorted(expected) == pytest.approx(list(points))


class TestDeadlineSearchKernels:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("ratio", [0.8, 1.0])
    def test_match_scalar_helpers(self, seed, ratio):
        workload = _workload(seed, 0.7, ratio=ratio)
        periods, deadlines, _ = kernels.workload_arrays(workload)
        horizon = max(w.deadline for w in workload) * 3.0
        for limit in np.linspace(0.1, horizon, 37):
            limit = float(limit)
            assert kernels.max_deadline_at_or_below(
                periods, deadlines, limit
            ) == _max_deadline_at_or_below(workload, limit)
            assert kernels.max_deadline_strictly_below(
                periods, deadlines, limit
            ) == _max_deadline_strictly_below(workload, limit)

    def test_no_candidate_returns_minus_inf(self):
        workload = [Workload(10.0, 8.0, 1.0)]
        periods, deadlines, _ = kernels.workload_arrays(workload)
        assert kernels.max_deadline_at_or_below(periods, deadlines, 5.0) == -math.inf
        assert (
            kernels.max_deadline_strictly_below(periods, deadlines, 8.0)
            == -math.inf
        )

    def test_strictly_below_excludes_boundary_deadline(self):
        """A deadline within tolerance of the limit counts as equal."""
        workload = [Workload(0.3, 0.2, 0.1)]
        periods, deadlines, _ = kernels.workload_arrays(workload)
        # 4.1 is the 14th absolute deadline up to float snapping; strictly
        # below must step down to the 13th (3.8).
        below = kernels.max_deadline_strictly_below(periods, deadlines, 4.1)
        assert below == pytest.approx(0.2 + 12 * 0.3)


class TestVerdictEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("utilization", [0.5, 0.8, 0.95])
    def test_pdc_vectorized_equals_reference(self, seed, utilization):
        workload = _workload(seed, utilization, ratio=0.8)
        assert edf_processor_demand_test(
            workload
        ) == edf_processor_demand_test_reference(workload)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("utilization", [0.5, 0.8, 0.95])
    def test_qpa_vectorized_equals_scalar(
        self, seed, utilization, monkeypatch
    ):
        workload = _workload(seed, utilization, ratio=0.8)
        assert len(workload) >= _VECTOR_MIN_TASKS  # vector path exercised
        fast = qpa_schedulable(workload)
        monkeypatch.setenv(kernels.NO_NUMPY_ENV, "1")
        assert qpa_schedulable(workload) == fast

    def test_pdc_schedulable_kernel_equals_reference(self):
        from repro.analysis.edf import _MAX_TEST_POINTS

        for seed in range(6):
            workload = _workload(seed, 0.85, ratio=0.8)
            arrays = kernels.workload_arrays(workload)
            assert kernels.pdc_schedulable(
                *arrays, _MAX_TEST_POINTS
            ) == edf_processor_demand_test_reference(workload)

    @pytest.mark.parametrize("seed", range(5))
    def test_dbf_mc_vectorized_equals_scalar(self, seed, monkeypatch):
        gen = np.random.default_rng(seed)
        taskset = generate_taskset(0.6, _SPEC, gen, config=_MANY_TASKS)
        mc = convert_uniform(taskset, n_hi=2, n_lo=1, n_prime_hi=1)
        fast = dbf_mc_analyse(mc)
        monkeypatch.setenv(kernels.NO_NUMPY_ENV, "1")
        slow = dbf_mc_analyse(mc)
        assert (fast.schedulable, fast.x) == (slow.schedulable, slow.x)
