"""Tests for trace aggregation and the ``ftmc stats`` CLI verb.

Exit-code contract: 0 for a valid aggregate/validation, 2 for an
unreadable file or a schema-invalid trace (``--check``).  A torn final
line is the tolerated failure mode and must not fail ``--check``.
"""

import json

import pytest

from repro.cli import main
from repro.obs import (
    STATS_SCHEMA,
    TRACE_SCHEMA,
    aggregate_trace,
    load_trace,
    render_stats,
    snapshot_stats,
    span,
    tracing,
)
from repro.obs import metrics, event


@pytest.fixture(autouse=True)
def clean_obs_state():
    from repro.obs.trace import stop_tracing

    stop_tracing()
    metrics.disable()
    metrics.registry().reset()
    yield
    stop_tracing()
    metrics.disable()
    metrics.registry().reset()


@pytest.fixture
def trace_file(tmp_path):
    """A small but representative trace: nested spans, events, metrics."""
    path = str(tmp_path / "trace.jsonl")
    with tracing(path):
        with span("campaign", experiment="demo"):
            for attempt in (1, 2):
                with span("shard", id="s0"):
                    event("shard.retry", attempt=attempt)
            metrics.inc("runner.attempts", 2)
            metrics.observe("batch.points", 64)
    return path


class TestAggregateTrace:
    def test_shapes_and_counts(self, trace_file):
        stats = aggregate_trace(load_trace(trace_file), source=trace_file)
        assert stats["schema"] == STATS_SCHEMA
        assert stats["source"] == trace_file
        assert stats["spans"]["campaign"]["count"] == 1
        assert stats["spans"]["shard"]["count"] == 2
        assert stats["spans"]["shard"]["closed"] == 2
        assert stats["spans"]["shard"]["min_ns"] <= stats["spans"]["shard"]["max_ns"]
        assert stats["events"] == {"shard.retry": 2}
        assert stats["metrics"]["counters"]["runner.attempts"] == 2
        assert stats["metrics"]["histograms"]["batch.points"]["count"] == 1
        assert stats["open_spans"] == 0
        assert stats["corrupt_lines"] == 0

    def test_unclosed_spans_counted(self, trace_file):
        # Drop the final span-end lines to simulate a killed session.
        with open(trace_file) as handle:
            lines = [l for l in handle.read().splitlines() if l.strip()]
        kept = [l for l in lines if json.loads(l).get("type") != "span-end"]
        with open(trace_file, "w") as handle:
            handle.write("\n".join(kept) + "\n")
        stats = aggregate_trace(load_trace(trace_file))
        assert stats["open_spans"] == 3
        assert stats["spans"]["shard"]["closed"] == 0

    def test_pool_occupancy_from_slot_attributes(self, tmp_path):
        from repro.obs import open_span

        path = str(tmp_path / "trace.jsonl")
        with tracing(path):
            with span("campaign", jobs=2):
                a = open_span("shard", id="a", slot=0)
                b = open_span("shard", id="b", slot=1)
                # attempt spans carry the slot too but must not double-book
                attempt = open_span(
                    "shard.attempt", parent=a.span_id, slot=0
                )
                attempt.end()
                a.end()
                c = open_span("shard", id="c", slot=0)
                c.end()
                b.end()
        stats = aggregate_trace(load_trace(path))
        assert list(stats["pool"]) == ["0", "1"]
        assert stats["pool"]["0"]["spans"] == 2
        assert stats["pool"]["1"]["spans"] == 1
        assert stats["pool"]["0"]["busy_ns"] >= 0
        text = render_stats(stats)
        assert "pool slot" in text

    def test_pool_absent_without_slot_attributes(self, trace_file):
        stats = aggregate_trace(load_trace(trace_file))
        assert stats["pool"] == {}
        assert "pool slot" not in render_stats(stats)

    def test_executor_occupancy_from_executor_attributes(self, tmp_path):
        from repro.obs import open_span

        path = str(tmp_path / "trace.jsonl")
        with tracing(path):
            with span("campaign", executors=2):
                a = open_span("shard", id="a", slot=0, executor="exec-0")
                b = open_span("shard", id="b", slot=1, executor="exec-1")
                # attempt spans carry the executor too but must not
                # double-book the fleet table
                attempt = open_span(
                    "shard.attempt", parent=a.span_id, slot=0,
                    executor="exec-0",
                )
                attempt.end()
                a.end()
                c = open_span("shard", id="c", slot=0, executor="exec-0")
                c.end()
                b.end()
        stats = aggregate_trace(load_trace(path))
        assert list(stats["executors"]) == ["exec-0", "exec-1"]
        assert stats["executors"]["exec-0"]["spans"] == 2
        assert stats["executors"]["exec-1"]["spans"] == 1
        assert stats["executors"]["exec-0"]["busy_ns"] >= 0
        text = render_stats(stats)
        assert "executor" in text

    def test_executors_absent_without_executor_attributes(self, trace_file):
        stats = aggregate_trace(load_trace(trace_file))
        assert stats["executors"] == {}
        assert "executor" not in render_stats(stats)

    def test_render_mentions_every_section(self, trace_file):
        text = render_stats(aggregate_trace(load_trace(trace_file), source=trace_file))
        for needle in ("campaign", "shard.retry", "runner.attempts", "batch.points"):
            assert needle in text

    def test_render_empty_snapshot(self):
        assert "(no metrics recorded)" in render_stats(snapshot_stats())

    def test_snapshot_stats_wraps_live_registry(self):
        metrics.enable()
        metrics.inc("live.counter")
        stats = snapshot_stats()
        assert stats["schema"] == STATS_SCHEMA
        assert stats["source"] is None
        assert stats["metrics"]["counters"] == {"live.counter": 1}


class TestStatsCli:
    def test_aggregate_exit_0(self, trace_file, capsys):
        assert main(["stats", trace_file]) == 0
        out = capsys.readouterr().out
        assert "ftmc stats" in out
        assert "shard" in out

    def test_json_format_parses(self, trace_file, capsys):
        assert main(["stats", trace_file, "--format", "json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["schema"] == STATS_SCHEMA
        assert stats["spans"]["shard"]["count"] == 2

    def test_missing_file_exit_2(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 2
        assert "ftmc:" in capsys.readouterr().err

    def test_live_snapshot_without_path(self, capsys):
        assert main(["stats"]) == 0
        assert "process registry" in capsys.readouterr().out

    def test_check_valid_exit_0(self, trace_file, capsys):
        assert main(["stats", "--check", trace_file]) == 0
        assert f"valid {TRACE_SCHEMA} trace" in capsys.readouterr().out

    def test_check_flag_after_positional(self, trace_file):
        assert main(["stats", trace_file, "--check"]) == 0

    def test_check_torn_tail_exit_0(self, trace_file):
        with open(trace_file, "a") as handle:
            handle.write('{"type": "span-start", "id":')
        assert main(["stats", "--check", trace_file]) == 0

    def test_check_corrupt_middle_exit_2(self, trace_file, capsys):
        with open(trace_file) as handle:
            lines = handle.read().splitlines()
        lines.insert(2, "{torn mid-stream")
        with open(trace_file, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        assert main(["stats", "--check", trace_file]) == 2
        assert "unparseable" in capsys.readouterr().err

    def test_check_without_path_exit_2(self, capsys):
        assert main(["stats", "--check"]) == 2
        assert "ftmc:" in capsys.readouterr().err
