"""Tests for the multi-level generalisation (model, reduction, FT-S-ML)."""

import pytest

from repro.core.backends import EDFVDBackend, EDFVDDegradationBackend
from repro.model.criticality import CriticalityRole, DO178BLevel
from repro.multilevel.ftml import ft_schedule_multilevel
from repro.multilevel.model import MLTask, MLTaskSet
from repro.multilevel.reduction import (
    boundary_candidates,
    level_projection,
    reduce_at_boundary,
)

A, B, C, D, E = (DO178BLevel.A, DO178BLevel.B, DO178BLevel.C,
                 DO178BLevel.D, DO178BLevel.E)


@pytest.fixture
def avionics() -> MLTaskSet:
    """Four-level system where killing and degradation pick different
    boundaries (see the FT-S-ML tests below)."""
    return MLTaskSet(
        [
            MLTask("flight-ctl", 50, 50, 2, A, 1e-6),
            MLTask("autopilot", 100, 100, 5, B, 1e-5),
            MLTask("nav", 200, 200, 10, B, 1e-5),
            MLTask("flightplan", 500, 500, 60, C, 1e-5),
            MLTask("display", 250, 250, 25, C, 1e-5),
            MLTask("maint-log", 1000, 1000, 250, D, 1e-5),
        ],
        name="avionics",
    )


class TestMLModel:
    def test_levels_sorted_most_critical_first(self, avionics):
        assert avionics.levels() == [A, B, C, D]

    def test_by_level(self, avionics):
        assert len(avionics.by_level(B)) == 2
        assert len(avionics.by_level(E)) == 0

    def test_group_queries(self, avionics):
        assert {t.level for t in avionics.at_or_above(B)} == {A, B}
        assert {t.level for t in avionics.below(B)} == {C, D}

    def test_utilization(self, avionics):
        assert avionics.utilization(A) == pytest.approx(2 / 50)
        assert avionics.utilization() == pytest.approx(
            sum(t.utilization for t in avionics)
        )

    def test_duplicate_names_rejected(self):
        t = MLTask("x", 100, 100, 1, B, 1e-5)
        with pytest.raises(ValueError, match="duplicate"):
            MLTaskSet([t, t])

    def test_task_validation(self):
        with pytest.raises(ValueError, match="period"):
            MLTask("x", 0, 100, 1, B)
        with pytest.raises(ValueError, match="probability"):
            MLTask("x", 100, 100, 1, B, 1.0)

    def test_lookup_and_describe(self, avionics):
        assert avionics.task("nav").wcet == 10
        with pytest.raises(KeyError):
            avionics.task("ghost")
        assert "flight-ctl" in avionics.describe()


class TestReduction:
    def test_boundary_candidates_exclude_lowest(self, avionics):
        assert boundary_candidates(avionics) == [C, B, A]

    def test_single_level_has_no_candidates(self):
        ml = MLTaskSet([MLTask("x", 100, 100, 1, B, 1e-5)])
        assert boundary_candidates(ml) == []

    def test_reduce_at_boundary_roles(self, avionics):
        dual = reduce_at_boundary(avionics, B)
        hi_names = {t.name for t in dual.hi_tasks}
        assert hi_names == {"flight-ctl", "autopilot", "nav"}
        lo_names = {t.name for t in dual.lo_tasks}
        assert lo_names == {"flightplan", "display", "maint-log"}

    def test_reduce_spec_binds_gate_levels(self, avionics):
        dual = reduce_at_boundary(avionics, B)
        assert dual.spec.hi_level is B  # least critical of the HI group
        assert dual.spec.lo_level is C  # most critical of the LO group

    def test_reduce_preserves_parameters(self, avionics):
        dual = reduce_at_boundary(avionics, C)
        original = avionics.task("display")
        reduced = dual.task("display")
        assert reduced.period == original.period
        assert reduced.wcet == original.wcet
        assert reduced.criticality is CriticalityRole.HI  # C >= boundary C

    def test_reduce_rejects_empty_groups(self, avionics):
        with pytest.raises(ValueError, match="LO group"):
            reduce_at_boundary(avionics, E)

    def test_level_projection_contents(self, avionics):
        projection = level_projection(avionics, B, C)
        assert {t.name for t in projection.lo_tasks} == {
            "flightplan", "display",
        }
        assert {t.name for t in projection.hi_tasks} == {
            "flight-ctl", "autopilot", "nav",
        }
        assert projection.spec.lo_level is C

    def test_level_projection_validates(self, avionics):
        with pytest.raises(ValueError, match="not below"):
            level_projection(avionics, B, A)
        with pytest.raises(ValueError, match="no tasks"):
            level_projection(avionics, B, E)


class TestFTSML:
    def test_killing_adapts_only_level_d(self, avionics):
        result = ft_schedule_multilevel(avionics, EDFVDBackend())
        assert result.success
        assert result.boundary is C  # HI group A/B/C; only D killed
        assert set(result.pfh_adapted) == {D}
        assert result.adaptation is not None

    def test_degradation_adapts_c_and_d(self, avionics):
        result = ft_schedule_multilevel(avionics, EDFVDDegradationBackend(6.0))
        assert result.success
        assert result.boundary is B
        assert set(result.pfh_adapted) == {C, D}
        # Level C must individually satisfy its 1e-5 ceiling.
        assert result.pfh_adapted[C] < 1e-5

    def test_per_level_profiles(self, avionics):
        result = ft_schedule_multilevel(avionics, EDFVDBackend())
        profiles = result.level_profiles
        assert profiles[A] >= profiles[C] >= profiles[D]
        assert profiles[D] == 1  # no ceiling -> single execution

    def test_per_level_plain_safety_met_for_hi_group(self, avionics):
        result = ft_schedule_multilevel(avionics, EDFVDBackend())
        for level in (A, B, C):
            assert result.pfh_plain[level] <= level.pfh_ceiling

    def test_baseline_path(self):
        light = MLTaskSet(
            [
                MLTask("a", 1000, 1000, 1, A, 1e-6),
                MLTask("c", 1000, 1000, 1, C, 1e-5),
            ]
        )
        result = ft_schedule_multilevel(light, EDFVDBackend())
        assert result.success
        assert result.mechanism == "none"
        assert result.boundary is None

    def test_unsafe_level_fails_early(self):
        hopeless = MLTaskSet(
            [
                MLTask("a", 10, 10, 1, A, 0.9),
                MLTask("d", 10, 10, 1, D, 0.9),
            ]
        )
        result = ft_schedule_multilevel(hopeless, EDFVDBackend(), max_n=3)
        assert not result.success
        assert "ceiling" in result.reason

    def test_overloaded_fails(self):
        overloaded = MLTaskSet(
            [
                MLTask("a", 100, 100, 60, A, 1e-9),
                MLTask("c", 100, 100, 60, C, 1e-9),
            ]
        )
        result = ft_schedule_multilevel(overloaded, EDFVDBackend())
        assert not result.success
        assert "boundary" in result.reason

    def test_result_truthiness(self, avionics):
        assert ft_schedule_multilevel(avionics, EDFVDBackend())

    def test_converted_set_schedulable(self, avionics):
        backend = EDFVDBackend()
        result = ft_schedule_multilevel(avionics, backend)
        assert result.mc_taskset is not None
        assert backend.is_schedulable(result.mc_taskset)

    def test_two_level_system_matches_dual_fts(self, example31):
        """On a genuinely dual system, FT-S-ML agrees with FT-S."""
        from repro.core.ftmc import ft_edf_vd

        ml = MLTaskSet(
            [
                MLTask(t.name, t.period, t.deadline, t.wcet,
                       B if t.criticality is CriticalityRole.HI else D,
                       t.failure_probability)
                for t in example31
            ]
        )
        ml_result = ft_schedule_multilevel(ml, EDFVDBackend())
        dual_result = ft_edf_vd(example31)
        assert ml_result.success == dual_result.success
        if ml_result.success:
            assert ml_result.adaptation == dual_result.adaptation
