"""Tests for SARIF 2.1.0 rendering (``--format sarif``)."""

from __future__ import annotations

import json
import os
import textwrap

from repro.lint.diagnostics import Diagnostic, LintReport, Severity, TracePoint
from repro.lint.project import index_from_sources
from repro.lint.sarif import SARIF_SCHEMA, SARIF_VERSION, render_sarif
from repro.lint.taint import TAINT_RULE_CATALOG, analyze_index

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

#: The planted acceptance fixture: an unseeded RNG draw reaching a
#: checkpoint record, two assignments deep.
PLANTED = {
    "runner/plant.py": textwrap.dedent(
        """
        import random
        from repro.io import append_jsonl

        def record_shard(path, shard_id):
            jitter = random.random()
            record = {"shard": shard_id, "jitter": jitter}
            append_jsonl(path, record)
        """
    )
}


def planted_report() -> LintReport:
    return LintReport(
        analyze_index(index_from_sources(PLANTED, package="proj"))
    )


class TestSarifStructure:
    def test_envelope(self):
        doc = json.loads(render_sarif(planted_report(), subject="fixture"))
        assert doc["version"] == SARIF_VERSION
        assert doc["$schema"] == SARIF_SCHEMA
        assert len(doc["runs"]) == 1

    def test_rules_and_results_are_linked(self):
        doc = json.loads(
            render_sarif(
                planted_report(), subject="fixture",
                rule_catalog=TAINT_RULE_CATALOG,
            )
        )
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert [rule["id"] for rule in rules] == ["FTMCD01"]
        assert rules[0]["defaultConfiguration"]["level"] == "error"
        (result,) = run["results"]
        assert result["ruleId"] == "FTMCD01"
        assert rules[result["ruleIndex"]]["id"] == "FTMCD01"

    def test_result_location_points_at_sink(self):
        doc = json.loads(render_sarif(planted_report(), subject="fixture"))
        (result,) = doc["runs"][0]["results"]
        physical = result["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "runner/plant.py"
        assert physical["region"]["startLine"] == 8

    def test_code_flow_runs_source_to_sink(self):
        doc = json.loads(render_sarif(planted_report(), subject="fixture"))
        (result,) = doc["runs"][0]["results"]
        steps = result["codeFlows"][0]["threadFlows"][0]["locations"]
        notes = [step["location"]["message"]["text"] for step in steps]
        assert "random.random()" in notes[0]
        assert notes[-1].startswith("sink")
        lines = [
            step["location"]["physicalLocation"]["region"]["startLine"]
            for step in steps
        ]
        assert lines[0] == 6 and lines[-1] == 8

    def test_non_file_locations_fold_into_message(self):
        report = LintReport(
            [
                Diagnostic(
                    "FTMC001", Severity.ERROR, "tau_1",
                    "tau_1: deadline exceeds period",
                )
            ]
        )
        doc = json.loads(render_sarif(report))
        (result,) = doc["runs"][0]["results"]
        assert "locations" not in result
        assert result["message"]["text"].startswith("tau_1:")

    def test_severity_level_mapping(self):
        report = LintReport(
            [
                Diagnostic("A01", Severity.ERROR, "f.py:1", "e"),
                Diagnostic("B01", Severity.WARNING, "f.py:2", "w"),
                Diagnostic("C01", Severity.INFO, "f.py:3", "i"),
            ]
        )
        doc = json.loads(render_sarif(report))
        levels = [r["level"] for r in doc["runs"][0]["results"]]
        assert levels == ["error", "warning", "note"]

    def test_trace_points_without_file_anchor_keep_note(self):
        report = LintReport(
            [
                Diagnostic(
                    "FTMCD01", Severity.ERROR, "f.py:3", "m",
                    trace=(TracePoint("somewhere odd", "a note"),),
                )
            ]
        )
        doc = json.loads(render_sarif(report))
        (result,) = doc["runs"][0]["results"]
        (step,) = result["codeFlows"][0]["threadFlows"][0]["locations"]
        assert step["location"]["message"]["text"] == "a note"
        assert "physicalLocation" not in step["location"]


class TestSarifGolden:
    def test_planted_fixture_output_is_byte_stable(self):
        rendered = render_sarif(
            planted_report(), subject="planted-fixture",
            rule_catalog=TAINT_RULE_CATALOG,
        )
        golden = os.path.join(DATA_DIR, "lint_sarif.expected.json")
        with open(golden) as handle:
            assert rendered + "\n" == handle.read()

    def test_output_is_deterministic_across_runs(self):
        first = render_sarif(planted_report(), subject="s")
        second = render_sarif(planted_report(), subject="s")
        assert first == second
