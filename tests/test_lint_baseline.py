"""Tests for baseline suppression (``lint-baseline.json``)."""

from __future__ import annotations

import json

import pytest

from repro.lint.baseline import (
    BASELINABLE_PREFIXES,
    apply_baseline,
    default_baseline_path,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.diagnostics import Diagnostic, LintReport, Severity


def dataflow_finding(line: int = 8, message: str | None = None) -> Diagnostic:
    return Diagnostic(
        "FTMCD01",
        Severity.ERROR,
        f"runner/plant.py:{line}",
        message or "unseeded RNG value reaches append_jsonl(...)",
    )


class TestFingerprint:
    def test_line_shifts_do_not_change_the_fingerprint(self):
        assert fingerprint(dataflow_finding(8)) == fingerprint(
            dataflow_finding(123)
        )

    def test_code_path_and_message_all_matter(self):
        base = dataflow_finding()
        other_file = Diagnostic(
            base.code, base.severity, "runner/other.py:8", base.message
        )
        other_message = dataflow_finding(message="different flow")
        other_code = Diagnostic(
            "FTMCD02", base.severity, base.location, base.message
        )
        prints = {
            fingerprint(base), fingerprint(other_file),
            fingerprint(other_message), fingerprint(other_code),
        }
        assert len(prints) == 4


class TestRoundTrip:
    def test_add_then_suppress(self, tmp_path):
        report = LintReport([dataflow_finding()])
        path = str(tmp_path / "lint-baseline.json")
        assert write_baseline(path, report) == 1
        result = apply_baseline(report, load_baseline(path))
        assert len(result.report) == 0
        assert result.suppressed == 1
        assert result.stale == ()

    def test_fixed_finding_becomes_stale_and_expires(self, tmp_path):
        finding = dataflow_finding()
        path = str(tmp_path / "lint-baseline.json")
        write_baseline(path, LintReport([finding]))
        # The finding is fixed: the entry goes stale ...
        result = apply_baseline(LintReport(()), load_baseline(path))
        assert result.stale == (fingerprint(finding),)
        # ... and --update-baseline (write from current findings) expires it.
        assert write_baseline(path, LintReport(())) == 0
        assert load_baseline(path).entries == {}

    def test_new_finding_is_not_suppressed(self, tmp_path):
        path = str(tmp_path / "lint-baseline.json")
        write_baseline(path, LintReport([dataflow_finding()]))
        fresh = dataflow_finding(message="a brand new flow")
        result = apply_baseline(
            LintReport([dataflow_finding(), fresh]), load_baseline(path)
        )
        assert list(result.report) == [fresh]
        assert result.suppressed == 1

    def test_written_file_is_deterministic(self, tmp_path):
        report = LintReport(
            [dataflow_finding(), dataflow_finding(message="second flow")]
        )
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        write_baseline(str(first), report)
        write_baseline(str(second), report)
        assert first.read_text() == second.read_text()


class TestScope:
    def test_only_dataflow_families_are_baselinable(self, tmp_path):
        assert BASELINABLE_PREFIXES == ("FTMCD", "FTMCF", "FTMCP")
        syntactic = Diagnostic(
            "FTMCC05", Severity.ERROR, "x.py:1", "non-atomic file write"
        )
        path = str(tmp_path / "lint-baseline.json")
        assert write_baseline(path, LintReport([syntactic])) == 0
        # Even a hand-forged entry must not suppress an FTMCC finding.
        forged = {
            "version": 1,
            "entries": [
                {
                    "fingerprint": fingerprint(syntactic),
                    "code": syntactic.code,
                    "path": "x.py",
                    "message": syntactic.message,
                }
            ],
        }
        (tmp_path / "forged.json").write_text(json.dumps(forged))
        result = apply_baseline(
            LintReport([syntactic]),
            load_baseline(str(tmp_path / "forged.json")),
        )
        assert list(result.report) == [syntactic]
        assert result.suppressed == 0


class TestLoadErrors:
    def test_wrong_version_rejected(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(str(bad))

    def test_malformed_entry_rejected(self, tmp_path):
        bad = tmp_path / "b.json"
        bad.write_text(json.dumps({"version": 1, "entries": [{"x": 1}]}))
        with pytest.raises(ValueError, match="malformed"):
            load_baseline(str(bad))


class TestDiscovery:
    def test_walks_up_from_the_scanned_tree(self, tmp_path):
        (tmp_path / "lint-baseline.json").write_text(
            json.dumps({"version": 1, "entries": []})
        )
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        found = default_baseline_path(str(nested))
        assert found == str(tmp_path / "lint-baseline.json")

    def test_returns_none_when_absent(self, tmp_path):
        nested = tmp_path / "deep" / "er" / "tree"
        nested.mkdir(parents=True)
        assert default_baseline_path(str(nested)) is None

    def test_repo_baseline_matches_current_findings(self):
        # The committed baseline must stay exactly in sync with the
        # tree: selfcheck with it applied is clean (see
        # test_lint_codecheck), and no entry is stale.
        import os

        from repro.lint.codecheck import default_root, selfcheck

        repo_baseline = default_baseline_path(default_root())
        if repo_baseline is None:
            # Installed without the repo checkout; nothing to verify.
            return
        report = selfcheck(baseline_path=None)
        result = apply_baseline(report, load_baseline(repo_baseline))
        assert result.stale == (), (
            "stale baseline entries - regenerate with "
            "ftmc selfcheck --update-baseline"
        )
        assert os.path.basename(repo_baseline) == "lint-baseline.json"
