"""Tests for the cross-process shared verdict cache and its campaign wiring.

Unit level: probe/publish round trips, torn-write-as-miss, counter
semantics, fail-open attachment, fork reset.  Campaign level: a
``--jobs 4`` fig3 campaign must produce byte-identical results to the
serial run while actually sharing verdicts (hit counter > 0), and a
serial campaign must not create a segment at all.
"""

import json
import os

import pytest

from repro.core import shared_cache
from repro.core.shared_cache import SharedVerdictCache
from repro.runner import RetryPolicy, run_campaign

pytestmark = pytest.mark.skipif(
    shared_cache.shared_memory is None,
    reason="multiprocessing.shared_memory unavailable",
)

FAST_RETRY = RetryPolicy(max_retries=0, base_delay=0.0)


@pytest.fixture
def cache():
    cache = SharedVerdictCache.create(nslots=64)
    try:
        yield cache
    finally:
        cache.destroy()


@pytest.fixture
def detached(monkeypatch):
    """Isolate the module-level attachment from the surrounding process."""
    monkeypatch.delenv(shared_cache.ENV_VAR, raising=False)
    shared_cache._reset_attachment()
    yield
    shared_cache._reset_attachment()


class TestSharedVerdictCache:
    def test_round_trip_both_verdicts(self, cache):
        cache.publish(b"set-a", True)
        cache.publish(b"set-b", False)
        assert cache.probe(b"set-a") is True
        assert cache.probe(b"set-b") is False

    def test_unknown_key_misses(self, cache):
        assert cache.probe(b"never-published") is None

    def test_counters_monotone(self, cache):
        assert cache.stats() == {"slots": 64, "hits": 0, "stores": 0}
        cache.publish(b"k", True)
        cache.probe(b"k")
        cache.probe(b"k")
        cache.probe(b"other")  # miss: not counted as a hit
        assert cache.stats() == {"slots": 64, "hits": 2, "stores": 1}

    def test_torn_write_reads_as_miss(self, cache):
        cache.publish(b"torn", True)
        offset = cache._slot_offset(b"torn")
        # Corrupt one byte of the stored fingerprint — a torn/partial
        # write must never be misread as a verdict.
        cache._shm.buf[offset] = cache._shm.buf[offset] ^ 0xFF
        assert cache.probe(b"torn") is None

    def test_colliding_keys_evict_not_corrupt(self, cache):
        # With 64 slots, 200 keys guarantee collisions; whatever survives
        # must still verdict correctly for the key that owns the slot.
        for index in range(200):
            cache.publish(b"key-%d" % index, index % 2 == 0)
        for index in range(200):
            verdict = cache.probe(b"key-%d" % index)
            assert verdict in (None, index % 2 == 0)

    def test_attach_sees_creator_state(self, cache):
        cache.publish(b"shared", True)
        attachment = SharedVerdictCache.attach(cache.name)
        try:
            assert attachment.probe(b"shared") is True
            attachment.publish(b"from-attachment", False)
            assert cache.probe(b"from-attachment") is False
        finally:
            attachment.close()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory as shm_module

        foreign = shm_module.SharedMemory(create=True, size=256)
        try:
            with pytest.raises(ValueError, match="verdict cache"):
                SharedVerdictCache.attach(foreign.name)
        finally:
            foreign.close()
            foreign.unlink()


class TestModuleAttachment:
    def test_no_env_means_no_cache(self, detached):
        assert shared_cache.active_cache() is None
        assert shared_cache.probe(b"x") is None
        assert shared_cache.stats() is None
        shared_cache.publish(b"x", True)  # must not raise

    def test_bogus_name_fails_open(self, detached, monkeypatch):
        monkeypatch.setenv(shared_cache.ENV_VAR, "ftmc-no-such-segment")
        shared_cache._reset_attachment()
        assert shared_cache.active_cache() is None
        assert shared_cache.probe(b"x") is None

    def test_env_announced_cache_is_used(self, detached, monkeypatch, cache):
        monkeypatch.setenv(shared_cache.ENV_VAR, cache.name)
        shared_cache._reset_attachment()
        shared_cache.publish(b"via-module", True)
        assert shared_cache.probe(b"via-module") is True
        assert cache.stats()["stores"] == 1

    def test_fork_reset_reattaches(self, detached, monkeypatch, cache):
        from repro.obs.trace import reset_inherited_session

        monkeypatch.setenv(shared_cache.ENV_VAR, cache.name)
        shared_cache._reset_attachment()
        assert shared_cache.active_cache() is not None
        first = shared_cache.active_cache()
        reset_inherited_session()  # what a forked worker runs first
        second = shared_cache.active_cache()
        assert second is not None
        assert second is not first  # fresh attachment, same segment
        second.publish(b"after-fork", False)
        assert cache.probe(b"after-fork") is False


def _result_bytes(out_dir):
    payload = {}
    for name in sorted(os.listdir(out_dir)):
        if name.endswith(".json") and "coverage" not in name:
            with open(os.path.join(out_dir, name), "rb") as handle:
                payload[name] = handle.read()
    return payload


class TestCampaignSharing:
    # Two panels sharing one LO level: fig3 generates identical sets for
    # both (the panel is deliberately not part of the generator seed), so
    # the second panel's baseline verdicts are structural cache hits.
    OPTIONS = {
        "panels": ["a", "c"],
        "failure_probabilities": [1e-3],
        "utilizations": [0.7, 0.9],
        "sets_per_point": 6,
        "seed": 0,
    }

    def _run(self, tmp_path, subdir, jobs):
        return run_campaign(
            "fig3",
            options=dict(self.OPTIONS),
            output_dir=str(tmp_path / subdir),
            jobs=jobs,
            retry=FAST_RETRY,
            timeout=120.0,
        )

    def test_parallel_bytes_equal_serial_and_cache_hits(self, tmp_path):
        serial = self._run(tmp_path, "serial", jobs=1)
        parallel = self._run(tmp_path, "parallel", jobs=4)
        assert serial.exit_code == 0
        assert parallel.exit_code == 0
        assert serial.shared_cache is None  # serial: no segment at all
        assert parallel.shared_cache is not None
        assert parallel.shared_cache["hits"] > 0
        assert parallel.shared_cache["stores"] > 0
        assert _result_bytes(tmp_path / "serial") == _result_bytes(
            tmp_path / "parallel"
        )

    def test_segment_destroyed_after_campaign(self, tmp_path):
        report = self._run(tmp_path, "cleanup", jobs=2)
        assert report.shared_cache is not None
        assert os.environ.get(shared_cache.ENV_VAR) is None
        # The render line surfaces the counters to the operator.
        assert "shared verdict cache" in report.render()
