"""Tests for the ``ftmc bench`` performance-baseline suite."""

import json
import os

import pytest

from repro.analysis import kernels
from repro.perf import (
    QPS_FLOORS,
    SPEEDUP_FLOORS,
    render_report,
    run_benchmarks,
    write_report,
)
from repro.perf.bench import MIN_TIME_ENV, SCHEMA, _measure, _min_time_ns


@pytest.fixture(scope="module")
def quick_report():
    """One real quick run with a token measurement budget."""
    previous = os.environ.get(MIN_TIME_ENV)
    os.environ[MIN_TIME_ENV] = "1"
    try:
        return run_benchmarks(quick=True, seed=0)
    finally:
        if previous is None:
            del os.environ[MIN_TIME_ENV]
        else:
            os.environ[MIN_TIME_ENV] = previous


class TestMeasurement:
    def test_measure_shape(self):
        stats = _measure(lambda: None, budget_ns=1_000_00)
        assert stats["ops"] >= 1
        assert stats["ns_per_op"] > 0
        assert stats["total_ms"] == pytest.approx(
            stats["ns_per_op"] * stats["ops"] / 1e6
        )

    def test_min_time_env_override(self, monkeypatch):
        monkeypatch.setenv(MIN_TIME_ENV, "2.5")
        assert _min_time_ns(quick=True) == int(2.5e6)
        monkeypatch.delenv(MIN_TIME_ENV)
        assert _min_time_ns(quick=True) == int(40e6)
        assert _min_time_ns(quick=False) == int(200e6)


class TestReportShape:
    def test_schema_and_sections(self, quick_report):
        assert quick_report["schema"] == SCHEMA
        assert quick_report["quick"] is True
        for section in ("kernels", "end_to_end", "speedups", "cache", "guard"):
            assert section in quick_report

    def test_kernel_subjects_present(self, quick_report):
        assert "demand_bound_function" in quick_report["kernels"]
        assert "pdc" in quick_report["kernels"]
        assert "pdc_reference" in quick_report["kernels"]
        assert "qpa" in quick_report["kernels"]

    def test_end_to_end_pairs_present(self, quick_report):
        e2e = quick_report["end_to_end"]
        for name in ("dbf_mc_analyse", "fig3_point", "fig1_sweep"):
            assert name in e2e
        assert "dbf_mc_analyse_reference" in e2e
        assert "fig3_point_reference" in e2e

    def test_speedups_cover_the_floors(self, quick_report):
        for name in SPEEDUP_FLOORS:
            assert name in quick_report["speedups"]
            assert quick_report["speedups"][name] > 0

    def test_guard_consistent_with_speedups(self, quick_report):
        guard = quick_report["guard"]
        if not kernels.numpy_enabled():
            assert guard["passed"] is None
            return
        expected_failures = {
            name
            for name, floor in SPEEDUP_FLOORS.items()
            if quick_report["speedups"][name] < floor
        }
        expected_failures |= {
            name
            for name, floor in QPS_FLOORS.items()
            if quick_report["api"][name]["qps"] < floor
        }
        assert set(guard["failures"]) == expected_failures
        assert guard["passed"] == (not expected_failures)

    def test_json_serializable(self, quick_report):
        json.dumps(quick_report)


class TestReportOutput:
    def test_write_report_roundtrip(self, quick_report, tmp_path):
        path = write_report(quick_report, str(tmp_path))
        assert os.path.basename(path) == f"BENCH_{quick_report['date']}.json"
        with open(path) as handle:
            assert json.load(handle) == quick_report

    def test_render_report_mentions_floors(self, quick_report):
        text = render_report(quick_report)
        assert "ftmc bench" in text
        for name, floor in SPEEDUP_FLOORS.items():
            assert f"speedup {name}" in text
            assert f"floor {floor:g}x" in text
        assert "perf guard" in text


class TestPlanSection:
    def test_plan_subjects_present(self, quick_report):
        from repro.perf import PLAN_FLOORS

        section = quick_report["plan"]
        assert "plan_portfolio" in section
        assert "plan_exact" in section
        for name in PLAN_FLOORS:
            assert name in section
            assert section[name]["qps"] > 0

    def test_plan_floor_guarded(self, quick_report):
        from repro.perf import PLAN_FLOORS

        if quick_report["guard"]["passed"] is None:
            pytest.skip("NumPy kernels unavailable")
        for name, floor in PLAN_FLOORS.items():
            below = quick_report["plan"][name]["qps"] < floor
            assert (name in quick_report["guard"]["failures"]) == below

    def test_render_mentions_plan_throughput(self, quick_report):
        text = render_report(quick_report)
        assert "plan_portfolio" in text
