"""Tests for the ``ftmc bench`` performance-baseline suite."""

import json
import os

import pytest

from repro.analysis import kernels
from repro.perf import (
    QPS_FLOORS,
    SPEEDUP_FLOORS,
    render_report,
    run_benchmarks,
    write_report,
)
from repro.perf.bench import MIN_TIME_ENV, SCHEMA, _measure, _min_time_ns


@pytest.fixture(scope="module")
def quick_report():
    """One real quick run with a token measurement budget."""
    previous = os.environ.get(MIN_TIME_ENV)
    os.environ[MIN_TIME_ENV] = "1"
    try:
        return run_benchmarks(quick=True, seed=0)
    finally:
        if previous is None:
            del os.environ[MIN_TIME_ENV]
        else:
            os.environ[MIN_TIME_ENV] = previous


class TestMeasurement:
    def test_measure_shape(self):
        stats = _measure(lambda: None, budget_ns=1_000_00)
        assert stats["ops"] >= 1
        assert stats["ns_per_op"] > 0
        assert stats["total_ms"] == pytest.approx(
            stats["ns_per_op"] * stats["ops"] / 1e6
        )

    def test_min_time_env_override(self, monkeypatch):
        monkeypatch.setenv(MIN_TIME_ENV, "2.5")
        assert _min_time_ns(quick=True) == int(2.5e6)
        monkeypatch.delenv(MIN_TIME_ENV)
        assert _min_time_ns(quick=True) == int(40e6)
        assert _min_time_ns(quick=False) == int(200e6)


class TestReportShape:
    def test_schema_and_sections(self, quick_report):
        assert quick_report["schema"] == SCHEMA
        assert quick_report["quick"] is True
        for section in ("kernels", "end_to_end", "speedups", "cache", "guard"):
            assert section in quick_report

    def test_kernel_subjects_present(self, quick_report):
        assert "demand_bound_function" in quick_report["kernels"]
        assert "pdc" in quick_report["kernels"]
        assert "pdc_reference" in quick_report["kernels"]
        assert "qpa" in quick_report["kernels"]

    def test_end_to_end_pairs_present(self, quick_report):
        e2e = quick_report["end_to_end"]
        for name in ("dbf_mc_analyse", "fig3_point", "fig1_sweep"):
            assert name in e2e
        assert "dbf_mc_analyse_reference" in e2e
        assert "fig3_point_reference" in e2e

    def test_speedups_cover_the_floors(self, quick_report):
        for name in SPEEDUP_FLOORS:
            assert name in quick_report["speedups"]
            assert quick_report["speedups"][name] > 0

    def test_guard_consistent_with_speedups(self, quick_report):
        guard = quick_report["guard"]
        if not kernels.numpy_enabled():
            assert guard["passed"] is None
            return
        expected_failures = {
            name
            for name, floor in SPEEDUP_FLOORS.items()
            if quick_report["speedups"][name] < floor
        }
        expected_failures |= {
            name
            for name, floor in QPS_FLOORS.items()
            if quick_report["api"][name]["qps"] < floor
        }
        assert set(guard["failures"]) == expected_failures
        assert guard["passed"] == (not expected_failures)

    def test_json_serializable(self, quick_report):
        json.dumps(quick_report)


class TestReportOutput:
    def test_write_report_roundtrip(self, quick_report, tmp_path):
        path = write_report(quick_report, str(tmp_path))
        assert os.path.basename(path) == f"BENCH_{quick_report['date']}.json"
        with open(path) as handle:
            assert json.load(handle) == quick_report

    def test_render_report_mentions_floors(self, quick_report):
        text = render_report(quick_report)
        assert "ftmc bench" in text
        for name, floor in SPEEDUP_FLOORS.items():
            assert f"speedup {name}" in text
            assert f"floor {floor:g}x" in text
        assert "perf guard" in text


class TestPlanSection:
    def test_plan_subjects_present(self, quick_report):
        from repro.perf import PLAN_FLOORS

        section = quick_report["plan"]
        assert "plan_portfolio" in section
        assert "plan_exact" in section
        for name in PLAN_FLOORS:
            assert name in section
            assert section[name]["qps"] > 0

    def test_plan_floor_guarded(self, quick_report):
        from repro.perf import PLAN_FLOORS

        if quick_report["guard"]["passed"] is None:
            pytest.skip("NumPy kernels unavailable")
        for name, floor in PLAN_FLOORS.items():
            below = quick_report["plan"][name]["qps"] < floor
            assert (name in quick_report["guard"]["failures"]) == below

    def test_render_mentions_plan_throughput(self, quick_report):
        text = render_report(quick_report)
        assert "plan_portfolio" in text


class TestSweepBatchSections:
    def test_sweep_pairs_present(self, quick_report):
        e2e = quick_report["end_to_end"]
        for name in (
            "fig3_sweep",
            "fig3_sweep_per_set",
            "profile_search_batch",
            "profile_search_per_set",
        ):
            assert name in e2e
            assert e2e[name]["ns_per_op"] > 0

    def test_sweep_speedups_floor_guarded(self, quick_report):
        assert "fig3_sweep" in SPEEDUP_FLOORS
        assert SPEEDUP_FLOORS["fig3_sweep"] >= 3.0
        assert "profile_search_batch" in SPEEDUP_FLOORS
        for name in ("fig3_sweep", "profile_search_batch"):
            assert quick_report["speedups"][name] > 0

    def test_per_set_reference_toggles_only_batch(self):
        from repro.analysis import kernels
        from repro.perf.bench import _per_set_reference

        if not kernels.numpy_enabled():
            pytest.skip("NumPy kernels disabled")
        assert kernels.batch_enabled()
        with _per_set_reference():
            assert not kernels.batch_enabled()
            assert kernels.numpy_enabled()  # per-set kernels stay on
            assert kernels.kernel_tier() == "numpy"
        assert kernels.batch_enabled()


class TestCheckReport:
    def test_real_report_is_clean(self, quick_report):
        from repro.perf import check_report

        assert check_report(quick_report) == []

    def test_rejects_non_object(self):
        from repro.perf import check_report

        assert check_report([1, 2]) == ["report is not a JSON object"]

    def test_flags_unknown_schema(self, quick_report):
        from repro.perf import check_report

        bad = dict(quick_report, schema="ftmc-bench/99")
        assert any("schema" in p for p in check_report(bad))

    def test_flags_malformed_rows_instead_of_raising(self, quick_report):
        from repro.perf import check_report

        bad = json.loads(json.dumps(quick_report))
        bad["kernels"]["pdc"] = 42                       # row not an object
        del bad["end_to_end"]["fig3_sweep"]["ns_per_op"]  # row missing field
        bad["end_to_end"]["fig1_sweep"]["ns_per_op"] = "fast"  # non-numeric
        problems = check_report(bad)
        assert any("kernels.pdc" in p for p in problems)
        assert any("end_to_end.fig3_sweep" in p for p in problems)
        assert any("end_to_end.fig1_sweep" in p for p in problems)

    def test_boolean_is_not_a_measurement(self, quick_report):
        from repro.perf import check_report

        bad = json.loads(json.dumps(quick_report))
        bad["kernels"]["qpa"]["ns_per_op"] = True
        assert any("kernels.qpa" in p for p in check_report(bad))

    def test_flags_floor_regressions(self, quick_report):
        from repro.perf import check_report

        if not quick_report["numpy"]:
            pytest.skip("floors only enforced with NumPy active")
        bad = json.loads(json.dumps(quick_report))
        bad["speedups"]["fig3_sweep"] = 0.5
        problems = check_report(bad)
        assert any("below floor" in p and "fig3_sweep" in p for p in problems)

    def test_flags_missing_speedups_section(self, quick_report):
        from repro.perf import check_report

        bad = json.loads(json.dumps(quick_report))
        del bad["speedups"]
        assert any("speedups" in p for p in check_report(bad))

    def test_scalar_report_skips_floors(self, quick_report):
        from repro.perf import check_report

        scalar = json.loads(json.dumps(quick_report))
        scalar["numpy"] = False
        scalar["speedups"] = {}  # no floors to hold without the kernels
        assert check_report(scalar) == []
