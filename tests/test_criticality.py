"""Unit tests for DO-178B levels and the dual-criticality spec (Table 1)."""

import math

import pytest

from repro.model.criticality import (
    NO_REQUIREMENT,
    CriticalityRole,
    DO178BLevel,
    DualCriticalitySpec,
    pfh_requirement,
)


class TestDO178BLevel:
    def test_ordering_follows_importance(self):
        assert DO178BLevel.A > DO178BLevel.B > DO178BLevel.C
        assert DO178BLevel.C > DO178BLevel.D > DO178BLevel.E

    @pytest.mark.parametrize(
        "level, ceiling",
        [
            (DO178BLevel.A, 1e-9),
            (DO178BLevel.B, 1e-7),
            (DO178BLevel.C, 1e-5),
        ],
    )
    def test_table1_ceilings(self, level, ceiling):
        assert level.pfh_ceiling == ceiling
        assert pfh_requirement(level) == ceiling

    @pytest.mark.parametrize("level", [DO178BLevel.D, DO178BLevel.E])
    def test_levels_d_e_have_no_requirement(self, level):
        assert level.pfh_ceiling == NO_REQUIREMENT
        assert math.isinf(level.pfh_ceiling)
        assert not level.is_safety_related

    @pytest.mark.parametrize("level", [DO178BLevel.A, DO178BLevel.B, DO178BLevel.C])
    def test_levels_a_b_c_are_safety_related(self, level):
        assert level.is_safety_related

    def test_ceilings_strictly_decrease_with_criticality(self):
        levels = sorted(DO178BLevel, reverse=True)
        ceilings = [lvl.pfh_ceiling for lvl in levels]
        for higher, lower in zip(ceilings, ceilings[1:]):
            assert higher <= lower

    @pytest.mark.parametrize("name", ["A", "b", " c ", "D", "e"])
    def test_from_name_accepts_any_case(self, name):
        level = DO178BLevel.from_name(name)
        assert level.name == name.strip().upper()

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown DO-178B level"):
            DO178BLevel.from_name("F")


class TestCriticalityRole:
    def test_hi_greater_than_lo(self):
        assert CriticalityRole.HI > CriticalityRole.LO

    def test_other_swaps(self):
        assert CriticalityRole.HI.other is CriticalityRole.LO
        assert CriticalityRole.LO.other is CriticalityRole.HI


class TestDualCriticalitySpec:
    def test_valid_spec(self):
        spec = DualCriticalitySpec(DO178BLevel.B, DO178BLevel.C)
        assert spec.level(CriticalityRole.HI) is DO178BLevel.B
        assert spec.level(CriticalityRole.LO) is DO178BLevel.C

    def test_rejects_equal_levels(self):
        with pytest.raises(ValueError, match="strictly more critical"):
            DualCriticalitySpec(DO178BLevel.C, DO178BLevel.C)

    def test_rejects_inverted_levels(self):
        with pytest.raises(ValueError, match="strictly more critical"):
            DualCriticalitySpec(DO178BLevel.D, DO178BLevel.B)

    def test_pfh_requirement_per_role(self):
        spec = DualCriticalitySpec.from_names("B", "C")
        assert spec.pfh_requirement(CriticalityRole.HI) == 1e-7
        assert spec.pfh_requirement(CriticalityRole.LO) == 1e-5

    def test_lo_is_safety_related_for_level_c(self):
        assert DualCriticalitySpec.from_names("B", "C").lo_is_safety_related

    @pytest.mark.parametrize("lo", ["D", "E"])
    def test_lo_not_safety_related_for_d_e(self, lo):
        assert not DualCriticalitySpec.from_names("B", lo).lo_is_safety_related

    def test_from_names_round_trip(self):
        spec = DualCriticalitySpec.from_names("A", "E")
        assert spec.hi_level is DO178BLevel.A
        assert spec.lo_level is DO178BLevel.E

    @pytest.mark.parametrize(
        "hi, lo", [("A", "B"), ("A", "E"), ("B", "C"), ("B", "D"), ("C", "E")]
    )
    def test_all_paper_combinations_construct(self, hi, lo):
        spec = DualCriticalitySpec.from_names(hi, lo)
        assert spec.hi_level > spec.lo_level

    def test_spec_is_hashable_value_object(self):
        a = DualCriticalitySpec.from_names("B", "C")
        b = DualCriticalitySpec.from_names("B", "C")
        assert a == b
        assert hash(a) == hash(b)
