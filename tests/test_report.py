"""Tests for the certification-style analysis report."""

import math

import pytest

from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.task import Task, TaskSet
from repro.report import analyse_system, render_report


class TestAnalyseSystem:
    def test_fms_recommends_degradation(self, fms):
        report = analyse_system(fms)
        assert report.feasible
        assert (report.n_hi, report.n_lo) == (3, 2)
        assert not report.baseline_schedulable
        assert not report.kill_result.success
        assert report.degrade_result.success
        assert "degradation" in report.recommendation

    def test_example31_recommends_killing(self, example31):
        """LO=D is not safety-related; killing certifies the system and is
        preferred over nothing — degradation also works, so it leads."""
        report = analyse_system(example31)
        assert report.feasible
        assert report.kill_result.success
        # Degradation preferred when it also succeeds.
        if report.degrade_result.success:
            assert "degradation" in report.recommendation
        else:
            assert "killing" in report.recommendation

    def test_baseline_sufficient_system(self):
        tasks = [
            Task("hi", 1000, 1000, 1, CriticalityRole.HI, 1e-5),
            Task("lo", 1000, 1000, 1, CriticalityRole.LO, 1e-5),
        ]
        ts = TaskSet(tasks, DualCriticalitySpec.from_names("B", "D"))
        report = analyse_system(ts)
        assert report.baseline_schedulable
        assert "no runtime adaptation" in report.recommendation

    def test_unsafe_system(self):
        """Failure probability so high no profile reaches level A."""
        tasks = [
            Task("hi", 10, 10, 5, CriticalityRole.HI, 0.9),
            Task("lo", 10, 10, 1, CriticalityRole.LO, 0.9),
        ]
        ts = TaskSet(tasks, DualCriticalitySpec.from_names("A", "E"))
        report = analyse_system(ts)
        assert not report.feasible
        assert report.n_hi is None
        assert math.isnan(report.pfh_hi)
        assert "infeasible" in report.recommendation

    def test_totally_overloaded_system(self):
        tasks = [
            Task("hi", 100, 100, 60, CriticalityRole.HI, 1e-9),
            Task("lo", 100, 100, 60, CriticalityRole.LO, 1e-9),
        ]
        ts = TaskSet(tasks, DualCriticalitySpec.from_names("B", "D"))
        report = analyse_system(ts)
        assert not report.feasible
        assert "infeasible" in report.recommendation

    def test_requires_spec(self, example31):
        unbound = TaskSet(example31.tasks, spec=None)
        with pytest.raises(ValueError, match="spec"):
            analyse_system(unbound)

    def test_custom_parameters_recorded(self, fms):
        report = analyse_system(fms, operation_hours=5.0, degradation_factor=8.0)
        assert report.operation_hours == 5.0
        assert report.degradation_factor == 8.0
        assert report.degrade_result.degradation_factor == 8.0


class TestRenderReport:
    def test_contains_all_sections(self, fms):
        text = render_report(analyse_system(fms))
        assert "FAULT-TOLERANT MIXED-CRITICALITY ANALYSIS" in text
        assert "safety (Lemma 3.1" in text
        assert "schedulability" in text
        assert "verdict" in text
        assert "CERTIFIABLE" in text

    def test_infeasible_rendering(self):
        tasks = [
            Task("hi", 10, 10, 5, CriticalityRole.HI, 0.9),
            Task("lo", 10, 10, 1, CriticalityRole.LO, 0.9),
        ]
        ts = TaskSet(tasks, DualCriticalitySpec.from_names("A", "E"))
        text = render_report(analyse_system(ts))
        assert "INFEASIBLE" in text
        assert "NO re-execution profile" in text

    def test_mentions_every_task(self, fms):
        text = render_report(analyse_system(fms))
        for task in fms:
            assert task.name in text


class TestMultilevelReport:
    @pytest.fixture(scope="class")
    def avionics(self):
        from repro.model.criticality import DO178BLevel
        from repro.multilevel import MLTask, MLTaskSet

        A, B, C, D = (DO178BLevel.A, DO178BLevel.B, DO178BLevel.C,
                      DO178BLevel.D)
        return MLTaskSet(
            [
                MLTask("flight-ctl", 50, 50, 2, A, 1e-6),
                MLTask("autopilot", 100, 100, 5, B, 1e-5),
                MLTask("nav", 200, 200, 10, B, 1e-5),
                MLTask("flightplan", 500, 500, 60, C, 1e-5),
                MLTask("display", 250, 250, 25, C, 1e-5),
                MLTask("maint-log", 1000, 1000, 250, D, 1e-5),
            ],
            name="avionics",
        )

    def test_analyse_returns_both_mechanisms(self, avionics):
        from repro.report import analyse_multilevel_system

        kill, degrade = analyse_multilevel_system(avionics)
        assert kill.mechanism == "kill"
        assert degrade.mechanism == "degrade"
        assert kill.success and degrade.success

    def test_render_contains_per_level_lines(self, avionics):
        from repro.report import (
            analyse_multilevel_system,
            render_multilevel_report,
        )

        kill, degrade = analyse_multilevel_system(avionics)
        text = render_multilevel_report(avionics, kill, degrade)
        assert "MULTI-LEVEL" in text
        assert "level A: n = 3" in text
        assert "boundary C" in text  # killing's choice
        assert "boundary B" in text  # degradation's choice
        assert "CERTIFIABLE" in text

    def test_render_infeasible(self):
        from repro.model.criticality import DO178BLevel
        from repro.multilevel import MLTask, MLTaskSet
        from repro.report import (
            analyse_multilevel_system,
            render_multilevel_report,
        )

        hopeless = MLTaskSet(
            [
                MLTask("a", 100, 100, 60, DO178BLevel.A, 1e-9),
                MLTask("c", 100, 100, 60, DO178BLevel.C, 1e-9),
            ]
        )
        kill, degrade = analyse_multilevel_system(hopeless)
        text = render_multilevel_report(hopeless, kill, degrade)
        assert "INFEASIBLE" in text
