"""Tests for the dbf-based dual-criticality EDF analysis (extension)."""

import time

import pytest

from repro.analysis.dbf_mc import (
    _hi_mode_horizon,
    _hi_mode_test,
    dbf_mc_analyse,
    dbf_mc_schedulable,
)
from repro.analysis.edf_vd import edf_vd_schedulable
from repro.core.conversion import convert_uniform
from repro.model.criticality import CriticalityRole
from repro.model.mc_task import MCTask, MCTaskSet


class TestDbfMC:
    def test_table3_schedulable(self, example31):
        mc = convert_uniform(example31, 3, 1, 2)
        result = dbf_mc_analyse(mc)
        assert result.schedulable
        assert result.x is not None and 0 < result.x <= 1

    def test_no_killing_help_unschedulable(self, example31):
        mc = convert_uniform(example31, 3, 1, 3)
        assert not dbf_mc_schedulable(mc)

    def test_trivial_lo_only_set(self):
        mc = MCTaskSet(
            [MCTask("lo", 100, 100, 10, 10, CriticalityRole.LO)]
        )
        result = dbf_mc_analyse(mc)
        assert result.schedulable

    def test_trivial_hi_only_set(self):
        mc = MCTaskSet(
            [MCTask("hi", 100, 100, 10, 30, CriticalityRole.HI)]
        )
        assert dbf_mc_schedulable(mc)

    def test_hi_overload_rejected(self):
        mc = MCTaskSet(
            [MCTask("hi", 100, 100, 10, 110, CriticalityRole.HI)]
        )
        assert not dbf_mc_schedulable(mc)

    def test_lo_mode_overload_rejected(self):
        mc = MCTaskSet(
            [
                MCTask("hi", 100, 100, 60, 60, CriticalityRole.HI),
                MCTask("lo", 100, 100, 60, 60, CriticalityRole.LO),
            ]
        )
        assert not dbf_mc_schedulable(mc)

    def test_monotone_in_killing_profile(self, example31):
        results = [
            dbf_mc_schedulable(convert_uniform(example31, 3, 1, n))
            for n in (1, 2, 3)
        ]
        for earlier, later in zip(results, results[1:]):
            assert earlier or not later

    @pytest.mark.parametrize("seed", range(6))
    def test_incomparable_but_consistent_with_edf_vd(self, seed):
        """eq. (10) and the dbf test are incomparable sufficient tests:
        the dbf LO-mode check is exact (beats eq. 10's density argument)
        while its HI-mode bound forgoes the carry-over credit (loses to
        it).  Only sanity invariants are asserted: determinism, and that
        lightly-loaded sets pass both."""
        from repro.gen.taskset import generate_taskset
        from repro.model.criticality import DualCriticalitySpec

        ts = generate_taskset(
            0.4, DualCriticalitySpec.from_names("B", "D"), seed
        )
        mc = convert_uniform(ts, 2, 1, 1)
        assert dbf_mc_schedulable(mc) == dbf_mc_schedulable(mc)
        if edf_vd_schedulable(mc) and mc.u_hi_hi <= 0.5:
            assert dbf_mc_schedulable(mc)

    def test_x_steps_validation(self, example31):
        mc = convert_uniform(example31, 3, 1, 2)
        with pytest.raises(ValueError, match="grid"):
            dbf_mc_analyse(mc, x_steps=0)

    def test_intractable_hi_horizon_bails_out(self):
        """HI utilization a hair below 1 used to enumerate millions of
        check instants; the ``_MAX_TEST_POINTS`` guard must reject the
        factor conservatively instead of stalling the sweep."""
        mc = MCTaskSet(
            [
                MCTask("hi", 1.0, 1.0, 1e-6, 1.0 - 1e-7, CriticalityRole.HI),
                MCTask("lo", 100.0, 100.0, 1e-6, 1e-6, CriticalityRole.LO),
            ]
        )
        # The horizon itself is declared intractable...
        assert _hi_mode_horizon(mc, 0.5) is None
        # ...so the per-factor test rejects without enumerating.
        assert not _hi_mode_test(mc, 0.5)
        # ...and the whole scan terminates promptly (it used to take
        # minutes at ~5e6 instants per factor times 50 factors).
        start = time.perf_counter()
        result = dbf_mc_analyse(mc)
        assert time.perf_counter() - start < 5.0
        assert not result.schedulable

    def test_finds_set_eq10_rejects(self):
        """A diverse-period set where the demand test beats eq. (10)."""
        mc = MCTaskSet(
            [
                MCTask("hi", 1000, 1000, 100, 450, CriticalityRole.HI),
                MCTask("lo", 10, 10, 5, 5, CriticalityRole.LO),
            ]
        )
        # eq. (10): U_HI^LO=0.1, U_HI^HI=0.45, U_LO^LO=0.5
        # -> HI mode: 0.45 + (0.1/0.5)*0.5 = 0.55 <= 1: both accept here.
        assert edf_vd_schedulable(mc)
        assert dbf_mc_schedulable(mc)
