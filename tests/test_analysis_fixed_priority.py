"""Tests for fixed-priority RTA, DM assignment and Audsley's OPA."""

import pytest

from repro.analysis.edf import Workload
from repro.analysis.fixed_priority import (
    audsley_assignment,
    deadline_monotonic_order,
    dm_schedulable,
    response_time,
    rta_schedulable,
)


class TestResponseTime:
    def test_highest_priority_task(self):
        w = Workload(100.0, 100.0, 10.0)
        assert response_time(w, []) == 10.0

    def test_textbook_example(self):
        """Classic RTA: C=(3,3,5), T=D=(7,12,20)."""
        t1 = Workload(7, 7, 3)
        t2 = Workload(12, 12, 3)
        t3 = Workload(20, 20, 5)
        assert response_time(t1, []) == 3.0
        assert response_time(t2, [t1]) == 6.0
        # R3: 5 + ceil(R/7)*3 + ceil(R/12)*3 -> converges to 20
        assert response_time(t3, [t1, t2]) == 20.0

    def test_unschedulable_returns_none(self):
        low = Workload(10, 10, 6)
        high = Workload(10, 10, 5)
        assert response_time(low, [high]) is None

    def test_interference_at_period_boundary(self):
        """A release exactly at R must be excluded (ceil semantics)."""
        high = Workload(10, 10, 2)
        low = Workload(20, 20, 8)
        # R = 8 + ceil(R/10)*2: R=10 -> 8+2=10 fixpoint.
        assert response_time(low, [high]) == 10.0

    def test_custom_limit(self):
        low = Workload(10, 10, 6)
        high = Workload(10, 10, 5)
        # Diverges past D = 10 but converges to 16 under a looser limit.
        assert response_time(low, [high]) is None
        assert response_time(low, [high], limit=100.0) == 16.0


class TestRtaSchedulable:
    def test_textbook_set_schedulable(self):
        workload = [Workload(7, 7, 3), Workload(12, 12, 3), Workload(20, 20, 5)]
        assert rta_schedulable(workload)

    def test_overloaded_set(self):
        workload = [Workload(10, 10, 6), Workload(10, 10, 5)]
        assert not rta_schedulable(workload)

    def test_rejects_arbitrary_deadlines(self):
        with pytest.raises(ValueError, match="constrained"):
            rta_schedulable([Workload(10, 15, 2)])

    def test_priority_order_matters(self):
        short = Workload(10, 5, 3)
        long = Workload(100, 100, 6)
        assert rta_schedulable([short, long])
        assert not rta_schedulable([long, short])


class TestDeadlineMonotonic:
    def test_order_by_deadline(self):
        a = Workload(100, 50, 1)
        b = Workload(100, 20, 1)
        c = Workload(100, 80, 1)
        assert deadline_monotonic_order([a, b, c]) == [b, a, c]

    def test_dm_schedulable_fixes_bad_input_order(self):
        short = Workload(10, 5, 3)
        long = Workload(100, 100, 6)
        assert dm_schedulable([long, short])

    def test_dm_optimality_example(self):
        """DM schedules constrained-deadline sets when some FP order does."""
        workload = [Workload(20, 6, 3), Workload(10, 10, 4)]
        assert dm_schedulable(workload)


class TestAudsley:
    @staticmethod
    def _feasible(candidate, others):
        r = response_time(candidate, list(others))
        return r is not None

    def test_finds_assignment_when_dm_works(self):
        workload = [Workload(7, 7, 3), Workload(12, 12, 3), Workload(20, 20, 5)]
        assignment = audsley_assignment(workload, self._feasible)
        assert assignment is not None
        assert rta_schedulable(assignment)

    def test_returns_none_when_infeasible(self):
        workload = [Workload(10, 10, 6), Workload(10, 10, 6)]
        assert audsley_assignment(workload, self._feasible) is None

    def test_finds_non_dm_assignment(self):
        """OPA succeeds on a set where the test is not deadline-driven.

        Feasibility here is response time <= period (not deadline), so an
        assignment can exist that DM-by-deadline would not discover.
        """

        def feasible(candidate, others):
            r = response_time(candidate, list(others), limit=candidate.period)
            return r is not None

        workload = [Workload(20, 5, 9), Workload(10, 10, 5)]
        assignment = audsley_assignment(workload, feasible)
        assert assignment is not None
        # Only the 9-unit task tolerates the lowest priority (R = 19 <= 20);
        # the 5-unit task cannot (R = 14 > 10).  OPA must find that order,
        # highest priority first.
        assert assignment[-1].wcet == 9
        assert assignment[0].wcet == 5

    def test_single_item(self):
        workload = [Workload(10, 10, 5)]
        assert audsley_assignment(workload, self._feasible) == workload

    def test_empty(self):
        assert audsley_assignment([], self._feasible) == []
