"""The multicore sweep experiment and its campaign wiring."""

from __future__ import annotations

import json

from repro.experiments.multicore_sweep import (
    MULTICORE_COLUMNS,
    multicore_point,
    render_multicore,
    run_multicore_sweep,
)
from repro.runner import build_options, run_campaign


def fast_options():
    options = build_options("multicore", sets=4)
    options["cores"] = [1, 2]
    return options


FILES = ("multicore.json", "multicore.csv")


class TestMulticorePoint:
    def test_deterministic_across_calls(self):
        first = multicore_point(2, 1, 0.7, 4, "edf-vd", 2000, 0)
        second = multicore_point(2, 1, 0.7, 4, "edf-vd", 2000, 0)
        assert first == second

    def test_planned_dominates_heuristic(self):
        for m in (1, 2, 3):
            row = multicore_point(m, m - 1, 0.8, 6, "edf-vd", 2000, 0)
            _, heuristic, planned, rescues, _, sets = row
            assert planned >= heuristic
            assert rescues == round((planned - heuristic) * sets)

    def test_row_shape(self):
        row = multicore_point(1, 0, 0.5, 3, "edf-vd", 1000, 1)
        assert len(row) == len(MULTICORE_COLUMNS)
        assert row[0] == 1
        assert row[5] == 3


class TestMulticoreSweep:
    def test_sweep_and_render(self):
        result = run_multicore_sweep(
            cores=(1, 2), sets_per_point=3, max_nodes=1000
        )
        assert result.name == "multicore"
        assert list(result.column("m")) == [1, 2]
        chart = render_multicore(result)
        assert "acceptance" in chart


class TestMulticoreCampaign:
    def _run(self, tmp_path, subdir, **kwargs):
        return run_campaign(
            "multicore",
            options=fast_options(),
            output_dir=str(tmp_path / subdir),
            timeout=120.0,
            **kwargs,
        )

    def test_campaign_matches_in_process_sweep(self, tmp_path):
        report = self._run(tmp_path, "out")
        assert report.exit_code == 0
        written = json.loads((tmp_path / "out" / "multicore.json").read_text())
        direct = run_multicore_sweep(cores=(1, 2), sets_per_point=4)
        assert written == json.loads(json.dumps(direct.to_dict()))

    def test_jobs_byte_identical_to_serial(self, tmp_path):
        self._run(tmp_path, "serial")
        self._run(tmp_path, "pool", jobs=2)
        for name in FILES:
            assert (tmp_path / "serial" / name).read_bytes() == (
                tmp_path / "pool" / name
            ).read_bytes()

    def test_resume_byte_identical(self, tmp_path):
        self._run(tmp_path, "out")
        originals = {
            name: (tmp_path / "out" / name).read_bytes() for name in FILES
        }
        report = self._run(tmp_path, "out", resume=True)
        assert report.exit_code == 0
        for name, original in originals.items():
            assert (tmp_path / "out" / name).read_bytes() == original
