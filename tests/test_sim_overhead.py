"""Tests for the context-switch overhead model."""

import pytest

from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.faults import FaultToleranceConfig, ReexecutionProfile
from repro.model.task import Task, TaskSet
from repro.sim.engine import Simulator
from repro.sim.policies import EDFPolicy

HI = CriticalityRole.HI
LO = CriticalityRole.LO


def _system():
    tasks = [Task("hi", 20, 20, 5, HI), Task("lo", 100, 100, 40, LO)]
    return TaskSet(tasks, DualCriticalitySpec.from_names("B", "D"))


def _config(ts):
    return FaultToleranceConfig(reexecution=ReexecutionProfile.uniform(ts, 1, 1))


class TestOverheadModel:
    def test_zero_cost_is_default(self):
        ts = _system()
        metrics = Simulator(ts, EDFPolicy(), _config(ts)).run(100.0)
        assert metrics.overhead_time == 0.0

    def test_negative_cost_rejected(self):
        ts = _system()
        with pytest.raises(ValueError, match="context switch"):
            Simulator(ts, EDFPolicy(), _config(ts), context_switch_cost=-1.0)

    def test_overhead_counted_per_dispatch(self):
        """100 ms window: dispatches at 0 (hi), 5 (lo), 20/25, 40/45,
        55 done... each job-to-job switch pays one unit."""
        ts = _system()
        metrics = Simulator(
            ts, EDFPolicy(), _config(ts), context_switch_cost=1.0
        ).run(100.0)
        assert metrics.overhead_time > 0.0
        assert metrics.overhead_time == pytest.approx(9.0)

    def test_busy_time_includes_overhead(self):
        ts = _system()
        without = Simulator(ts, EDFPolicy(), _config(ts)).run(100.0)
        with_cost = Simulator(
            ts, EDFPolicy(), _config(ts), context_switch_cost=1.0
        ).run(100.0)
        assert with_cost.busy_time == pytest.approx(
            without.busy_time + with_cost.overhead_time
        )

    def test_single_task_pays_once_per_job(self):
        ts = TaskSet(
            [Task("a", 100, 100, 10, HI)],
            DualCriticalitySpec.from_names("B", "D"),
        )
        metrics = Simulator(
            ts, EDFPolicy(), _config(ts), context_switch_cost=2.0
        ).run(1000.0)
        # 10 jobs, each a fresh dispatch: 20 units of overhead.
        assert metrics.overhead_time == pytest.approx(20.0)
        assert metrics.deadline_misses() == 0

    def test_large_cost_induces_misses(self):
        """The analytical model ignores overhead; a large enough cost
        breaks a nominally schedulable system — the ablation's point."""
        ts = _system()
        clean = Simulator(ts, EDFPolicy(), _config(ts)).run(1000.0)
        assert clean.deadline_misses() == 0
        heavy = Simulator(
            ts, EDFPolicy(), _config(ts), context_switch_cost=8.0
        ).run(1000.0)
        assert heavy.deadline_misses() > 0

    def test_overhead_monotone_in_cost(self):
        ts = _system()
        values = [
            Simulator(
                ts, EDFPolicy(), _config(ts), context_switch_cost=c
            ).run(500.0).overhead_time
            for c in (0.0, 0.5, 1.0, 2.0)
        ]
        assert values == sorted(values)

    def test_overhead_preempted_by_release(self):
        """A release landing inside the overhead window preempts it; the
        engine must not lose time or deadlock."""
        tasks = [Task("hi", 7, 7, 2, HI), Task("lo", 50, 50, 20, LO)]
        ts = TaskSet(tasks, DualCriticalitySpec.from_names("B", "D"))
        metrics = Simulator(
            ts, EDFPolicy(), _config(ts), context_switch_cost=3.0
        ).run(200.0)
        assert metrics.busy_time <= 200.0 + 1e-9
        conservation = metrics.counters("hi")
        assert conservation.released == (
            conservation.success
            + conservation.deadline_miss
            + conservation.unfinished
        )
