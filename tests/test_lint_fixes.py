"""Tests for the provable autofixes (``ftmc selfcheck --fix``).

The two documented guarantees are property-tested with hypothesis:

- **idempotence** — applying the rewriter to its own output changes
  nothing (second pass finds no work);
- **behaviour preservation** — a ``sorted()``-wrapped iteration visits
  exactly the same elements (order excepted, which was unspecified to
  begin with), and a seed-threaded constructor becomes the deterministic
  ``Random(seed)`` stream.
"""

from __future__ import annotations

import random
import textwrap
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint.fixes import fix_file, rewrite_source


def rewrite(source: str):
    return rewrite_source(textwrap.dedent(source))


def run(source: str, name: str, *args):
    namespace: dict = {}
    exec(source, namespace)  # noqa: S102 - test fixture execution
    return namespace[name](*args)


SET_LOOP = """
def visit(items):
    seen = set(items)
    out = []
    for item in seen:
        out.append(item)
    return out
"""

SET_MATERIALISE = """
def snapshot(items):
    seen = set(items)
    return list(seen)
"""

SEED_THREAD = """
import random

def draw(n, seed):
    rng = random.Random()
    return [rng.random() for _ in range(n)]
"""


class TestRewrites:
    def test_set_loop_is_wrapped(self):
        fixed, fixes = rewrite(SET_LOOP)
        assert "for item in sorted(seen):" in fixed
        assert [f.description for f in fixes] == [
            "wrapped loop iterable in sorted(...)"
        ]

    def test_materialised_set_is_wrapped(self):
        fixed, fixes = rewrite(SET_MATERIALISE)
        assert "list(sorted(seen))" in fixed
        assert len(fixes) == 1

    def test_seed_is_threaded(self):
        fixed, fixes = rewrite(SEED_THREAD)
        assert "random.Random(seed)" in fixed
        assert len(fixes) == 1

    def test_comprehension_iterable_is_wrapped(self):
        fixed, fixes = rewrite(
            """
            def items(raw):
                seen = set(raw)
                return [x + 1 for x in seen]
            """
        )
        assert "for x in sorted(seen)" in fixed

    def test_unprovable_sites_stay_untouched(self):
        for source in (
            # reassigned: no longer provably a set at the loop
            """
            def visit(items, flag):
                seen = set(items)
                if flag:
                    seen = list(items)
                for item in seen:
                    pass
            """,
            # parameter of unknown type
            """
            def visit(seen):
                for item in seen:
                    pass
            """,
            # no seed parameter in scope
            """
            import random

            def draw(n):
                rng = random.Random()
                return rng.random()
            """,
            # already seeded
            """
            import random

            def draw(n, seed):
                rng = random.Random(seed)
                return rng.random()
            """,
        ):
            fixed, fixes = rewrite(source)
            assert fixes == []
            assert fixed == textwrap.dedent(source)

    def test_nested_function_scopes_are_independent(self):
        fixed, fixes = rewrite(
            """
            def outer(items):
                seen = set(items)

                def inner(other):
                    seen = list(other)
                    for x in seen:
                        pass

                for item in seen:
                    pass
            """
        )
        # outer's loop wraps; inner's (a list) must not.
        assert "for item in sorted(seen):" in fixed
        assert "for x in seen:" in fixed
        assert len(fixes) == 1

    def test_syntax_errors_pass_through(self):
        source = "def broken(:\n"
        fixed, fixes = rewrite_source(source)
        assert fixed == source and fixes == []

    def test_fix_file_rewrites_in_place(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(textwrap.dedent(SET_LOOP))
        fixes = fix_file(str(target))
        assert len(fixes) == 1
        assert "sorted(seen)" in target.read_text()
        # Second run: nothing left to do, file untouched.
        before = target.read_text()
        assert fix_file(str(target)) == []
        assert target.read_text() == before


class TestIdempotence:
    TEMPLATES = (SET_LOOP, SET_MATERIALISE, SEED_THREAD)

    @given(st.sampled_from(TEMPLATES))
    def test_second_pass_is_a_no_op(self, template):
        once, fixes = rewrite(template)
        assert fixes, "template should need fixing"
        twice, again = rewrite_source(once)
        assert again == []
        assert twice == once

    @given(
        st.sets(st.integers(min_value=-50, max_value=50), max_size=8),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_idempotent_on_generated_sources(self, values, use_loop):
        literal = "{" + ", ".join(map(str, sorted(values))) + "}" \
            if values else "set()"
        body = (
            f"    seen = {literal}\n"
            + ("    out = [x for x in seen]\n" if use_loop
               else "    out = list(seen)\n")
            + "    return out\n"
        )
        source = "def f():\n" + body
        once, _ = rewrite_source(source)
        twice, again = rewrite_source(once)
        assert twice == once and again == []


class TestBehaviourPreservation:
    @given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_wrapped_loop_visits_the_same_elements(self, items):
        original = textwrap.dedent(SET_LOOP)
        fixed, _ = rewrite_source(original)
        assert Counter(run(original, "visit", items)) == Counter(
            run(fixed, "visit", items)
        )
        # And the fixed ordering is deterministic: sorted.
        assert run(fixed, "visit", items) == sorted(set(items))

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_wrapped_materialisation_preserves_elements(self, items):
        original = textwrap.dedent(SET_MATERIALISE)
        fixed, _ = rewrite_source(original)
        assert set(run(original, "snapshot", items)) == set(
            run(fixed, "snapshot", items)
        )

    @given(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_threaded_seed_gives_the_reference_stream(self, n, seed):
        fixed, _ = rewrite_source(textwrap.dedent(SEED_THREAD))
        first = run(fixed, "draw", n, seed)
        second = run(fixed, "draw", n, seed)
        assert first == second, "seed threading must make draws deterministic"
        reference = random.Random(seed)
        assert first == [reference.random() for _ in range(n)]
