"""Shared fixtures: the paper's reference task sets and common profiles."""

from __future__ import annotations

import pytest

from repro.experiments.tables import example31_taskset
from repro.gen.fms import canonical_fms
from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.faults import AdaptationProfile, ReexecutionProfile
from repro.model.task import Task, TaskSet


@pytest.fixture
def example31() -> TaskSet:
    """The Table 2 motivating task set (HI=B, LO=D, f=1e-5)."""
    return example31_taskset()


@pytest.fixture
def example31_lo_c() -> TaskSet:
    """Example 3.1 with safety-related LO tasks (LO=C)."""
    return example31_taskset(hi="B", lo="C")


@pytest.fixture
def fms() -> TaskSet:
    """The pinned FMS case-study instance (Table 4, seed 333)."""
    return canonical_fms()


@pytest.fixture
def two_task_set() -> TaskSet:
    """A minimal HI+LO pair used by unit tests."""
    tasks = [
        Task("hi", period=100.0, deadline=100.0, wcet=10.0,
             criticality=CriticalityRole.HI, failure_probability=1e-4),
        Task("lo", period=50.0, deadline=50.0, wcet=5.0,
             criticality=CriticalityRole.LO, failure_probability=1e-4),
    ]
    return TaskSet(tasks, DualCriticalitySpec.from_names("B", "D"), name="pair")


@pytest.fixture
def example31_profiles(example31: TaskSet) -> ReexecutionProfile:
    """The paper's profiles for Example 3.1: n_HI=3, n_LO=1."""
    return ReexecutionProfile.uniform(example31, 3, 1)


@pytest.fixture
def example31_adaptation(example31: TaskSet) -> AdaptationProfile:
    """The paper's killing profile for Example 4.1: n'_HI=2."""
    return AdaptationProfile.uniform(example31, 2)
