"""Tests for the repro.obs metrics registry.

The contract under test (docs/observability.md): recording is disabled
by default and every helper is a no-op then; enabling routes helpers
into the process-wide registry; ``REPRO_OBS`` semantics are "anything
but empty/0"; the timer observes durations only when enabled.
"""

import pytest

from repro.obs import metrics


@pytest.fixture(autouse=True)
def clean_registry():
    """Each test starts disabled with an empty registry, and leaves none."""
    metrics.disable()
    metrics.registry().reset()
    yield
    metrics.disable()
    metrics.registry().reset()


def empty_snapshot():
    return {"counters": {}, "gauges": {}, "histograms": {}}


class TestDisabledDefault:
    def test_disabled_helpers_record_nothing(self):
        assert not metrics.enabled()
        metrics.inc("a.counter")
        metrics.inc("a.counter", 5)
        metrics.gauge("a.gauge", 3.5)
        metrics.observe("a.hist", 10.0)
        assert metrics.registry().snapshot() == empty_snapshot()

    def test_disabled_timer_records_nothing(self):
        with metrics.timer("a.timer"):
            pass
        assert metrics.registry().snapshot() == empty_snapshot()

    def test_registry_is_readable_while_disabled(self):
        assert metrics.registry().counter("never.touched") == 0


class TestEnableDisable:
    def test_enable_routes_into_registry(self):
        metrics.enable()
        metrics.inc("a.counter")
        metrics.inc("a.counter", 2)
        metrics.gauge("a.gauge", 1.25)
        metrics.observe("a.hist", 4.0)
        snap = metrics.registry().snapshot()
        assert snap["counters"] == {"a.counter": 3}
        assert snap["gauges"] == {"a.gauge": 1.25}
        assert snap["histograms"]["a.hist"]["count"] == 1

    def test_disable_stops_recording(self):
        metrics.enable()
        metrics.inc("a.counter")
        metrics.disable()
        metrics.inc("a.counter")
        assert metrics.registry().counter("a.counter") == 1

    def test_gauge_keeps_latest_value(self):
        metrics.enable()
        metrics.gauge("g", 1.0)
        metrics.gauge("g", -2.0)
        assert metrics.registry().snapshot()["gauges"] == {"g": -2.0}

    def test_timer_observes_nanoseconds(self):
        metrics.enable()
        with metrics.timer("t"):
            pass
        hist = metrics.registry().snapshot()["histograms"]["t"]
        assert hist["count"] == 1
        assert hist["min"] >= 0


class TestConfigureFromEnv:
    def test_unset_and_zero_disable(self):
        assert metrics.configure_from_env({}) is False
        assert metrics.configure_from_env({metrics.OBS_ENV: ""}) is False
        assert metrics.configure_from_env({metrics.OBS_ENV: "0"}) is False

    def test_any_other_value_enables(self):
        assert metrics.configure_from_env({metrics.OBS_ENV: "1"}) is True
        assert metrics.enabled()
        assert metrics.configure_from_env({metrics.OBS_ENV: "yes"}) is True


class TestHistogram:
    def test_summary_statistics(self):
        hist = metrics.Histogram()
        for value in (4.0, -1.0, 7.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap == {
            "count": 3,
            "total": 10.0,
            "min": -1.0,
            "max": 7.0,
            "mean": 10.0 / 3,
        }

    def test_empty_snapshot_is_finite(self):
        assert metrics.Histogram().snapshot() == {
            "count": 0,
            "total": 0.0,
            "min": 0.0,
            "max": 0.0,
            "mean": 0.0,
        }


class TestSnapshotAndReset:
    def test_snapshot_is_sorted_and_json_shaped(self):
        import json

        metrics.enable()
        metrics.inc("z.last")
        metrics.inc("a.first")
        snap = metrics.registry().snapshot()
        assert list(snap["counters"]) == ["a.first", "z.last"]
        json.dumps(snap)  # must be serialisable as-is

    def test_reset_drops_everything(self):
        metrics.enable()
        metrics.inc("c")
        metrics.gauge("g", 1.0)
        metrics.observe("h", 2.0)
        metrics.registry().reset()
        assert metrics.registry().snapshot() == empty_snapshot()
