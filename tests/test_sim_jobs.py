"""Unit tests for the runtime job record."""

import pytest

from repro.model.criticality import CriticalityRole
from repro.model.task import Task
from repro.sim.jobs import Job, JobOutcome


def _job(max_attempts=3, deadline=100.0):
    task = Task("t", 100.0, deadline, 10.0, CriticalityRole.HI, 1e-3)
    return Job(
        task=task,
        release=0.0,
        absolute_deadline=deadline,
        max_attempts=max_attempts,
        execution_time=10.0,
    )


class TestJobLifecycle:
    def test_initial_state(self):
        job = _job()
        assert job.attempt == 1
        assert job.remaining == 10.0
        assert not job.done
        assert job.outcome is JobOutcome.PENDING

    def test_start_next_attempt_resets_remaining(self):
        job = _job()
        job.remaining = 0.0
        job.start_next_attempt()
        assert job.attempt == 2
        assert job.remaining == 10.0

    def test_attempts_bounded(self):
        job = _job(max_attempts=2)
        job.start_next_attempt()
        with pytest.raises(RuntimeError, match="no attempts left"):
            job.start_next_attempt()

    def test_successful_completion_in_time(self):
        job = _job()
        job.complete(50.0, success=True)
        assert job.outcome is JobOutcome.SUCCESS
        assert job.finish_time == 50.0
        assert job.done

    def test_late_success_is_a_miss(self):
        """The sanity check passing after the deadline is still a
        temporal failure (Section 2.1's failure notion)."""
        job = _job(deadline=100.0)
        job.complete(100.5, success=True)
        assert job.outcome is JobOutcome.DEADLINE_MISS

    def test_fault_exhaustion(self):
        job = _job()
        job.complete(30.0, success=False)
        assert job.outcome is JobOutcome.FAULT_EXHAUSTED

    def test_kill(self):
        job = _job()
        job.kill(12.0)
        assert job.outcome is JobOutcome.KILLED
        assert job.finish_time == 12.0

    def test_name_includes_attempt(self):
        job = _job()
        assert "#1" in job.name
        job.start_next_attempt()
        assert "#2" in job.name

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            _job(max_attempts=0)
        task = Task("t", 100.0, 100.0, 10.0, CriticalityRole.HI)
        with pytest.raises(ValueError, match="execution time"):
            Job(task, 0.0, 100.0, 1, execution_time=-1.0)
