"""Unit tests for the campaign runner building blocks.

Covers the value objects (`repro.runner.retry`, `repro.runner.shards`),
the JSONL checkpoint with its torn-write-tolerant loader, the chaos
fault planner, and the campaign definitions (sharding contracts).
The supervisor end-to-end behaviour lives in test_runner_supervisor.py;
process-level kill/resume integration in test_campaign_kill_resume.py.
"""

import json
import random

import pytest

from repro.runner.campaigns import (
    CAMPAIGNS,
    build_options,
    campaign_names,
    get_campaign,
)
from repro.runner.chaos import (
    CRASH,
    HANG,
    KILL_EXECUTOR,
    TRUNCATE,
    ChaosInjector,
)
from repro.runner.checkpoint import CampaignCheckpoint
from repro.runner.retry import RetryPolicy
from repro.runner.shards import (
    COMPLETED,
    CampaignReport,
    ShardOutcome,
    ShardSpec,
)
from repro.runner.worker import configured_delay


class TestRetryPolicy:
    def test_attempts_is_retries_plus_one(self):
        assert RetryPolicy(max_retries=0).attempts == 1
        assert RetryPolicy(max_retries=3).attempts == 4

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_delay=1.0, factor=2.0, max_delay=30.0)
        assert policy.delay(1) == 1.0
        assert policy.delay(2) == 2.0
        assert policy.delay(3) == 4.0

    def test_delay_capped_at_max(self):
        policy = RetryPolicy(base_delay=1.0, factor=10.0, max_delay=5.0)
        assert policy.delay(4) == 5.0

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(base_delay=1.0, factor=1.0, jitter=0.25,
                             max_delay=30.0)
        delays = [policy.delay(1, random.Random(7)) for _ in range(5)]
        assert len(set(delays)) == 1  # same rng state, same delay
        for _ in range(200):
            d = policy.delay(1, random.Random(random.random()))
            assert 0.75 <= d <= 1.25

    def test_no_jitter_without_rng(self):
        policy = RetryPolicy(base_delay=2.0, jitter=0.25)
        assert policy.delay(1) == 2.0

    def test_jittered_delay_never_exceeds_max(self):
        # base 28 with jitter 0.25 ranges over [21, 35] before the cap:
        # the cap must bound the *jittered* value, not just the base.
        policy = RetryPolicy(base_delay=28.0, factor=2.0, max_delay=30.0,
                             jitter=0.25)
        delays = [policy.delay(1, random.Random(i)) for i in range(200)]
        assert all(21.0 <= d <= 30.0 for d in delays)
        assert max(delays) == 30.0  # some draws did hit the cap
        # attempt 2 pre-caps at max_delay; jitter must not push past it
        assert all(
            policy.delay(2, random.Random(i)) <= 30.0 for i in range(200)
        )

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"max_retries": -1}, "max_retries"),
            ({"base_delay": -0.1}, "base_delay"),
            ({"factor": 0.5}, "factor"),
            ({"base_delay": 10.0, "max_delay": 1.0}, "max_delay"),
            ({"jitter": 1.0}, "jitter"),
            ({"jitter": -0.1}, "jitter"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RetryPolicy(**kwargs)

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().delay(0)


def _spec(shard_id="s1", index=0, seed=0):
    return ShardSpec(id=shard_id, index=index, seed=seed, params={})


class TestShardOutcome:
    def test_defaults_to_failed(self):
        outcome = ShardOutcome(spec=_spec())
        assert not outcome.completed
        assert not outcome.retried

    def test_retried_when_multiple_attempts_or_recovered(self):
        retried = ShardOutcome(spec=_spec(), status=COMPLETED, attempts=2)
        recovered = ShardOutcome(spec=_spec(), status=COMPLETED, attempts=1,
                                 recovered=True)
        clean = ShardOutcome(spec=_spec(), status=COMPLETED, attempts=1)
        assert retried.retried
        assert recovered.retried
        assert not clean.retried


class TestCampaignReport:
    @staticmethod
    def _report():
        report = CampaignReport(experiment="x", output_dir="o",
                                checkpoint_path="c")
        report.outcomes = [
            ShardOutcome(spec=_spec("ok"), status=COMPLETED, attempts=1),
            ShardOutcome(spec=_spec("flaky"), status=COMPLETED, attempts=3,
                         errors=["boom", "boom"]),
            ShardOutcome(spec=_spec("dead"), attempts=2,
                         errors=["boom", "boom"]),
        ]
        return report

    def test_exit_code_zero_when_all_complete(self):
        report = self._report()
        report.outcomes = report.outcomes[:2]
        assert report.exit_code == 0

    def test_exit_code_three_when_degraded(self):
        assert self._report().exit_code == 3

    def test_coverage_lists_retried_and_failed(self):
        coverage = self._report().coverage()
        assert coverage["shards"] == 3
        assert coverage["completed"] == 2
        assert coverage["failed"] == 1
        # every shard fault tolerance worked on, completed or not
        assert [s["id"] for s in coverage["retried_shards"]] == ["flaky", "dead"]
        assert coverage["retried_shards"][0]["attempts"] == 3
        assert [s["id"] for s in coverage["failed_shards"]] == ["dead"]
        json.dumps(coverage)  # must be serialisable as written

    def test_render_mentions_failures_and_degradation(self):
        text = self._report().render()
        assert "retried: flaky" in text
        assert "FAILED: dead" in text
        assert "DEGRADED" in text


class TestCheckpoint:
    def test_missing_file_loads_empty(self, tmp_path):
        state = CampaignCheckpoint(str(tmp_path / "none.jsonl")).load()
        assert state.manifest is None
        assert state.shards == {}
        assert state.corrupt_lines == 0

    def test_manifest_and_shards_round_trip(self, tmp_path):
        checkpoint = CampaignCheckpoint(str(tmp_path / "ck.jsonl"))
        checkpoint.create({"experiment": "x", "options": {"n": 2}})
        checkpoint.append_shard("a", 0, 7, 1, [1, 2.5, "x"])
        checkpoint.append_shard("b", 1, 7, 2, {"rows": []})
        state = checkpoint.load()
        assert state.manifest["experiment"] == "x"
        assert state.manifest["options"] == {"n": 2}
        assert state.payload("a") == [1, 2.5, "x"]
        assert state.shards["b"]["attempts"] == 2
        assert state.corrupt_lines == 0

    def test_duplicate_manifest_line_counted_corrupt(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        checkpoint = CampaignCheckpoint(str(path))
        checkpoint.create({"experiment": "x"})
        checkpoint.append_shard("a", 0, 0, 1, "kept")
        with open(path, "a") as handle:
            handle.write(
                json.dumps({"type": "manifest", "experiment": "impostor"})
                + "\n"
            )
        state = checkpoint.load()
        assert state.manifest["experiment"] == "x"  # first manifest wins
        assert state.payload("a") == "kept"
        assert state.corrupt_lines == 1

    def test_last_record_wins_for_duplicate_ids(self, tmp_path):
        checkpoint = CampaignCheckpoint(str(tmp_path / "ck.jsonl"))
        checkpoint.create({"experiment": "x"})
        checkpoint.append_shard("a", 0, 0, 1, "old")
        checkpoint.append_shard("a", 0, 0, 2, "new")
        assert checkpoint.load().payload("a") == "new"

    def test_torn_trailing_line_skipped_and_counted(self, tmp_path):
        import os

        path = tmp_path / "ck.jsonl"
        checkpoint = CampaignCheckpoint(str(path))
        checkpoint.create({"experiment": "x"})
        checkpoint.append_shard("a", 0, 0, 1, "kept")
        checkpoint.append_shard("b", 1, 0, 1, "torn")
        os.truncate(path, path.stat().st_size - 10)
        state = checkpoint.load()
        assert state.payload("a") == "kept"
        assert "b" not in state.shards
        assert state.corrupt_lines == 1

    def test_foreign_records_counted_corrupt(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        lines = [
            json.dumps({"type": "manifest", "experiment": "x"}),
            json.dumps([1, 2, 3]),            # not an object
            json.dumps({"type": "shard", "id": "a"}),  # missing payload
        ]
        from repro.io import atomic_write_text

        atomic_write_text(str(path), "\n".join(lines) + "\n")
        state = CampaignCheckpoint(str(path)).load()
        assert state.manifest is not None
        assert state.shards == {}
        assert state.corrupt_lines == 2
        assert state.unknown_records == 0

    def test_unknown_record_kinds_skipped_not_corrupt(self, tmp_path):
        """Forward compatibility: a newer ftmc's records degrade to a count."""
        path = tmp_path / "ck.jsonl"
        lines = [
            json.dumps({"type": "manifest", "experiment": "x"}),
            json.dumps({"type": "mystery"}),
            json.dumps({"type": "shard-v2", "id": "a", "blob": 1}),
            json.dumps({"type": "shard", "id": "a", "payload": "kept",
                        "index": 0, "seed": 0, "attempts": 1}),
            json.dumps({"type": 7}),  # non-string kind is corruption
        ]
        from repro.io import atomic_write_text

        atomic_write_text(str(path), "\n".join(lines) + "\n")
        state = CampaignCheckpoint(str(path)).load()
        assert state.payload("a") == "kept"
        assert state.unknown_records == 2
        assert state.corrupt_lines == 1

    def test_lease_and_heartbeat_round_trip(self, tmp_path):
        checkpoint = CampaignCheckpoint(str(tmp_path / "ck.jsonl"))
        checkpoint.create({"experiment": "x"})
        checkpoint.append_heartbeat("exec-0", 0)
        checkpoint.append_lease("a", "exec-0", 1, 0)
        checkpoint.append_lease("b", "exec-0", 1, 0)
        checkpoint.append_lease("a", "exec-1", 2, 1)  # last lease wins
        checkpoint.append_shard("b", 1, 0, 1, "done")
        checkpoint.append_heartbeat("exec-0", 1)
        state = checkpoint.load()
        assert state.corrupt_lines == 0
        assert state.unknown_records == 0
        assert state.leases["a"]["executor"] == "exec-1"
        assert state.leases["a"]["incarnation"] == 1
        assert [h["incarnation"] for h in state.heartbeats] == [0, 1]
        # "a" was leased but never checkpointed: stale. "b" completed.
        assert state.stale_leases() == ["a"]


class TestChaosInjector:
    IDS = [f"shard-{i}" for i in range(8)]

    def test_plan_is_deterministic(self):
        a = ChaosInjector(42, self.IDS).plan()
        b = ChaosInjector(42, self.IDS).plan()
        assert a == b

    def test_three_or_more_shards_cover_every_fault(self):
        for seed in range(5):
            plan = ChaosInjector(seed, self.IDS).plan()
            assert set(plan.values()) >= {CRASH, HANG, TRUNCATE}
            # exactly one truncation; the rest are worker faults
            assert list(plan.values()).count(TRUNCATE) == 1

    def test_four_or_more_shards_designate_one_executor_kill(self):
        for seed in range(5):
            injector = ChaosInjector(seed, self.IDS)
            plan = injector.plan()
            assert list(plan.values()).count(KILL_EXECUTOR) == 1
            victim = injector.executor_kill_shard()
            assert plan[victim] == KILL_EXECUTOR
            # a host-level fault, never injected into the worker itself
            assert injector.worker_action(victim, 1) is None
            assert not injector.should_truncate_after(victim)

    def test_small_plans_have_no_executor_kill(self):
        injector = ChaosInjector(7, ["a", "b", "c"])
        assert injector.executor_kill_shard() is None

    def test_faults_fire_only_on_first_attempt(self):
        injector = ChaosInjector(42, self.IDS)
        for shard_id, action in injector.plan().items():
            if action in (CRASH, HANG):
                assert injector.worker_action(shard_id, 1) == action
            assert injector.worker_action(shard_id, 2) is None

    def test_truncation_is_not_a_worker_action(self):
        injector = ChaosInjector(42, self.IDS)
        truncated = [s for s, a in injector.plan().items() if a == TRUNCATE]
        assert injector.worker_action(truncated[0], 1) is None
        assert injector.should_truncate_after(truncated[0])

    def test_extra_fault_rate_validated(self):
        with pytest.raises(ValueError, match="rate"):
            ChaosInjector(0, self.IDS, extra_fault_rate=1.5)

    def test_truncate_checkpoint_tears_last_line(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        checkpoint = CampaignCheckpoint(str(path))
        checkpoint.create({"experiment": "x"})
        checkpoint.append_shard("a", 0, 0, 1, {"rows": [1, 2, 3]})
        before = path.read_bytes()
        assert ChaosInjector.truncate_checkpoint(str(path))
        after = path.read_bytes()
        assert len(after) < len(before)
        state = checkpoint.load()
        assert "a" not in state.shards       # record torn beyond parsing
        assert state.manifest is not None    # manifest line untouched
        assert state.corrupt_lines == 1

    def test_truncate_refuses_manifest_only_file(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        checkpoint = CampaignCheckpoint(str(path))
        checkpoint.create({"experiment": "x"})
        before = path.read_bytes()
        assert not ChaosInjector.truncate_checkpoint(str(path))
        assert path.read_bytes() == before


class TestCampaignDefinitions:
    def test_registry_names(self):
        assert campaign_names() == ["fig1", "fig2", "fig3", "tables",
                                    "validation", "multicore"]

    def test_unknown_campaign_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign"):
            get_campaign("fig9")

    @pytest.mark.parametrize("name", list(CAMPAIGNS))
    def test_plans_are_deterministic_unique_and_serialisable(self, name):
        campaign = get_campaign(name)
        options = campaign.default_options()
        shards = campaign.plan(options)
        assert shards, f"{name} planned no shards"
        ids = [s.id for s in shards]
        assert len(set(ids)) == len(ids)
        assert [s.index for s in shards] == sorted(s.index for s in shards)
        # params and options must survive the JSON checkpoint round trip
        json.dumps(options)
        for shard in shards:
            json.dumps(dict(shard.params))
        replay = campaign.plan(options)
        assert [(s.id, s.index, s.seed, dict(s.params)) for s in shards] == [
            (s.id, s.index, s.seed, dict(s.params)) for s in replay
        ]

    def test_fms_plan_one_shard_per_sweep_point(self):
        campaign = get_campaign("fig1")
        shards = campaign.plan(campaign.default_options())
        assert [s.id for s in shards] == [f"nprime-{k}" for k in range(1, 5)]

    def test_fms_finalize_tolerates_missing_shards(self):
        campaign = get_campaign("fig1")
        options = campaign.default_options()
        row = [2, 0.9, True, 1e-9, -9.0, True, False]
        results = campaign.finalize({"nprime-2": row}, options)
        assert len(results) == 1
        assert results[0].name == "fig1"
        assert results[0].rows == [tuple(row)]

    def test_tables_execute_finalize_round_trip(self):
        campaign = get_campaign("tables")
        options = {"tables": ["table1"]}
        [shard] = campaign.plan(options)
        payload = campaign.execute(dict(shard.params))
        [result] = campaign.finalize({shard.id: payload}, options)
        from repro.experiments.tables import table1

        direct = table1()
        assert result.name == direct.name
        assert list(result.columns) == list(direct.columns)
        assert [list(r) for r in result.rows] == [list(r) for r in direct.rows]
        assert result.notes == direct.notes

    def test_build_options_applies_generic_knobs(self):
        options = build_options("fig3", seed=3, sets=100, panels=["a"],
                                failure_probabilities=[1e-5],
                                utilizations=[0.5, 0.7])
        assert options["seed"] == 3
        assert options["sets_per_point"] == 100
        assert options["panels"] == ["a"]
        assert options["failure_probabilities"] == [1e-5]
        assert options["utilizations"] == [0.5, 0.7]

    def test_build_options_caps_validation_sets(self):
        assert build_options("validation", sets=500)["sets_per_point"] == 50

    def test_build_options_ignores_inapplicable_knobs(self):
        options = build_options("tables", seed=3, sets=100)
        assert options == {"tables": ["table1", "table2", "table3", "table4"]}


class TestWorkerDelay:
    def test_unset_is_zero(self, monkeypatch):
        monkeypatch.delenv("FTMC_SHARD_DELAY", raising=False)
        assert configured_delay() == 0.0

    def test_parses_float(self, monkeypatch):
        monkeypatch.setenv("FTMC_SHARD_DELAY", "0.25")
        assert configured_delay() == 0.25

    def test_garbage_and_negative_are_zero(self, monkeypatch):
        monkeypatch.setenv("FTMC_SHARD_DELAY", "soon")
        assert configured_delay() == 0.0
        monkeypatch.setenv("FTMC_SHARD_DELAY", "-3")
        assert configured_delay() == 0.0
