"""End-to-end observability: traced campaigns and the traced CLI.

The acceptance property from docs/observability.md: in a traced chaos
campaign, the number of ``shard`` spans equals the number of shards in
the checkpoint manifest — every planned shard is observed exactly once,
no matter how many crashes, hangs, and retries happened inside it.
"""

import pytest

from repro.cli import main
from repro.obs import check_trace, load_trace, metrics, tracing
from repro.runner import RetryPolicy, run_campaign
from repro.runner.checkpoint import CampaignCheckpoint


@pytest.fixture(autouse=True)
def clean_obs_state():
    from repro.obs.trace import stop_tracing

    stop_tracing()
    metrics.disable()
    metrics.registry().reset()
    yield
    stop_tracing()
    metrics.disable()
    metrics.registry().reset()


class TestTracedChaosCampaign:
    def test_shard_spans_match_the_manifest(self, tmp_path):
        trace_path = str(tmp_path / "trace.jsonl")
        out_dir = tmp_path / "out"
        options = {"tables": ["table1", "table2", "table3", "table4"]}
        with tracing(trace_path):
            report = run_campaign(
                "tables",
                options=options,
                output_dir=str(out_dir),
                chaos_seed=7,
                timeout=1.0,
                retry=RetryPolicy(max_retries=2, base_delay=0.05, max_delay=0.2),
            )
        assert report.exit_code == 0

        manifest = CampaignCheckpoint(
            str(out_dir / "tables.checkpoint.jsonl")
        ).load().manifest
        assert manifest is not None

        log = load_trace(trace_path)
        # One "shard" span per planned shard, exactly — chaos retries
        # show up as nested "shard.attempt" spans, never extra shards.
        assert len(log.span_starts("shard")) == len(manifest["shards"])
        assert len(log.span_starts("campaign")) == 1
        attempts = log.span_starts("shard.attempt")
        assert len(attempts) >= len(manifest["shards"])  # chaos forced retries

        # The injected faults are visible as events and counters.
        event_names = {r["name"] for r in log.of_type("event")}
        assert "shard.retry" in event_names
        counters = log.final_metrics()["counters"]
        assert counters["runner.shards.completed"] == len(manifest["shards"])
        assert counters["runner.retries"] >= 1
        assert counters["runner.attempts"] == len(attempts)

        # The stream survived the run schema-valid despite the chaos.
        assert check_trace(trace_path) == []

    def test_parallel_campaign_trace_shows_pool_occupancy(self, tmp_path):
        from repro.obs import aggregate_trace

        trace_path = str(tmp_path / "trace.jsonl")
        options = {"tables": ["table1", "table2", "table3", "table4"]}
        with tracing(trace_path):
            report = run_campaign(
                "tables",
                options=options,
                output_dir=str(tmp_path / "out"),
                jobs=4,
                shard_delay=0.05,  # keep all four shards in flight at once
            )
        assert report.exit_code == 0
        assert check_trace(trace_path) == []
        log = load_trace(trace_path)
        # every shard/attempt span carries its worker-pool slot
        for record in log.span_starts("shard") + log.span_starts("shard.attempt"):
            assert record["attrs"]["slot"] in (0, 1, 2, 3)
        stats = aggregate_trace(log)
        assert list(stats["pool"]) == ["0", "1", "2", "3"]
        assert sum(e["spans"] for e in stats["pool"].values()) == 4

    def test_manifest_and_outcomes_use_disciplined_clocks(self, tmp_path):
        out_dir = tmp_path / "out"
        report = run_campaign(
            "tables", options={"tables": ["table1"]}, output_dir=str(out_dir)
        )
        manifest = CampaignCheckpoint(
            str(out_dir / "tables.checkpoint.jsonl")
        ).load().manifest
        assert manifest["created_unix"] > 1e9  # wall-clock stamp, for humans
        [outcome] = report.outcomes
        assert outcome.duration_s is not None
        assert outcome.duration_s >= 0.0  # monotonic, never negative
        coverage = report.coverage()
        assert coverage["executed_seconds"] >= 0.0

    def test_resumed_shards_have_no_duration(self, tmp_path):
        options = {"tables": ["table1", "table2"]}
        run_campaign("tables", options=options, output_dir=str(tmp_path / "o"))
        report = run_campaign(
            "tables", options=options, output_dir=str(tmp_path / "o"), resume=True
        )
        assert all(o.duration_s is None for o in report.outcomes if o.resumed)


class TestTracedCli:
    def test_trace_flag_wraps_the_verb_in_a_root_span(self, tmp_path, capsys):
        trace_path = str(tmp_path / "cli.jsonl")
        assert main(["table2", "--trace", trace_path]) == 0
        capsys.readouterr()  # the table itself is not under test
        log = load_trace(trace_path)
        [root] = log.span_starts("ftmc")
        assert root["attrs"]["experiment"] == "table2"
        assert "parent" not in root
        assert check_trace(trace_path) == []

    def test_trace_session_closes_even_on_failure(self, tmp_path, capsys):
        trace_path = str(tmp_path / "cli.jsonl")
        missing = str(tmp_path / "nope.jsonl")
        assert main(["stats", missing, "--trace", trace_path]) == 2
        capsys.readouterr()
        # The session was still closed cleanly: metrics record present.
        assert load_trace(trace_path).final_metrics() is not None
        assert check_trace(trace_path) == []

    def test_unwritable_trace_path_exit_2(self, tmp_path, capsys):
        target = tmp_path / "adir"
        target.mkdir()
        assert main(["table2", "--trace", str(target)]) == 2
        assert "cannot write trace" in capsys.readouterr().err
