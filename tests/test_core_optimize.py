"""Tests for the per-task re-execution profile optimizer (ablation)."""

import pytest

from repro.core.optimize import minimal_per_task_reexecution
from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.faults import ReexecutionProfile
from repro.model.task import Task, TaskSet
from repro.safety.pfh import minimal_uniform_reexecution, pfh_of_tasks


def _heterogeneous_set() -> TaskSet:
    """HI tasks with very different periods and failure probabilities."""
    tasks = [
        Task("fast", period=10.0, deadline=10.0, wcet=1.0,
             criticality=CriticalityRole.HI, failure_probability=1e-4),
        Task("slow", period=10_000.0, deadline=10_000.0, wcet=100.0,
             criticality=CriticalityRole.HI, failure_probability=1e-7),
        Task("lo", period=100.0, deadline=100.0, wcet=5.0,
             criticality=CriticalityRole.LO, failure_probability=1e-5),
    ]
    return TaskSet(tasks, DualCriticalitySpec.from_names("B", "D"))


class TestMinimalPerTask:
    def test_meets_ceiling(self):
        ts = _heterogeneous_set()
        result = minimal_per_task_reexecution(ts, CriticalityRole.HI, 1e-7)
        assert result is not None
        assert result.pfh <= 1e-7
        value = pfh_of_tasks(ts.hi_tasks, result.profile)
        assert value == pytest.approx(result.pfh)

    def test_never_worse_than_uniform(self):
        """The headline ablation property: per-task load <= uniform load."""
        ts = _heterogeneous_set()
        ceiling = 1e-7
        per_task = minimal_per_task_reexecution(ts, CriticalityRole.HI, ceiling)
        uniform_n = minimal_uniform_reexecution(ts, CriticalityRole.HI, ceiling)
        uniform_load = uniform_n * sum(t.utilization for t in ts.hi_tasks)
        assert per_task.inflated_utilization <= uniform_load + 1e-12

    def test_heterogeneous_set_gets_heterogeneous_profiles(self):
        """The fast/error-prone task needs more re-executions than the
        slow/reliable one — uniform profiles cannot express that."""
        ts = _heterogeneous_set()
        result = minimal_per_task_reexecution(ts, CriticalityRole.HI, 1e-7)
        assert result.profile["fast"] > result.profile["slow"]

    def test_matches_uniform_on_homogeneous_set(self, example31):
        """Example 3.1's HI tasks are similar: per-task collapses to 3/3."""
        result = minimal_per_task_reexecution(example31, CriticalityRole.HI, 1e-7)
        assert result.profile.as_dict() == {"tau1": 3, "tau2": 3}

    def test_unreachable_ceiling(self, example31):
        assert (
            minimal_per_task_reexecution(
                example31, CriticalityRole.HI, 0.0, max_n=4
            )
            is None
        )

    def test_empty_role(self):
        hi_only = TaskSet(
            [Task("hi", 100, 100, 5, CriticalityRole.HI, 1e-5)],
            DualCriticalitySpec.from_names("B", "D"),
        )
        result = minimal_per_task_reexecution(hi_only, CriticalityRole.LO, 1e-5)
        assert result is not None
        assert len(result.profile) == 0
        assert result.pfh == 0.0

    def test_trivial_ceiling_keeps_single_executions(self):
        ts = _heterogeneous_set()
        result = minimal_per_task_reexecution(ts, CriticalityRole.HI, 1.0e6)
        assert all(n == 1 for n in result.profile.as_dict().values())

    def test_profile_is_valid_reexecution_profile(self):
        ts = _heterogeneous_set()
        result = minimal_per_task_reexecution(ts, CriticalityRole.HI, 1e-7)
        assert isinstance(result.profile, ReexecutionProfile)
        for task in ts.hi_tasks:
            assert result.profile[task] >= 1


class TestPerTaskAdaptation:
    @staticmethod
    def _search(taskset, backend=None, **kwargs):
        from repro.core.backends import EDFVDBackend
        from repro.core.optimize import search_per_task_adaptation

        return search_per_task_adaptation(
            taskset, 3, 1, backend or EDFVDBackend(), 10.0, **kwargs
        )

    def test_example31_finds_finer_profile(self, example31):
        """Uniform FT-S picks n' = 2 for both HI tasks; the per-task
        search keeps tau1 unadapted and sacrifices only tau2."""
        result = self._search(example31)
        assert result.success
        profile = result.adaptation.as_dict()
        assert profile["tau1"] == 3  # never adapted
        assert profile["tau2"] < 3

    def test_found_profile_is_schedulable(self, example31):
        from repro.core.backends import EDFVDBackend
        from repro.core.conversion import convert
        from repro.model.faults import ReexecutionProfile

        result = self._search(example31)
        mc = convert(
            example31,
            ReexecutionProfile.uniform(example31, 3, 1),
            result.adaptation,
        )
        assert EDFVDBackend().is_schedulable(mc)

    def test_safety_check_blocks_lo_c(self):
        """A schedulable killing profile that violates the level-C
        ceiling must be reported as a safety failure, not accepted."""
        from repro.core.backends import EDFVDBackend
        from repro.core.optimize import search_per_task_adaptation
        from repro.model.criticality import DualCriticalitySpec
        from repro.model.task import Task, TaskSet

        taskset = TaskSet(
            [
                Task("hi1", 100, 100, 14, CriticalityRole.HI, 1e-5),
                Task("hi2", 100, 100, 14, CriticalityRole.HI, 1e-5),
                Task("lo", 100, 100, 15, CriticalityRole.LO, 1e-5),
            ],
            DualCriticalitySpec.from_names("B", "C"),
        )
        result = search_per_task_adaptation(
            taskset, 3, 2, EDFVDBackend(), 10.0
        )
        assert not result.success
        assert "ceiling" in result.reason
        assert result.adaptation is not None  # a schedulable profile exists
        assert result.pfh_lo >= 1e-5

    def test_unschedulable_even_at_floor(self):
        from repro.model.criticality import DualCriticalitySpec
        from repro.model.task import Task, TaskSet

        overloaded = TaskSet(
            [
                Task("hi", 100, 100, 60, CriticalityRole.HI, 1e-9),
                Task("lo", 100, 100, 60, CriticalityRole.LO, 1e-9),
            ],
            DualCriticalitySpec.from_names("B", "D"),
        )
        from repro.core.backends import EDFVDBackend
        from repro.core.optimize import search_per_task_adaptation

        result = search_per_task_adaptation(
            overloaded, 2, 1, EDFVDBackend(), 10.0
        )
        assert not result.success
        assert "profile at 1" in result.reason

    def test_requires_spec(self, example31):
        from repro.model.task import TaskSet

        unbound = TaskSet(example31.tasks, spec=None)
        with pytest.raises(ValueError, match="spec"):
            self._search(unbound)
