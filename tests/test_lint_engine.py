"""Engine-level tests: subject normalization, file front end, report
rendering, the exit-code contract and the ``validate=True`` hooks."""

from __future__ import annotations

import json

import pytest

from repro.core.ftmc import ft_edf_vd
from repro.core.optimize import minimal_per_task_reexecution
from repro.lint import (
    Diagnostic,
    LintError,
    LintReport,
    Severity,
    lint_file,
    lint_taskset,
    validate_taskset,
)
from repro.lint.records import TaskSetRecord
from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.task import Task, TaskSet

HI = CriticalityRole.HI
LO = CriticalityRole.LO


def pair_taskset(hi_wcet: float = 10.0, lo_wcet: float = 5.0) -> TaskSet:
    return TaskSet(
        [
            Task("hi", 100.0, 100.0, hi_wcet, HI, 1e-4),
            Task("lo", 50.0, 50.0, lo_wcet, LO, 1e-4),
        ],
        DualCriticalitySpec.from_names("B", "D"),
        name="pair",
    )


GOOD_DOC = {
    "name": "pair",
    "criticality": {"hi": "B", "lo": "D"},
    "tasks": [
        {"name": "hi", "period": 100, "deadline": 100, "wcet": 10,
         "criticality": "HI", "failure_probability": 1e-4},
        {"name": "lo", "period": 50, "deadline": 50, "wcet": 5,
         "criticality": "LO", "failure_probability": 1e-4},
    ],
}


class TestSubjectNormalization:
    def test_taskset_record_and_document_agree(self):
        from_model = lint_taskset(pair_taskset())
        from_record = lint_taskset(TaskSetRecord.from_taskset(pair_taskset()))
        from_doc = lint_taskset(GOOD_DOC)
        assert (from_model.codes() == from_record.codes() == from_doc.codes()
                == ())

    def test_defective_inputs_agree_across_front_ends(self):
        bad_doc = {
            "criticality": {"hi": "B", "lo": "D"},
            "tasks": [
                {"name": "a", "period": 10, "wcet": 8, "criticality": "HI",
                 "failure_probability": 1e-4},
                {"name": "b", "period": 10, "wcet": 8, "criticality": "LO",
                 "failure_probability": 1e-4},
            ],
        }
        assert lint_taskset(bad_doc).has_code("FTMC007")

    def test_unknown_subject_type_raises(self):
        with pytest.raises(TypeError, match="lint_taskset expects"):
            lint_taskset(42)


class TestLintFile:
    def test_clean_file(self, tmp_path):
        path = tmp_path / "good.json"
        path.write_text(json.dumps(GOOD_DOC))
        report = lint_file(str(path))
        assert report.is_clean
        assert report.exit_code() == 0

    def test_missing_file(self, tmp_path):
        report = lint_file(str(tmp_path / "nope.json"))
        diags = report.by_code("FTMC040")
        assert diags and "cannot read" in diags[0].message
        assert report.exit_code() == 1

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        report = lint_file(str(path))
        diags = report.by_code("FTMC040")
        assert diags and "invalid JSON" in diags[0].message
        assert "line 1" in diags[0].message

    def test_non_object_document(self, tmp_path):
        path = tmp_path / "array.json"
        path.write_text("[1, 2, 3]")
        report = lint_file(str(path))
        assert any("JSON object" in d.message
                   for d in report.by_code("FTMC040"))


class TestReportContract:
    def _report(self, *severities: Severity) -> LintReport:
        return LintReport(
            Diagnostic(f"FTMC90{i}", sev, "x", f"x: finding {i}")
            for i, sev in enumerate(severities)
        )

    def test_exit_codes(self):
        assert self._report().exit_code() == 0
        assert self._report(Severity.INFO).exit_code(strict=True) == 0
        assert self._report(Severity.WARNING).exit_code() == 0
        assert self._report(Severity.WARNING).exit_code(strict=True) == 2
        assert self._report(Severity.WARNING, Severity.ERROR).exit_code() == 1
        assert (
            self._report(Severity.WARNING, Severity.ERROR).exit_code(strict=True)
            == 1
        )

    def test_render_text_footer_and_lines(self):
        text = self._report(Severity.ERROR, Severity.WARNING).render_text("subj")
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("FTMC900 error:")
        assert lines[-1] == "subj: 1 error(s), 1 warning(s), 0 info(s)"

    def test_render_elides_redundant_location(self):
        with_prefix = Diagnostic("FTMC901", Severity.ERROR, "tau", "tau: bad")
        without = Diagnostic("FTMC901", Severity.ERROR, "tau", "bad")
        assert with_prefix.render() == "FTMC901 error: tau: bad"
        assert without.render() == "FTMC901 error: tau: bad"

    def test_render_json_shape(self):
        payload = json.loads(self._report(Severity.ERROR).render_json("subj"))
        assert payload["subject"] == "subj"
        assert payload["summary"] == {"errors": 1, "warnings": 0, "infos": 0}
        assert payload["diagnostics"][0]["code"] == "FTMC900"
        assert payload["diagnostics"][0]["severity"] == "error"

    def test_suggestion_round_trips(self):
        diag = Diagnostic("FTMC902", Severity.WARNING, "x", "x: odd",
                          suggestion="fix it")
        assert "[fix: fix it]" in diag.render()
        assert diag.as_dict()["suggestion"] == "fix it"

    def test_partitions_and_lookup(self):
        report = self._report(Severity.ERROR, Severity.WARNING, Severity.INFO)
        assert len(report) == 3
        assert bool(report)
        assert len(report.errors) == len(report.warnings) == len(report.infos) == 1
        assert report.codes() == ("FTMC900", "FTMC901", "FTMC902")
        assert report.has_code("FTMC901")
        assert not report.has_code("FTMC999")

    def test_extend_is_pure(self):
        base = self._report(Severity.INFO)
        grown = base.extend(self._report(Severity.ERROR))
        assert len(base) == 1 and len(grown) == 2


class TestValidateHooks:
    def _overutilized(self) -> TaskSet:
        return pair_taskset(hi_wcet=90.0, lo_wcet=40.0)  # U = 1.7

    def test_validate_taskset_raises_with_full_report(self):
        with pytest.raises(LintError) as excinfo:
            validate_taskset(self._overutilized())
        err = excinfo.value
        assert err.report.has_code("FTMC007")
        assert err.subject == "pair"
        assert "FTMC007" in str(err)

    def test_validate_taskset_clean_returns_report(self):
        report = validate_taskset(pair_taskset())
        assert isinstance(report, LintReport)
        assert report.is_clean

    def test_validate_strict_promotes_warnings(self):
        warned = TaskSet(
            [
                Task("hi", 50.0, 80.0, 5.0, HI, 1e-4),  # D > T warning
                Task("lo", 50.0, 50.0, 5.0, LO, 1e-4),
            ],
            DualCriticalitySpec.from_names("B", "D"),
        )
        assert validate_taskset(warned).has_code("FTMC005")
        with pytest.raises(LintError):
            validate_taskset(warned, strict=True)

    def test_ft_edf_vd_validate_flag(self):
        bad = self._overutilized()
        # Default path keeps the legacy behaviour: a result, not a raise.
        assert not ft_edf_vd(bad).success
        with pytest.raises(LintError, match="FTMC007"):
            ft_edf_vd(bad, validate=True)

    def test_optimize_validate_flag(self):
        bad = self._overutilized()
        with pytest.raises(LintError, match="FTMC007"):
            minimal_per_task_reexecution(bad, HI, 1e-7, validate=True)

    def test_validate_accepts_good_systems(self):
        result = ft_edf_vd(pair_taskset(), validate=True)
        assert result.success


class TestGeneratedSetsLintClean:
    def test_generated_sets_have_no_errors(self):
        from repro.gen.taskset import generate_taskset

        spec = DualCriticalitySpec.from_names("B", "C")
        for seed in range(5):
            report = lint_taskset(generate_taskset(0.6, spec, rng=seed))
            assert not report.errors, report.render_text(f"seed {seed}")
            assert report.exit_code() == 0

    def test_paper_reference_sets_are_clean(self, example31, fms):
        for system in (example31, fms):
            report = lint_taskset(system)
            assert not report.errors, report.render_text(system.name)
