"""Tests for plain safety quantification — eq. (1), eq. (2), Lemma 3.1."""

import math

import pytest

from repro.model.criticality import CriticalityRole
from repro.model.faults import ReexecutionProfile
from repro.model.task import HOUR_MS, Task, TaskSet
from repro.safety.pfh import (
    max_rounds,
    minimal_uniform_reexecution,
    pfh_of_tasks,
    pfh_plain,
)


def _task(period=60.0, wcet=5.0, f=1e-5, name="t", crit=CriticalityRole.HI):
    return Task(name, period, period, wcet, crit, f)


class TestMaxRounds:
    def test_example31_tau1(self):
        """r_1(3, 1h) = floor((3.6e6 - 15)/60) + 1 = 60000."""
        assert max_rounds(_task(60.0, 5.0), 3, HOUR_MS) == 60000

    def test_example31_tau2(self):
        """r_2(3, 1h) = floor((3.6e6 - 12)/25) + 1 = 144000."""
        assert max_rounds(_task(25.0, 4.0), 3, HOUR_MS) == 144000

    def test_zero_when_setup_exceeds_horizon(self):
        # n*C = 15 > t = 10: not even one round fits.
        assert max_rounds(_task(60.0, 5.0), 3, 10.0) == 0

    def test_exactly_one_round(self):
        # t == n*C: floor(0/T) + 1 = 1.
        assert max_rounds(_task(60.0, 5.0), 3, 15.0) == 1

    def test_round_boundary(self):
        # t = n*C + T accommodates exactly 2 rounds.
        task = _task(60.0, 5.0)
        assert max_rounds(task, 3, 15.0 + 60.0) == 2
        assert max_rounds(task, 3, 15.0 + 59.999) == 1

    def test_footnote1_drops_setup_term(self):
        """With assume_full_wcet=False, C_i is replaced by 0 (footnote 1)."""
        task = _task(60.0, 5.0)
        with_setup = max_rounds(task, 3, HOUR_MS, assume_full_wcet=True)
        without = max_rounds(task, 3, HOUR_MS, assume_full_wcet=False)
        assert without >= with_setup
        assert without == math.floor(HOUR_MS / 60.0) + 1

    def test_monotone_in_horizon(self):
        task = _task(70.0, 8.0)
        previous = 0
        for t in (0.0, 100.0, 1e4, 1e5, HOUR_MS):
            current = max_rounds(task, 2, t)
            assert current >= previous
            previous = current

    def test_antitone_in_executions(self):
        task = _task(70.0, 8.0)
        rounds = [max_rounds(task, n, 1e5) for n in range(1, 6)]
        assert rounds == sorted(rounds, reverse=True)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="executions"):
            max_rounds(_task(), 0, HOUR_MS)
        with pytest.raises(ValueError, match="horizon"):
            max_rounds(_task(), 1, -1.0)


class TestPfhPlain:
    def test_example31_hi_level_value(self, example31, example31_profiles):
        """Paper: pfh(HI) = 2.04e-10 with n_1 = n_2 = 3."""
        value = pfh_plain(example31, CriticalityRole.HI, example31_profiles)
        assert value == pytest.approx(2.04e-10, rel=1e-6)

    def test_example31_hi_profile_two_violates(self, example31):
        """n = 2 yields 2.04e-5 > 1e-7: why the paper needs n = 3."""
        profile = ReexecutionProfile.uniform(example31, 2, 1)
        value = pfh_plain(example31, CriticalityRole.HI, profile)
        assert value == pytest.approx(2.04e-5, rel=1e-6)
        assert value > 1e-7

    def test_lo_level_independent_of_hi_profile(self, example31):
        a = ReexecutionProfile.uniform(example31, 3, 2)
        b = ReexecutionProfile.uniform(example31, 5, 2)
        assert pfh_plain(example31, CriticalityRole.LO, a) == pytest.approx(
            pfh_plain(example31, CriticalityRole.LO, b)
        )

    def test_decreases_with_more_reexecutions(self, example31):
        values = [
            pfh_plain(
                example31,
                CriticalityRole.HI,
                ReexecutionProfile.uniform(example31, n, 1),
            )
            for n in range(1, 5)
        ]
        assert values == sorted(values, reverse=True)
        assert values[0] > 0

    def test_zero_failure_probability_gives_zero_pfh(self):
        task = _task(f=0.0)
        ts = TaskSet([task])
        profile = ReexecutionProfile.constant([task], 1)
        assert pfh_of_tasks([task], profile) == 0.0

    def test_custom_horizon_normalised_per_hour(self):
        """pfh over 2 hours equals pfh over 1 hour (constant rates)."""
        task = _task(period=100.0, wcet=0.0, f=1e-3)
        profile = ReexecutionProfile.constant([task], 1)
        one = pfh_of_tasks([task], profile, HOUR_MS)
        two = pfh_of_tasks([task], profile, 2 * HOUR_MS)
        # wcet=0 removes the boundary effect entirely.
        assert two == pytest.approx(one, rel=1e-4)

    def test_rejects_nonpositive_horizon(self):
        task = _task()
        profile = ReexecutionProfile.constant([task], 1)
        with pytest.raises(ValueError, match="horizon"):
            pfh_of_tasks([task], profile, 0.0)


class TestMinimalUniformReexecution:
    def test_example31_hi_needs_three(self, example31):
        assert minimal_uniform_reexecution(example31, CriticalityRole.HI, 1e-7) == 3

    def test_example31_lo_with_no_requirement(self, example31):
        n = minimal_uniform_reexecution(
            example31, CriticalityRole.LO, math.inf
        )
        assert n == 1

    def test_example31_lo_as_level_c(self, example31):
        """If LO were level C, its tasks would need re-execution too."""
        n = minimal_uniform_reexecution(example31, CriticalityRole.LO, 1e-5)
        assert n == 3  # 262857 rounds/h at 1e-10 each = 2.6e-5 > 1e-5

    def test_unreachable_ceiling_returns_none(self, example31):
        assert (
            minimal_uniform_reexecution(
                example31, CriticalityRole.HI, 0.0, max_n=5
            )
            is None
        )

    def test_empty_role_defaults_to_one(self):
        hi_only = TaskSet([_task()])
        assert minimal_uniform_reexecution(hi_only, CriticalityRole.LO, 1e-9) == 1

    def test_strict_vs_nonstrict_at_boundary(self):
        """Exactly-at-ceiling passes <= but fails <."""
        task = _task(period=2 * HOUR_MS, wcet=0.0, f=1e-3)
        ts = TaskSet([task])
        # r = floor(t/2t) + 1 = 1 round per hour, so pfh = 1e-3 with n = 1
        assert (
            minimal_uniform_reexecution(ts, CriticalityRole.HI, 1e-3, strict=False)
            == 1
        )
        assert (
            minimal_uniform_reexecution(ts, CriticalityRole.HI, 1e-3, strict=True)
            == 2
        )

    def test_result_actually_meets_ceiling(self, example31):
        ceiling = 1e-7
        n = minimal_uniform_reexecution(example31, CriticalityRole.HI, ceiling)
        profile = ReexecutionProfile.uniform(example31, n, 1)
        assert pfh_plain(example31, CriticalityRole.HI, profile) <= ceiling
        if n > 1:
            below = ReexecutionProfile.uniform(example31, n - 1, 1)
            assert pfh_plain(example31, CriticalityRole.HI, below) > ceiling
