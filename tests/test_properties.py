"""Property-based tests (hypothesis) for the analytical core.

These check the monotonicity and consistency laws the paper's proofs rely
on, over randomly drawn tasks, profiles and horizons.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.edf import (
    Workload,
    demand_bound_function,
    edf_processor_demand_test,
    edf_processor_demand_test_reference,
    edf_utilization_test,
)
from repro.analysis.qpa import qpa_schedulable
from repro.analysis.edf_vd import analyse as edf_vd_analyse
from repro.analysis.fixed_priority import dm_schedulable
from repro.core.conversion import convert_uniform
from repro.gen.taskset import uunifast
from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.faults import (
    AdaptationProfile,
    ReexecutionProfile,
    round_failure_probability,
)
from repro.model.task import Task, TaskSet
from repro.safety.degradation import omega, pfh_lo_degradation
from repro.safety.killing import pfh_lo_killing, survival_probability
from repro.safety.pfh import max_rounds, pfh_plain

# -- strategies ---------------------------------------------------------------

periods = st.floats(min_value=10.0, max_value=5000.0, allow_nan=False)
wcets = st.floats(min_value=0.1, max_value=9.0, allow_nan=False)
failure_probs = st.floats(min_value=1e-9, max_value=0.3, allow_nan=False)
horizons = st.floats(min_value=0.0, max_value=1e7, allow_nan=False)
executions = st.integers(min_value=1, max_value=6)


@st.composite
def tasks(draw, criticality=CriticalityRole.HI, name="t", implicit=False):
    period = draw(periods)
    deadline = period if implicit else draw(periods)
    return Task(
        name=name,
        period=period,
        deadline=deadline,
        wcet=draw(wcets),
        criticality=criticality,
        failure_probability=draw(failure_probs),
    )


@st.composite
def dual_tasksets(draw, max_hi=3, max_lo=3, implicit=False):
    n_hi = draw(st.integers(1, max_hi))
    n_lo = draw(st.integers(1, max_lo))
    members = []
    for i in range(n_hi):
        members.append(
            draw(tasks(CriticalityRole.HI, name=f"hi{i}", implicit=implicit))
        )
    for i in range(n_lo):
        members.append(
            draw(tasks(CriticalityRole.LO, name=f"lo{i}", implicit=implicit))
        )
    return TaskSet(members, DualCriticalitySpec.from_names("B", "C"))


# -- eq. (1): rounds ----------------------------------------------------------


class TestRoundsProperties:
    @given(tasks(), executions, horizons, horizons)
    @settings(max_examples=200)
    def test_monotone_in_horizon(self, task, n, t1, t2):
        lo, hi = sorted((t1, t2))
        assert max_rounds(task, n, lo) <= max_rounds(task, n, hi)

    @given(tasks(), executions, horizons)
    @settings(max_examples=200)
    def test_antitone_in_executions(self, task, n, t):
        assert max_rounds(task, n + 1, t) <= max_rounds(task, n, t)

    @given(tasks(), executions, horizons)
    @settings(max_examples=200)
    def test_footnote1_never_fewer_rounds(self, task, n, t):
        assert max_rounds(task, n, t, assume_full_wcet=False) >= max_rounds(
            task, n, t, assume_full_wcet=True
        )

    @given(tasks(), executions, horizons)
    @settings(max_examples=200)
    def test_nonnegative(self, task, n, t):
        assert max_rounds(task, n, t) >= 0


# -- eq. (2): plain pfh -------------------------------------------------------


class TestPfhProperties:
    @given(dual_tasksets(), st.integers(1, 5))
    @settings(max_examples=60)
    def test_pfh_decreases_with_reexecution(self, taskset, n):
        lower = ReexecutionProfile.uniform(taskset, n, n)
        higher = ReexecutionProfile.uniform(taskset, n + 1, n + 1)
        for role in (CriticalityRole.HI, CriticalityRole.LO):
            assert pfh_plain(taskset, role, higher) <= pfh_plain(
                taskset, role, lower
            )

    @given(dual_tasksets(), st.integers(1, 4))
    @settings(max_examples=60)
    def test_pfh_nonnegative(self, taskset, n):
        profile = ReexecutionProfile.uniform(taskset, n, n)
        assert pfh_plain(taskset, CriticalityRole.HI, profile) >= 0.0

    @given(st.floats(1e-9, 0.5), executions)
    @settings(max_examples=200)
    def test_round_failure_bounds(self, f, n):
        p = round_failure_probability(f, n)
        assert 0.0 <= p <= f


# -- eq. (3): survival --------------------------------------------------------


class TestSurvivalProperties:
    @given(dual_tasksets(), st.integers(1, 4), horizons, horizons)
    @settings(max_examples=60)
    def test_decreasing_in_time(self, taskset, n_prime, t1, t2):
        adaptation = AdaptationProfile.uniform(taskset, n_prime)
        lo, hi = sorted((t1, t2))
        assert survival_probability(taskset, adaptation, hi) <= (
            survival_probability(taskset, adaptation, lo) + 1e-12
        )

    @given(dual_tasksets(), st.integers(1, 4), horizons)
    @settings(max_examples=60)
    def test_increasing_in_profile(self, taskset, n_prime, t):
        smaller = AdaptationProfile.uniform(taskset, n_prime)
        larger = AdaptationProfile.uniform(taskset, n_prime + 1)
        assert survival_probability(taskset, smaller, t) <= (
            survival_probability(taskset, larger, t) + 1e-12
        )

    @given(dual_tasksets(), st.integers(1, 4), horizons)
    @settings(max_examples=60)
    def test_is_probability(self, taskset, n_prime, t):
        adaptation = AdaptationProfile.uniform(taskset, n_prime)
        value = survival_probability(taskset, adaptation, t)
        assert 0.0 <= value <= 1.0


# -- eqs. (5)/(7): adapted LO safety -------------------------------------------


class TestAdaptedSafetyProperties:
    @given(dual_tasksets(), st.integers(2, 4))
    @settings(max_examples=30, deadline=None)
    def test_killing_pfh_decreases_with_profile(self, taskset, n):
        reexecution = ReexecutionProfile.uniform(taskset, n, 2)
        lower = pfh_lo_killing(
            taskset, reexecution, AdaptationProfile.uniform(taskset, 1), 1.0
        )
        higher = pfh_lo_killing(
            taskset, reexecution, AdaptationProfile.uniform(taskset, n), 1.0
        )
        assert higher <= lower + 1e-12

    @given(dual_tasksets(), st.integers(2, 4))
    @settings(max_examples=30, deadline=None)
    def test_degradation_never_exceeds_plain(self, taskset, n):
        """Lemma 3.4 consequence: degradation only improves LO safety."""
        reexecution = ReexecutionProfile.uniform(taskset, n, 2)
        adaptation = AdaptationProfile.uniform(taskset, n - 1)
        degraded = pfh_lo_degradation(taskset, reexecution, adaptation, 1.0)
        plain = pfh_plain(taskset, CriticalityRole.LO, reexecution)
        assert degraded <= plain + 1e-12

    @given(dual_tasksets(), st.integers(2, 3))
    @settings(max_examples=30, deadline=None)
    def test_degradation_bounded_by_killing(self, taskset, n):
        """Empirical law behind Section 5.1: degrade <= kill, same profiles.

        Killing exposes every worst-case round of every LO task to the
        cumulative kill probability (eq. 5), whereas degradation multiplies
        a single trigger probability with the plain failure rate (eq. 7).
        """
        reexecution = ReexecutionProfile.uniform(taskset, n, 2)
        adaptation = AdaptationProfile.uniform(taskset, n - 1)
        kill = pfh_lo_killing(taskset, reexecution, adaptation, 1.0)
        degrade = pfh_lo_degradation(taskset, reexecution, adaptation, 1.0)
        assert degrade <= kill + 1e-12

    @given(dual_tasksets(), st.floats(1.0, 20.0), horizons)
    @settings(max_examples=60)
    def test_omega_antitone_in_df(self, taskset, df, t):
        reexecution = ReexecutionProfile.uniform(taskset, 2, 2)
        assert omega(taskset, reexecution, df, t) <= (
            omega(taskset, reexecution, 1.0, t) + 1e-12
        )


# -- schedulability laws --------------------------------------------------------


class TestSchedulabilityProperties:
    @given(st.lists(st.tuples(periods, wcets), min_size=1, max_size=5))
    @settings(max_examples=100)
    def test_pdc_agrees_with_utilization_for_implicit(self, raw):
        workload = [Workload(p, p, min(c, p)) for p, c in raw]
        assert edf_processor_demand_test(workload) == edf_utilization_test(
            workload
        )

    @given(st.lists(st.tuples(periods, wcets), min_size=1, max_size=4))
    @settings(max_examples=60)
    def test_dm_implies_edf(self, raw):
        """FP-schedulable (constrained, DM) implies EDF-schedulable."""
        workload = [Workload(p, p * 0.8, min(c, p * 0.8)) for p, c in raw]
        if dm_schedulable(workload):
            assert edf_processor_demand_test(workload)

    @given(st.lists(st.tuples(periods, wcets), min_size=1, max_size=5),
           st.floats(1.0, 1e6))
    @settings(max_examples=100)
    def test_dbf_monotone(self, raw, t):
        workload = [Workload(p, p, min(c, p)) for p, c in raw]
        assert demand_bound_function(workload, t) <= demand_bound_function(
            workload, t * 1.5
        )

    @given(st.lists(st.tuples(periods, periods, wcets), min_size=1, max_size=5))
    @settings(max_examples=100)
    def test_qpa_agrees_with_pdc(self, raw):
        """QPA and the PDC are equivalent exact tests — same verdicts."""
        workload = [
            Workload(p, min(d, p), min(c, p)) for p, d, c in raw
        ]
        assert qpa_schedulable(workload) == edf_processor_demand_test(workload)

    # Decimal-grid parameters: most are not representable in binary
    # floating point, so absolute deadlines D + k*T land a few ulps off
    # the rational boundary — exactly where an epsilon-unsound comparison
    # flips a verdict.  All three demand tests must still agree.
    decimal_periods = st.integers(1, 50).map(lambda k: k * 0.1)
    decimal_wcets = st.integers(1, 30).map(lambda k: k * 0.01)

    @given(
        st.lists(
            st.tuples(decimal_periods, decimal_periods, decimal_wcets),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_boundary_straddling_verdicts_agree(self, raw):
        workload = [
            Workload(p, min(d, p), min(c, p)) for p, d, c in raw
        ]
        reference = edf_processor_demand_test_reference(workload)
        assert edf_processor_demand_test(workload) == reference
        assert qpa_schedulable(workload) == reference

    @given(
        st.lists(
            st.tuples(decimal_periods, decimal_periods, decimal_wcets),
            min_size=1,
            max_size=4,
        ),
        st.integers(1, 60),
    )
    @settings(max_examples=100)
    def test_dbf_boundary_instants_count_the_job(self, raw, steps):
        """At its own absolute deadline every workload item's job counts.

        The instant is assembled as ``D + k*T`` in floating point — the
        same arithmetic whose rounding used to drop the boundary job.
        """
        workload = [
            Workload(p, min(d, p), min(c, p)) for p, d, c in raw
        ]
        w = workload[0]
        t = w.deadline + steps * w.period
        contribution = demand_bound_function([w], t)
        assert contribution >= (steps + 1) * w.wcet - 1e-9

    @given(dual_tasksets(implicit=True), st.integers(2, 4))
    @settings(max_examples=40)
    def test_edf_vd_monotone_in_killing_profile(self, taskset, n_hi):
        values = [
            edf_vd_analyse(convert_uniform(taskset, n_hi, 1, k)).u_mc
            for k in range(1, n_hi + 1)
        ]
        for smaller, larger in zip(values, values[1:]):
            assert smaller <= larger + 1e-12


# -- generators -----------------------------------------------------------------


class TestGeneratorProperties:
    @given(st.integers(1, 30), st.floats(0.05, 2.0), st.integers(0, 1000))
    @settings(max_examples=100)
    def test_uunifast_exact_sum(self, n, total, seed):
        u = uunifast(n, total, seed)
        assert len(u) == n
        assert u.sum() == pytest.approx(total, rel=1e-9)
        assert (u >= 0).all()
