"""Tests for the ``ftmc`` command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.sets == 500
        assert args.seed == 0
        assert args.panels == ["a", "b", "c", "d"]
        assert args.output_dir is None

    def test_panel_selection(self):
        args = build_parser().parse_args(["fig3", "--panels", "a", "c"])
        assert args.panels == ["a", "c"]


class TestMain:
    @pytest.mark.parametrize("name", ["table1", "table2", "table3", "table4"])
    def test_tables_run(self, name, capsys):
        assert main([name]) == 0
        out = capsys.readouterr().out
        assert name in out

    def test_fig1_runs_with_chart(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "legend" in out

    def test_fig2_runs(self, capsys):
        assert main(["fig2"]) == 0
        assert "fig2" in capsys.readouterr().out

    def test_fig3_small_run(self, capsys):
        assert (
            main(
                [
                    "fig3",
                    "--panels", "a",
                    "--failure-probabilities", "1e-5",
                    "--utilizations", "0.5", "0.9",
                    "--sets", "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "acceptance ratio" in out

    def test_analyze_requires_system(self, capsys):
        assert main(["analyze"]) == 2
        assert "--system" in capsys.readouterr().err

    def test_analyze_feasible_system(self, tmp_path, capsys, fms):
        from repro.io import save_taskset

        path = str(tmp_path / "fms.json")
        save_taskset(fms, path)
        assert main(["analyze", "--system", path]) == 0
        out = capsys.readouterr().out
        assert "CERTIFIABLE" in out
        assert "degradation" in out

    def test_analyze_infeasible_exit_code(self, tmp_path, capsys):
        import json

        doc = {
            "criticality": {"hi": "B", "lo": "D"},
            "tasks": [
                {"name": "hi", "period": 100, "wcet": 60,
                 "criticality": "HI", "failure_probability": 1e-9},
                {"name": "lo", "period": 100, "wcet": 60,
                 "criticality": "LO", "failure_probability": 1e-9},
            ],
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        assert main(["analyze", "--system", str(path)]) == 1
        assert "INFEASIBLE" in capsys.readouterr().out

    def test_output_dir_writes_csv(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["table1", "--output-dir", out_dir]) == 0
        assert os.path.exists(os.path.join(out_dir, "table1.csv"))
        with open(os.path.join(out_dir, "table1.csv")) as handle:
            header = handle.readline().strip()
        assert header == "level,pfh_requirement,safety_related"

    def test_backends_command(self, capsys):
        assert main(["backends", "--sets", "5"]) == 0
        out = capsys.readouterr().out
        assert "backend-comparison" in out
        assert "amc-max" in out

    def test_sensitivity_command(self, tmp_path, capsys):
        out_dir = str(tmp_path / "sens")
        assert main(["sensitivity", "--sets", "5",
                     "--output-dir", out_dir]) == 0
        out = capsys.readouterr().out
        assert "sweep-df" in out
        assert "sweep-os" in out
        assert "sweep-phi" in out
        assert os.path.exists(os.path.join(out_dir, "sweep-df.csv"))
