"""Tests for the ``ftmc`` command-line interface."""

import json
import os

import pytest

from repro.cli import build_parser, main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestParser:
    def test_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig3"])
        assert args.sets == 500
        assert args.seed == 0
        assert args.panels == ["a", "b", "c", "d"]
        assert args.output_dir is None

    def test_panel_selection(self):
        args = build_parser().parse_args(["fig3", "--panels", "a", "c"])
        assert args.panels == ["a", "c"]


class TestMain:
    @pytest.mark.parametrize("name", ["table1", "table2", "table3", "table4"])
    def test_tables_run(self, name, capsys):
        assert main([name]) == 0
        out = capsys.readouterr().out
        assert name in out

    def test_fig1_runs_with_chart(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "legend" in out

    def test_fig2_runs(self, capsys):
        assert main(["fig2"]) == 0
        assert "fig2" in capsys.readouterr().out

    def test_fig3_small_run(self, capsys):
        assert (
            main(
                [
                    "fig3",
                    "--panels", "a",
                    "--failure-probabilities", "1e-5",
                    "--utilizations", "0.5", "0.9",
                    "--sets", "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "acceptance ratio" in out

    def test_analyze_requires_system(self, capsys):
        assert main(["analyze"]) == 2
        assert "--system" in capsys.readouterr().err

    def test_analyze_feasible_system(self, tmp_path, capsys, fms):
        from repro.io import save_taskset

        path = str(tmp_path / "fms.json")
        save_taskset(fms, path)
        assert main(["analyze", "--system", path]) == 0
        out = capsys.readouterr().out
        assert "CERTIFIABLE" in out
        assert "degradation" in out

    def test_analyze_infeasible_exit_code(self, tmp_path, capsys):
        import json

        doc = {
            "criticality": {"hi": "B", "lo": "D"},
            "tasks": [
                {"name": "hi", "period": 100, "wcet": 60,
                 "criticality": "HI", "failure_probability": 1e-9},
                {"name": "lo", "period": 100, "wcet": 60,
                 "criticality": "LO", "failure_probability": 1e-9},
            ],
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        assert main(["analyze", "--system", str(path)]) == 1
        assert "INFEASIBLE" in capsys.readouterr().out

    def test_output_dir_writes_csv(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        assert main(["table1", "--output-dir", out_dir]) == 0
        assert os.path.exists(os.path.join(out_dir, "table1.csv"))
        with open(os.path.join(out_dir, "table1.csv")) as handle:
            header = handle.readline().strip()
        assert header == "level,pfh_requirement,safety_related"

    def test_bench_quick_smoke(self, tmp_path, capsys, monkeypatch):
        """``ftmc bench --quick`` renders, writes, and maps the guard to
        the exit code.  The measurement itself is covered by
        ``test_perf_bench``; here a canned report keeps the smoke fast."""
        import repro.perf

        report = {
            "schema": "ftmc-bench/1", "date": "2026-01-01", "quick": True,
            "seed": 0, "numpy": True, "budget_ms_per_subject": 1.0,
            "kernels": {"pdc": {"ns_per_op": 10.0, "ops": 3, "total_ms": 0.1}},
            "end_to_end": {},
            "speedups": {"dbf_mc_analyse": 5.0, "fig3_point": 3.0},
            "cache": {"entries": 0, "hits": 0, "misses": 0},
            "guard": {"passed": True, "failures": {}},
        }
        monkeypatch.setattr(
            repro.perf, "run_benchmarks", lambda quick, seed: report
        )
        out_dir = str(tmp_path / "bench")
        assert main(["bench", "--quick", "--output-dir", out_dir]) == 0
        out = capsys.readouterr().out
        assert "perf guard: PASS" in out
        assert os.path.exists(os.path.join(out_dir, "BENCH_2026-01-01.json"))

    def test_bench_guard_failure_exit_code(self, capsys, monkeypatch):
        import repro.perf

        report = {
            "schema": "ftmc-bench/1", "date": "2026-01-01", "quick": True,
            "seed": 0, "numpy": True, "budget_ms_per_subject": 1.0,
            "kernels": {}, "end_to_end": {},
            "speedups": {"dbf_mc_analyse": 1.1, "fig3_point": 3.0},
            "cache": {"entries": 0, "hits": 0, "misses": 0},
            "guard": {
                "passed": False,
                "failures": {
                    "dbf_mc_analyse": {"speedup": 1.1, "floor": 3.0}
                },
            },
        }
        monkeypatch.setattr(
            repro.perf, "run_benchmarks", lambda quick, seed: report
        )
        assert main(["bench", "--quick"]) == 1
        assert "perf guard: FAIL" in capsys.readouterr().out

    @staticmethod
    def _minimal_report() -> dict:
        """A well-formed scalar-tier report (floors legitimately skipped)."""
        return {
            "schema": "ftmc-bench/1", "date": "2026-01-01", "quick": True,
            "seed": 0, "numpy": False, "budget_ms_per_subject": 1.0,
            "kernels": {"pdc": {"ns_per_op": 10.0, "ops": 3, "total_ms": 0.1}},
            "end_to_end": {
                "fig3_sweep": {"ns_per_op": 99.0, "ops": 1, "total_ms": 0.1},
            },
            "speedups": {},
            "cache": {"entries": 0, "hits": 0, "misses": 0},
            "guard": {"passed": None, "failures": {}},
        }

    def test_bench_check_accepts_valid_report(self, tmp_path, capsys):
        import json

        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(self._minimal_report()))
        assert main(["bench", "--check", str(path)]) == 0
        assert "all floors hold" in capsys.readouterr().out

    def test_bench_check_exits_1_on_malformed_rows(self, tmp_path, capsys):
        """Regression: a malformed baseline row must fail the check with
        exit 1 and a named problem — not a KeyError, not a silent pass."""
        import json

        report = self._minimal_report()
        del report["end_to_end"]["fig3_sweep"]["ns_per_op"]
        report["kernels"]["pdc"] = "not-a-row"
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(report))
        assert main(["bench", "--check", str(path)]) == 1
        err = capsys.readouterr().err
        assert "end_to_end.fig3_sweep" in err
        assert "kernels.pdc" in err

    def test_bench_check_exits_1_on_floor_regression(self, tmp_path, capsys):
        import json

        from repro.perf import SPEEDUP_FLOORS

        report = self._minimal_report()
        report["numpy"] = True
        report["speedups"] = {name: floor + 1.0
                              for name, floor in SPEEDUP_FLOORS.items()}
        report["speedups"]["fig3_sweep"] = 0.5
        # api/plan sections absent: their qps floors must be reported as
        # missing rather than crashing the validator.
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(report))
        assert main(["bench", "--check", str(path)]) == 1
        err = capsys.readouterr().err
        assert "fig3_sweep" in err and "below floor" in err

    def test_bench_check_requires_a_path(self, capsys):
        assert main(["bench", "--check"]) == 2
        assert "BENCH.json" in capsys.readouterr().err

    def test_bench_check_rejects_unreadable_or_invalid(self, tmp_path, capsys):
        assert main(["bench", "--check", str(tmp_path / "missing.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{torn")
        assert main(["bench", "--check", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_backends_command(self, capsys):
        assert main(["backends", "--sets", "5"]) == 0
        out = capsys.readouterr().out
        assert "backend-comparison" in out
        assert "amc-max" in out

    def test_sensitivity_command(self, tmp_path, capsys):
        out_dir = str(tmp_path / "sens")
        assert main(["sensitivity", "--sets", "5",
                     "--output-dir", out_dir]) == 0
        out = capsys.readouterr().out
        assert "sweep-df" in out
        assert "sweep-os" in out
        assert "sweep-phi" in out
        assert os.path.exists(os.path.join(out_dir, "sweep-df.csv"))


GOOD_DOC = {
    "name": "pair",
    "criticality": {"hi": "B", "lo": "D"},
    "tasks": [
        {"name": "hi", "period": 100, "wcet": 10,
         "criticality": "HI", "failure_probability": 1e-4},
        {"name": "lo", "period": 50, "wcet": 5,
         "criticality": "LO", "failure_probability": 1e-4},
    ],
}


class TestAnalyzeErrorHandling:
    """Malformed input yields a one-line diagnostic, never a traceback."""

    def test_missing_file(self, tmp_path, capsys):
        assert main(["analyze", "--system", str(tmp_path / "nope.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("ftmc: error: cannot read")
        assert "Traceback" not in err
        assert err.count("\n") == 1

    def test_invalid_json(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["analyze", "--system", str(path)]) == 2
        err = capsys.readouterr().err
        assert "not valid JSON" in err
        assert "Traceback" not in err

    def test_semantically_invalid_document(self, tmp_path, capsys):
        doc = dict(GOOD_DOC, tasks=[dict(GOOD_DOC["tasks"][0], period=-1)])
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        assert main(["analyze", "--system", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("ftmc: error:")
        assert "period" in err


class TestLintCommand:
    def _write(self, tmp_path, doc) -> str:
        path = tmp_path / "system.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_requires_a_path(self, capsys):
        assert main(["lint"]) == 2
        assert "FILE.json" in capsys.readouterr().err

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        assert main(["lint", self._write(tmp_path, GOOD_DOC)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s), 0 info(s)" in out

    def test_seeded_defect_is_flagged(self, tmp_path, capsys):
        doc = dict(GOOD_DOC, tasks=[dict(GOOD_DOC["tasks"][0], wcet=-3),
                                    GOOD_DOC["tasks"][1]])
        assert main(["lint", self._write(tmp_path, doc)]) == 1
        out = capsys.readouterr().out
        assert "FTMC003" in out
        assert "WCET must be non-negative" in out

    def test_missing_file_is_a_diagnostic_not_a_traceback(self, tmp_path,
                                                          capsys):
        assert main(["lint", str(tmp_path / "absent.json")]) == 1
        captured = capsys.readouterr()
        assert "FTMC040" in captured.out
        assert "Traceback" not in captured.out + captured.err

    def test_strict_escalates_warnings(self, tmp_path, capsys):
        doc = dict(GOOD_DOC, tasks=[
            dict(GOOD_DOC["tasks"][0], deadline=200),  # D > T warning
            GOOD_DOC["tasks"][1],
        ])
        path = self._write(tmp_path, doc)
        assert main(["lint", path]) == 0
        assert main(["lint", path, "--strict"]) == 2
        assert "FTMC005" in capsys.readouterr().out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        assert main(["lint", self._write(tmp_path, GOOD_DOC),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"] == {"errors": 0, "warnings": 0, "infos": 0}
        assert payload["diagnostics"] == []

    def test_accepts_system_flag_like_analyze(self, tmp_path, capsys):
        assert main(["lint", "--system",
                     self._write(tmp_path, GOOD_DOC)]) == 0

    def test_golden_json_output(self, capsys, monkeypatch):
        """--format json output is byte-stable (golden file)."""
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint", "tests/data/lint_fixture.json",
                     "--format", "json"]) == 1
        out = capsys.readouterr().out
        with open(os.path.join(REPO_ROOT, "tests", "data",
                               "lint_fixture.expected.json")) as handle:
            expected = handle.read()
        assert out == expected


class TestSelfcheckCommand:
    def test_shipped_tree_is_clean(self, capsys):
        assert main(["selfcheck"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_strict_mode_also_clean(self, capsys):
        assert main(["selfcheck", "--strict"]) == 0

    def test_explicit_target_directory(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def f(xs=[]):\n    pass\n")
        assert main(["selfcheck", str(tmp_path)]) == 1
        assert "FTMCC02" in capsys.readouterr().out

    def test_nonexistent_target_fails_cleanly(self, tmp_path, capsys):
        assert main(["selfcheck", str(tmp_path / "missing")]) == 2
        assert "not a directory" in capsys.readouterr().err

    # The acceptance fixture: an unseeded RNG draw laundered through two
    # assignments into a repro.io writer inside a runner-scoped module.
    PLANT = (
        "import random\n"
        "from repro.io import append_jsonl\n"
        "\n"
        "def record_shard(path, shard_id):\n"
        "    jitter = random.random()\n"
        '    record = {"shard": shard_id, "jitter": jitter}\n'
        "    append_jsonl(path, record)\n"
    )

    def plant(self, tmp_path):
        runner = tmp_path / "runner"
        runner.mkdir()
        (runner / "plant.py").write_text(self.PLANT)
        return tmp_path

    def test_planted_rng_flow_is_traced_in_text(self, tmp_path, capsys):
        root = self.plant(tmp_path)
        assert main(["selfcheck", str(root), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "FTMCD01" in out
        assert "runner/plant.py:7" in out
        assert "source: random.random()" in out
        assert "assigned to 'jitter'" in out
        assert "sink: append_jsonl(...)" in out

    def test_planted_rng_flow_is_traced_in_sarif(self, tmp_path, capsys):
        root = self.plant(tmp_path)
        code = main(
            ["selfcheck", str(root), "--no-baseline", "--format", "sarif"]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        (result,) = doc["runs"][0]["results"]
        assert result["ruleId"] == "FTMCD01"
        physical = result["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "runner/plant.py"
        assert physical["region"]["startLine"] == 7
        steps = result["codeFlows"][0]["threadFlows"][0]["locations"]
        assert "random.random()" in steps[0]["location"]["message"]["text"]
        assert steps[-1]["location"]["message"]["text"].startswith("sink")

    def test_baseline_round_trip_via_cli(self, tmp_path, capsys):
        root = self.plant(tmp_path)
        baseline = str(tmp_path / "accepted.json")
        code = main(
            ["selfcheck", str(root), "--baseline", baseline,
             "--update-baseline"]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.out
        assert "wrote 1 entrie(s)" in captured.err
        # Second run against the written baseline: suppressed, clean.
        assert main(["selfcheck", str(root), "--baseline", baseline]) == 0
        assert "suppressed 1 finding(s)" in capsys.readouterr().err

    def test_tests_profile_relaxes_probability_equality(self, tmp_path,
                                                        capsys):
        (tmp_path / "test_mod.py").write_text(
            "def test_round_trip(task):\n    assert task.pfh == 1e-5\n"
        )
        assert main(["selfcheck", str(tmp_path), "--no-baseline"]) == 1
        assert "FTMCC01" in capsys.readouterr().out
        code = main(
            ["selfcheck", str(tmp_path), "--no-baseline",
             "--profile", "tests", "--strict"]
        )
        assert code == 0

    def test_fix_flag_rewrites_provable_sites(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(
            "def visit(items):\n"
            "    seen = set(items)\n"
            "    return list(seen)\n"
        )
        assert main(["selfcheck", str(tmp_path), "--fix",
                     "--no-baseline"]) == 0
        assert "applied 1 rewrite(s)" in capsys.readouterr().err
        assert "list(sorted(seen))" in target.read_text()


class TestCampaignCommand:
    def test_parser_accepts_campaign_knobs(self):
        args = build_parser().parse_args(
            ["campaign", "fig1", "--chaos", "42", "--resume",
             "--timeout", "9", "--max-retries", "4", "--retry-delay", "0.2"]
        )
        assert args.experiment == "campaign"
        assert args.path == "fig1"
        assert args.chaos == 42
        assert args.resume is True
        assert args.timeout == 9.0
        assert args.max_retries == 4
        assert args.retry_delay == 0.2

    def test_campaign_without_target_fails(self, capsys):
        assert main(["campaign"]) == 2
        assert "needs an experiment" in capsys.readouterr().err

    def test_unknown_campaign_fails(self, capsys):
        assert main(["campaign", "fig9"]) == 2
        assert "unknown campaign" in capsys.readouterr().err

    def test_negative_max_retries_fails(self, capsys):
        assert main(["campaign", "fig1", "--max-retries", "-1"]) == 2
        assert "--max-retries" in capsys.readouterr().err

    def test_tables_campaign_runs_end_to_end(self, tmp_path, capsys):
        assert main(
            ["campaign", "tables", "--output-dir", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "4/4 shards completed" in out
        assert (tmp_path / "tables.coverage.json").exists()
        assert (tmp_path / "table1.json").exists()

    def test_resume_without_checkpoint_exits_2(self, tmp_path, capsys):
        assert main(
            ["campaign", "tables", "--output-dir", str(tmp_path), "--resume"]
        ) == 2
        assert "no usable checkpoint" in capsys.readouterr().err


class TestPlanCommand:
    @pytest.fixture()
    def system(self, tmp_path, fms):
        from repro.io import save_taskset

        path = str(tmp_path / "fms.json")
        save_taskset(fms, path)
        return path

    def test_plan_requires_system(self, capsys):
        assert main(["plan"]) == 2
        assert "--system" in capsys.readouterr().err

    def test_plan_schedulable_prints_partition(self, system, capsys):
        assert main(["plan", "--system", system, "--cores", "2"]) == 0
        out = capsys.readouterr().out
        assert "SCHEDULABLE" in out
        assert "P0" in out and "P1" in out
        assert "strategy" in out

    def test_plan_positional_target(self, system, capsys):
        assert main(["plan", system, "--cores", "2"]) == 0
        assert "SCHEDULABLE" in capsys.readouterr().out

    def test_plan_infeasible_exit_code(self, system, capsys):
        assert main(["plan", "--system", system, "--cores", "1"]) == 1

    def test_plan_no_exact_notes_inconclusive(self, system, capsys):
        code = main(
            ["plan", "--system", system, "--cores", "1", "--no-exact"]
        )
        out = capsys.readouterr().out
        if code == 1 and "INCONCLUSIVE" not in out:
            pytest.fail("heuristic-only miss must be flagged inconclusive")

    def test_plan_unknown_backend(self, system, capsys):
        assert main(
            ["plan", "--system", system, "--cores", "2",
             "--backend", "pfair"]
        ) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_plan_bad_cores(self, system, capsys):
        assert main(["plan", "--system", system, "--cores", "0"]) == 2

    def test_plan_missing_file(self, tmp_path, capsys):
        assert main(
            ["plan", "--system", str(tmp_path / "ghost.json")]
        ) == 2

    def test_campaign_multicore_listed(self, capsys):
        assert main(["campaign"]) == 2
        assert "multicore" in capsys.readouterr().err
