"""Tests for the FMS use-case generator (Table 4) and the pinned instance."""

import pytest

from repro.core.profiles import minimal_reexecution_profiles
from repro.experiments.fms_sweep import u_mc_degrade, u_mc_kill
from repro.gen.fms import (
    CANONICAL_SEED,
    FMS_PERIODS_B,
    FMS_PERIODS_C,
    canonical_fms,
    generate_fms,
)
from repro.model.criticality import CriticalityRole, DO178BLevel


class TestTable4Conformance:
    def test_eleven_tasks(self):
        assert len(generate_fms(0)) == 11

    def test_seven_b_and_four_c(self):
        ts = generate_fms(0)
        assert len(ts.hi_tasks) == 7
        assert len(ts.lo_tasks) == 4

    def test_levels_bound_to_b_and_c(self):
        ts = generate_fms(0)
        assert ts.spec.hi_level is DO178BLevel.B
        assert ts.spec.lo_level is DO178BLevel.C

    def test_periods_match_table4(self):
        ts = generate_fms(0)
        hi_periods = tuple(t.period for t in ts.hi_tasks)
        lo_periods = tuple(t.period for t in ts.lo_tasks)
        assert hi_periods == FMS_PERIODS_B
        assert lo_periods == FMS_PERIODS_C

    def test_implicit_deadlines(self):
        assert generate_fms(0).is_implicit_deadline

    def test_wcets_within_ranges(self):
        for seed in range(20):
            ts = generate_fms(seed)
            for task in ts.hi_tasks:
                assert 0.0 < task.wcet <= 20.0
            for task in ts.lo_tasks:
                assert 0.0 < task.wcet <= 200.0

    def test_failure_probability(self):
        assert all(t.failure_probability == 1e-5 for t in generate_fms(0))

    def test_deterministic_by_seed(self):
        a = generate_fms(99)
        b = generate_fms(99)
        assert [t.wcet for t in a] == [t.wcet for t in b]


class TestCanonicalInstance:
    """The pinned instance must exhibit the paper's Section 5.1 narrative."""

    def test_uses_canonical_seed(self):
        assert [t.wcet for t in canonical_fms()] == [
            t.wcet for t in generate_fms(CANONICAL_SEED)
        ]

    def test_minimal_profiles_are_paper_values(self, fms):
        profiles = minimal_reexecution_profiles(fms)
        assert (profiles.n_hi, profiles.n_lo) == (3, 2)

    def test_unschedulable_without_adaptation(self, fms):
        inflated = 3 * fms.utilization(CriticalityRole.HI) + 2 * fms.utilization(
            CriticalityRole.LO
        )
        assert inflated > 1.0

    def test_u_mc_crosses_one_between_2_and_3_killing(self, fms):
        assert u_mc_kill(fms, 3, 2, 2) <= 1.0
        assert u_mc_kill(fms, 3, 2, 3) > 1.0

    def test_u_mc_crosses_one_between_2_and_3_degradation(self, fms):
        assert u_mc_degrade(fms, 3, 2, 2, 6.0) <= 1.0
        assert u_mc_degrade(fms, 3, 2, 3, 6.0) > 1.0

    def test_u_mc_monotone_in_n_prime(self, fms):
        kills = [u_mc_kill(fms, 3, 2, n) for n in (1, 2, 3, 4)]
        assert kills == sorted(kills)
        degrades = [u_mc_degrade(fms, 3, 2, n, 6.0) for n in (1, 2, 3)]
        assert degrades == sorted(degrades)
