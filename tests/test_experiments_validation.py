"""Tests for the simulation validation campaign experiment."""

import pytest

from repro.experiments.validation_campaign import run_validation_campaign


class TestValidationCampaign:
    @pytest.mark.parametrize("mechanism", ["kill", "degrade"])
    def test_every_accepted_system_validates(self, mechanism):
        """The core soundness claim: accepted == validated everywhere."""
        result = run_validation_campaign(
            utilizations=(0.6, 0.8),
            sets_per_point=8,
            runs_per_set=2,
            horizon=60_000.0,
            mechanism=mechanism,
        )
        for accepted, validated, misses in zip(
            result.column("accepted"),
            result.column("validated"),
            result.column("hi_misses"),
        ):
            assert validated == accepted
            assert misses == 0

    def test_some_systems_accepted(self):
        result = run_validation_campaign(
            utilizations=(0.5,), sets_per_point=10, runs_per_set=1,
            horizon=30_000.0,
        )
        assert result.column("accepted")[0] > 0

    def test_mode_switches_exercised(self):
        """At the inflated fault rate, some runs must actually switch —
        otherwise the campaign would not stress HI mode at all."""
        result = run_validation_campaign(
            utilizations=(0.7, 0.9), sets_per_point=10, runs_per_set=3,
            horizon=120_000.0, probability_scale=2000.0,
        )
        assert sum(result.column("mode_switch_runs")) > 0

    def test_rejects_unknown_mechanism(self):
        with pytest.raises(ValueError, match="mechanism"):
            run_validation_campaign(mechanism="pause")

    def test_cli_validate_exit_code(self, capsys):
        from repro.cli import main

        assert main(["validate", "--sets", "4"]) == 0
        out = capsys.readouterr().out
        assert "validation-kill" in out
        assert "validation-degrade" in out
