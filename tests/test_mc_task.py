"""Unit tests for the conventional (Vestal) MC task model (Section 2.2)."""

import pytest

from repro.model.criticality import CriticalityRole
from repro.model.mc_task import MCTask, MCTaskSet


def _mc(**overrides) -> MCTask:
    params = dict(
        name="t",
        period=100.0,
        deadline=100.0,
        wcet_lo=5.0,
        wcet_hi=15.0,
        criticality=CriticalityRole.HI,
    )
    params.update(overrides)
    return MCTask(**params)


def table3_taskset() -> MCTaskSet:
    """The converted set of Table 3 (Example 4.1)."""
    return MCTaskSet(
        [
            MCTask("tau1", 60, 60, 10, 15, CriticalityRole.HI),
            MCTask("tau2", 25, 25, 8, 12, CriticalityRole.HI),
            MCTask("tau3", 40, 40, 7, 7, CriticalityRole.LO),
            MCTask("tau4", 90, 90, 6, 6, CriticalityRole.LO),
            MCTask("tau5", 70, 70, 8, 8, CriticalityRole.LO),
        ],
        name="table3",
    )


class TestMCTaskValidation:
    def test_vestal_monotonicity_enforced(self):
        with pytest.raises(ValueError, match="monotonicity"):
            _mc(wcet_lo=20.0, wcet_hi=10.0)

    def test_equal_wcets_allowed_for_hi(self):
        task = _mc(wcet_lo=10.0, wcet_hi=10.0)
        assert task.wcet_lo == task.wcet_hi

    def test_lo_task_requires_equal_wcets(self):
        with pytest.raises(ValueError, match="C\\(LO\\) == C\\(HI\\)"):
            _mc(criticality=CriticalityRole.LO, wcet_lo=5.0, wcet_hi=10.0)

    def test_lo_task_with_equal_wcets(self):
        task = _mc(criticality=CriticalityRole.LO, wcet_lo=5.0, wcet_hi=5.0)
        assert task.wcet(CriticalityRole.HI) == 5.0

    @pytest.mark.parametrize("period", [0.0, -1.0])
    def test_rejects_nonpositive_period(self, period):
        with pytest.raises(ValueError, match="period"):
            _mc(period=period)

    def test_rejects_negative_wcets(self):
        with pytest.raises(ValueError, match="non-negative"):
            _mc(wcet_lo=-1.0, wcet_hi=5.0)


class TestMCTaskAccessors:
    def test_wcet_by_level(self):
        task = _mc(wcet_lo=5.0, wcet_hi=15.0)
        assert task.wcet(CriticalityRole.LO) == 5.0
        assert task.wcet(CriticalityRole.HI) == 15.0

    def test_utilization_by_level(self):
        task = _mc(wcet_lo=5.0, wcet_hi=15.0, period=100.0)
        assert task.utilization(CriticalityRole.LO) == pytest.approx(0.05)
        assert task.utilization(CriticalityRole.HI) == pytest.approx(0.15)

    def test_implicit_deadline(self):
        assert _mc().is_implicit_deadline
        assert not _mc(deadline=50.0).is_implicit_deadline


class TestMCTaskSet:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MCTaskSet([_mc(), _mc()])

    def test_partitions(self):
        mc = table3_taskset()
        assert [t.name for t in mc.hi_tasks] == ["tau1", "tau2"]
        assert [t.name for t in mc.lo_tasks] == ["tau3", "tau4", "tau5"]

    def test_lookup(self):
        mc = table3_taskset()
        assert mc.task("tau2").wcet_hi == 12
        with pytest.raises(KeyError):
            mc.task("nope")

    def test_table3_utilizations(self):
        """The U_chi1^chi2 values behind Example 4.1's EDF-VD check."""
        mc = table3_taskset()
        assert mc.u_hi_lo == pytest.approx(10 / 60 + 8 / 25)
        assert mc.u_hi_hi == pytest.approx(15 / 60 + 12 / 25)
        assert mc.u_lo_lo == pytest.approx(7 / 40 + 6 / 90 + 8 / 70)
        assert mc.u_lo_hi == pytest.approx(mc.u_lo_lo)

    def test_generic_utilization_accessor_matches_aliases(self):
        mc = table3_taskset()
        assert mc.utilization(
            CriticalityRole.HI, CriticalityRole.LO
        ) == pytest.approx(mc.u_hi_lo)
        assert mc.utilization(
            CriticalityRole.LO, CriticalityRole.HI
        ) == pytest.approx(mc.u_lo_hi)

    def test_is_implicit_deadline(self):
        assert table3_taskset().is_implicit_deadline

    def test_describe_contains_budgets(self):
        text = table3_taskset().describe()
        assert "C(LO)" in text and "C(HI)" in text
        assert "tau5" in text

    def test_len_and_indexing(self):
        mc = table3_taskset()
        assert len(mc) == 5
        assert mc[1].name == "tau2"

    def test_empty_set_utilizations(self):
        empty = MCTaskSet([])
        assert empty.u_hi_lo == 0.0
        assert empty.u_lo_lo == 0.0


class TestMCTaskSetFreeze:
    """The set is frozen after construction: cached verdicts stay honest.

    ``cache_key()`` memoizes lazily, and the shared schedulability cache
    keys on it — a post-construction mutation would let a stale verdict
    be served for a set that no longer matches it.
    """

    def test_attribute_assignment_rejected(self):
        mc = table3_taskset()
        with pytest.raises(AttributeError, match="frozen"):
            mc.tasks = ()
        with pytest.raises(AttributeError, match="frozen"):
            mc.name = "renamed"

    def test_mutated_set_cannot_serve_a_stale_verdict(self, example31):
        """Regression: swap the task tuple after a cached verdict."""
        from repro.core.backends import (
            EDFVDBackend,
            clear_schedulability_cache,
        )
        from repro.core.conversion import convert_uniform

        clear_schedulability_cache()
        try:
            mc = convert_uniform(example31, 3, 1, 2)
            backend = EDFVDBackend()
            backend.is_schedulable_cached(mc)
            heavy = MCTask("x", 1.0, 1.0, 0.9, 0.99, CriticalityRole.HI)
            with pytest.raises(AttributeError, match="frozen"):
                mc.tasks = (*mc.tasks, heavy)
        finally:
            clear_schedulability_cache()

    def test_cache_key_stable_and_name_free(self):
        a = table3_taskset()
        b = table3_taskset()
        assert a.cache_key() == a.cache_key()
        assert a.cache_key() == b.cache_key()
