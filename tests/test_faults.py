"""Unit tests for the fault model and the profile containers."""

import pytest

from repro.model.faults import (
    AdaptationProfile,
    FaultToleranceConfig,
    ReexecutionProfile,
    round_failure_probability,
    round_success_probability,
)


class TestRoundProbabilities:
    def test_single_execution(self):
        assert round_failure_probability(1e-5, 1) == pytest.approx(1e-5)

    def test_three_executions(self):
        """f^n as used throughout eqs. (2)-(7): 1e-5 cubed."""
        assert round_failure_probability(1e-5, 3) == pytest.approx(1e-15)

    def test_success_complements_failure(self):
        f, n = 1e-3, 2
        assert round_success_probability(f, n) == pytest.approx(
            1.0 - round_failure_probability(f, n)
        )

    def test_zero_failure_probability(self):
        assert round_failure_probability(0.0, 5) == 0.0
        assert round_success_probability(0.0, 5) == 1.0

    def test_rejects_zero_executions(self):
        with pytest.raises(ValueError, match="executions"):
            round_failure_probability(1e-5, 0)

    def test_rejects_probability_of_one(self):
        with pytest.raises(ValueError, match="probability"):
            round_failure_probability(1.0, 2)


class TestReexecutionProfile:
    def test_uniform_assigns_by_criticality(self, example31):
        profile = ReexecutionProfile.uniform(example31, 3, 1)
        assert profile["tau1"] == 3
        assert profile["tau2"] == 3
        for name in ("tau3", "tau4", "tau5"):
            assert profile[name] == 1

    def test_lookup_by_task_object(self, example31):
        profile = ReexecutionProfile.uniform(example31, 2, 1)
        assert profile[example31.task("tau1")] == 2

    def test_constant(self, example31):
        profile = ReexecutionProfile.constant(example31.lo_tasks, 4)
        assert len(profile) == 3
        assert all(profile[t] == 4 for t in example31.lo_tasks)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match=">= 1"):
            ReexecutionProfile({"a": 0})

    def test_rejects_non_integer(self):
        with pytest.raises(TypeError, match="int"):
            ReexecutionProfile({"a": 2.5})  # type: ignore[dict-item]

    def test_rejects_bool(self):
        with pytest.raises(TypeError, match="int"):
            ReexecutionProfile({"a": True})  # type: ignore[dict-item]

    def test_validate_for_flags_missing_tasks(self, example31):
        partial = ReexecutionProfile({"tau1": 3})
        with pytest.raises(ValueError, match="missing"):
            partial.validate_for(example31)

    def test_contains_and_iteration(self, example31):
        profile = ReexecutionProfile.uniform(example31, 2, 2)
        assert "tau1" in profile
        assert example31.task("tau5") in profile
        assert "ghost" not in profile
        assert set(profile) == {t.name for t in example31}

    def test_equality_and_hash(self, example31):
        a = ReexecutionProfile.uniform(example31, 3, 1)
        b = ReexecutionProfile.uniform(example31, 3, 1)
        c = ReexecutionProfile.uniform(example31, 3, 2)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_profile_types_never_equal(self, example31):
        re_profile = ReexecutionProfile({"tau1": 2, "tau2": 2})
        adapt = AdaptationProfile({"tau1": 2, "tau2": 2})
        assert re_profile != adapt

    def test_as_dict_and_get(self, example31):
        profile = ReexecutionProfile.uniform(example31, 3, 1)
        d = profile.as_dict()
        assert d["tau1"] == 3
        assert profile.get("ghost") is None
        assert profile.get("ghost", 7) == 7


class TestAdaptationProfile:
    def test_uniform_covers_only_hi_tasks(self, example31):
        adaptation = AdaptationProfile.uniform(example31, 2)
        assert set(adaptation) == {"tau1", "tau2"}

    def test_validate_requires_all_hi_tasks(self, example31, example31_profiles):
        partial = AdaptationProfile({"tau1": 2})
        with pytest.raises(ValueError, match="missing HI task"):
            partial.validate_for(example31, example31_profiles)

    def test_validate_rejects_profile_above_reexecution(
        self, example31, example31_profiles
    ):
        too_big = AdaptationProfile.uniform(example31, 4)  # n_HI is 3
        with pytest.raises(ValueError, match="exceeds"):
            too_big.validate_for(example31, example31_profiles)

    def test_equal_profile_is_accepted(self, example31, example31_profiles):
        """n' == n encodes "never adapt" (library extension of n' < n)."""
        boundary = AdaptationProfile.uniform(example31, 3)
        boundary.validate_for(example31, example31_profiles)

    def test_paper_profile_validates(
        self, example31, example31_profiles, example31_adaptation
    ):
        example31_adaptation.validate_for(example31, example31_profiles)


class TestFaultToleranceConfig:
    def test_mechanism_none(self, example31, example31_profiles):
        config = FaultToleranceConfig(reexecution=example31_profiles)
        assert config.mechanism == "none"

    def test_mechanism_kill(
        self, example31, example31_profiles, example31_adaptation
    ):
        config = FaultToleranceConfig(
            reexecution=example31_profiles, adaptation=example31_adaptation
        )
        assert config.mechanism == "kill"

    def test_mechanism_degrade(
        self, example31, example31_profiles, example31_adaptation
    ):
        config = FaultToleranceConfig(
            reexecution=example31_profiles,
            adaptation=example31_adaptation,
            degradation_factor=6.0,
        )
        assert config.mechanism == "degrade"

    @pytest.mark.parametrize("df", [1.0, 0.5, -2.0])
    def test_rejects_degradation_factor_at_or_below_one(
        self, example31_profiles, example31_adaptation, df
    ):
        with pytest.raises(ValueError, match="factor"):
            FaultToleranceConfig(
                reexecution=example31_profiles,
                adaptation=example31_adaptation,
                degradation_factor=df,
            )
