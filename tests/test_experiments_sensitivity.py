"""Tests for the sensitivity sweeps (df, OS, P_HI)."""

import math

import pytest

from repro.experiments.sensitivity import (
    sweep_degradation_factor,
    sweep_operation_hours,
    sweep_p_hi,
)


class TestDegradationFactorSweep:
    @pytest.fixture(scope="class")
    def sweep(self, request):
        from repro.gen.fms import canonical_fms

        return sweep_degradation_factor(canonical_fms())

    def test_fms_needs_df_of_at_least_three(self, sweep):
        outcome = dict(zip(sweep.column("df"), sweep.column("success")))
        assert not outcome[1.5]
        assert not outcome[2.0]
        assert outcome[3.0]
        assert outcome[6.0]

    def test_success_monotone_in_df(self, sweep):
        """Once feasible, increasing df never breaks feasibility here."""
        successes = sweep.column("success")
        first_true = successes.index(True)
        assert all(successes[first_true:])

    def test_adaptation_profile_nondecreasing_in_df(self, sweep):
        values = [n for n in sweep.column("n_prime") if n is not None]
        assert values == sorted(values)

    def test_safety_bound_df_independent_at_fixed_n_prime(self, sweep):
        """eq. (7) ignores df: equal n' rows report equal pfh(LO)."""
        rows = {
            n: p
            for n, p in zip(sweep.column("n_prime"), sweep.column("pfh_lo"))
            if n is not None
        }
        # df = 6, 12, 100 all land on n' = 2 with identical pfh.
        pfhs = [
            p
            for n, p in zip(sweep.column("n_prime"), sweep.column("pfh_lo"))
            if n == 2
        ]
        assert len(pfhs) >= 2
        assert all(p == pytest.approx(pfhs[0]) for p in pfhs)
        assert rows  # non-empty


class TestOperationHoursSweep:
    @pytest.fixture(scope="class")
    def sweep(self, request):
        from repro.gen.fms import canonical_fms

        return sweep_operation_hours(canonical_fms())

    def test_both_bounds_grow_with_os(self, sweep):
        kills = sweep.column("pfh_lo_killing")
        degrades = sweep.column("pfh_lo_degradation")
        assert kills == sorted(kills)
        assert degrades == sorted(degrades)

    def test_killing_dominates_degradation_at_every_os(self, sweep):
        for kill, degrade in zip(
            sweep.column("pfh_lo_killing"), sweep.column("pfh_lo_degradation")
        ):
            assert degrade < kill

    def test_gap_is_many_orders(self, sweep):
        kill = sweep.column("pfh_lo_killing")[-1]
        degrade = sweep.column("pfh_lo_degradation")[-1]
        assert math.log10(kill) - math.log10(degrade) > 8.0


class TestPHiSweep:
    def test_acceptance_decreases_with_hi_share(self):
        sweep = sweep_p_hi(
            utilization=0.8, shares=(0.1, 0.4, 0.6), sets_per_point=30
        )
        acceptance = sweep.column("acceptance")
        assert acceptance[0] >= acceptance[-1]

    def test_bounds_and_counts(self):
        sweep = sweep_p_hi(shares=(0.2,), sets_per_point=10)
        assert sweep.column("sets") == [10]
        assert 0.0 <= sweep.column("acceptance")[0] <= 1.0
