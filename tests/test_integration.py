"""Cross-module integration tests: generator -> FT-S -> simulator."""

import pytest

from repro.analysis.edf import schedulable_without_adaptation
from repro.core.backends import AMCBackend, EDFVDBackend, EDFVDDegradationBackend
from repro.core.conversion import convert_uniform
from repro.core.ftmc import ft_edf_vd, ft_edf_vd_degradation, ft_schedule
from repro.core.profiles import minimal_reexecution_profiles
from repro.gen.taskset import generate_taskset
from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.faults import ReexecutionProfile
from repro.sim.runtime import simulate_ft_result

SPEC_DE = DualCriticalitySpec.from_names("B", "D")
SPEC_C = DualCriticalitySpec.from_names("B", "C")


class TestGeneratedPipelines:
    @pytest.mark.parametrize("seed", range(5))
    def test_fts_accepted_sets_simulate_cleanly(self, seed):
        """Whenever FT-S accepts a random set, a fault-free run must not
        miss any deadline — the empirical face of Theorem 4.1."""
        taskset = generate_taskset(0.8, SPEC_DE, seed)
        result = ft_edf_vd(taskset)
        if not result.success:
            pytest.skip("set not schedulable at this seed")
        metrics = simulate_ft_result(
            taskset, result, horizon=100_000.0, seed=seed, probability_scale=0.0
        )
        assert metrics.deadline_misses() == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_hi_protected_under_heavy_faults(self, seed):
        taskset = generate_taskset(0.7, SPEC_DE, seed)
        result = ft_edf_vd(taskset)
        if not result.success:
            pytest.skip("set not schedulable at this seed")
        metrics = simulate_ft_result(
            taskset, result, horizon=500_000.0, seed=seed,
            probability_scale=1000.0,
        )
        assert metrics.deadline_misses(CriticalityRole.HI) == 0

    @pytest.mark.parametrize("seed", range(8))
    def test_adaptation_only_helps(self, seed):
        """FT-S must accept every baseline-schedulable set or more."""
        taskset = generate_taskset(0.6, SPEC_DE, seed)
        profiles = minimal_reexecution_profiles(taskset)
        assert profiles is not None
        reexecution = ReexecutionProfile.uniform(
            taskset, profiles.n_hi, profiles.n_lo
        )
        baseline = schedulable_without_adaptation(taskset, reexecution)
        adapted = ft_edf_vd(taskset).success
        if baseline:
            # The baseline fits U <= 1; EDF-VD's test at n' = n_HI is not
            # strictly weaker, but the FT-S search over n' must find some
            # feasible profile whenever the LO level has no safety ceiling.
            assert adapted

    @pytest.mark.parametrize("seed", range(6))
    def test_degradation_dominates_killing_for_lo_c(self, seed):
        """Section 5.2: degradation accepts whatever killing accepts."""
        taskset = generate_taskset(0.5, SPEC_C, seed)
        kill = ft_edf_vd(taskset)
        degrade = ft_edf_vd_degradation(taskset, 6.0)
        if kill.success:
            assert degrade.success


class TestBackendAgreement:
    @pytest.mark.parametrize("seed", range(4))
    def test_all_backends_run_on_random_sets(self, seed):
        taskset = generate_taskset(0.6, SPEC_DE, seed)
        for backend in (EDFVDBackend(), EDFVDDegradationBackend(6.0),
                        AMCBackend()):
            result = ft_schedule(taskset, backend)
            assert result.backend_name == backend.name
            if result.success:
                assert backend.is_schedulable(result.mc_taskset)

    def test_success_profiles_internally_consistent(self, example31):
        result = ft_edf_vd(example31)
        assert result.n1_hi <= result.adaptation <= result.n2_hi
        assert result.adaptation <= result.n_hi
        mc = convert_uniform(
            example31, result.n_hi, result.n_lo, result.adaptation
        )
        assert [t.wcet_hi for t in mc] == [
            t.wcet_hi for t in result.mc_taskset
        ]


class TestEndToEndFMSStory:
    """The complete Section 5.1 narrative on the pinned instance."""

    def test_narrative(self, fms):
        # 1. Safety alone requires n_HI = 3, n_LO = 2 ...
        profiles = minimal_reexecution_profiles(fms)
        assert (profiles.n_hi, profiles.n_lo) == (3, 2)
        # 2. ... which is unschedulable without adaptation ...
        reexecution = ReexecutionProfile.uniform(fms, 3, 2)
        assert not schedulable_without_adaptation(fms, reexecution)
        # 3. ... killing cannot help (safe region disjoint) ...
        assert not ft_edf_vd(fms).success
        # 4. ... but degradation succeeds at n' = 2 ...
        degrade = ft_edf_vd_degradation(fms, 6.0)
        assert degrade.success and degrade.adaptation == 2
        # 5. ... and the resulting system simulates without HI misses.
        metrics = simulate_ft_result(
            fms, degrade, horizon=600_000.0, seed=0, probability_scale=500.0
        )
        assert metrics.deadline_misses(CriticalityRole.HI) == 0
