"""Tests for the AST code self-analysis (``ftmc selfcheck``).

Each FTMCC0x rule is exercised on an inline snippet (violating and
clean), and the shipped package itself must pass — the same gate CI
enforces.
"""

from __future__ import annotations

import textwrap

from repro.lint.codecheck import (
    check_path,
    check_source,
    default_root,
    selfcheck,
)


def codes(source: str, **kwargs) -> list[str]:
    return [d.code for d in check_source(textwrap.dedent(source), **kwargs)]


class TestSyntaxError:
    def test_ftmcc00_on_unparsable_source(self):
        diags = check_source("def broken(:\n", filename="bad.py")
        assert [d.code for d in diags] == ["FTMCC00"]
        assert diags[0].location.startswith("bad.py:")
        assert "syntax error" in diags[0].message


class TestProbabilityEquality:
    def test_ftmcc01_equality_on_probability_name(self):
        assert codes("ok = failure_probability == 0.0") == ["FTMCC01"]

    def test_ftmcc01_inequality_and_attributes(self):
        assert codes("if task.pfh_bound != limit:\n    pass") == ["FTMCC01"]

    def test_ftmcc01_call_results_count(self):
        assert codes("flag = pfh_of_tasks(ts, prof) == 0.0") == ["FTMCC01"]

    def test_ftmcc01_chained_comparison(self):
        assert codes("x = 0.0 <= prob_hi == ceiling") == ["FTMCC01"]

    def test_clean_comparisons_pass(self):
        assert codes("ok = count == 3") == []
        assert codes("ok = math.isclose(pfh, 0.0)") == []
        assert codes("ok = failure_probability <= 0.0") == []

    def test_ftmcc01_attribute_access(self):
        # The marker may sit anywhere in the chain, not just rightmost.
        assert codes("ok = estimate.pfh == x") == ["FTMCC01"]
        assert codes("ok = pfh_bound.value == x") == ["FTMCC01"]

    def test_ftmcc01_keyword_argument(self):
        assert codes("ok = f(prob=p) != q") == ["FTMCC01"]
        assert codes("ok = compare(a, pfh=bound) == other") == ["FTMCC01"]

    def test_ftmcc01_subscript_operand(self):
        assert codes("ok = row[pfh_index] == x") == ["FTMCC01"]

    def test_ftmcc01_relaxed_for_tests_profile(self):
        assert codes("ok = task.pfh == 1e-5", allow_prob_eq=True) == []


class TestMutableDefaults:
    def test_ftmcc02_literal_defaults(self):
        assert codes("def f(xs=[]):\n    pass") == ["FTMCC02"]
        assert codes("def f(m={}):\n    pass") == ["FTMCC02"]

    def test_ftmcc02_constructor_defaults(self):
        assert codes("def f(xs=list()):\n    pass") == ["FTMCC02"]

    def test_ftmcc02_keyword_only_and_lambda(self):
        assert codes("def f(*, xs=set()):\n    pass") == ["FTMCC02"]
        assert codes("g = lambda xs=[]: xs") == ["FTMCC02"]

    def test_clean_defaults_pass(self):
        assert codes("def f(xs=None, n=3, name='x'):\n    pass") == []
        assert codes("def f(xs=()):\n    pass") == []


class TestBareExcept:
    def test_ftmcc03_bare_except(self):
        src = """
        try:
            risky()
        except:
            pass
        """
        assert codes(src) == ["FTMCC03"]

    def test_typed_except_passes(self):
        src = """
        try:
            risky()
        except ValueError:
            pass
        """
        assert codes(src) == []


class TestPrintPlacement:
    def test_ftmcc04_print_in_library_code(self):
        assert codes("print('hello')") == ["FTMCC04"]

    def test_print_allowed_when_flagged(self):
        assert codes("print('hello')", allow_print=True) == []

    def test_shadowed_print_attribute_passes(self):
        assert codes("logger.print('hello')") == []


class TestWriteModeOpen:
    def test_ftmcc05_positional_write_modes(self):
        assert codes("f = open(path, 'w')") == ["FTMCC05"]
        assert codes("f = open(path, 'wb')") == ["FTMCC05"]
        assert codes("f = open(path, 'a')") == ["FTMCC05"]
        assert codes("f = open(path, 'x')") == ["FTMCC05"]
        assert codes("f = open(path, 'r+')") == ["FTMCC05"]

    def test_ftmcc05_keyword_mode(self):
        assert codes("f = open(path, mode='w')") == ["FTMCC05"]

    def test_read_modes_pass(self):
        assert codes("f = open(path)") == []
        assert codes("f = open(path, 'r')") == []
        assert codes("f = open(path, 'rb')") == []
        assert codes("f = open(path, mode='r')") == []

    def test_dynamic_mode_not_flagged(self):
        # A non-literal mode cannot be judged statically; stay silent.
        assert codes("f = open(path, mode)") == []

    def test_allow_write_flag(self):
        assert codes("f = open(path, 'w')", allow_write=True) == []

    def test_shadowed_open_attribute_passes(self):
        assert codes("f = gzip.open(path, 'w')") == []

    def test_ftmcc05_path_write_text(self):
        assert codes(
            "from pathlib import Path\n"
            "Path(p).write_text(data)\n"
        ) == ["FTMCC05"]

    def test_ftmcc05_path_write_bytes_through_chain(self):
        assert codes(
            "import pathlib\n"
            "pathlib.Path(p).with_suffix('.bin').write_bytes(blob)\n"
        ) == ["FTMCC05"]

    def test_ftmcc05_named_path_variable(self):
        src = """
        from pathlib import Path

        def dump(root, payload):
            out = Path(root) / "result.json"
            out.write_text(payload)
        """
        assert codes(src) == ["FTMCC05"]

    def test_ftmcc05_annotated_path_open_write(self):
        src = """
        from pathlib import Path

        def dump(target: Path, payload):
            with target.open("w") as handle:
                handle.write(payload)
        """
        assert codes(src) == ["FTMCC05"]

    def test_path_open_read_passes(self):
        src = """
        from pathlib import Path

        def load(target: Path):
            with target.open() as handle:
                return handle.read()
        """
        assert codes(src) == []
        src_r = """
        from pathlib import Path

        def load(root):
            return (Path(root) / "a.json").open("r")
        """
        assert codes(src_r) == []

    def test_path_methods_on_unknown_objects_pass(self):
        # write_text on something not provably a Path: stay silent.
        assert codes("blob.write_text(data)") == []

    def test_ftmcc05_path_writes_respect_allow_write(self):
        src = "from pathlib import Path\nPath(p).write_text(d)\n"
        assert codes(src, allow_write=True) == []

    def test_io_module_is_exempt_in_tree_walk(self, tmp_path):
        (tmp_path / "io.py").write_text("f = open(path, 'w')\n")
        (tmp_path / "lib.py").write_text("f = open(path, 'w')\n")
        report = check_path(str(tmp_path))
        assert [d.code for d in report] == ["FTMCC05"]
        assert report.by_code("FTMCC05")[0].location == "lib.py:1"


class TestEpsilonLiterals:
    def test_ftmcc06_raw_epsilon_flagged(self):
        assert codes("EPS = 1e-9", forbid_epsilon=True) == ["FTMCC06"]
        assert codes("x = abs(a - b) <= 1e-12", forbid_epsilon=True) == [
            "FTMCC06"
        ]
        assert codes("y = -1e-15", forbid_epsilon=True) == ["FTMCC06"]

    def test_model_scale_floats_pass(self):
        assert codes("period = 0.001", forbid_epsilon=True) == []
        assert codes("horizon = 2.5e6", forbid_epsilon=True) == []
        assert codes("zero = 0.0", forbid_epsilon=True) == []

    def test_integers_never_flagged(self):
        assert codes("n = 0", forbid_epsilon=True) == []
        assert codes("flag = True", forbid_epsilon=True) == []

    def test_rule_off_by_default(self):
        assert codes("EPS = 1e-9") == []

    def test_tolerance_module_is_exempt_in_tree_walk(self, tmp_path):
        analysis = tmp_path / "analysis"
        analysis.mkdir()
        (analysis / "tolerance.py").write_text("REL_EPS = 1e-9\n")
        (analysis / "edf.py").write_text("eps = 1e-9\n")
        (tmp_path / "io.py").write_text("eps = 1e-9\n")
        report = check_path(str(tmp_path))
        assert [d.code for d in report] == ["FTMCC06"]
        location = report.by_code("FTMCC06")[0].location
        assert location.replace("\\", "/") == "analysis/edf.py:1"


class TestClockReads:
    def test_ftmcc07_time_module_reads_flagged(self):
        assert codes("t = time.time()", forbid_clock=True) == ["FTMCC07"]
        assert codes("t = time.monotonic()", forbid_clock=True) == ["FTMCC07"]
        assert codes("t = time.perf_counter_ns()", forbid_clock=True) == [
            "FTMCC07"
        ]

    def test_ftmcc07_bare_imported_reads_flagged(self):
        assert codes("t = perf_counter()", forbid_clock=True) == ["FTMCC07"]
        assert codes("t = monotonic_ns()", forbid_clock=True) == ["FTMCC07"]

    def test_sleep_is_not_a_clock_read(self):
        assert codes("time.sleep(0.1)", forbid_clock=True) == []

    def test_obs_clock_is_the_sanctioned_path(self):
        assert codes("t = clock.monotonic()", forbid_clock=True) == []
        assert codes("stamp = clock.wall_time()", forbid_clock=True) == []

    def test_rule_off_by_default(self):
        assert codes("t = time.time()") == []

    def test_only_disciplined_dirs_are_scoped_in_tree_walk(self, tmp_path):
        runner = tmp_path / "runner"
        runner.mkdir()
        (runner / "supervisor.py").write_text("t = time.monotonic()\n")
        obs = tmp_path / "obs"
        obs.mkdir()
        (obs / "clock.py").write_text("t = time.monotonic()\n")
        (tmp_path / "perf.py").write_text("t = time.perf_counter()\n")
        report = check_path(str(tmp_path))
        assert [d.code for d in report] == ["FTMCC07"]
        location = report.by_code("FTMCC07")[0].location
        assert location.replace("\\", "/") == "runner/supervisor.py:1"


class TestTreeWalk:
    def test_check_path_walks_and_reports(self, tmp_path):
        (tmp_path / "lib.py").write_text("def f(xs=[]):\n    pass\n")
        (tmp_path / "cli.py").write_text("print('fine here')\n")
        sub = tmp_path / "experiments"
        sub.mkdir()
        (sub / "driver.py").write_text("print('fine here too')\n")
        (tmp_path / "notes.txt").write_text("print('not python')\n")
        report = check_path(str(tmp_path))
        assert [d.code for d in report] == ["FTMCC02"]
        assert report.by_code("FTMCC02")[0].location == "lib.py:1"

    def test_locations_are_relative_file_line(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("try:\n    pass\nexcept:\n    pass\n")
        report = check_path(str(tmp_path))
        location = report.diagnostics[0].location
        assert location.endswith("mod.py:3")


class TestSelfcheck:
    def test_default_root_is_the_package(self):
        assert default_root().endswith("repro")

    def test_shipped_package_is_clean(self):
        report = selfcheck()
        assert not list(report), report.render_text("src/repro")
        assert report.exit_code(strict=True) == 0
