"""Hyperperiod-simulation oracle vs the analytical EDF tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.edf import (
    Workload,
    edf_processor_demand_test,
    edf_utilization_test,
)
from repro.analysis.qpa import qpa_schedulable
from repro.sim.exact import edf_schedulable_by_simulation, hyperperiod_of


class TestHyperperiod:
    def test_lcm(self):
        ws = [Workload(4, 4, 1), Workload(6, 6, 1)]
        assert hyperperiod_of(ws) == 12.0

    def test_single(self):
        assert hyperperiod_of([Workload(7, 7, 1)]) == 7.0

    def test_rejects_non_integer(self):
        with pytest.raises(ValueError, match="non-integer"):
            hyperperiod_of([Workload(2.5, 2.5, 1)])


class TestSimulationOracle:
    def test_trivial(self):
        assert edf_schedulable_by_simulation([])
        assert edf_schedulable_by_simulation([Workload(10, 10, 0.0)])

    def test_full_utilization_schedulable(self):
        assert edf_schedulable_by_simulation(
            [Workload(4, 4, 2), Workload(8, 8, 4)]
        )

    def test_overload_rejected(self):
        assert not edf_schedulable_by_simulation([Workload(10, 10, 11)])

    def test_constrained_infeasible(self):
        assert not edf_schedulable_by_simulation(
            [Workload(100, 5, 3), Workload(100, 5, 3)]
        )

    @given(
        st.lists(
            st.tuples(st.integers(2, 24), st.integers(1, 30)),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_utilization_bound_for_implicit(self, raw):
        """For implicit deadlines, the oracle must agree with U <= 1."""
        workload = [
            Workload(float(t), float(t), float(min(c, t))) for t, c in raw
        ]
        assert edf_schedulable_by_simulation(workload) == edf_utilization_test(
            workload
        )

    @given(
        st.lists(
            st.tuples(
                st.integers(4, 20),   # period
                st.integers(2, 20),   # deadline (clamped to <= T)
                st.integers(1, 10),   # wcet
            ),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_pdc_for_constrained(self, raw):
        """For constrained deadlines, the oracle agrees with PDC/QPA."""
        workload = [
            Workload(float(t), float(min(d, t)), float(min(c, d, t)))
            for t, d, c in raw
        ]
        expected = edf_processor_demand_test(workload)
        assert qpa_schedulable(workload) == expected
        assert edf_schedulable_by_simulation(workload) == expected

    def test_random_cross_check(self):
        """Seeded sweep: oracle vs PDC over 100 constrained workloads."""
        rng = np.random.default_rng(42)
        for _ in range(100):
            n = int(rng.integers(1, 4))
            workload = []
            for _ in range(n):
                period = int(rng.integers(4, 16))
                deadline = int(rng.integers(2, period + 1))
                wcet = int(rng.integers(1, deadline + 1))
                workload.append(
                    Workload(float(period), float(deadline), float(wcet))
                )
            assert edf_schedulable_by_simulation(
                workload
            ) == edf_processor_demand_test(workload)
