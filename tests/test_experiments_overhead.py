"""Tests for the overhead study experiment."""

import pytest

from repro.experiments.overhead_study import run_overhead_study


class TestOverheadStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_overhead_study(
            costs=(0.0, 0.5, 5.0), horizon=60_000.0
        )

    def test_zero_cost_no_hi_misses(self, study):
        """The analytical guarantee must hold exactly at zero overhead."""
        by_cost = dict(zip(study.column("cost_ms"),
                           study.column("hi_misses")))
        assert by_cost[0.0] == 0

    def test_large_cost_breaks_hi(self, study):
        by_cost = dict(zip(study.column("cost_ms"),
                           study.column("hi_misses")))
        assert by_cost[5.0] > 0

    def test_misses_monotone_in_cost(self, study):
        misses = study.column("hi_misses")
        assert misses == sorted(misses)

    def test_overhead_share_monotone(self, study):
        shares = study.column("overhead_share")
        assert shares == sorted(shares)
        assert shares[0] == 0.0

    def test_rejects_failed_configuration(self, fms):
        from repro.core.ftmc import ft_edf_vd

        failed = ft_edf_vd(fms)  # FMS killing fails
        with pytest.raises(ValueError, match="accepted"):
            run_overhead_study(fms, failed)
