"""Documentation-sync tests: the shipped snippets must actually run.

Documentation rot is a real failure mode for a reproduction repository;
these tests execute the README quickstart verbatim-equivalent and check
that every CLI target and example script the docs mention exists.
"""

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        """The README's quickstart code, executed as written."""
        from repro import (
            CriticalityRole,
            DualCriticalitySpec,
            Task,
            TaskSet,
            ft_edf_vd,
        )

        spec = DualCriticalitySpec.from_names(hi="B", lo="D")
        tasks = [
            Task("nav", period=60, deadline=60, wcet=5,
                 criticality=CriticalityRole.HI, failure_probability=1e-5),
            Task("disp", period=40, deadline=40, wcet=7,
                 criticality=CriticalityRole.LO, failure_probability=1e-5),
        ]
        system = TaskSet(tasks, spec)
        result = ft_edf_vd(system)
        assert result.success
        assert result.n_hi is not None
        assert result.adaptation is not None
        assert result.pfh_hi < 1e-7


class TestDocReferences:
    @pytest.fixture(scope="class")
    def readme(self):
        with open(os.path.join(REPO_ROOT, "README.md")) as handle:
            return handle.read()

    def test_every_mentioned_example_exists(self, readme):
        for match in re.findall(r"examples/\w+\.py", readme):
            assert os.path.exists(os.path.join(REPO_ROOT, match)), match

    def test_every_mentioned_doc_exists(self, readme):
        for match in re.findall(r"docs/\w+\.md", readme):
            assert os.path.exists(os.path.join(REPO_ROOT, match)), match

    def test_cli_targets_mentioned_in_readme_exist(self, readme):
        from repro.cli import build_parser

        parser = build_parser()
        choices = None
        for action in parser._actions:  # noqa: SLF001 - introspection
            if action.dest == "experiment":
                choices = set(action.choices)
        assert choices is not None
        for target in re.findall(r"ftmc (\w+)", readme):
            if target in ("--help",):
                continue
            assert target in choices, f"README mentions unknown target {target}"

    def test_design_and_experiments_exist(self):
        for name in ("DESIGN.md", "EXPERIMENTS.md"):
            assert os.path.exists(os.path.join(REPO_ROOT, name))


class TestLintCatalogSync:
    """docs/lint.md documents every rule code the linter can emit."""

    @pytest.fixture(scope="class")
    def lint_doc(self):
        with open(os.path.join(REPO_ROOT, "docs", "lint.md")) as handle:
            return handle.read()

    def test_every_registered_rule_is_documented(self, lint_doc):
        from repro.lint import rule_catalog

        for rule in rule_catalog():
            assert rule.code in lint_doc, f"{rule.code} missing from docs/lint.md"

    def test_document_and_code_rules_are_documented(self, lint_doc):
        engine_codes = ("FTMC040", "FTMC041", "FTMC042")
        code_codes = (
            "FTMCC00", "FTMCC01", "FTMCC02", "FTMCC03", "FTMCC04", "FTMCC05",
            "FTMCC06", "FTMCC07",
        )
        for code in engine_codes + code_codes:
            assert code in lint_doc, f"{code} missing from docs/lint.md"

    def test_dataflow_rules_are_documented(self, lint_doc):
        from repro.lint.taint import TAINT_RULE_CATALOG

        for code in TAINT_RULE_CATALOG:
            assert code in lint_doc, f"{code} missing from docs/lint.md"

    def test_documented_codes_all_exist(self, lint_doc):
        from repro.lint import rule_catalog
        from repro.lint.taint import TAINT_RULE_CATALOG

        known = {r.code for r in rule_catalog()}
        known.update({"FTMC040", "FTMC041", "FTMC042"})
        known.update({f"FTMCC0{i}" for i in range(8)})
        known.update(TAINT_RULE_CATALOG)
        for code in set(re.findall(r"FTMC[CDFP]?\d{2,3}", lint_doc)):
            assert code in known, f"docs/lint.md documents unknown rule {code}"
