"""Tests for the Appendix C random task generator and UUniFast."""

import numpy as np
import pytest

from repro.gen.taskset import (
    PAPER_CONFIG,
    GeneratorConfig,
    generate_taskset,
    uunifast,
    uunifast_taskset,
)
from repro.model.criticality import CriticalityRole, DualCriticalitySpec

SPEC = DualCriticalitySpec.from_names("B", "D")


class TestGeneratorConfig:
    def test_paper_defaults(self):
        assert PAPER_CONFIG.u_min == 0.01
        assert PAPER_CONFIG.u_max == 0.2
        assert PAPER_CONFIG.period_min == 200.0
        assert PAPER_CONFIG.period_max == 2000.0
        assert PAPER_CONFIG.p_hi == 0.2

    def test_rejects_inverted_utilization_range(self):
        with pytest.raises(ValueError, match="u-"):
            GeneratorConfig(u_min=0.3, u_max=0.2)

    def test_rejects_bad_period_range(self):
        with pytest.raises(ValueError, match="T-"):
            GeneratorConfig(period_min=0.0)

    def test_rejects_bad_p_hi(self):
        with pytest.raises(ValueError, match="P_HI"):
            GeneratorConfig(p_hi=1.5)


class TestGenerateTaskset:
    def test_hits_target_utilization_exactly(self):
        for seed in range(10):
            ts = generate_taskset(0.8, SPEC, seed)
            assert ts.utilization() == pytest.approx(0.8, abs=1e-9)

    def test_task_parameters_in_ranges(self):
        ts = generate_taskset(0.9, SPEC, 42)
        for task in ts:
            assert PAPER_CONFIG.period_min <= task.period <= PAPER_CONFIG.period_max
            assert task.utilization <= PAPER_CONFIG.u_max + 1e-12
            assert task.is_implicit_deadline
            assert task.failure_probability == PAPER_CONFIG.failure_probability

    def test_contains_both_criticalities(self):
        for seed in range(30):
            ts = generate_taskset(0.6, SPEC, seed)
            assert ts.hi_tasks, f"seed {seed} has no HI task"
            assert ts.lo_tasks, f"seed {seed} has no LO task"

    def test_deterministic_by_seed(self):
        a = generate_taskset(0.7, SPEC, 123)
        b = generate_taskset(0.7, SPEC, 123)
        assert [t.wcet for t in a] == [t.wcet for t in b]
        assert [t.criticality for t in a] == [t.criticality for t in b]

    def test_different_seeds_differ(self):
        a = generate_taskset(0.7, SPEC, 1)
        b = generate_taskset(0.7, SPEC, 2)
        assert [t.wcet for t in a] != [t.wcet for t in b]

    def test_custom_failure_probability(self):
        config = GeneratorConfig(failure_probability=1e-3)
        ts = generate_taskset(0.5, SPEC, 0, config)
        assert all(t.failure_probability == 1e-3 for t in ts)

    def test_spec_attached(self):
        ts = generate_taskset(0.5, SPEC, 0)
        assert ts.spec == SPEC

    def test_rejects_nonpositive_utilization(self):
        with pytest.raises(ValueError, match="utilization"):
            generate_taskset(0.0, SPEC, 0)

    def test_task_count_scales_with_utilization(self):
        small = generate_taskset(0.2, SPEC, 9)
        large = generate_taskset(1.2, SPEC, 9)
        assert len(large) > len(small)

    def test_accepts_generator_instance(self):
        rng = np.random.default_rng(5)
        ts = generate_taskset(0.5, SPEC, rng)
        assert ts.utilization() == pytest.approx(0.5)

    def test_name_override(self):
        ts = generate_taskset(0.5, SPEC, 0, name="custom")
        assert ts.name == "custom"


class TestUUniFast:
    def test_sums_to_target(self):
        for seed in range(10):
            u = uunifast(8, 0.9, seed)
            assert u.sum() == pytest.approx(0.9)

    def test_all_positive(self):
        u = uunifast(20, 0.95, 3)
        assert (u > 0).all()

    def test_single_task(self):
        assert uunifast(1, 0.5, 0)[0] == pytest.approx(0.5)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            uunifast(0, 0.5)
        with pytest.raises(ValueError):
            uunifast(3, -0.1)

    def test_taskset_wrapper(self):
        ts = uunifast_taskset(10, 0.8, SPEC, 7)
        assert len(ts) == 10
        assert ts.utilization() == pytest.approx(0.8)
        assert ts.hi_tasks and ts.lo_tasks


class TestHeterogeneousFailureProbabilities:
    def test_constant_by_default(self):
        ts = generate_taskset(0.6, SPEC, 3)
        assert len({t.failure_probability for t in ts}) == 1

    def test_range_draws_within_bounds(self):
        config = GeneratorConfig(
            failure_probability=1e-6, failure_probability_max=1e-3
        )
        ts = generate_taskset(1.0, SPEC, 3, config)
        values = [t.failure_probability for t in ts]
        assert all(1e-6 <= v <= 1e-3 for v in values)
        assert len(set(values)) > 1  # actually heterogeneous

    def test_range_validation(self):
        with pytest.raises(ValueError, match="f_min"):
            GeneratorConfig(
                failure_probability=1e-3, failure_probability_max=1e-5
            )
        with pytest.raises(ValueError, match="f_min"):
            GeneratorConfig(
                failure_probability=0.0, failure_probability_max=1e-3
            )

    def test_log_uniform_spread(self):
        """Log-uniform draws cover the decades roughly evenly."""
        import numpy as np

        config = GeneratorConfig(
            failure_probability=1e-8, failure_probability_max=1e-2
        )
        gen = np.random.default_rng(0)
        draws = [config.draw_failure_probability(gen) for _ in range(2000)]
        logs = np.log10(draws)
        assert -8.0 <= logs.min() and logs.max() <= -2.0
        # Mean of a log-uniform over [-8, -2] is -5.
        assert abs(logs.mean() + 5.0) < 0.2

    def test_deterministic_with_seed(self):
        config = GeneratorConfig(
            failure_probability=1e-6, failure_probability_max=1e-3
        )
        a = generate_taskset(0.7, SPEC, 11, config)
        b = generate_taskset(0.7, SPEC, 11, config)
        assert [t.failure_probability for t in a] == [
            t.failure_probability for t in b
        ]
