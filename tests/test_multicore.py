"""Tests for partitioned multiprocessor FT-MC (partitioner + FT-MP)."""

import pytest

from repro.core.backends import EDFVDBackend, EDFVDDegradationBackend
from repro.core.conversion import convert_uniform
from repro.core.ftmc import FTSFailure, ft_edf_vd
from repro.gen.taskset import generate_taskset
from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.multicore.ftmp import ft_schedule_partitioned
from repro.multicore.partition import first_fit_decreasing

SPEC = DualCriticalitySpec.from_names("B", "D")


class TestFirstFitDecreasing:
    def test_example31_fits_on_two_processors(self, example31):
        mc = convert_uniform(example31, 3, 1, 3)  # n' = n: no killing help
        backend = EDFVDBackend()
        assert not backend.is_schedulable(mc)  # too heavy for one CPU
        partition = first_fit_decreasing(mc, 2, backend)
        assert partition is not None
        assert partition.m == 2
        for processor in partition.processors:
            assert backend.is_schedulable(processor)

    def test_partition_covers_every_task(self, example31):
        mc = convert_uniform(example31, 3, 1, 2)
        partition = first_fit_decreasing(mc, 2, EDFVDBackend())
        placed = {
            t.name for processor in partition.processors for t in processor
        }
        assert placed == {t.name for t in mc}

    def test_processor_lookup(self, example31):
        mc = convert_uniform(example31, 3, 1, 2)
        partition = first_fit_decreasing(mc, 2, EDFVDBackend())
        for task in mc:
            index = partition.processor_of(task.name)
            assert any(
                t.name == task.name
                for t in partition.processors[index]
            )
        with pytest.raises(KeyError):
            partition.processor_of("ghost")

    def test_infeasible_when_single_task_too_big(self):
        from repro.model.mc_task import MCTask, MCTaskSet

        huge = MCTaskSet(
            [MCTask("x", 100, 100, 50, 150, CriticalityRole.HI)]
        )
        assert first_fit_decreasing(huge, 4, EDFVDBackend()) is None

    def test_rejects_zero_processors(self, example31):
        mc = convert_uniform(example31, 3, 1, 2)
        with pytest.raises(ValueError, match="processor"):
            first_fit_decreasing(mc, 0, EDFVDBackend())

    def test_criticality_aware_places_hi_first(self, example31):
        mc = convert_uniform(example31, 3, 1, 2)
        partition = first_fit_decreasing(
            mc, 2, EDFVDBackend(), criticality_aware=True
        )
        # All HI tasks land on P0 here (they fit together).
        hi_processors = {
            partition.processor_of(t.name) for t in mc.hi_tasks
        }
        assert hi_processors == {0}

    def test_describe(self, example31):
        mc = convert_uniform(example31, 3, 1, 2)
        partition = first_fit_decreasing(mc, 2, EDFVDBackend())
        text = partition.describe()
        assert "P0" in text and "P1" in text


class TestFTMP:
    def test_reduces_to_uniprocessor_at_m_1(self, example31):
        uni = ft_edf_vd(example31)
        multi = ft_schedule_partitioned(example31, 1, EDFVDBackend())
        assert multi.success == uni.success
        assert multi.adaptation == uni.adaptation
        assert multi.n_hi == uni.n_hi

    def test_two_processors_schedule_without_adaptation_pressure(
        self, example31
    ):
        """On 2 CPUs, Example 3.1 fits even at n' = n_HI (no killing)."""
        result = ft_schedule_partitioned(example31, 2, EDFVDBackend())
        assert result.success
        assert result.adaptation == result.n_hi  # killing never triggered

    def test_heavy_set_needs_more_processors(self):
        taskset = generate_taskset(1.6, SPEC, 7)
        single = ft_schedule_partitioned(taskset, 1, EDFVDBackend())
        dual = ft_schedule_partitioned(taskset, 2, EDFVDBackend())
        assert not single.success
        assert dual.success
        assert dual.partition is not None
        for processor in dual.partition.processors:
            assert EDFVDBackend().is_schedulable(processor)

    def test_acceptance_monotone_in_m(self):
        """More processors never hurt (FFD given more bins)."""
        for seed in range(5):
            taskset = generate_taskset(1.2, SPEC, seed)
            results = [
                ft_schedule_partitioned(taskset, m, EDFVDBackend()).success
                for m in (1, 2, 4)
            ]
            for fewer, more in zip(results, results[1:]):
                assert more or not fewer

    def test_safety_unaffected_by_m(self):
        """The PFH bounds are processor-count independent."""
        taskset = generate_taskset(1.2, SPEC, 3)
        r2 = ft_schedule_partitioned(taskset, 2, EDFVDBackend())
        r4 = ft_schedule_partitioned(taskset, 4, EDFVDBackend())
        if r2.success and r4.success and r2.adaptation == r4.adaptation:
            assert r2.pfh_hi == pytest.approx(r4.pfh_hi)
            assert r2.pfh_lo == pytest.approx(r4.pfh_lo)

    def test_degradation_backend(self):
        taskset = generate_taskset(1.4, SPEC, 11)
        result = ft_schedule_partitioned(
            taskset, 2, EDFVDDegradationBackend(6.0)
        )
        assert result.mechanism == "degrade"
        if result.success:
            assert result.partition is not None

    def test_failure_reasons_propagate(self):
        from repro.model.task import Task, TaskSet

        hopeless = TaskSet(
            [
                Task("hi", 10, 10, 1, CriticalityRole.HI, 0.9),
                Task("lo", 10, 10, 1, CriticalityRole.LO, 0.9),
            ],
            DualCriticalitySpec.from_names("A", "E"),
        )
        result = ft_schedule_partitioned(hopeless, 4, EDFVDBackend(), max_n=3)
        assert not result.success
        assert result.failure is FTSFailure.UNSAFE_REEXECUTION

    def test_rejects_zero_processors(self, example31):
        with pytest.raises(ValueError, match="processor"):
            ft_schedule_partitioned(example31, 0, EDFVDBackend())

    def test_result_truthiness(self, example31):
        assert ft_schedule_partitioned(example31, 2, EDFVDBackend())


class TestPackingDeterminism:
    """Packing must be a pure function of task parameters (not list order)."""

    def _tied_tasks(self):
        from repro.model.mc_task import MCTask

        # Four tasks with identical sizes: only the name tie-breaker
        # distinguishes their packing order.
        return [
            MCTask(name, 100.0, 100.0, 30.0, 30.0, CriticalityRole.LO)
            for name in ("alpha", "beta", "gamma", "delta")
        ]

    def test_ffd_ignores_insertion_order(self):
        from repro.model.mc_task import MCTaskSet

        tasks = self._tied_tasks()
        backend = EDFVDBackend()
        forward = first_fit_decreasing(MCTaskSet(tasks), 2, backend)
        reverse = first_fit_decreasing(
            MCTaskSet(list(reversed(tasks))), 2, backend
        )
        assert forward is not None and reverse is not None
        membership = lambda p: [  # noqa: E731
            sorted(t.name for t in core) for core in p.processors
        ]
        assert membership(forward) == membership(reverse)

    def test_planner_pack_ignores_insertion_order(self):
        from repro.model.mc_task import MCTaskSet
        from repro.planner import HeuristicSpec, pack

        tasks = self._tied_tasks()
        backend = EDFVDBackend()
        for fit in ("ffd", "bfd", "wfd", "wfd-reexec"):
            spec = HeuristicSpec(fit, "max-util")
            forward = pack(MCTaskSet(tasks), 2, backend, spec)
            reverse = pack(
                MCTaskSet(list(reversed(tasks))), 2, backend, spec
            )
            assert forward is not None and reverse is not None
            assert [
                sorted(t.name for t in core) for core in forward.processors
            ] == [
                sorted(t.name for t in core) for core in reverse.processors
            ], fit


class TestInconclusiveVerdicts:
    """FT-MP distinguishes heuristic misses from proven infeasibility."""

    def test_success_is_conclusive(self, example31):
        result = ft_schedule_partitioned(example31, 2, EDFVDBackend())
        assert result.success
        assert not result.inconclusive
        assert result.plan is not None
        assert result.plan.schedulable

    def test_exact_miss_is_conclusive(self):
        """With the exact stage on, a small infeasible set is *proven* so."""
        taskset = generate_taskset(1.9, SPEC, 7)
        result = ft_schedule_partitioned(taskset, 1, EDFVDBackend())
        if not result.success:
            assert not result.inconclusive

    def test_heuristic_only_miss_is_inconclusive(self):
        from repro.planner import PlanOptions

        for seed in range(12):
            taskset = generate_taskset(2.6, SPEC, seed)
            result = ft_schedule_partitioned(
                taskset, 2, EDFVDBackend(),
                plan_options=PlanOptions(exact=False),
            )
            if not result.success:
                assert result.inconclusive
                return
        pytest.fail("no heuristic miss found in 12 seeds")
