"""Tests for JSON task-set serialisation."""

import json

import pytest

from repro.io import (
    load_taskset,
    save_taskset,
    taskset_from_dict,
    taskset_to_dict,
)
from repro.model.criticality import CriticalityRole, DO178BLevel


class TestRoundTrip:
    def test_full_round_trip(self, example31, tmp_path):
        path = str(tmp_path / "system.json")
        save_taskset(example31, path)
        loaded = load_taskset(path)
        assert loaded.name == example31.name
        assert loaded.spec == example31.spec
        assert len(loaded) == len(example31)
        for original, restored in zip(example31, loaded):
            assert restored.name == original.name
            assert restored.period == original.period
            assert restored.deadline == original.deadline
            assert restored.wcet == original.wcet
            assert restored.criticality is original.criticality
            assert restored.failure_probability == original.failure_probability

    def test_fms_round_trip(self, fms, tmp_path):
        path = str(tmp_path / "fms.json")
        save_taskset(fms, path)
        loaded = load_taskset(path)
        assert loaded.spec.hi_level is DO178BLevel.B
        assert [t.wcet for t in loaded] == [t.wcet for t in fms]

    def test_dict_round_trip_without_spec(self, example31):
        bare = example31.with_tasks(example31.tasks)
        bare = type(bare)(bare.tasks, spec=None, name="nospec")
        data = taskset_to_dict(bare)
        assert "criticality" not in data
        restored = taskset_from_dict(data)
        assert restored.spec is None


class TestParsing:
    def test_deadline_defaults_to_period(self):
        data = {
            "tasks": [
                {"name": "a", "period": 50, "wcet": 5, "criticality": "HI"}
            ]
        }
        ts = taskset_from_dict(data)
        assert ts[0].deadline == 50.0

    def test_failure_probability_defaults_to_zero(self):
        data = {
            "tasks": [
                {"name": "a", "period": 50, "wcet": 5, "criticality": "LO"}
            ]
        }
        assert taskset_from_dict(data)[0].failure_probability == 0.0

    def test_names_default_to_indexed(self):
        data = {
            "tasks": [
                {"period": 50, "wcet": 5, "criticality": "HI"},
                {"period": 60, "wcet": 5, "criticality": "LO"},
            ]
        }
        ts = taskset_from_dict(data)
        assert [t.name for t in ts] == ["tau1", "tau2"]

    def test_criticality_case_insensitive(self):
        data = {
            "tasks": [
                {"period": 50, "wcet": 5, "criticality": "hi"},
            ]
        }
        assert taskset_from_dict(data)[0].criticality is CriticalityRole.HI

    def test_rejects_missing_tasks_key(self):
        with pytest.raises(ValueError, match="'tasks'"):
            taskset_from_dict({"name": "x"})

    def test_rejects_bad_criticality(self):
        data = {"tasks": [{"period": 50, "wcet": 5, "criticality": "MEDIUM"}]}
        with pytest.raises(ValueError, match="criticality"):
            taskset_from_dict(data)

    def test_rejects_missing_required_field(self):
        data = {"tasks": [{"period": 50, "criticality": "HI"}]}
        with pytest.raises(ValueError, match="missing field"):
            taskset_from_dict(data)

    def test_model_validation_propagates(self):
        data = {
            "tasks": [
                {"period": -1, "wcet": 5, "criticality": "HI"},
            ]
        }
        with pytest.raises(ValueError, match="period"):
            taskset_from_dict(data)

    def test_saved_file_is_valid_json(self, example31, tmp_path):
        path = tmp_path / "x.json"
        save_taskset(example31, str(path))
        data = json.loads(path.read_text())
        assert data["criticality"] == {"hi": "B", "lo": "D"}
        assert len(data["tasks"]) == 5


class TestMultilevelIO:
    @staticmethod
    def _system():
        from repro.model.criticality import DO178BLevel
        from repro.multilevel.model import MLTask, MLTaskSet

        return MLTaskSet(
            [
                MLTask("a", 50, 50, 2, DO178BLevel.A, 1e-6),
                MLTask("c", 500, 500, 40, DO178BLevel.C, 1e-5),
                MLTask("d", 1000, 1000, 100, DO178BLevel.D, 1e-5),
            ],
            name="ml",
        )

    def test_round_trip(self, tmp_path):
        from repro.io import load_multilevel, save_multilevel

        system = self._system()
        path = str(tmp_path / "ml.json")
        save_multilevel(system, path)
        loaded = load_multilevel(path)
        assert loaded.name == "ml"
        assert [t.level for t in loaded] == [t.level for t in system]
        assert [t.wcet for t in loaded] == [t.wcet for t in system]

    def test_level_parsing(self):
        from repro.io import multilevel_from_dict

        data = {
            "tasks": [
                {"period": 100, "wcet": 5, "level": "b"},
            ]
        }
        from repro.model.criticality import DO178BLevel

        ml = multilevel_from_dict(data)
        assert ml[0].level is DO178BLevel.B
        assert ml[0].deadline == 100.0

    def test_missing_level_rejected(self):
        from repro.io import multilevel_from_dict

        with pytest.raises(ValueError, match="level"):
            multilevel_from_dict({"tasks": [{"period": 100, "wcet": 5}]})

    def test_bad_level_rejected(self):
        from repro.io import multilevel_from_dict

        with pytest.raises(ValueError, match="unknown"):
            multilevel_from_dict(
                {"tasks": [{"period": 100, "wcet": 5, "level": "Z"}]}
            )


class TestAtomicWriters:
    """Crash-safe primitives: temp file + fsync + os.replace (FTMCC05)."""

    def test_atomic_write_text_creates_file(self, tmp_path):
        from repro.io import atomic_write_text

        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "hello\n")
        assert path.read_text() == "hello\n"

    def test_atomic_write_text_replaces_existing(self, tmp_path):
        from repro.io import atomic_write_text

        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(str(path), "new")
        assert path.read_text() == "new"

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        from repro.io import atomic_write_text

        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_atomic_write_json_round_trips(self, tmp_path):
        from repro.io import atomic_write_json

        path = tmp_path / "data.json"
        data = {"rows": [[1, 2.5, "x"]], "name": "t"}
        atomic_write_json(str(path), data)
        assert json.loads(path.read_text()) == data

    def test_failed_write_preserves_original(self, tmp_path):
        from repro.io import atomic_write_json

        path = tmp_path / "data.json"
        path.write_text("original")
        with pytest.raises(TypeError):
            atomic_write_json(str(path), {"bad": object()})
        assert path.read_text() == "original"  # target untouched
        assert [p.name for p in tmp_path.iterdir()] == ["data.json"]

    def test_append_jsonl_accumulates_lines(self, tmp_path):
        from repro.io import append_jsonl

        path = tmp_path / "log.jsonl"
        append_jsonl(str(path), {"shard": "a", "n": 1})
        append_jsonl(str(path), {"shard": "b", "n": 2})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"shard": "a", "n": 1}
        assert json.loads(lines[1]) == {"shard": "b", "n": 2}

    def test_append_jsonl_after_torn_tail_starts_fresh_line(self, tmp_path):
        """A record appended after a torn line must not glue onto it.

        Regression: the campaign's chaos truncation tears the trailing
        checkpoint line; the next completed shard's record used to be
        appended straight onto the fragment, corrupting both.
        """
        import os

        from repro.io import append_jsonl

        path = tmp_path / "log.jsonl"
        append_jsonl(str(path), {"shard": "a"})
        append_jsonl(str(path), {"shard": "torn"})
        os.truncate(path, path.stat().st_size - 5)  # tear the tail
        append_jsonl(str(path), {"shard": "b"})
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[0]) == {"shard": "a"}
        with pytest.raises(json.JSONDecodeError):
            json.loads(lines[1])  # the fragment stays its own corrupt line
        assert json.loads(lines[2]) == {"shard": "b"}

    def test_append_jsonl_escapes_embedded_newlines(self, tmp_path):
        """Newlines inside values never break the one-record-per-line frame."""
        from repro.io import append_jsonl

        path = tmp_path / "log.jsonl"
        append_jsonl(str(path), {"text": "a\nb"})
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0]) == {"text": "a\nb"}


class TestRoundTripProperties:
    """Hypothesis: serialisation is the identity on arbitrary task sets."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        st.lists(
            st.tuples(
                st.floats(1.0, 1e5),          # period
                st.floats(0.1, 1.0),          # wcet as fraction of period
                st.booleans(),                # criticality
                st.floats(0.0, 0.99),         # failure probability
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_dual_round_trip(self, raw):
        from repro.io import taskset_from_dict, taskset_to_dict
        from repro.model.criticality import (
            CriticalityRole,
            DualCriticalitySpec,
        )
        from repro.model.task import Task, TaskSet

        tasks = [
            Task(
                f"t{i}",
                period,
                period,
                fraction * period,
                CriticalityRole.HI if is_hi else CriticalityRole.LO,
                f,
            )
            for i, (period, fraction, is_hi, f) in enumerate(raw)
        ]
        original = TaskSet(
            tasks, DualCriticalitySpec.from_names("A", "E"), name="prop"
        )
        restored = taskset_from_dict(taskset_to_dict(original))
        assert restored.spec == original.spec
        for a, b in zip(original, restored):
            assert a == b
