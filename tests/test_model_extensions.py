"""Tests for the IEC 61508 SIL model and the fault-rate helpers."""

import math

import pytest

from repro.model.criticality import DO178BLevel
from repro.model.fault_rates import (
    failure_probability_from_rate,
    rate_from_failure_probability,
    with_fault_rate,
)
from repro.model.iec61508 import SIL, sil_dual_spec, sil_to_do178b
from repro.model.task import HOUR_MS


class TestSIL:
    def test_ceilings(self):
        assert SIL.SIL1.pfh_ceiling == 1e-5
        assert SIL.SIL2.pfh_ceiling == 1e-6
        assert SIL.SIL3.pfh_ceiling == 1e-7
        assert SIL.SIL4.pfh_ceiling == 1e-8

    def test_floors_are_one_decade_below(self):
        for sil in SIL:
            assert sil.pfh_floor == pytest.approx(sil.pfh_ceiling / 10.0)

    def test_ordering(self):
        assert SIL.SIL4 > SIL.SIL3 > SIL.SIL2 > SIL.SIL1

    def test_do178b_mapping_is_conservative(self):
        """The mapped level's ceiling implies the SIL's ceiling."""
        for sil in SIL:
            level = sil_to_do178b(sil)
            assert level.pfh_ceiling <= sil.pfh_ceiling

    def test_dual_spec(self):
        spec = sil_dual_spec(SIL.SIL4, SIL.SIL1)
        assert spec.hi_level is DO178BLevel.A
        assert spec.lo_level is DO178BLevel.C

    def test_dual_spec_rejects_collapsing_levels(self):
        with pytest.raises(ValueError, match="strictly"):
            sil_dual_spec(SIL.SIL3, SIL.SIL2)  # both map to level B


class TestFaultRates:
    def test_zero_rate(self):
        assert failure_probability_from_rate(0.0, 100.0) == 0.0

    def test_zero_exposure(self):
        assert failure_probability_from_rate(100.0, 0.0) == 0.0

    def test_poisson_formula(self):
        rate, wcet = 36.0, 100.0  # 36/h over 100 ms
        expected = 1.0 - math.exp(-rate * (wcet / HOUR_MS))
        assert failure_probability_from_rate(rate, wcet) == pytest.approx(
            expected
        )

    def test_small_rate_linearises(self):
        """For tiny exposure, f ~ lambda * C — the paper's regime."""
        f = failure_probability_from_rate(1e-3, 10.0)
        assert f == pytest.approx(1e-3 * 10.0 / HOUR_MS, rel=1e-6)

    def test_round_trip(self):
        for rate in (0.1, 36.0, 1e4):
            f = failure_probability_from_rate(rate, 50.0)
            assert rate_from_failure_probability(f, 50.0) == pytest.approx(
                rate, rel=1e-9
            )

    def test_monotone_in_exposure(self):
        values = [
            failure_probability_from_rate(100.0, c) for c in (1.0, 10.0, 100.0)
        ]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            failure_probability_from_rate(-1.0, 10.0)
        with pytest.raises(ValueError, match="probability"):
            rate_from_failure_probability(1.0, 10.0)
        with pytest.raises(ValueError, match="positive"):
            rate_from_failure_probability(0.5, 0.0)

    def test_with_fault_rate_scales_by_wcet(self, example31):
        derived = with_fault_rate(example31, 1e3)
        by_name = {t.name: t for t in derived}
        # tau5 (C = 8) is exposed longer than tau2 (C = 4).
        assert (
            by_name["tau5"].failure_probability
            > by_name["tau2"].failure_probability
        )
        # everything else preserved
        for original, new in zip(example31, derived):
            assert new.period == original.period
            assert new.wcet == original.wcet
            assert new.criticality is original.criticality
        assert derived.spec == example31.spec
