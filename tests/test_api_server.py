"""HTTP contract of ``ftmc serve``: routing, errors, CLI equivalence."""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import API_SCHEMA, AnalysisService, ApiServer
from repro.core.backends import clear_schedulability_cache
from repro.io import taskset_to_dict
from repro.report import analyse_system, render_report


@pytest.fixture(scope="module")
def server():
    clear_schedulability_cache()
    with ApiServer() as running:
        yield running
    clear_schedulability_cache()


@pytest.fixture()
def document(example31):
    return taskset_to_dict(example31)


def get(server, path):
    try:
        with urllib.request.urlopen(
            f"http://{server.host}:{server.port}{path}"
        ) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post(server, path, payload, raw=None):
    body = raw if raw is not None else json.dumps(payload).encode()
    request = urllib.request.Request(
        f"http://{server.host}:{server.port}{path}",
        data=body,
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRoutes:
    def test_healthz(self, server):
        status, body = get(server, "/healthz")
        assert status == 200
        assert body == {"schema": API_SCHEMA, "status": "ok"}

    def test_backend_catalog(self, server):
        status, body = get(server, "/v1/backends")
        assert status == 200
        names = [row["name"] for row in body["backends"]]
        assert "edf-vd" in names and "edf-vd-degradation" in names

    def test_stats_exposes_cache_counters(self, server, document):
        post(server, "/v1/schedulability",
             {"taskset": document, "n_hi": 2, "n_lo": 1, "n_prime_hi": 1})
        status, body = get(server, "/v1/stats")
        assert status == 200
        cache = body["schedulability_cache"]
        assert set(cache) == {"entries", "limit", "hits", "misses",
                              "evictions", "shared_hits"}
        assert cache["entries"] >= 1

    def test_unknown_routes_are_404(self, server):
        for status, body in (
            get(server, "/nope"),
            post(server, "/v1/nope", {}),
        ):
            assert status == 404
            assert body["error"]["code"] == "not-found"


class TestVerdicts:
    def test_schedule(self, server, document):
        status, body = post(server, "/v1/schedule", {"taskset": document})
        assert status == 200
        assert body["success"] is True
        assert body["backend"] == "edf-vd"
        assert body["adaptation"] == 2

    def test_analyze_report_matches_one_shot_path(self, server, example31,
                                                  document):
        """The serve path and `ftmc analyze` must emit identical bytes."""
        status, body = post(server, "/v1/analyze", {"taskset": document})
        assert status == 200
        expected = render_report(
            analyse_system(example31, operation_hours=10.0,
                           degradation_factor=6.0)
        )
        assert body["report"] == expected

    def test_dbf(self, server):
        status, body = post(
            server, "/v1/dbf",
            {"workload": [{"period": 10, "wcet": 2}],
             "instants": [5, 10, 25]},
        )
        assert status == 200
        assert body["demands"] == [0.0, 2.0, 4.0]

    def test_pfh(self, server, document):
        status, body = post(
            server, "/v1/pfh",
            {"taskset": document, "n_hi": 3, "n_lo": 1, "mechanism": "kill",
             "adaptation": 2},
        )
        assert status == 200
        assert body["pfh_hi"] > 0
        assert body["pfh_lo"] > 0


class TestErrorMapping:
    """Malformed input: structured 4xx bodies, never a traceback."""

    def test_invalid_taskset_is_400(self, server):
        status, body = post(server, "/v1/schedule", {"taskset": {"tasks": 1}})
        assert status == 400
        assert body["error"]["code"] == "invalid-taskset"
        assert "Traceback" not in json.dumps(body)

    def test_invalid_json_is_400(self, server):
        status, body = post(server, "/v1/schedule", None, raw=b"not json {")
        assert status == 400
        assert body["error"]["code"] == "invalid-json"

    def test_unknown_backend_is_400(self, server, document):
        status, body = post(
            server, "/v1/schedule",
            {"taskset": document, "backend": "round-robin"},
        )
        assert status == 400
        assert body["error"]["code"] == "unknown-backend"

    def test_infeasible_profile_is_400(self, server, document):
        status, body = post(
            server, "/v1/schedulability",
            {"taskset": document, "n_hi": 1, "n_lo": 1, "n_prime_hi": 9},
        )
        assert status == 400
        assert body["error"]["code"] == "invalid-request"

    def test_error_body_shape_is_stable(self, server):
        status, body = post(server, "/v1/schedule", {})
        assert status == 400
        assert set(body) == {"error"}
        assert set(body["error"]) == {"status", "code", "message"}


class TestConcurrentDeterminism:
    def test_concurrent_http_requests_match_serial(self, server, document):
        payloads = [
            {"taskset": document, "n_hi": n_hi, "n_lo": 1,
             "n_prime_hi": n_prime}
            for n_hi in (1, 2, 3)
            for n_prime in range(1, n_hi + 1)
        ]

        def verdict(payload):
            status, body = post(server, "/v1/schedulability", payload)
            assert status == 200
            return body["schedulable"]

        serial = [verdict(p) for p in payloads]
        with ThreadPoolExecutor(max_workers=8) as pool:
            concurrent = list(pool.map(verdict, payloads * 3))
        assert concurrent == serial * 3

    def test_keep_alive_connection_reuse(self, server, document):
        import http.client

        conn = http.client.HTTPConnection(server.host, server.port)
        try:
            body = json.dumps(
                {"taskset": document, "n_hi": 2, "n_lo": 1, "n_prime_hi": 1}
            ).encode()
            verdicts = []
            for _ in range(5):
                conn.request("POST", "/v1/schedulability", body,
                             {"Content-Type": "application/json"})
                response = conn.getresponse()
                verdicts.append(json.loads(response.read())["schedulable"])
                assert response.status == 200
            assert len(set(verdicts)) == 1
        finally:
            conn.close()


class TestLifecycle:
    def test_ephemeral_port_and_context_manager(self):
        with ApiServer(service=AnalysisService()) as running:
            assert running.port > 0
            status, body = get(running, "/healthz")
            assert status == 200
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(
                f"http://127.0.0.1:{running.port}/healthz", timeout=0.5
            )

    def test_two_servers_do_not_share_state(self):
        with ApiServer() as one, ApiServer() as two:
            assert one.port != two.port
            assert one.service is not two.service

    def test_double_start_rejected(self):
        server = ApiServer()
        server.start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()

    def test_serve_forever_unblocks_on_stop(self):
        server = ApiServer()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        server._httpd.shutdown()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        server._httpd.server_close()


class TestPlanEndpoint:
    def test_plan_round_trip(self, server, document):
        status, body = post(
            server, "/v1/plan", {"taskset": document, "cores": 2}
        )
        assert status == 200
        assert body["success"] is True
        assert body["cores"] == 2
        assert body["partition"] is not None
        placed = sorted(name for core in body["partition"] for name in core)
        assert placed == sorted(task["name"] for task in document["tasks"])
        assert body["strategy"] is not None

    def test_plan_missing_cores_is_400(self, server, document):
        status, body = post(server, "/v1/plan", {"taskset": document})
        assert status == 400
        assert body["error"]["code"] == "invalid-request"

    def test_plan_matches_service_answer(self, server, document, example31):
        from repro.api import PlanRequest

        status, body = post(
            server, "/v1/plan",
            {"taskset": document, "cores": 2, "exact": False},
        )
        assert status == 200
        direct = AnalysisService().plan(
            PlanRequest(taskset=example31, cores=2, exact=False)
        )
        assert body == json.loads(json.dumps(direct.to_dict()))
