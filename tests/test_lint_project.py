"""Tests for the project model behind the dataflow passes."""

from __future__ import annotations

import textwrap

from repro.lint.project import (
    build_index,
    index_from_sources,
    module_from_source,
)


def parse(source: str, relpath: str = "mod.py", package: str = "pkg"):
    module = module_from_source(textwrap.dedent(source), relpath, package)
    assert module is not None
    return module


class TestModuleInfo:
    def test_import_map_absolute(self):
        module = parse(
            """
            import numpy as np
            import os.path
            from repro.io import append_jsonl as emit
            """
        )
        assert module.imports["np"] == "numpy"
        assert module.imports["os"] == "os"
        assert module.imports["emit"] == "repro.io.append_jsonl"

    def test_resolve_through_aliases(self):
        import ast

        module = parse("import numpy as np\n")
        node = ast.parse("np.random.rand", mode="eval").body
        assert module.resolve(node) == "numpy.random.rand"

    def test_relative_import_from_plain_module(self):
        module = parse(
            "from .shards import plan\n", relpath="runner/worker.py"
        )
        # worker lives in pkg.runner; level 1 is that package.
        assert module.imports["plan"] == "pkg.runner.shards.plan"

    def test_relative_import_from_package_init(self):
        module = parse(
            "from .shards import plan\n", relpath="runner/__init__.py"
        )
        # the __init__ *is* pkg.runner; level 1 anchors there too.
        assert module.imports["plan"] == "pkg.runner.shards.plan"

    def test_module_level_constants_and_mutables(self):
        module = parse(
            """
            ENV_KEY = "REPRO_NO_NUMPY"
            CACHE = {}
            SEEN = set()
            LIMIT = 3
            """
        )
        assert module.constants == {"ENV_KEY": "REPRO_NO_NUMPY"}
        assert set(module.mutable_globals) == {"CACHE", "SEEN"}

    def test_function_collection_includes_methods(self):
        module = parse(
            """
            def top(a, b):
                pass

            class Box:
                def method(self, x):
                    pass
            """
        )
        assert set(module.functions) == {"top", "Box.method"}
        assert module.functions["top"].params == ("a", "b")
        assert module.functions["Box.method"].qualname == "pkg.mod.Box.method"

    def test_syntax_error_returns_none(self):
        assert module_from_source("def broken(:\n", "bad.py") is None


class TestProjectIndex:
    def test_index_from_sources_and_resolution(self):
        index = index_from_sources(
            {
                "runner/work.py": "def entry(x):\n    return x\n",
                "runner/__init__.py": "",
                "util.py": "def helper():\n    pass\n",
            },
            package="proj",
        )
        assert set(index.modules) == {
            "proj.runner.work", "proj.runner", "proj.util"
        }
        info = index.resolve_function("proj.runner.work.entry")
        assert info is not None and info.name == "entry"
        assert index.resolve_function("proj.runner.work.missing") is None

    def test_unparsed_files_are_recorded_not_fatal(self):
        index = index_from_sources(
            {"ok.py": "x = 1\n", "bad.py": "def broken(:\n"}
        )
        assert index.unparsed == ("bad.py",)
        assert set(index.modules) == {"project.ok"}

    def test_import_graph_is_deterministic(self):
        index = index_from_sources(
            {
                "a.py": "from proj.b import f\n",
                "b.py": "def f():\n    pass\n",
                "c.py": "import proj.a\n",
            },
            package="proj",
        )
        graph = index.import_graph()
        assert graph["proj.a"] == ("proj.b",)
        assert graph["proj.c"] == ("proj.a",)
        assert graph["proj.b"] == ()

    def test_build_index_over_disk_tree(self, tmp_path):
        pkg = tmp_path / "pkg"
        (pkg / "sub").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "top.py").write_text("def f():\n    pass\n")
        (pkg / "sub" / "__init__.py").write_text("")
        (pkg / "sub" / "leaf.py").write_text("def g():\n    pass\n")
        index = build_index(str(pkg))
        assert set(index.modules) == {
            "pkg", "pkg.top", "pkg.sub", "pkg.sub.leaf"
        }
        relpaths = [m.relpath for m in index.ordered()]
        assert relpaths == sorted(relpaths)

    def test_serial_and_parallel_builds_agree(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        for i in range(6):
            (pkg / f"m{i}.py").write_text(f"def f{i}():\n    pass\n")
        serial = build_index(str(pkg), jobs=1)
        parallel = build_index(str(pkg), jobs=4)
        assert set(serial.modules) == set(parallel.modules)
        assert [m.relpath for m in serial.ordered()] == [
            m.relpath for m in parallel.ordered()
        ]
