"""The :class:`repro.api.AnalysisService` facade: equivalence + concurrency."""

import math
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (
    AnalysisService,
    AnalyzeRequest,
    ApiError,
    DbfMicroBatcher,
    DbfRequest,
    PFHRequest,
    ScheduleRequest,
    SchedulabilityRequest,
    backend_catalog,
    make_backend,
)
from repro.analysis.edf import Workload, demand_bound_function
from repro.core.backends import EDFVDBackend, clear_schedulability_cache
from repro.core.conversion import convert_uniform
from repro.core.ftmc import ft_schedule
from repro.io import taskset_to_dict
from repro.report import analyse_system, render_report


@pytest.fixture()
def service():
    clear_schedulability_cache()
    yield AnalysisService()
    clear_schedulability_cache()


@pytest.fixture()
def document(example31):
    return taskset_to_dict(example31)


class TestBackendRegistry:
    def test_catalog_names_and_mechanisms(self):
        catalog = {row["name"]: row["mechanism"] for row in backend_catalog()}
        assert catalog["edf-vd"] == "kill"
        assert catalog["edf-vd-degradation"] == "degrade"
        assert set(catalog) == {
            "edf-vd", "edf-vd-degradation", "amc-rtb", "amc-max", "smc",
            "dbf-mc",
        }

    def test_unknown_backend_is_structured(self):
        with pytest.raises(ApiError) as excinfo:
            make_backend("rate-monotonic")
        assert excinfo.value.status == 400
        assert excinfo.value.code == "unknown-backend"

    def test_degradation_factor_only_for_degrade_backends(self):
        assert make_backend("edf-vd-degradation", 4.0).degradation_factor == 4.0
        with pytest.raises(ApiError):
            make_backend("edf-vd", 4.0)

    def test_bad_degradation_factor_is_structured(self):
        with pytest.raises(ApiError) as excinfo:
            make_backend("edf-vd-degradation", 0.5)
        assert excinfo.value.status == 400


class TestEquivalenceWithDirectCalls:
    """The facade must answer exactly what the underlying modules answer."""

    def test_schedule_matches_ft_schedule(self, service, example31):
        response = service.schedule(ScheduleRequest(taskset=example31))
        direct = ft_schedule(example31, EDFVDBackend())
        assert response.success == direct.success
        assert response.adaptation == direct.adaptation
        assert response.n_hi == direct.n_hi
        assert response.pfh_lo == direct.pfh_lo

    def test_schedulability_matches_backend(self, service, example31):
        request = SchedulabilityRequest(taskset=example31, n_hi=3, n_lo=1,
                                        n_prime_hi=2)
        response = service.schedulability(request)
        direct = EDFVDBackend().is_schedulable(
            convert_uniform(example31, 3, 1, 2)
        )
        assert response.schedulable == direct

    def test_analyze_report_byte_identical(self, service, example31):
        response = service.analyze(AnalyzeRequest(taskset=example31))
        report = analyse_system(example31, operation_hours=10.0,
                                degradation_factor=6.0)
        assert response.report == render_report(report)
        assert response.feasible == report.feasible
        assert response.recommendation == report.recommendation

    def test_dbf_matches_reference(self, service):
        workload = (Workload(10.0, 10.0, 2.0), Workload(20.0, 15.0, 4.0))
        request = DbfRequest(workload=workload,
                             instants=(0.0, 10.0, 15.0, 100.0))
        response = service.dbf(request)
        assert response.demands == tuple(
            demand_bound_function(workload, t) for t in request.instants
        )

    def test_pfh_plain_and_adapted(self, service, example31):
        doc = taskset_to_dict(example31)
        plain = service.pfh(PFHRequest.from_dict(
            {"taskset": doc, "n_hi": 3, "n_lo": 1, "mechanism": "plain"}
        ))
        assert plain.pfh_hi > 0 and plain.pfh_lo > 0
        killed = service.pfh(PFHRequest.from_dict(
            {"taskset": doc, "n_hi": 3, "n_lo": 1, "mechanism": "kill",
             "adaptation": 2}
        ))
        # The HI bound (eq. 2) is unaffected by the adaptation mechanism.
        assert killed.pfh_hi == plain.pfh_hi
        assert killed.pfh_lo != plain.pfh_lo

    def test_invalid_profile_is_structured(self, service, example31):
        with pytest.raises(ApiError) as excinfo:
            service.schedulability(
                SchedulabilityRequest(taskset=example31, n_hi=1, n_lo=1,
                                      n_prime_hi=5)  # n' > n
            )
        assert excinfo.value.status == 400

    def test_stats_shape(self, service, example31):
        service.schedulability(
            SchedulabilityRequest(taskset=example31, n_hi=2, n_lo=1,
                                  n_prime_hi=1)
        )
        stats = service.stats()
        assert stats["schedulability_cache"]["entries"] >= 1
        assert stats["kernel_tier"] in ("numpy", "scalar")
        assert "metrics" in stats


class TestConcurrentDeterminism:
    """Concurrent requests return the same verdicts as serial ones."""

    def test_mixed_concurrent_requests_match_serial(self, service, example31):
        requests = []
        for n_hi in (1, 2, 3):
            for n_prime in range(1, n_hi + 1):
                requests.append(
                    SchedulabilityRequest(taskset=example31, n_hi=n_hi,
                                          n_lo=1, n_prime_hi=n_prime)
                )
        serial = [service.schedulability(r).schedulable for r in requests]
        clear_schedulability_cache()
        with ThreadPoolExecutor(max_workers=8) as pool:
            concurrent = list(
                pool.map(lambda r: service.schedulability(r).schedulable,
                         requests * 4)
            )
        assert concurrent == serial * 4

    def test_concurrent_dbf_batched_equals_solo(self, service):
        workload = (Workload(10.0, 10.0, 2.0), Workload(7.0, 5.0, 1.0))
        chunks = [
            tuple(float(t) for t in range(start, start + 16))
            for start in range(0, 128, 16)
        ]
        solo = [
            service.dbf(DbfRequest(workload=workload, instants=c)).demands
            for c in chunks
        ]
        with ThreadPoolExecutor(max_workers=8) as pool:
            batched = list(
                pool.map(
                    lambda c: service.dbf(
                        DbfRequest(workload=workload, instants=c)
                    ).demands,
                    chunks,
                )
            )
        assert batched == solo


class TestMicroBatcher:
    def test_solo_evaluation_matches_reference(self):
        batcher = DbfMicroBatcher(window_s=0.0)
        workload = (Workload(10.0, 8.0, 2.0),)
        instants = (0.0, 8.0, 18.0, 28.0)
        assert batcher.evaluate(workload, instants) == tuple(
            demand_bound_function(workload, t) for t in instants
        )

    def test_concurrent_members_coalesce_and_split_exactly(self):
        batcher = DbfMicroBatcher(window_s=0.05)
        workload = (Workload(10.0, 10.0, 2.0), Workload(3.0, 2.0, 0.5))
        chunks = [tuple(float(t) for t in range(i, i + 7)) for i in range(6)]
        expected = [
            tuple(demand_bound_function(workload, t) for t in chunk)
            for chunk in chunks
        ]
        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(
                pool.map(lambda c: batcher.evaluate(workload, c), chunks)
            )
        assert results == expected

    def test_distinct_workloads_never_mix(self):
        batcher = DbfMicroBatcher(window_s=0.05)
        workloads = [
            (Workload(10.0, 10.0, float(k)),) for k in range(1, 5)
        ]
        instants = (10.0, 20.0)
        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(
                pool.map(lambda w: batcher.evaluate(w, instants), workloads)
            )
        for workload, demands in zip(workloads, results):
            assert demands == tuple(
                demand_bound_function(workload, t) for t in instants
            )

    def test_scalar_tier_bypasses_batching(self, monkeypatch):
        from repro.analysis import kernels

        monkeypatch.setenv(kernels.NO_NUMPY_ENV, "1")
        batcher = DbfMicroBatcher(window_s=10.0)  # would hang if it batched
        workload = (Workload(10.0, 10.0, 2.0),)
        assert batcher.evaluate(workload, (25.0,)) == (
            demand_bound_function(workload, 25.0),
        )

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            DbfMicroBatcher(window_s=-1.0)


class TestObservability:
    def test_per_endpoint_counters_and_latency(self, service, example31,
                                               monkeypatch):
        from repro.obs import metrics

        metrics.enable()
        try:
            base = metrics.registry().counter("api.requests.schedulability")
            service.schedulability(
                SchedulabilityRequest(taskset=example31, n_hi=2, n_lo=1,
                                      n_prime_hi=1)
            )
            registry = metrics.registry()
            assert registry.counter("api.requests.schedulability") == base + 1
            snapshot = registry.snapshot()
            assert "api.latency_ns.schedulability" in snapshot["histograms"]
        finally:
            metrics.disable()

    def test_error_counter_increments(self, service, example31):
        from repro.obs import metrics

        metrics.enable()
        try:
            before = metrics.registry().counter("api.errors.schedulability")
            with pytest.raises(ApiError):
                service.schedulability(
                    SchedulabilityRequest(taskset=example31, n_hi=1, n_lo=1,
                                          n_prime_hi=3)
                )
            assert metrics.registry().counter(
                "api.errors.schedulability"
            ) == before + 1
        finally:
            metrics.disable()


class TestDegradeBackendPath:
    def test_schedule_with_degradation(self, service, example31):
        response = service.schedule(
            ScheduleRequest(taskset=example31, backend="edf-vd-degradation",
                            degradation_factor=6.0)
        )
        assert response.mechanism == "degrade"
        assert response.degradation_factor == 6.0
        if not response.success:
            assert response.failure is not None
            assert math.isnan(response.pfh_lo) or response.pfh_lo >= 0


class TestPlanOperation:
    def test_plan_matches_direct_ftmp(self, service, example31):
        from repro.api import PlanRequest
        from repro.multicore.ftmp import ft_schedule_partitioned

        response = service.plan(PlanRequest(taskset=example31, cores=2))
        direct = ft_schedule_partitioned(example31, 2, EDFVDBackend())
        assert response.success == direct.success
        assert response.adaptation == direct.adaptation
        assert response.n_hi == direct.n_hi
        assert response.partition == direct.partition.task_names()

    def test_plan_partition_covers_taskset(self, service, example31):
        from repro.api import PlanRequest

        response = service.plan(PlanRequest(taskset=example31, cores=2))
        placed = sorted(
            name for core in response.partition for name in core
        )
        assert placed == sorted(t.name for t in example31)

    def test_plan_unknown_backend_is_structured(self, service, example31):
        from repro.api import PlanRequest

        with pytest.raises(ApiError) as excinfo:
            service.plan(
                PlanRequest(taskset=example31, cores=2, backend="pfair")
            )
        assert excinfo.value.status == 400
        assert excinfo.value.code == "unknown-backend"

    def test_plan_zero_cores_is_structured(self, service, example31):
        from repro.api import PlanRequest

        with pytest.raises(ApiError) as excinfo:
            service.plan(PlanRequest(taskset=example31, cores=0))
        assert excinfo.value.status == 400

    def test_plan_heuristic_only_never_proves_infeasible(self, service,
                                                         example31):
        from repro.api import PlanRequest

        response = service.plan(
            PlanRequest(taskset=example31, cores=1, exact=False)
        )
        # Either it schedules, or the verdict must stay inconclusive.
        if not response.success:
            assert response.inconclusive
