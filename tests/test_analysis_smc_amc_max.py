"""Tests for the SMC and AMC-max fixed-priority MC analyses."""

import pytest

from repro.analysis.amc import amc_rtb_schedulable, amc_rtb_schedulable_with_order
from repro.analysis.amc_max import (
    amc_max_response_times,
    amc_max_schedulable,
    amc_max_schedulable_with_order,
)
from repro.analysis.smc import (
    smc_response_times,
    smc_schedulable,
    smc_schedulable_with_order,
)
from repro.core.conversion import convert_uniform
from repro.gen.taskset import generate_taskset
from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.mc_task import MCTask, MCTaskSet

HI = CriticalityRole.HI
LO = CriticalityRole.LO


def _pair():
    hi = MCTask("hi", 100, 100, 10, 20, HI)
    lo = MCTask("lo", 50, 50, 5, 5, LO)
    return [lo, hi]


class TestSMC:
    def test_response_times_hand_computed(self):
        ordered = _pair()
        r = smc_response_times(ordered)
        assert r[0] == 5.0  # LO task at its own budget
        # HI task: own budget C(HI)=20; interference from lo at
        # C(min(HI, LO)) = C(LO) = 5: R = 20 + ceil(R/50)*5 = 25.
        assert r[1] == 25.0

    def test_interference_capped_at_interferer_level(self):
        """A LO task never interferes beyond C(LO), even on a HI task."""
        hi_victim = MCTask("victim", 100, 100, 10, 40, HI)
        hi_interferer = MCTask("ih", 50, 50, 10, 20, HI)
        ordered = [hi_interferer, hi_victim]
        r = smc_response_times(ordered)
        # victim: 40 + ceil(R/50)*20 (HI interferer at HI budget):
        # R=60: ceil(60/50)=2 -> 40+40=80; ceil(80/50)=2 -> 80 fixpoint.
        assert r[1] == 80.0

    def test_unschedulable_none(self):
        a = MCTask("a", 10, 10, 6, 6, LO)
        b = MCTask("b", 10, 10, 3, 6, HI)
        r = smc_response_times([a, b])
        assert r[1] is None  # 6 + 6-per-10 cannot fit 10

    def test_rejects_arbitrary_deadlines(self):
        t = MCTask("t", 10, 20, 1, 1, HI)
        with pytest.raises(ValueError, match="constrained"):
            smc_response_times([t])

    def test_audsley_wrapper(self):
        assert smc_schedulable(MCTaskSet(_pair()))

    def test_with_order(self):
        assert smc_schedulable_with_order(_pair())


class TestAMCMax:
    def test_matches_rtb_on_simple_pair(self):
        ordered = _pair()
        r_lo, r_hi = amc_max_response_times(ordered)
        assert r_lo[1] == 15.0
        # One candidate switch instant matters here; AMC-max must not
        # exceed AMC-rtb's bound of 25.
        assert r_hi[1] is not None and r_hi[1] <= 25.0

    def test_hi_only_set(self):
        mc = [MCTask("hi", 100, 100, 10, 30, HI)]
        r_lo, r_hi = amc_max_response_times(mc)
        assert r_lo[0] == 10.0
        assert r_hi[0] == 30.0

    def test_unschedulable_set(self):
        a = MCTask("a", 10, 10, 5, 5, LO)
        b = MCTask("b", 100, 100, 10, 95, HI)
        assert not amc_max_schedulable_with_order([a, b])

    def test_audsley_wrapper(self):
        assert amc_max_schedulable(MCTaskSet(_pair()))

    @pytest.mark.parametrize("seed", range(12))
    def test_dominates_amc_rtb_random_sets(self, seed):
        """The published domination result, on random converted sets."""
        spec = DualCriticalitySpec.from_names("B", "D")
        ts = generate_taskset(0.75, spec, seed)
        for n_prime in (1, 2):
            mc = convert_uniform(ts, 3, 1, n_prime)
            if amc_rtb_schedulable(mc):
                assert amc_max_schedulable(mc), (
                    f"AMC-max rejected an AMC-rtb-accepted set "
                    f"(seed={seed}, n'={n_prime})"
                )

    @pytest.mark.parametrize("seed", range(12))
    def test_dominates_with_fixed_dm_order(self, seed):
        """Domination also holds order-for-order (no Audsley freedom)."""
        spec = DualCriticalitySpec.from_names("B", "D")
        ts = generate_taskset(0.7, spec, seed)
        mc = convert_uniform(ts, 2, 1, 1)
        ordered = sorted(mc, key=lambda t: t.deadline)
        if amc_rtb_schedulable_with_order(ordered):
            assert amc_max_schedulable_with_order(ordered)

    def test_smc_weaker_than_amc_family(self):
        """Any SMC-schedulable converted set is AMC-rtb-schedulable.

        (AMC dominates SMC; spot-check rather than exhaustive proof.)
        """
        spec = DualCriticalitySpec.from_names("B", "D")
        for seed in range(10):
            ts = generate_taskset(0.65, spec, seed)
            mc = convert_uniform(ts, 2, 1, 1)
            ordered = sorted(mc, key=lambda t: t.deadline)
            if smc_schedulable_with_order(ordered):
                assert amc_rtb_schedulable_with_order(ordered)
