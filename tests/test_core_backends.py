"""Direct unit tests for every scheduler backend."""

import math

import pytest

from repro.core.backends import (
    AMCBackend,
    AMCMaxBackend,
    DbfMCBackend,
    EDFVDBackend,
    EDFVDDegradationBackend,
    SMCBackend,
    clear_schedulability_cache,
    schedulability_cache_info,
)
from repro.core.conversion import convert_uniform
from repro.core.ftmc import ft_schedule

ALL_BACKENDS = [
    EDFVDBackend(),
    EDFVDDegradationBackend(6.0),
    AMCBackend(),
    AMCMaxBackend(),
    SMCBackend(),
    DbfMCBackend(),
]


class TestBackendContract:
    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_mechanism_declared(self, backend):
        assert backend.mechanism in ("kill", "degrade")

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_schedulability_on_converted_example(self, backend, example31):
        mc = convert_uniform(example31, 3, 1, 1)
        verdict = backend.is_schedulable(mc)
        assert isinstance(verdict, bool)
        # Determinism.
        assert backend.is_schedulable(mc) == verdict

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_monotone_in_killing_profile(self, backend, example31):
        verdicts = [
            backend.is_schedulable(convert_uniform(example31, 3, 1, n))
            for n in (1, 2, 3)
        ]
        for earlier, later in zip(verdicts, verdicts[1:]):
            assert earlier or not later

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_pluggable_into_ft_schedule(self, backend, example31):
        result = ft_schedule(example31, backend)
        assert result.backend_name == backend.name
        assert result.mechanism == backend.mechanism

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_utilization_metric_defined_or_nan(self, backend, example31):
        mc = convert_uniform(example31, 3, 1, 2)
        value = backend.utilization_metric(mc)
        assert math.isnan(value) or value >= 0.0

    def test_degradation_factor_exposure(self):
        assert EDFVDBackend().degradation_factor is None
        assert EDFVDDegradationBackend(4.0).degradation_factor == 4.0

    def test_only_edf_vd_family_defines_u_mc(self, example31):
        mc = convert_uniform(example31, 3, 1, 2)
        assert not math.isnan(EDFVDBackend().utilization_metric(mc))
        assert not math.isnan(
            EDFVDDegradationBackend(6.0).utilization_metric(mc)
        )
        for backend in (AMCBackend(), AMCMaxBackend(), SMCBackend(),
                        DbfMCBackend()):
            assert math.isnan(backend.utilization_metric(mc))

    def test_fixed_priority_family_agrees_on_trivial_sets(self, example31):
        light = convert_uniform(example31, 1, 1, 1)
        for backend in (AMCBackend(), AMCMaxBackend(), SMCBackend()):
            assert backend.is_schedulable(light)


class TestSchedulabilityCache:
    @pytest.fixture(autouse=True)
    def _clean_cache(self):
        clear_schedulability_cache()
        yield
        clear_schedulability_cache()

    def test_cached_verdict_matches_uncached(self, example31):
        backend = EDFVDBackend()
        mc = convert_uniform(example31, 3, 1, 2)
        assert backend.is_schedulable_cached(mc) == backend.is_schedulable(mc)

    def test_second_call_hits(self, example31):
        backend = EDFVDBackend()
        mc = convert_uniform(example31, 3, 1, 2)
        backend.is_schedulable_cached(mc)
        misses = schedulability_cache_info()["misses"]
        backend.is_schedulable_cached(mc)
        info = schedulability_cache_info()
        assert info["misses"] == misses
        assert info["hits"] >= 1

    def test_equal_valued_sets_share_entries(self, example31):
        """The key is the task parameters, not the object identity."""
        backend = EDFVDBackend()
        backend.is_schedulable_cached(convert_uniform(example31, 3, 1, 2))
        entries = schedulability_cache_info()["entries"]
        backend.is_schedulable_cached(convert_uniform(example31, 3, 1, 2))
        assert schedulability_cache_info()["entries"] == entries

    def test_distinct_backends_do_not_collide(self, example31):
        """Same task set, different analyses — distinct cache slots."""
        mc = convert_uniform(example31, 3, 1, 1)
        verdicts = {
            backend.name: backend.is_schedulable_cached(mc)
            for backend in ALL_BACKENDS
        }
        for backend in ALL_BACKENDS:
            assert verdicts[backend.name] == backend.is_schedulable(mc)

    def test_degradation_factor_in_signature(self, example31):
        """Two degradation backends with different factors must not share."""
        a = EDFVDDegradationBackend(2.0)
        b = EDFVDDegradationBackend(50.0)
        assert a.cache_signature != b.cache_signature

    def test_clear_resets_counters(self, example31):
        backend = EDFVDBackend()
        backend.is_schedulable_cached(convert_uniform(example31, 3, 1, 2))
        clear_schedulability_cache()
        info = schedulability_cache_info()
        assert info["entries"] == 0
        assert info["hits"] == 0
        assert info["misses"] == 0
        assert info["evictions"] == 0
        assert info["limit"] > 0

    def test_bounded_lru_evicts_oldest_first(self, example31, monkeypatch):
        """A resident process must hold at most `limit` verdicts."""
        from repro.core import backends as backends_module

        monkeypatch.setattr(backends_module, "_CACHE_LIMIT", 3)
        backend = EDFVDBackend()
        sets = [convert_uniform(example31, 3, 1, n) for n in (1, 2, 3)]
        for mc in sets:
            backend.is_schedulable_cached(mc)
        assert schedulability_cache_info()["entries"] == 3
        # A fourth distinct key evicts exactly one (the LRU: n'=1).
        backend.is_schedulable_cached(convert_uniform(example31, 2, 1, 1))
        info = schedulability_cache_info()
        assert info["entries"] == 3
        assert info["evictions"] == 1
        # n'=2 and n'=3 survived: hitting them computes nothing new.
        misses = info["misses"]
        backend.is_schedulable_cached(sets[1])
        backend.is_schedulable_cached(sets[2])
        assert schedulability_cache_info()["misses"] == misses

    def test_lru_recency_refreshed_on_hit(self, example31, monkeypatch):
        """A hit protects an old entry from the next eviction."""
        from repro.core import backends as backends_module

        monkeypatch.setattr(backends_module, "_CACHE_LIMIT", 2)
        backend = EDFVDBackend()
        first = convert_uniform(example31, 3, 1, 1)
        second = convert_uniform(example31, 3, 1, 2)
        backend.is_schedulable_cached(first)
        backend.is_schedulable_cached(second)
        backend.is_schedulable_cached(first)  # refresh: second is now LRU
        backend.is_schedulable_cached(convert_uniform(example31, 3, 1, 3))
        misses = schedulability_cache_info()["misses"]
        backend.is_schedulable_cached(first)
        assert schedulability_cache_info()["misses"] == misses, (
            "the refreshed entry was evicted — recency is not updated on hits"
        )

    def test_kernel_tier_is_part_of_the_key(self, example31, monkeypatch):
        """A verdict computed under one tier is never replayed as the other's.

        ``REPRO_NO_NUMPY`` is read at call time, so a resident process can
        flip tiers mid-flight; conflating the tiers would defeat the toggle
        as an equivalence diagnostic.
        """
        from repro.analysis import kernels

        backend = EDFVDBackend()
        mc = convert_uniform(example31, 3, 1, 2)
        monkeypatch.delenv(kernels.NO_NUMPY_ENV, raising=False)
        verdict = backend.is_schedulable_cached(mc)
        misses_after_first = schedulability_cache_info()["misses"]
        monkeypatch.setenv(kernels.NO_NUMPY_ENV, "1")
        assert backend.is_schedulable_cached(mc) == verdict
        info = schedulability_cache_info()
        assert info["misses"] == misses_after_first + 1, (
            "the scalar-tier call replayed the numpy-tier verdict"
        )
        # Each tier now has its own entry; both hit on the second round.
        assert backend.is_schedulable_cached(mc) == verdict
        monkeypatch.delenv(kernels.NO_NUMPY_ENV)
        assert backend.is_schedulable_cached(mc) == verdict
        assert schedulability_cache_info()["misses"] == misses_after_first + 1


class TestSchedulableUniformSeries:
    """The analytic candidate-series path vs the conversion-based scan."""

    def _series_backends(self):
        return [EDFVDBackend(), EDFVDDegradationBackend(6.0)]

    def test_bit_identical_to_cached_scan(self, fms):
        for backend in self._series_backends():
            clear_schedulability_cache()
            series = backend.schedulable_uniform_series(
                fms, 3, 2, range(3, 0, -1)
            )
            assert series is not None
            clear_schedulability_cache()
            expected = [
                backend.is_schedulable_cached(convert_uniform(fms, 3, 2, n))
                for n in range(3, 0, -1)
            ]
            assert series == expected

    def test_series_populates_the_converted_set_keys(self, fms):
        backend = EDFVDBackend()
        clear_schedulability_cache()
        backend.schedulable_uniform_series(fms, 3, 2, range(3, 0, -1))
        hits_before = schedulability_cache_info()["hits"]
        backend.is_schedulable_cached(convert_uniform(fms, 3, 2, 2))
        assert schedulability_cache_info()["hits"] == hits_before + 1, (
            "the generic path missed a verdict the series path computed"
        )

    def test_generic_backends_decline_the_fast_path(self, fms):
        assert (
            AMCBackend().schedulable_uniform_series(fms, 3, 2, [1]) is None
        )


class TestBaselineSchedulableSeries:
    def test_matches_per_set_baseline(self):
        import numpy as np

        from repro.analysis.edf import schedulable_without_adaptation
        from repro.core.backends import baseline_schedulable_series
        from repro.gen.taskset import generate_taskset
        from repro.model.criticality import DualCriticalitySpec
        from repro.model.faults import ReexecutionProfile

        spec = DualCriticalitySpec.from_names("B", "C")
        tasksets, reexecutions = [], []
        for seed, utilization in enumerate((0.5, 0.85, 1.1)):
            rng = np.random.default_rng([59, seed])
            taskset = generate_taskset(utilization, spec, rng)
            tasksets.append(taskset)
            reexecutions.append(ReexecutionProfile.uniform(taskset, 2, 1))
        clear_schedulability_cache()
        batch = baseline_schedulable_series(tasksets, reexecutions)
        assert batch == [
            schedulable_without_adaptation(ts, re)
            for ts, re in zip(tasksets, reexecutions)
        ]

    def test_second_sweep_is_served_from_cache(self, fms):
        from repro.core.backends import baseline_schedulable_series
        from repro.model.faults import ReexecutionProfile

        reexecution = ReexecutionProfile.uniform(fms, 3, 2)
        clear_schedulability_cache()
        first = baseline_schedulable_series([fms], [reexecution])
        hits_before = schedulability_cache_info()["hits"]
        second = baseline_schedulable_series([fms], [reexecution])
        assert second == first
        assert schedulability_cache_info()["hits"] == hits_before + 1
