"""Direct unit tests for every scheduler backend."""

import math

import pytest

from repro.core.backends import (
    AMCBackend,
    AMCMaxBackend,
    DbfMCBackend,
    EDFVDBackend,
    EDFVDDegradationBackend,
    SMCBackend,
)
from repro.core.conversion import convert_uniform
from repro.core.ftmc import ft_schedule

ALL_BACKENDS = [
    EDFVDBackend(),
    EDFVDDegradationBackend(6.0),
    AMCBackend(),
    AMCMaxBackend(),
    SMCBackend(),
    DbfMCBackend(),
]


class TestBackendContract:
    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_mechanism_declared(self, backend):
        assert backend.mechanism in ("kill", "degrade")

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_schedulability_on_converted_example(self, backend, example31):
        mc = convert_uniform(example31, 3, 1, 1)
        verdict = backend.is_schedulable(mc)
        assert isinstance(verdict, bool)
        # Determinism.
        assert backend.is_schedulable(mc) == verdict

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_monotone_in_killing_profile(self, backend, example31):
        verdicts = [
            backend.is_schedulable(convert_uniform(example31, 3, 1, n))
            for n in (1, 2, 3)
        ]
        for earlier, later in zip(verdicts, verdicts[1:]):
            assert earlier or not later

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_pluggable_into_ft_schedule(self, backend, example31):
        result = ft_schedule(example31, backend)
        assert result.backend_name == backend.name
        assert result.mechanism == backend.mechanism

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=lambda b: b.name)
    def test_utilization_metric_defined_or_nan(self, backend, example31):
        mc = convert_uniform(example31, 3, 1, 2)
        value = backend.utilization_metric(mc)
        assert math.isnan(value) or value >= 0.0

    def test_degradation_factor_exposure(self):
        assert EDFVDBackend().degradation_factor is None
        assert EDFVDDegradationBackend(4.0).degradation_factor == 4.0

    def test_only_edf_vd_family_defines_u_mc(self, example31):
        mc = convert_uniform(example31, 3, 1, 2)
        assert not math.isnan(EDFVDBackend().utilization_metric(mc))
        assert not math.isnan(
            EDFVDDegradationBackend(6.0).utilization_metric(mc)
        )
        for backend in (AMCBackend(), AMCMaxBackend(), SMCBackend(),
                        DbfMCBackend()):
            assert math.isnan(backend.utilization_metric(mc))

    def test_fixed_priority_family_agrees_on_trivial_sets(self, example31):
        light = convert_uniform(example31, 1, 1, 1)
        for backend in (AMCBackend(), AMCMaxBackend(), SMCBackend()):
            assert backend.is_schedulable(light)
