"""Dedicated unit tests for the metrics container."""

import pytest

from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.task import HOUR_MS, Task, TaskSet
from repro.sim.jobs import Job, JobOutcome
from repro.sim.metrics import SimulationMetrics, TaskCounters

HI = CriticalityRole.HI
LO = CriticalityRole.LO


def _taskset():
    return TaskSet(
        [
            Task("hi", 100, 100, 10, HI, 1e-3),
            Task("lo", 200, 200, 20, LO, 1e-3),
        ],
        DualCriticalitySpec.from_names("B", "D"),
    )


def _job(task, outcome, release=0.0, finish=None, attempts=1):
    job = Job(
        task=task,
        release=release,
        absolute_deadline=release + task.deadline,
        max_attempts=attempts,
        execution_time=task.wcet,
    )
    job.outcome = outcome
    job.finish_time = finish
    return job


class TestTaskCounters:
    def test_record_buckets(self):
        task = _taskset()[0]
        counters = TaskCounters()
        for outcome in (
            JobOutcome.SUCCESS,
            JobOutcome.FAULT_EXHAUSTED,
            JobOutcome.DEADLINE_MISS,
            JobOutcome.KILLED,
            JobOutcome.PENDING,
        ):
            counters.record(_job(task, outcome, finish=50.0))
        assert counters.success == 1
        assert counters.fault_exhausted == 1
        assert counters.deadline_miss == 1
        assert counters.killed == 1
        assert counters.unfinished == 1
        assert counters.temporal_failures == 3

    def test_response_statistics(self):
        task = _taskset()[0]
        counters = TaskCounters()
        counters.record(_job(task, JobOutcome.SUCCESS, release=0.0, finish=30.0))
        counters.record(_job(task, JobOutcome.SUCCESS, release=100.0,
                             finish=110.0))
        assert counters.max_response == 30.0
        assert counters.mean_response == pytest.approx(20.0)
        assert counters.responses == 2

    def test_killed_jobs_excluded_from_response_stats(self):
        task = _taskset()[0]
        counters = TaskCounters()
        counters.record(_job(task, JobOutcome.KILLED, finish=40.0))
        assert counters.responses == 0
        assert counters.max_response == 0.0


class TestSimulationMetrics:
    def test_hours_and_empirical_pfh(self):
        ts = _taskset()
        metrics = SimulationMetrics(ts, horizon=2 * HOUR_MS)
        counters = metrics.counters("hi")
        counters.fault_exhausted = 6
        assert metrics.hours == 2.0
        assert metrics.empirical_pfh(HI) == pytest.approx(3.0)
        assert metrics.empirical_pfh(LO) == 0.0

    def test_role_filters(self):
        ts = _taskset()
        metrics = SimulationMetrics(ts, horizon=1000.0)
        metrics.counters("hi").released = 10
        metrics.counters("lo").released = 4
        metrics.counters("lo").killed = 2
        assert metrics.released() == 14
        assert metrics.released(HI) == 10
        assert metrics.kills(LO) == 2
        assert metrics.kills(HI) == 0

    def test_unknown_task_names_ignored_in_sums(self):
        ts = _taskset()
        metrics = SimulationMetrics(ts, horizon=1000.0)
        metrics.counters("ghost").released = 99  # not part of the set
        assert metrics.released() == 0

    def test_outcome_histogram(self):
        ts = _taskset()
        metrics = SimulationMetrics(ts, horizon=1000.0)
        metrics.counters("hi").success = 3
        metrics.counters("lo").killed = 2
        hist = metrics.outcome_histogram()
        assert hist["success"] == 3
        assert hist["killed"] == 2
        assert hist["deadline-miss"] == 0

    def test_describe_mentions_roles_and_switch(self):
        ts = _taskset()
        metrics = SimulationMetrics(ts, horizon=1000.0)
        metrics.mode_switch_time = 123.0
        metrics.busy_time = 500.0
        text = metrics.describe()
        assert "HI:" in text and "LO:" in text
        assert "mode switch at t=123" in text
        assert "50.0%" in text

    def test_utilization_observed_zero_horizon_safe(self):
        metrics = SimulationMetrics(_taskset(), horizon=1000.0)
        assert metrics.utilization_observed == 0.0

    def test_hi_mode_entered(self):
        metrics = SimulationMetrics(_taskset(), horizon=1000.0)
        assert not metrics.hi_mode_entered
        metrics.mode_switch_time = 10.0
        assert metrics.hi_mode_entered
