"""Tests for the table reproduction drivers and the results container."""

import math

import pytest

from repro.experiments.results import ExperimentResult
from repro.experiments.tables import (
    table1,
    table2_example31,
    table3_example41,
    table4_fms,
)


class TestExperimentResult:
    def test_add_row_validates_arity(self):
        result = ExperimentResult("x", "d", ["a", "b"])
        result.add_row(1, 2)
        with pytest.raises(ValueError, match="columns"):
            result.add_row(1)

    def test_column_extraction(self):
        result = ExperimentResult("x", "d", ["a", "b"])
        result.add_row(1, 10)
        result.add_row(2, 20)
        assert result.column("b") == [10, 20]

    def test_csv_round_trip(self, tmp_path):
        result = ExperimentResult("x", "d", ["a", "b"])
        result.add_row(1, 2.5)
        path = tmp_path / "out.csv"
        text = result.to_csv(str(path))
        assert path.read_text() == text
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"

    def test_render_contains_everything(self):
        result = ExperimentResult("x", "my description", ["col"])
        result.add_row(3.14159)
        result.extend_notes(["important"])
        text = result.render()
        assert "my description" in text
        assert "3.14159" in text
        assert "note: important" in text

    def test_render_empty(self):
        result = ExperimentResult("x", "d", ["a"])
        assert "a" in result.render()


class TestTable1:
    def test_five_levels(self):
        result = table1()
        assert len(result.rows) == 5
        assert result.column("level") == ["A", "B", "C", "D", "E"]

    def test_ceiling_values(self):
        result = table1()
        ceilings = dict(zip(result.column("level"), result.column("pfh_requirement")))
        assert ceilings["A"] == 1e-9
        assert ceilings["B"] == 1e-7
        assert ceilings["C"] == 1e-5
        assert math.isinf(ceilings["D"])


class TestTable2:
    def test_paper_values_in_notes(self):
        result = table2_example31()
        notes = " ".join(result.notes)
        assert "n_HI=3" in notes
        assert "2.040e-10" in notes
        assert "1.08595" in notes

    def test_rows_match_table2(self):
        result = table2_example31()
        assert result.column("T=D") == [60.0, 25.0, 40.0, 90.0, 70.0]
        assert result.column("C") == [5.0, 4.0, 7.0, 6.0, 8.0]
        assert result.column("chi") == ["HI", "HI", "LO", "LO", "LO"]


class TestTable3:
    def test_converted_budgets(self):
        result = table3_example41()
        assert result.column("C(HI)") == [15.0, 12.0, 7.0, 6.0, 8.0]
        assert result.column("C(LO)") == [10.0, 8.0, 7.0, 6.0, 8.0]

    def test_schedulable_note(self):
        notes = " ".join(table3_example41().notes)
        assert "schedulable: True" in notes


class TestTable4:
    def test_eleven_rows(self):
        result = table4_fms()
        assert len(result.rows) == 11

    def test_levels_and_ranges(self):
        result = table4_fms()
        levels = result.column("chi(DO-178B)")
        assert levels.count("B") == 7
        assert levels.count("C") == 4
        ranges = result.column("C_range")
        assert ranges[:7] == ["(0, 20]"] * 7
        assert ranges[7:] == ["(0, 200]"] * 4
