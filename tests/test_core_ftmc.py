"""End-to-end tests for FT-S (Algorithms 1-2, Theorem 4.1)."""

import math

import pytest

from repro.analysis.edf_vd import edf_vd_schedulable
from repro.core.backends import AMCBackend, EDFVDBackend, EDFVDDegradationBackend
from repro.core.ftmc import (
    FTSFailure,
    ft_edf_vd,
    ft_edf_vd_degradation,
    ft_schedule,
)
from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.task import Task, TaskSet


class TestFTEdfVdOnExample31:
    def test_success_with_paper_profiles(self, example31):
        """Examples 3.1/4.1 end to end: n_HI=3, n_LO=1, n'=2, SUCCESS."""
        result = ft_edf_vd(example31)
        assert result.success
        assert result.failure is None
        assert (result.n_hi, result.n_lo) == (3, 1)
        assert result.adaptation == 2
        assert result.n1_hi == 1
        assert result.n2_hi == 2

    def test_reported_pfh_values(self, example31):
        result = ft_edf_vd(example31)
        assert result.pfh_hi == pytest.approx(2.04e-10, rel=1e-6)
        # LO=D carries no ceiling, but the bound is still reported.
        assert result.pfh_lo >= 0.0

    def test_converted_set_schedulable(self, example31):
        result = ft_edf_vd(example31)
        assert result.mc_taskset is not None
        assert edf_vd_schedulable(result.mc_taskset)
        assert result.u_mc <= 1.0 + 1e-12

    def test_result_truthiness(self, example31):
        assert ft_edf_vd(example31)

    def test_failure_with_lo_level_c(self, example31_lo_c):
        """Paper's point: killing level-C tasks violates their safety."""
        result = ft_edf_vd(example31_lo_c)
        assert not result.success
        assert result.failure is FTSFailure.UNSAFE_ADAPTATION


class TestFTOnFMS:
    def test_killing_fails_safety_window(self, fms):
        """Fig. 1: safe region (n' >= 3) and schedulable region (n' <= 2)
        are disjoint, so Algorithm 2 fails."""
        result = ft_edf_vd(fms, operation_hours=10.0)
        assert not result.success
        assert result.failure is FTSFailure.INFEASIBLE_WINDOW
        assert result.n1_hi == 3
        assert result.n2_hi == 2

    def test_degradation_succeeds(self, fms):
        """Fig. 2: degradation overlaps at n' = 2 and FT-S succeeds."""
        result = ft_edf_vd_degradation(fms, 6.0, operation_hours=10.0)
        assert result.success
        assert result.adaptation == 2
        assert (result.n_hi, result.n_lo) == (3, 2)
        assert result.degradation_factor == 6.0

    def test_degradation_pfh_matches_paper_order(self, fms):
        result = ft_edf_vd_degradation(fms, 6.0, operation_hours=10.0)
        assert -12.0 <= math.log10(result.pfh_lo) <= -10.0

    def test_mechanism_labels(self, fms):
        kill = ft_edf_vd(fms)
        degrade = ft_edf_vd_degradation(fms, 6.0)
        assert kill.mechanism == "kill"
        assert degrade.mechanism == "degrade"
        assert kill.degradation_factor is None


class TestFailureModes:
    def test_unsafe_reexecution(self, example31):
        """A ceiling nothing can reach (f too high for level A at max_n=2)."""
        result = ft_edf_vd(example31, max_n=2)
        assert not result.success
        assert result.failure is FTSFailure.UNSAFE_REEXECUTION
        assert result.n_hi is None

    def test_unschedulable(self):
        overloaded = TaskSet(
            [
                Task("hi", 100, 100, 60, CriticalityRole.HI, 1e-9),
                Task("lo", 100, 100, 60, CriticalityRole.LO, 1e-9),
            ],
            DualCriticalitySpec.from_names("B", "D"),
        )
        result = ft_edf_vd(overloaded)
        assert not result.success
        assert result.failure is FTSFailure.UNSCHEDULABLE
        assert result.n1_hi == 1

    def test_failure_result_is_falsy(self, fms):
        assert not ft_edf_vd(fms)


class TestTheorem41Guarantees:
    """On SUCCESS, safety on both levels and schedulability must hold."""

    @pytest.mark.parametrize("lo_level", ["C", "D", "E"])
    def test_guarantees_across_lo_levels(self, example31, lo_level):
        spec = DualCriticalitySpec.from_names("B", lo_level)
        taskset = example31.with_spec(spec)
        for backend in (EDFVDBackend(), EDFVDDegradationBackend(6.0)):
            result = ft_schedule(taskset, backend, operation_hours=10.0)
            if not result.success:
                continue
            assert result.pfh_hi <= spec.pfh_requirement(CriticalityRole.HI)
            assert result.pfh_lo < spec.pfh_requirement(CriticalityRole.LO)
            assert backend.is_schedulable(result.mc_taskset)

    def test_amc_backend_integrates(self, example31):
        """Theorem 4.1's generality: a fixed-priority backend plugs in."""
        result = ft_schedule(example31, AMCBackend())
        assert result.backend_name == "amc-rtb"
        if result.success:
            assert AMCBackend().is_schedulable(result.mc_taskset)
        # U_MC is undefined for AMC; reported as NaN.
        assert math.isnan(result.u_mc) or result.u_mc > 0

    def test_adaptation_equals_n2(self, example31):
        """Line 10: the adopted profile is the maximal schedulable one."""
        result = ft_edf_vd(example31)
        assert result.adaptation == result.n2_hi

    def test_operation_hours_recorded(self, example31):
        result = ft_edf_vd(example31, operation_hours=5.0)
        assert result.operation_hours == 5.0


class TestBackendValidation:
    def test_degradation_backend_rejects_bad_factor(self):
        with pytest.raises(ValueError, match="factor"):
            EDFVDDegradationBackend(1.0)

    def test_backend_names(self):
        assert EDFVDBackend().name == "edf-vd"
        assert "df=6" in EDFVDDegradationBackend(6.0).name
        assert EDFVDBackend().mechanism == "kill"
        assert EDFVDDegradationBackend(2.0).mechanism == "degrade"

    def test_utilization_metric_nan_for_amc(self, example31):
        from repro.core.conversion import convert_uniform

        mc = convert_uniform(example31, 3, 1, 2)
        assert math.isnan(AMCBackend().utilization_metric(mc))

    def test_edf_vd_virtual_deadline_factor(self, example31):
        from repro.core.conversion import convert_uniform

        backend = EDFVDBackend()
        mc = convert_uniform(example31, 3, 1, 2)
        x = backend.virtual_deadline_factor(mc)
        assert x is not None and 0 < x <= 1
