"""Property-based tests: lint is total over the repo's own generator.

Whatever :func:`repro.gen.taskset.generate_taskset` produces, the lint
front ends must return a report — never raise — and (since the generator
is the source of every Fig. 3 data point) the reports must carry no
error-severity findings.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gen.taskset import generate_taskset
from repro.lint import lint_taskset
from repro.lint.engine import lint_conversion, lint_profiles
from repro.model.criticality import DualCriticalitySpec

SPEC_NAMES = [("A", "C"), ("B", "C"), ("B", "D"), ("C", "E")]

taskset_inputs = st.tuples(
    st.floats(min_value=0.05, max_value=0.95),
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(SPEC_NAMES),
)


def _generate(params):
    utilization, seed, (hi, lo) = params
    spec = DualCriticalitySpec.from_names(hi, lo)
    return generate_taskset(utilization, spec, rng=seed)


@settings(max_examples=40, deadline=None)
@given(taskset_inputs)
def test_lint_taskset_never_crashes_and_is_error_free(params):
    report = lint_taskset(_generate(params))
    assert not report.errors, report.render_text("generated")
    assert report.exit_code() == 0


@settings(max_examples=20, deadline=None)
@given(taskset_inputs, st.integers(1, 4), st.integers(1, 4))
def test_lint_profiles_total_on_generated_sets(params, n_hi, n_prime):
    taskset = _generate(params)
    reexecution = {t.name: n_hi for t in taskset}
    adaptation = {t.name: n_prime for t in taskset.hi_tasks}
    report = lint_profiles(taskset, reexecution, adaptation)
    # Valid profile structure by construction, except possibly n' > n
    # (tiny sets may have no HI task at all, and then nothing can fire).
    expected = ("FTMC016",) if n_prime > n_hi and adaptation else ()
    assert report.codes() == expected


@settings(max_examples=15, deadline=None)
@given(taskset_inputs)
def test_lint_conversion_round_trip_self_consistent(params):
    taskset = _generate(params)
    report = lint_conversion(taskset, n_hi=3, n_lo=1, n_prime=2)
    # The derived Lemma 4.1 conversion can be infeasible (FTMC022/023 on
    # the inflated budgets) but must never disagree with its own source.
    assert not report.has_code("FTMC030")
    assert not report.has_code("FTMC031")
