"""Process-level integration tests: kill a campaign, resume it exactly.

These run the real CLI (``python -m repro campaign ...``) in a
subprocess and exercise the contracts only a live process can prove:

* SIGKILL mid-shard, then ``--resume`` → result files byte-identical to
  an uninterrupted run (the ISSUE's headline acceptance criterion);
* a checkpoint truncated behind the runner's back still resumes;
* SIGINT exits 130 with the checkpoint retained;
* ``--chaos 42`` completes with a coverage report naming every retried
  shard.

``FTMC_SHARD_DELAY`` (see docs/robustness.md) widens the window in
which a kill signal lands mid-shard, keeping the races deterministic.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def _env(**extra):
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("FTMC_SHARD_DELAY", None)
    env.update(extra)
    return env


def _campaign(args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", "campaign", *args],
        env=_env(),
        capture_output=True,
        text=True,
        timeout=300,
        **kwargs,
    )


def _start_campaign(args, delay="0.6"):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", *args],
        env=_env(FTMC_SHARD_DELAY=delay),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )


def _wait_for_lines(path, n, timeout=60.0):
    """Block until ``path`` holds at least ``n`` complete lines."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(path) as handle:
                if handle.read().count("\n") >= n:
                    return
        except FileNotFoundError:
            pass
        time.sleep(0.05)
    raise AssertionError(f"{path} never reached {n} lines")


@pytest.fixture(scope="module")
def clean_fig2(tmp_path_factory):
    """One uninterrupted fig2 campaign — the byte-identity reference."""
    out = tmp_path_factory.mktemp("clean")
    proc = _campaign(["fig2", "--output-dir", str(out)])
    assert proc.returncode == 0, proc.stderr
    return {
        "fig2.json": (out / "fig2.json").read_bytes(),
        "fig2.csv": (out / "fig2.csv").read_bytes(),
    }


class TestKillAndResume:
    def test_sigkilled_campaign_resumes_byte_identically(
        self, tmp_path, clean_fig2
    ):
        out = tmp_path / "killed"
        proc = _start_campaign(["fig2", "--output-dir", str(out)])
        try:
            # manifest + at least one shard committed, campaign mid-flight
            _wait_for_lines(out / "fig2.checkpoint.jsonl", 2)
            proc.kill()  # SIGKILL: no cleanup, no atexit, nothing
        finally:
            proc.wait()
        assert proc.returncode == -signal.SIGKILL
        assert not (out / "fig2.json").exists()  # died before finalising

        resume = _campaign(["fig2", "--output-dir", str(out), "--resume"])
        assert resume.returncode == 0, resume.stderr
        for name, reference in clean_fig2.items():
            assert (out / name).read_bytes() == reference
        coverage = json.loads((out / "fig2.coverage.json").read_text())
        assert coverage["completed"] == coverage["shards"] == 4
        assert coverage["resumed"] >= 1

    def test_truncated_checkpoint_still_resumes(self, tmp_path, clean_fig2):
        out = tmp_path / "torn"
        proc = _campaign(["fig2", "--output-dir", str(out)])
        assert proc.returncode == 0, proc.stderr
        checkpoint = out / "fig2.checkpoint.jsonl"
        # tear the checkpoint tail behind the runner's back
        os.truncate(checkpoint, checkpoint.stat().st_size - 17)
        (out / "fig2.json").unlink()
        (out / "fig2.csv").unlink()
        resume = _campaign(["fig2", "--output-dir", str(out), "--resume"])
        assert resume.returncode == 0, resume.stderr
        for name, reference in clean_fig2.items():
            assert (out / name).read_bytes() == reference

    def test_resume_without_checkpoint_exits_2(self, tmp_path):
        proc = _campaign(
            ["fig2", "--output-dir", str(tmp_path / "nothing"), "--resume"]
        )
        assert proc.returncode == 2
        assert "no usable checkpoint" in proc.stderr


class TestInterrupt:
    def test_sigint_exits_130_and_retains_checkpoint(self, tmp_path):
        out = tmp_path / "interrupted"
        proc = _start_campaign(["fig2", "--output-dir", str(out)])
        try:
            _wait_for_lines(out / "fig2.checkpoint.jsonl", 2)
            proc.send_signal(signal.SIGINT)
            stderr = proc.communicate(timeout=60)[1]
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 130
        assert "--resume" in stderr  # the operator is told how to continue
        assert (out / "fig2.checkpoint.jsonl").exists()
        assert not (out / "fig2.json").exists()


class TestChaosSmoke:
    def test_chaos_campaign_completes_with_coverage(self, tmp_path):
        """The ISSUE's acceptance criterion: ftmc campaign fig1 --chaos 42."""
        out = tmp_path / "chaos"
        proc = _campaign(["fig1", "--chaos", "42", "--output-dir", str(out)])
        assert proc.returncode == 0, proc.stderr
        coverage = json.loads((out / "fig1.coverage.json").read_text())
        assert coverage["chaos_seed"] == 42
        assert coverage["completed"] == coverage["shards"] == 4
        assert coverage["failed_shards"] == []
        # every injected fault shows up as a retried/recovered shard
        from repro.runner import ChaosInjector

        shard_ids = [f"nprime-{k}" for k in range(1, 5)]
        plan = ChaosInjector(42, shard_ids).plan()
        retried = {s["id"] for s in coverage["retried_shards"]}
        for shard_id, action in plan.items():
            if action in ("crash", "hang"):
                assert shard_id in retried
            if action == "truncate":
                assert any(
                    s["id"] == shard_id and s["recovered"]
                    for s in coverage["retried_shards"]
                ) or shard_id in retried
        assert "retried" in proc.stdout  # terminal summary names them too
