"""Property-based tests for the multilevel and multicore extensions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backends import EDFVDBackend
from repro.core.conversion import convert_uniform
from repro.gen.taskset import generate_taskset
from repro.model.criticality import (
    CriticalityRole,
    DO178BLevel,
    DualCriticalitySpec,
)
from repro.multicore.partition import first_fit_decreasing
from repro.multilevel.model import MLTask, MLTaskSet
from repro.multilevel.reduction import (
    boundary_candidates,
    reduce_at_boundary,
)

SPEC = DualCriticalitySpec.from_names("B", "D")

levels = st.sampled_from(
    [DO178BLevel.A, DO178BLevel.B, DO178BLevel.C, DO178BLevel.D]
)


@st.composite
def ml_tasksets(draw):
    n = draw(st.integers(2, 6))
    tasks = []
    used_levels = set()
    for i in range(n):
        level = draw(levels)
        used_levels.add(level)
        period = float(draw(st.integers(50, 2000)))
        wcet = float(draw(st.integers(1, max(2, int(period // 10)))))
        tasks.append(
            MLTask(f"t{i}", period, period, wcet, level,
                   draw(st.sampled_from([1e-6, 1e-5, 1e-4])))
        )
    return MLTaskSet(tasks)


class TestMultilevelProperties:
    @given(ml_tasksets())
    @settings(max_examples=60, deadline=None)
    def test_reduction_preserves_tasks_and_utilization(self, ml):
        for boundary in boundary_candidates(ml):
            dual = reduce_at_boundary(ml, boundary)
            assert len(dual) == len(ml)
            assert dual.utilization() == pytest.approx(ml.utilization())
            # Roles follow the boundary exactly.
            for task in ml:
                role = dual.task(task.name).criticality
                expected = (
                    CriticalityRole.HI
                    if task.level >= boundary
                    else CriticalityRole.LO
                )
                assert role is expected

    @given(ml_tasksets())
    @settings(max_examples=60, deadline=None)
    def test_boundaries_partition_strictly(self, ml):
        candidates = boundary_candidates(ml)
        # Candidates exclude exactly the lowest present level.
        present = ml.levels()
        assert set(candidates) == set(present[:-1])
        for boundary in candidates:
            dual = reduce_at_boundary(ml, boundary)
            assert dual.hi_tasks and dual.lo_tasks

    @given(ml_tasksets())
    @settings(max_examples=40, deadline=None)
    def test_spec_gates_are_group_extremes(self, ml):
        for boundary in boundary_candidates(ml):
            dual = reduce_at_boundary(ml, boundary)
            hi_levels = [t.level for t in ml if t.level >= boundary]
            lo_levels = [t.level for t in ml if t.level < boundary]
            assert dual.spec.hi_level == min(hi_levels)
            assert dual.spec.lo_level == max(lo_levels)


class TestMulticoreProperties:
    @given(st.integers(0, 40), st.integers(1, 4),
           st.floats(0.3, 1.8))
    @settings(max_examples=40, deadline=None)
    def test_partition_is_exact_cover(self, seed, m, utilization):
        taskset = generate_taskset(utilization, SPEC, seed)
        mc = convert_uniform(taskset, 2, 1, 1)
        partition = first_fit_decreasing(mc, m, EDFVDBackend())
        if partition is None:
            return
        names = [
            t.name for processor in partition.processors for t in processor
        ]
        assert sorted(names) == sorted(t.name for t in mc)
        for processor in partition.processors:
            assert EDFVDBackend().is_schedulable(processor)

    @given(st.integers(0, 40), st.floats(0.3, 1.8))
    @settings(max_examples=40, deadline=None)
    def test_more_processors_never_hurt(self, seed, utilization):
        taskset = generate_taskset(utilization, SPEC, seed)
        mc = convert_uniform(taskset, 2, 1, 1)
        backend = EDFVDBackend()
        feasible = [
            first_fit_decreasing(mc, m, backend) is not None
            for m in (1, 2, 4)
        ]
        for fewer, more in zip(feasible, feasible[1:]):
            assert more or not fewer
