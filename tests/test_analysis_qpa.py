"""Tests for Quick Processor-demand Analysis (QPA)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.edf import Workload, edf_processor_demand_test
from repro.analysis.qpa import qpa_schedulable


class TestQPA:
    def test_trivial_cases(self):
        assert qpa_schedulable([])
        assert qpa_schedulable([Workload(10, 10, 0.0)])
        assert qpa_schedulable([Workload(10, 10, 10)])

    def test_overload_rejected(self):
        assert not qpa_schedulable([Workload(10, 10, 11)])

    def test_constrained_deadline_infeasible(self):
        assert not qpa_schedulable(
            [Workload(100, 5, 4), Workload(100, 5, 4)]
        )

    def test_constrained_deadline_feasible(self):
        assert qpa_schedulable(
            [Workload(100, 10, 4), Workload(100, 20, 4)]
        )

    def test_arbitrary_deadlines(self):
        assert qpa_schedulable([Workload(10, 15, 5), Workload(20, 30, 8)])

    def test_shared_short_deadline_overload(self):
        """Two jobs due at t = 5 with 6 units of demand: unschedulable.
        Exercises the final d_min check of the backward iteration."""
        assert not qpa_schedulable(
            [Workload(100, 5, 3), Workload(100, 5, 3)]
        )

    @given(
        st.lists(
            st.tuples(
                st.integers(5, 100),   # period
                st.integers(2, 150),   # deadline
                st.integers(1, 40),    # wcet (clamped below)
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_exactly_matches_pdc(self, raw):
        """QPA and the straightforward PDC are the same exact test."""
        workload = [
            Workload(float(t), float(d), float(min(c, t, d)))
            for t, d, c in raw
        ]
        assert qpa_schedulable(workload) == edf_processor_demand_test(workload)

    def test_example31_inflated_unschedulable(self, example31):
        from repro.analysis.edf import inflated_workload
        from repro.model.faults import ReexecutionProfile

        profile = ReexecutionProfile.uniform(example31, 3, 1)
        assert not qpa_schedulable(inflated_workload(example31, profile))

    def test_example31_single_execution_schedulable(self, example31):
        from repro.analysis.edf import workload_from_taskset

        assert qpa_schedulable(workload_from_taskset(example31))

    def test_near_unit_utilization_rejected_conservatively(self):
        """Regression: a constrained-deadline workload with U within
        1e-12 of 1 used to explode the testing horizon (the la/(1-U)
        bound).  Both PDC and QPA must now terminate quickly with a
        conservative (possibly pessimistic) rejection, and agree."""
        almost_one = [
            Workload(1000.0, 800.0, 500.0),
            Workload(333.0, 333.0, 333.0 * (0.5 - 1e-13)),
        ]
        assert sum(w.utilization for w in almost_one) < 1.0
        verdict_qpa = qpa_schedulable(almost_one)
        verdict_pdc = edf_processor_demand_test(almost_one)
        assert verdict_qpa == verdict_pdc
        assert verdict_qpa is False  # conservative rejection
