"""Tests for the safety-margin and inverse analyses."""

import math

import pytest

from repro.model.criticality import CriticalityRole
from repro.model.faults import ReexecutionProfile
from repro.safety.margins import (
    max_tolerable_failure_probability,
    required_profile_for_probability,
    safety_margin,
)
from repro.safety.pfh import pfh_of_tasks


class TestSafetyMargin:
    def test_example31_margin(self, example31, example31_profiles):
        """pfh(HI) = 2.04e-10 against a 1e-7 ceiling: ~490x headroom."""
        margin = safety_margin(
            example31, CriticalityRole.HI, example31_profiles
        )
        assert margin == pytest.approx(1e-7 / 2.04e-10, rel=1e-5)
        assert margin > 1.0

    def test_violating_profile_has_margin_below_one(self, example31):
        profile = ReexecutionProfile.uniform(example31, 2, 1)
        margin = safety_margin(example31, CriticalityRole.HI, profile)
        assert margin < 1.0

    def test_no_requirement_level_is_infinite(self, example31):
        profile = ReexecutionProfile.uniform(example31, 3, 1)
        assert math.isinf(
            safety_margin(example31, CriticalityRole.LO, profile)
        )

    def test_requires_spec(self, example31, example31_profiles):
        from repro.model.task import TaskSet

        unbound = TaskSet(example31.tasks, spec=None)
        with pytest.raises(ValueError, match="spec"):
            safety_margin(unbound, CriticalityRole.HI, example31_profiles)


class TestMaxTolerableFailureProbability:
    def test_bound_holds_at_returned_value(self, example31):
        f_max = max_tolerable_failure_probability(
            example31, CriticalityRole.HI, executions=3
        )
        assert 0.0 < f_max < 1.0
        # At the returned probability the bound must (just) hold ...
        assert self._pfh_at(example31, f_max, 3) <= 1e-7 * (1 + 1e-6)
        # ... and slightly above it, fail.
        assert self._pfh_at(example31, f_max * 1.01, 3) > 1e-7

    @staticmethod
    def _pfh_at(taskset, f, n):
        from repro.model.task import Task

        tasks = [
            Task(t.name, t.period, t.deadline, t.wcet, t.criticality, f)
            for t in taskset.hi_tasks
        ]
        profile = ReexecutionProfile.constant(tasks, n)
        return pfh_of_tasks(tasks, profile)

    def test_more_reexecutions_tolerate_worse_hardware(self, example31):
        values = [
            max_tolerable_failure_probability(
                example31, CriticalityRole.HI, executions=n
            )
            for n in (1, 2, 3, 4)
        ]
        assert values == sorted(values)

    def test_example31_consistency_with_paper(self, example31):
        """f = 1e-5 must lie between the n=2 and n=3 tolerances (the paper
        needs exactly 3 executions at that probability)."""
        f2 = max_tolerable_failure_probability(
            example31, CriticalityRole.HI, executions=2
        )
        f3 = max_tolerable_failure_probability(
            example31, CriticalityRole.HI, executions=3
        )
        assert f2 < 1e-5 < f3

    def test_unlimited_ceiling(self, example31):
        value = max_tolerable_failure_probability(
            example31, CriticalityRole.LO, executions=1
        )
        assert value == pytest.approx(1.0, abs=1e-9)

    def test_explicit_ceiling(self, example31):
        strict = max_tolerable_failure_probability(
            example31, CriticalityRole.HI, 3, pfh_ceiling=1e-12
        )
        lax = max_tolerable_failure_probability(
            example31, CriticalityRole.HI, 3, pfh_ceiling=1e-6
        )
        assert strict < lax

    def test_zero_ceiling(self, example31):
        assert (
            max_tolerable_failure_probability(
                example31, CriticalityRole.HI, 3, pfh_ceiling=0.0
            )
            == 0.0
        )


class TestRequiredProfile:
    def test_paper_operating_point(self, example31):
        assert (
            required_profile_for_probability(
                example31, CriticalityRole.HI, 1e-5
            )
            == 3
        )

    def test_grows_as_hardware_degrades(self, example31):
        values = [
            required_profile_for_probability(example31, CriticalityRole.HI, f)
            for f in (1e-9, 1e-7, 1e-5, 1e-3, 1e-1)
        ]
        assert all(v is not None for v in values)
        assert values == sorted(values)

    def test_none_when_unreachable(self, example31):
        assert (
            required_profile_for_probability(
                example31, CriticalityRole.HI, 0.9, max_n=3
            )
            is None
        )

    def test_perfect_hardware_needs_one(self, example31):
        assert (
            required_profile_for_probability(example31, CriticalityRole.HI, 0.0)
            == 1
        )
