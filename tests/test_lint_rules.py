"""Per-rule unit tests for the model lint rules (FTMC0xx).

Every registered rule gets at least one *clean* fixture (the rule stays
silent) and one *violating* fixture (the rule fires with its documented
code and severity).  Records are built directly so that data the model
constructors would reject can still be exercised.
"""

from __future__ import annotations

import pytest

from repro.core.conversion import convert_uniform
from repro.lint import Severity, lint_mc_taskset, lint_taskset
from repro.lint.engine import lint_conversion, lint_profiles
from repro.lint.records import (
    MCTaskRecord,
    MCTaskSetRecord,
    TaskRecord,
    TaskSetRecord,
)
from repro.lint.registry import RULES, rule_catalog
from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.task import Task, TaskSet

HI = CriticalityRole.HI
LO = CriticalityRole.LO
SPEC_BD = DualCriticalitySpec.from_names("B", "D")


def task(
    name: str = "t1",
    period: float = 100.0,
    deadline: float | None = None,
    wcet: float = 10.0,
    criticality: CriticalityRole = HI,
    f: float = 1e-4,
) -> TaskRecord:
    return TaskRecord(
        name=name,
        period=period,
        deadline=period if deadline is None else deadline,
        wcet=wcet,
        criticality=criticality,
        failure_probability=f,
    )


def taskset(*tasks: TaskRecord, spec=SPEC_BD, name: str = "fixture") -> TaskSetRecord:
    return TaskSetRecord(name=name, tasks=tuple(tasks), spec=spec)


CLEAN = taskset(task("hi", criticality=HI), task("lo", criticality=LO))


def mc_task(
    name: str = "m1",
    period: float = 100.0,
    deadline: float | None = None,
    wcet_lo: float = 10.0,
    wcet_hi: float = 20.0,
    criticality: CriticalityRole = HI,
) -> MCTaskRecord:
    return MCTaskRecord(
        name=name,
        period=period,
        deadline=period if deadline is None else deadline,
        wcet_lo=wcet_lo,
        wcet_hi=wcet_hi,
        criticality=criticality,
    )


def mc_taskset(*tasks: MCTaskRecord, name: str = "mc-fixture") -> MCTaskSetRecord:
    return MCTaskSetRecord(name=name, tasks=tuple(tasks))


class TestCleanFixture:
    """The reference clean set silences every taskset rule."""

    def test_no_diagnostics_at_all(self):
        report = lint_taskset(CLEAN)
        assert not list(report)
        assert report.is_clean
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 0


class TestStructuralRules:
    def test_ftmc001_nonpositive_period(self):
        report = lint_taskset(taskset(task(period=0.0)))
        diags = report.by_code("FTMC001")
        assert diags and diags[0].severity is Severity.ERROR
        assert "period" in diags[0].message

    def test_ftmc002_nonpositive_deadline(self):
        report = lint_taskset(taskset(task(deadline=-1.0)))
        assert report.has_code("FTMC002")

    def test_ftmc003_negative_wcet(self):
        report = lint_taskset(taskset(task(wcet=-2.0)))
        assert report.has_code("FTMC003")

    def test_ftmc004_wcet_exceeds_window(self):
        report = lint_taskset(taskset(task(period=10.0, deadline=10.0, wcet=15.0)))
        diags = report.by_code("FTMC004")
        assert diags and "exceeds both" in diags[0].message

    def test_ftmc004_silent_when_deadline_accommodates(self):
        # C > T but C <= D: legal for arbitrary-deadline tasks.
        report = lint_taskset(taskset(task(period=10.0, deadline=20.0, wcet=15.0)))
        assert not report.has_code("FTMC004")

    def test_ftmc010_probability_out_of_range(self):
        for f in (1.0, 1.5, -0.1):
            report = lint_taskset(taskset(task(f=f)))
            assert report.has_code("FTMC010"), f

    def test_messages_prefixed_with_task_name(self):
        report = lint_taskset(taskset(task(name="engine_ctrl", period=-1.0)))
        diag = report.by_code("FTMC001")[0]
        assert diag.message.startswith("engine_ctrl:")
        assert diag.location == "engine_ctrl"


class TestAggregateRules:
    def test_ftmc005_arbitrary_deadline_warns(self):
        report = lint_taskset(taskset(task(period=50.0, deadline=80.0, wcet=5.0)))
        diags = report.by_code("FTMC005")
        assert diags and diags[0].severity is Severity.WARNING

    def test_ftmc005_silent_for_constrained_deadline(self):
        report = lint_taskset(taskset(task(period=50.0, deadline=40.0, wcet=5.0)))
        assert not report.has_code("FTMC005")

    def test_ftmc006_duplicate_names(self):
        report = lint_taskset(taskset(task("dup", criticality=HI),
                                      task("dup", criticality=LO)))
        diags = report.by_code("FTMC006")
        assert len(diags) == 1
        assert "duplicate" in diags[0].message

    def test_ftmc007_overutilized(self):
        report = lint_taskset(
            taskset(task("a", period=10.0, wcet=8.0),
                    task("b", period=10.0, wcet=8.0, criticality=LO))
        )
        diags = report.by_code("FTMC007")
        assert diags and diags[0].severity is Severity.ERROR
        assert "utilization" in diags[0].message

    def test_ftmc007_silent_at_exactly_one(self):
        report = lint_taskset(
            taskset(task("a", period=10.0, wcet=5.0),
                    task("b", period=10.0, wcet=5.0, criticality=LO))
        )
        assert not report.has_code("FTMC007")

    def test_ftmc008_one_sided_partition(self):
        report = lint_taskset(taskset(task("a"), task("b", period=50.0)))
        diags = report.by_code("FTMC008")
        assert diags and diags[0].severity is Severity.INFO
        assert "no LO tasks" in diags[0].message

    def test_ftmc008_silent_for_dual_sets(self):
        assert not lint_taskset(CLEAN).has_code("FTMC008")

    def test_ftmc009_missing_spec(self):
        report = lint_taskset(
            taskset(task("hi"), task("lo", criticality=LO), spec=None)
        )
        diags = report.by_code("FTMC009")
        assert diags and diags[0].severity is Severity.INFO


class TestSafetyRules:
    def test_ftmc011_zero_probability_on_safety_task(self):
        report = lint_taskset(taskset(task("hi", f=0.0),
                                      task("lo", criticality=LO, f=0.0)))
        diags = report.by_code("FTMC011")
        # HI maps to level B (safety-related); LO maps to D (no ceiling).
        assert [d.location for d in diags] == ["hi"]
        assert diags[0].severity is Severity.WARNING

    def test_ftmc011_silent_without_spec(self):
        report = lint_taskset(taskset(task("hi", f=0.0), spec=None))
        assert not report.has_code("FTMC011")

    def test_ftmc012_unreachable_ceiling(self):
        # f = 0.9 at level A (ceiling 1e-9): no n <= 30 can get there.
        spec = DualCriticalitySpec.from_names("A", "D")
        report = lint_taskset(
            taskset(task("hi", f=0.9), task("lo", criticality=LO), spec=spec)
        )
        diags = report.by_code("FTMC012")
        assert diags and diags[0].severity is Severity.ERROR
        assert "ceiling" in diags[0].message
        # The inflation rule must stay out of the way when FTMC012 fires.
        assert not report.has_code("FTMC013")

    def test_ftmc012_silent_for_reachable_ceiling(self):
        assert not lint_taskset(CLEAN).has_code("FTMC012")

    def test_ftmc013_inflated_utilization(self):
        # Base utilization 0.7 is fine, but the HI ceiling needs n >= 2,
        # pushing the re-executed demand past 1.
        report = lint_taskset(
            taskset(
                task("hi", period=1000.0, wcet=400.0, f=1e-3),
                task("lo", period=1000.0, wcet=300.0, criticality=LO, f=1e-3),
            )
        )
        assert not report.has_code("FTMC007")
        diags = report.by_code("FTMC013")
        assert diags and diags[0].severity is Severity.WARNING
        assert "no scheduler backend" in diags[0].message


class TestProfileRules:
    def _set(self) -> TaskSetRecord:
        return CLEAN

    def test_clean_profiles(self):
        report = lint_profiles(self._set(), {"hi": 3, "lo": 1}, {"hi": 2})
        assert not list(report)

    def test_ftmc014_degenerate_reexecution(self):
        report = lint_profiles(self._set(), {"hi": 0, "lo": 1})
        diags = report.by_code("FTMC014")
        assert [d.location for d in diags] == ["hi"]

    def test_ftmc015_missing_reexecution_coverage(self):
        report = lint_profiles(self._set(), {"hi": 2})
        diags = report.by_code("FTMC015")
        assert [d.location for d in diags] == ["lo"]

    def test_ftmc015_missing_adaptation_coverage(self):
        report = lint_profiles(self._set(), {"hi": 2, "lo": 1}, {})
        diags = report.by_code("FTMC015")
        # Only the HI task needs adaptation coverage.
        assert [d.location for d in diags] == ["hi"]
        assert "adaptation" in diags[0].message

    def test_ftmc015_no_adaptation_profile_is_fine(self):
        report = lint_profiles(self._set(), {"hi": 2, "lo": 1}, None)
        assert not report.has_code("FTMC015")

    def test_ftmc016_adaptation_exceeds_reexecution(self):
        report = lint_profiles(self._set(), {"hi": 2, "lo": 1}, {"hi": 3})
        diags = report.by_code("FTMC016")
        assert diags and "n'=3" in diags[0].message

    def test_ftmc017_degenerate_adaptation(self):
        report = lint_profiles(self._set(), {"hi": 2, "lo": 1}, {"hi": 0})
        assert report.has_code("FTMC017")

    def test_value_objects_accepted(self, example31, example31_profiles,
                                    example31_adaptation):
        report = lint_profiles(example31, example31_profiles,
                               example31_adaptation)
        assert not list(report)


class TestMCRules:
    def test_clean_mc_set(self):
        report = lint_mc_taskset(
            mc_taskset(mc_task("hi"),
                       mc_task("lo", wcet_lo=5.0, wcet_hi=5.0, criticality=LO))
        )
        assert not list(report)

    def test_ftmc020_monotonicity(self):
        report = lint_mc_taskset(mc_taskset(mc_task(wcet_lo=30.0, wcet_hi=20.0)))
        diags = report.by_code("FTMC020")
        assert diags and "monotonicity" in diags[0].message

    def test_ftmc021_lo_task_distinct_budgets(self):
        report = lint_mc_taskset(
            mc_taskset(mc_task(wcet_lo=5.0, wcet_hi=10.0, criticality=LO))
        )
        diags = report.by_code("FTMC021")
        assert diags and "C(LO) == C(HI)" in diags[0].message

    def test_ftmc021_silent_for_hi_tasks(self):
        report = lint_mc_taskset(
            mc_taskset(mc_task(wcet_lo=5.0, wcet_hi=10.0, criticality=HI))
        )
        assert not report.has_code("FTMC021")

    def test_ftmc022_hi_budget_exceeds_window(self):
        report = lint_mc_taskset(
            mc_taskset(mc_task(period=100.0, deadline=50.0,
                               wcet_lo=20.0, wcet_hi=60.0))
        )
        diags = report.by_code("FTMC022")
        assert diags and diags[0].severity is Severity.WARNING

    def test_ftmc023_lo_mode_overutilized(self):
        report = lint_mc_taskset(
            mc_taskset(
                mc_task("a", period=10.0, wcet_lo=6.0, wcet_hi=8.0),
                mc_task("b", period=10.0, wcet_lo=6.0, wcet_hi=6.0,
                        criticality=LO),
            )
        )
        diags = report.by_code("FTMC023")
        assert diags and diags[0].severity is Severity.ERROR


class TestConversionRules:
    def _source(self) -> TaskSet:
        return TaskSet(
            [
                Task("hi", 100.0, 100.0, 10.0, HI, 1e-4),
                Task("lo", 50.0, 50.0, 5.0, LO, 1e-4),
            ],
            SPEC_BD,
            name="src",
        )

    def test_derived_conversion_is_clean(self):
        report = lint_conversion(self._source(), n_hi=3, n_lo=1, n_prime=2)
        assert not report.errors

    def test_external_correct_conversion_is_clean(self):
        source = self._source()
        converted = convert_uniform(source, 3, 1, 2)
        report = lint_conversion(source, 3, 1, 2, converted=converted)
        assert not report.errors

    def test_ftmc030_dropped_task(self):
        source = self._source()
        converted = MCTaskSetRecord.from_mc_taskset(convert_uniform(source, 3, 1, 2))
        tampered = MCTaskSetRecord(name=converted.name, tasks=converted.tasks[:1])
        report = lint_conversion(source, 3, 1, 2, converted=tampered)
        diags = report.by_code("FTMC030")
        assert any("missing" in d.message for d in diags)

    def test_ftmc030_changed_period(self):
        source = self._source()
        converted = MCTaskSetRecord.from_mc_taskset(convert_uniform(source, 3, 1, 2))
        tampered = MCTaskSetRecord(
            name=converted.name,
            tasks=(
                MCTaskRecord("hi", 90.0, 100.0, converted.tasks[0].wcet_lo,
                             converted.tasks[0].wcet_hi, HI),
                converted.tasks[1],
            ),
        )
        report = lint_conversion(source, 3, 1, 2, converted=tampered)
        assert any("period changed" in d.message
                   for d in report.by_code("FTMC030"))

    def test_ftmc031_wrong_wcet_multiple(self):
        source = self._source()
        # Claim n_hi=3 but hand over the n_hi=2 conversion.
        wrong = convert_uniform(source, 2, 1, 2)
        report = lint_conversion(source, 3, 1, 2, converted=wrong)
        diags = report.by_code("FTMC031")
        assert diags and "Lemma 4.1 prescribes" in diags[0].message

    def test_invalid_profiles_short_circuit(self):
        # n' > n is a profile error; no conversion is derived or checked.
        report = lint_conversion(self._source(), n_hi=2, n_lo=1, n_prime=3)
        assert report.has_code("FTMC016")
        assert not report.has_code("FTMC031")


class TestDocumentRules:
    def test_ftmc041_missing_tasks_list(self):
        report = lint_taskset({"name": "broken"})
        diags = report.by_code("FTMC041")
        assert diags and "'tasks' list" in diags[0].message

    def test_ftmc041_non_object_entry(self):
        report = lint_taskset({"tasks": [42]})
        assert any("must be an object" in d.message
                   for d in report.by_code("FTMC041"))

    def test_ftmc042_bad_criticality_value(self):
        report = lint_taskset(
            {"tasks": [{"name": "x", "period": 10, "wcet": 1,
                        "criticality": "MEDIUM"}]}
        )
        diags = report.by_code("FTMC042")
        assert diags and "'HI' or 'LO'" in diags[0].message

    def test_ftmc042_bad_criticality_header(self):
        report = lint_taskset(
            {"criticality": {"hi": "Z", "lo": "D"},
             "tasks": [{"name": "x", "period": 10, "wcet": 1,
                        "criticality": "HI"}]}
        )
        assert any("header" in d.message for d in report.by_code("FTMC042"))

    def test_clean_document(self):
        report = lint_taskset(
            {
                "name": "doc",
                "criticality": {"hi": "B", "lo": "D"},
                "tasks": [
                    {"name": "hi", "period": 100, "wcet": 10,
                     "criticality": "HI", "failure_probability": 1e-4},
                    {"name": "lo", "period": 50, "wcet": 5,
                     "criticality": "LO", "failure_probability": 1e-4},
                ],
            }
        )
        assert not list(report)


class TestRegistry:
    def test_catalog_is_sorted_and_unique(self):
        codes = [r.code for r in rule_catalog()]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))
        assert len(codes) >= 12  # the ISSUE's 12-15 rule floor

    def test_every_rule_has_summary_and_kind(self):
        for r in RULES.values():
            assert r.summary
            assert r.kind in ("taskset", "profiles", "mc", "conversion")

    def test_duplicate_registration_rejected(self):
        from repro.lint.registry import rule

        with pytest.raises(ValueError, match="duplicate rule code"):
            rule("FTMC001", Severity.ERROR, "taskset", "dup")

    def test_unknown_kind_rejected(self):
        from repro.lint.registry import rule

        with pytest.raises(ValueError, match="unknown rule kind"):
            rule("FTMC099", Severity.ERROR, "cosmic", "nope")
