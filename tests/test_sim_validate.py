"""Tests for the simulation-based validation campaign."""

import pytest

from repro.core.ftmc import ft_edf_vd, ft_edf_vd_degradation
from repro.sim.validate import ValidationReport, validate_by_simulation


class TestValidationReport:
    def test_passes_without_misses(self):
        report = ValidationReport(runs=5, horizon=1e5, probability_scale=100.0)
        assert report.passed
        assert "PASS" in report.describe()

    def test_fails_with_misses(self):
        report = ValidationReport(runs=5, horizon=1e5, probability_scale=100.0,
                                  hi_misses=2, failing_seeds=[3])
        assert not report.passed
        text = report.describe()
        assert "FAIL" in text
        assert "[3]" in text


class TestValidateBySimulation:
    def test_example31_configuration_passes(self, example31):
        result = ft_edf_vd(example31)
        report = validate_by_simulation(
            example31, result, runs=4, horizon=200_000.0,
            probability_scale=1000.0, seed=1,
        )
        assert report.passed
        assert report.hi_jobs > 0
        assert report.runs == 4

    def test_fms_degradation_passes(self, fms):
        result = ft_edf_vd_degradation(fms, 6.0)
        report = validate_by_simulation(
            fms, result, runs=4, horizon=200_000.0,
            probability_scale=500.0, seed=2,
        )
        assert report.passed

    def test_mode_switches_observed_at_high_scale(self, example31):
        result = ft_edf_vd(example31)
        report = validate_by_simulation(
            example31, result, runs=2, horizon=2_000_000.0,
            probability_scale=5000.0, seed=0,
        )
        assert report.mode_switches >= 1

    def test_rejects_failed_results(self, fms):
        failed = ft_edf_vd(fms)
        with pytest.raises(ValueError, match="successful"):
            validate_by_simulation(fms, failed)

    def test_rejects_zero_runs(self, example31):
        result = ft_edf_vd(example31)
        with pytest.raises(ValueError, match="run"):
            validate_by_simulation(example31, result, runs=0)
