"""Runtime-level tests showing why EDF-VD's virtual deadlines matter.

Constructs a scenario where plain EDF (real deadlines) lets a LO job run
first, leaving no slack for a HI job's re-executions — while EDF-VD's
shortened virtual deadline pulls the HI job forward and absorbs the same
fault without a miss.  The engine must reproduce both behaviours exactly.
"""

import pytest

from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.faults import (
    AdaptationProfile,
    FaultToleranceConfig,
    ReexecutionProfile,
)
from repro.model.task import Task, TaskSet
from repro.sim.engine import Simulator
from repro.sim.fault_injection import ScriptedFaultInjector
from repro.sim.policies import EDFPolicy, EDFVDPolicy

HI = CriticalityRole.HI
LO = CriticalityRole.LO


@pytest.fixture
def system():
    """HI job needs up to 3 x 30 = 90 units by t = 100; the LO job's
    earlier real deadline (95) tempts plain EDF to run it first."""
    tasks = [
        Task("hi", 100, 100, 30, HI, 0.5),
        Task("lo", 100, 95, 60, LO, 0.0),
    ]
    return TaskSet(tasks, DualCriticalitySpec.from_names("B", "D"))


@pytest.fixture
def config(system):
    return FaultToleranceConfig(
        reexecution=ReexecutionProfile.uniform(system, 3, 1),
        adaptation=AdaptationProfile.uniform(system, 1),
    )


class TestVirtualDeadlinesMatter:
    def test_plain_edf_misses_under_fault(self, system, config):
        """EDF runs lo (D=95) before hi (D=100); hi's re-execution then
        completes at t = 120 > 100: a HI deadline miss."""
        injector = ScriptedFaultInjector({"hi": [True, False]})
        metrics = Simulator(system, EDFPolicy(), config, injector).run(150.0)
        assert metrics.deadline_misses(CriticalityRole.HI) == 1

    def test_edf_vd_absorbs_the_same_fault(self, system, config):
        """With x = 0.6 the hi job's virtual deadline (60) precedes lo's
        95: hi runs 0-30, faults, switches mode (n' = 1), re-executes
        30-60 and meets its real deadline."""
        injector = ScriptedFaultInjector({"hi": [True, False]})
        metrics = Simulator(
            system, EDFVDPolicy(0.6), config, injector
        ).run(150.0)
        assert metrics.deadline_misses(CriticalityRole.HI) == 0
        assert metrics.hi_mode_entered
        assert metrics.counters("hi").success == 2  # both periods fine

    def test_both_policies_fine_without_faults(self, system, config):
        for policy in (EDFPolicy(), EDFVDPolicy(0.6)):
            metrics = Simulator(system, policy, config).run(150.0)
            assert metrics.deadline_misses(CriticalityRole.HI) == 0

    def test_mode_switch_timing(self, system, config):
        """The switch fires when the second attempt is dispatched: t=30."""
        injector = ScriptedFaultInjector({"hi": [True, False]})
        metrics = Simulator(
            system, EDFVDPolicy(0.6), config, injector
        ).run(150.0)
        assert metrics.mode_switch_time == pytest.approx(30.0)

    def test_lo_killed_at_switch(self, system, config):
        injector = ScriptedFaultInjector({"hi": [True, False]})
        metrics = Simulator(
            system, EDFVDPolicy(0.6), config, injector
        ).run(150.0)
        counters = metrics.counters("lo")
        assert counters.killed == 1  # the pending first lo job
        assert counters.released <= 1 + metrics.counters("hi").released


class TestDegradedReleaseSpacing:
    def test_post_switch_spacing_is_df_times_period(self):
        """After the switch, LO releases are spaced exactly df * T."""
        hi = Task("hi", 100, 100, 10, HI, 0.5)
        lo = Task("lo", 50, 50, 1, LO, 0.0)
        ts = TaskSet([hi, lo], DualCriticalitySpec.from_names("B", "D"))
        config = FaultToleranceConfig(
            reexecution=ReexecutionProfile.uniform(ts, 2, 1),
            adaptation=AdaptationProfile.uniform(ts, 1),
            degradation_factor=4.0,
        )
        injector = ScriptedFaultInjector({"hi": [True, False]})
        from repro.sim.trace import TraceEventKind, TraceRecorder

        trace = TraceRecorder()
        Simulator(ts, EDFPolicy(), config, injector, trace=trace).run(1200.0)
        releases = [
            e.time for e in trace.events_of(TraceEventKind.RELEASE)
            if e.task == "lo"
        ]
        switch = trace.mode_switch_time
        assert switch is not None
        post = [t for t in releases if t > switch]
        gaps = [b - a for a, b in zip(post, post[1:])]
        assert gaps, "no post-switch releases observed"
        assert all(gap == pytest.approx(200.0) for gap in gaps)  # 4 * 50
