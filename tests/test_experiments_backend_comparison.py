"""Tests for the backend-comparison experiment."""

import pytest

from repro.core.backends import AMCBackend, EDFVDBackend
from repro.experiments.backend_comparison import (
    DEFAULT_BACKENDS,
    render_backend_comparison,
    run_backend_comparison,
)


class TestBackendComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_backend_comparison(
            utilizations=(0.5, 0.8), sets_per_point=20
        )

    def test_columns_cover_all_backends(self, result):
        names = {b.name for b in DEFAULT_BACKENDS()}
        assert names <= set(result.columns)

    def test_acceptance_in_unit_interval(self, result):
        for name in result.columns[1:]:
            for value in result.column(name):
                assert 0.0 <= value <= 1.0

    def test_amc_max_dominates_rtb(self, result):
        for rtb, mx in zip(result.column("amc-rtb"), result.column("amc-max")):
            assert mx >= rtb - 1e-12

    def test_amc_rtb_dominates_smc(self, result):
        for smc, rtb in zip(result.column("smc"), result.column("amc-rtb")):
            assert rtb >= smc - 1e-12

    def test_custom_backend_list(self):
        result = run_backend_comparison(
            utilizations=(0.6,),
            sets_per_point=10,
            backends=[EDFVDBackend(), AMCBackend()],
        )
        assert list(result.columns) == ["utilization", "edf-vd", "amc-rtb"]

    def test_determinism(self):
        a = run_backend_comparison((0.7,), 10, seed=5)
        b = run_backend_comparison((0.7,), 10, seed=5)
        assert a.rows == b.rows

    def test_render(self, result):
        text = render_backend_comparison(result)
        assert "acceptance ratio" in text
        assert "legend" in text
