"""Oracle-equivalence tests for the sweep-batch (multi-set) kernels.

The cross-task-set kernels (:func:`repro.analysis.kernels.dbf_batch_multi`,
:func:`repro.analysis.kernels.pdc_schedulable_multi`) and the batch EDF
wrappers built on them must return identical verdicts to the per-set
paths they replace, for any mix of set sizes — ragged batches, empty
sets, singleton batches, padding-boundary shapes.  The per-set kernels
are the oracle for the batch tier; the scalar paths stay the oracle for
both (``REPRO_NO_NUMPY`` parity).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import kernels
from repro.analysis.edf import (
    Workload,
    edf_processor_demand_test,
    edf_processor_demand_test_batch,
    inflated_workload,
    schedulable_without_adaptation,
    schedulable_without_adaptation_batch,
)
from repro.gen.taskset import GeneratorConfig, generate_taskset
from repro.model.criticality import DualCriticalitySpec
from repro.model.faults import ReexecutionProfile

pytestmark = pytest.mark.skipif(
    not kernels.numpy_enabled(),
    reason="NumPy kernels disabled (REPRO_NO_NUMPY or missing NumPy)",
)

_SPEC = DualCriticalitySpec.from_names("B", "C")
_MANY_TASKS = GeneratorConfig(u_min=0.004, u_max=0.02, p_hi=0.5)
_MAX_POINTS = 2_000_000


def _triple(workload):
    """Project a workload onto the (periods, deadlines, wcets) arrays."""
    return kernels.workload_arrays([w for w in workload if w.wcet > 0])


def _corpus_workload(seed, utilization, ratio, config=_MANY_TASKS):
    gen = np.random.default_rng(seed)
    taskset = generate_taskset(utilization, _SPEC, gen, config=config)
    return [Workload(t.period, ratio * t.period, t.wcet) for t in taskset]


def _ragged_batch():
    """A deliberately ragged batch: empty, tiny, large, over-utilized."""
    batch = [
        [],                                    # vacuously schedulable
        [Workload(100.0, 80.0, 10.0)],         # singleton
        _corpus_workload(1, 0.85, 0.8),        # wide, schedulable regime
        _corpus_workload(2, 0.99, 0.6),        # near the utilization edge
        _corpus_workload(3, 0.5, 0.9),
        [Workload(10.0, 8.0, 11.0)],           # over-utilized: reject
    ]
    # Paper-config sets have ~5 tasks; the corpus sets ~50 — the padded
    # width is set by the largest, exercising the padding columns of
    # every other row.
    return batch


class TestPdcScheduleableMulti:
    def test_matches_per_set_kernel_on_ragged_batch(self):
        batch = _ragged_batch()
        triples = [_triple(w) for w in batch]
        verdicts = kernels.pdc_schedulable_multi(triples, _MAX_POINTS)
        expected = [
            kernels.pdc_schedulable(*_triple(w), _MAX_POINTS) if w else True
            for w in batch
        ]
        assert [bool(v) for v in verdicts] == expected

    def test_empty_batch(self):
        verdicts = kernels.pdc_schedulable_multi([], _MAX_POINTS)
        assert list(verdicts) == []

    def test_all_empty_sets(self):
        triples = [_triple([]) for _ in range(3)]
        assert list(kernels.pdc_schedulable_multi(triples, _MAX_POINTS)) == [
            True,
            True,
            True,
        ]

    def test_singleton_batch_matches_per_set(self):
        workload = _corpus_workload(7, 0.9, 0.7)
        triple = _triple(workload)
        [verdict] = kernels.pdc_schedulable_multi([triple], _MAX_POINTS)
        assert bool(verdict) == kernels.pdc_schedulable(*triple, _MAX_POINTS)

    def test_intractable_horizon_rejected_per_set(self):
        # One set trips the point-count bail-out; its neighbours must be
        # verdicted normally, not dragged into the rejection.
        fine = _triple(_corpus_workload(11, 0.6, 0.8))
        coarse = _triple([Workload(1e9, 0.5e9, 0.5e9),
                          Workload(1.0, 0.5, 0.4)])
        verdicts = kernels.pdc_schedulable_multi([fine, coarse], 1000)
        expected = [
            kernels.pdc_schedulable(*fine, 1000),
            kernels.pdc_schedulable(*coarse, 1000),
        ]
        assert [bool(v) for v in verdicts] == expected


class TestDbfBatchMulti:
    def test_padding_columns_contribute_no_demand(self):
        small = _triple([Workload(100.0, 80.0, 10.0)])
        large = _triple(_corpus_workload(5, 0.85, 0.8))
        width = max(small[0].size, large[0].size)
        periods2d = np.ones((2, width))
        deadlines2d = np.ones((2, width))
        wcets2d = np.zeros((2, width))
        for row, (periods, deadlines, wcets) in enumerate((small, large)):
            periods2d[row, : periods.size] = periods
            deadlines2d[row, : deadlines.size] = deadlines
            wcets2d[row, : wcets.size] = wcets
        instants = np.array([50.0, 80.0, 400.0, 50.0, 80.0, 400.0])
        set_idx = np.array([0, 0, 0, 1, 1, 1])
        demands = kernels.dbf_batch_multi(
            periods2d, deadlines2d, wcets2d, instants, set_idx
        )
        for (periods, deadlines, wcets), rows in ((small, [0, 1, 2]),
                                                  (large, [3, 4, 5])):
            expected = kernels.dbf_batch(
                periods, deadlines, wcets, instants[rows]
            )
            assert demands[rows] == pytest.approx(expected, rel=1e-12)


class TestEdfBatchWrappers:
    def test_batch_pdc_matches_per_set(self):
        batch = _ragged_batch()
        assert edf_processor_demand_test_batch(batch) == [
            edf_processor_demand_test(w) for w in batch
        ]

    def test_batch_pdc_under_no_batch_env(self, monkeypatch):
        monkeypatch.setenv(kernels.NO_BATCH_ENV, "1")
        batch = _ragged_batch()
        assert edf_processor_demand_test_batch(batch) == [
            edf_processor_demand_test(w) for w in batch
        ]

    def test_batch_pdc_scalar_parity(self, monkeypatch):
        batch = [_corpus_workload(s, 0.8, 0.8) for s in range(3)]
        with_numpy = edf_processor_demand_test_batch(batch)
        monkeypatch.setenv(kernels.NO_NUMPY_ENV, "1")
        assert edf_processor_demand_test_batch(batch) == with_numpy

    def test_baseline_batch_matches_per_set(self):
        specs = []
        for seed, utilization in ((1, 0.5), (2, 0.8), (3, 1.1)):
            gen = np.random.default_rng(seed)
            taskset = generate_taskset(utilization, _SPEC, gen)
            profiles = ReexecutionProfile.uniform(taskset, 2, 1)
            specs.append((taskset, profiles))
        tasksets = [ts for ts, _ in specs]
        reexecutions = [re for _, re in specs]
        batch = schedulable_without_adaptation_batch(tasksets, reexecutions)
        assert batch == [
            schedulable_without_adaptation(ts, re) for ts, re in specs
        ]

    def test_baseline_batch_keeps_utilization_dispatch(self):
        # Implicit-deadline sets must keep the cheap utilization verdict
        # (bit-identical dispatch to edf_schedulable), even mid-batch.
        gen = np.random.default_rng(4)
        implicit = generate_taskset(0.6, _SPEC, gen)
        assert all(
            math.isclose(w.deadline, w.period)
            for w in inflated_workload(
                implicit, ReexecutionProfile.uniform(implicit, 1, 1)
            )
        )
        batch = schedulable_without_adaptation_batch(
            [implicit], [ReexecutionProfile.uniform(implicit, 1, 1)]
        )
        assert batch == [
            schedulable_without_adaptation(
                implicit, ReexecutionProfile.uniform(implicit, 1, 1)
            )
        ]


# -- property-based: batch == per-set for arbitrary ragged batches -------------

_workload_strategy = st.lists(
    st.builds(
        Workload,
        period=st.floats(1.0, 1000.0, allow_nan=False),
        deadline=st.floats(0.5, 1000.0, allow_nan=False),
        wcet=st.floats(0.0, 50.0, allow_nan=False),
    ),
    min_size=0,
    max_size=8,
)


class TestBatchProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_workload_strategy, min_size=0, max_size=6))
    def test_pdc_batch_equals_per_set(self, batch):
        assert edf_processor_demand_test_batch(batch) == [
            edf_processor_demand_test(w) for w in batch
        ]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(_workload_strategy, min_size=1, max_size=4))
    def test_pdc_batch_scalar_parity(self, batch):
        with_batch = edf_processor_demand_test_batch(batch)
        previous = kernels.os.environ.get(kernels.NO_NUMPY_ENV)
        kernels.os.environ[kernels.NO_NUMPY_ENV] = "1"
        try:
            scalar = edf_processor_demand_test_batch(batch)
        finally:
            if previous is None:
                del kernels.os.environ[kernels.NO_NUMPY_ENV]
            else:
                kernels.os.environ[kernels.NO_NUMPY_ENV] = previous
        assert with_batch == scalar
