"""Tests for the dataflow rule families (FTMCD / FTMCF / FTMCP).

Every determinism rule is exercised as a fixture *pair*: the violating
variant must fire, its sanctioned twin (seeded stream, ``sorted()``
wrap, reset session, ...) must stay silent.  Fixture code lives in
string literals, so scanning ``tests/`` itself stays clean.
"""

from __future__ import annotations

import textwrap

from repro.lint.project import index_from_sources
from repro.lint.taint import TAINT_RULE_CATALOG, analyze_index


def findings(sources: dict[str, str], package: str = "proj"):
    dedented = {
        path: textwrap.dedent(source) for path, source in sources.items()
    }
    return analyze_index(index_from_sources(dedented, package=package))


def codes(sources: dict[str, str], package: str = "proj") -> list[str]:
    return [d.code for d in findings(sources, package)]


class TestFTMCD01UnseededRng:
    VIOLATION = {
        "runner/plant.py": """
        import random
        from repro.io import append_jsonl

        def record_shard(path, shard_id):
            jitter = random.random()
            record = {"shard": shard_id, "jitter": jitter}
            append_jsonl(path, record)
        """
    }
    SEEDED_TWIN = {
        "runner/plant.py": """
        import random
        from repro.io import append_jsonl

        def record_shard(path, shard_id, seed):
            rng = random.Random(seed)
            record = {"shard": shard_id, "jitter": rng.random()}
            append_jsonl(path, record)
        """
    }

    def test_global_stream_draw_into_writer_fires(self):
        assert codes(self.VIOLATION) == ["FTMCD01"]

    def test_seeded_stream_twin_is_clean(self):
        assert codes(self.SEEDED_TWIN) == []

    def test_trace_runs_source_to_sink(self):
        (diag,) = findings(self.VIOLATION)
        notes = [point.note for point in diag.trace]
        assert "source" in notes[0] and "random.random()" in notes[0]
        assert notes[-1].startswith("sink")
        assert any("jitter" in note for note in notes)

    def test_unseeded_constructor_fires_seeded_does_not(self):
        template = """
        import random
        from repro.io import atomic_write_json

        def emit(path{extra}):
            rng = random.Random({arg})
            atomic_write_json(path, rng.random())
        """
        unseeded = {"m.py": template.format(extra="", arg="")}
        seeded = {"m.py": template.format(extra=", seed", arg="seed")}
        assert codes(unseeded) == ["FTMCD01"]
        assert codes(seeded) == []

    def test_backoff_rng_stream_is_sanctioned(self):
        sanctioned = {
            "runner/retry.py": """
            from repro.runner.shards import backoff_rng
            from repro.io import append_jsonl

            def delay(path, spec):
                rng = backoff_rng(spec)
                append_jsonl(path, {"delay": rng.uniform(0, 1)})
            """
        }
        assert codes(sanctioned) == []

    def test_numpy_global_draws_fire(self):
        violation = {
            "m.py": """
            import numpy as np
            from repro.io import atomic_write_json

            def emit(path, n):
                atomic_write_json(path, list(np.random.rand(n)))
            """
        }
        assert codes(violation) == ["FTMCD01"]


class TestFTMCD02WallclockEntropy:
    def test_wallclock_into_checkpoint_fires(self):
        violation = {
            "runner/sup.py": """
            import time

            def snapshot(checkpoint, plan):
                checkpoint.create({"plan": plan, "at": time.time()})
            """
        }
        assert codes(violation) == ["FTMCD02"]

    def test_plan_derived_twin_is_clean(self):
        twin = {
            "runner/sup.py": """
            def snapshot(checkpoint, plan, stamp):
                checkpoint.create({"plan": plan, "at": stamp})
            """
        }
        assert codes(twin) == []

    def test_entropy_into_payload_fires(self):
        violation = {
            "runner/ids.py": """
            import uuid

            def tag(outcome):
                outcome.payload = {"run_id": str(uuid.uuid4())}
            """
        }
        assert codes(violation) == ["FTMCD02"]

    def test_plan_id_twin_is_clean(self):
        twin = {
            "runner/ids.py": """
            def tag(outcome, spec):
                outcome.payload = {"run_id": f"{spec.seed}-{spec.index}"}
            """
        }
        assert codes(twin) == []


class TestFTMCD03IterationOrder:
    def test_set_iteration_into_writer_fires(self):
        violation = {
            "m.py": """
            from repro.io import atomic_write_json

            def emit(path, items):
                seen = set(items)
                atomic_write_json(path, list(seen))
            """
        }
        assert codes(violation) == ["FTMCD03"]

    def test_sorted_twin_is_clean(self):
        twin = {
            "m.py": """
            from repro.io import atomic_write_json

            def emit(path, items):
                seen = set(items)
                atomic_write_json(path, sorted(seen))
            """
        }
        assert codes(twin) == []

    def test_listdir_order_fires_and_sorted_clears(self):
        violation = {
            "m.py": """
            import os
            from repro.io import atomic_write_json

            def emit(path, d):
                atomic_write_json(path, os.listdir(d))
            """
        }
        twin = {
            "m.py": """
            import os
            from repro.io import atomic_write_json

            def emit(path, d):
                atomic_write_json(path, sorted(os.listdir(d)))
            """
        }
        assert codes(violation) == ["FTMCD03"]
        assert codes(twin) == []

    def test_order_insensitive_reduction_is_clean(self):
        twin = {
            "m.py": """
            from repro.io import atomic_write_json

            def emit(path, items):
                seen = set(items)
                atomic_write_json(path, sum(seen))
            """
        }
        assert codes(twin) == []


class TestCrossModuleSummaries:
    def test_taint_flows_through_helper_module(self):
        sources = {
            "helpers.py": """
            from repro.io import append_jsonl

            def emit(path, record):
                append_jsonl(path, record)
            """,
            "runner/main.py": """
            import random
            from proj.helpers import emit

            def go(path):
                emit(path, random.random())
            """,
        }
        diags = findings(sources)
        assert [d.code for d in diags] == ["FTMCD01"]
        assert diags[0].location.startswith("runner/main.py")

    def test_tainted_return_value_propagates(self):
        sources = {
            "gen.py": """
            import random

            def draw():
                return random.random()
            """,
            "emit.py": """
            from repro.io import atomic_write_json
            from proj.gen import draw

            def go(path):
                atomic_write_json(path, draw())
            """,
        }
        assert codes(sources) == ["FTMCD01"]

    def test_clean_helper_stays_clean(self):
        sources = {
            "gen.py": """
            def derive(spec):
                return spec.seed * 3
            """,
            "emit.py": """
            from repro.io import atomic_write_json
            from proj.gen import derive

            def go(path, spec):
                atomic_write_json(path, derive(spec))
            """,
        }
        assert codes(sources) == []


class TestFTMCFForkSafety:
    def test_f01_module_mutable_mutated_in_runner(self):
        violation = {
            "runner/state.py": """
            CACHE = {}

            def remember(key, value):
                CACHE[key] = value
            """
        }
        assert codes(violation) == ["FTMCF01"]

    def test_f01_parameter_threading_is_clean(self):
        twin = {
            "runner/state.py": """
            def remember(cache, key, value):
                cache[key] = value
            """
        }
        assert codes(twin) == []

    def test_f01_only_applies_under_runner(self):
        elsewhere = {
            "report.py": """
            CACHE = {}

            def remember(key, value):
                CACHE[key] = value
            """
        }
        assert codes(elsewhere) == []

    def test_f02_send_after_close_fires(self):
        violation = {
            "runner/pipes.py": """
            def drain(conn, msg):
                conn.close()
                conn.send(msg)
            """
        }
        assert codes(violation) == ["FTMCF02"]

    def test_f02_close_in_finally_is_clean(self):
        twin = {
            "runner/pipes.py": """
            def drain(conn, msg):
                try:
                    conn.send(msg)
                finally:
                    conn.close()
            """
        }
        assert codes(twin) == []

    def test_f02_close_on_one_branch_only_is_clean(self):
        twin = {
            "runner/pipes.py": """
            def drain(conn, msg, flush):
                if flush:
                    conn.close()
                else:
                    pass
                conn.send(msg)
            """
        }
        # close happens on only one path; must-close semantics stay quiet.
        assert codes(twin) == []

    def test_f03_fork_target_without_reset_fires(self):
        violation = {
            "runner/sup.py": """
            import multiprocessing as mp
            from proj.runner.work import entry

            def launch():
                worker = mp.Process(target=entry, args=(1,))
                worker.start()
            """,
            "runner/work.py": """
            def entry(x):
                return x * 2
            """,
        }
        diags = findings(violation)
        assert [d.code for d in diags] == ["FTMCF03"]
        assert diags[0].trace, "FTMCF03 carries a fork->entry trace"

    def test_f03_reset_session_twin_is_clean(self):
        twin = {
            "runner/sup.py": """
            import multiprocessing as mp
            from proj.runner.work import entry

            def launch():
                worker = mp.Process(target=entry, args=(1,))
                worker.start()
            """,
            "runner/work.py": """
            from repro.obs.trace import reset_inherited_session

            def entry(x):
                reset_inherited_session()
                return x * 2
            """,
        }
        assert codes(twin) == []


class TestFTMCPPurity:
    def test_p01_file_write_in_analysis_fires(self):
        violation = {
            "analysis/demand.py": """
            from repro.io import atomic_write_json

            def dbf(tasks, t, path):
                result = len(tasks) * t
                atomic_write_json(path, result)
                return result
            """
        }
        assert codes(violation) == ["FTMCP01"]

    def test_p01_open_write_fires_but_read_does_not(self):
        write = {
            "safety/margin.py": """
            def dump(x):
                with open("/tmp/x", "w") as handle:
                    handle.write(str(x))
            """
        }
        read = {
            "safety/margin.py": """
            def load(path):
                with open(path) as handle:
                    return handle.read()
            """
        }
        assert codes(write) == ["FTMCP01"]
        assert codes(read) == []

    def test_p02_module_state_mutation_fires(self):
        violation = {
            "analysis/memo.py": """
            _SEEN = []

            def analyse(x):
                _SEEN.append(x)
                return x + 1
            """
        }
        assert codes(violation) == ["FTMCP02"]

    def test_p03_env_read_fires_except_sanctioned_toggle(self):
        violation = {
            "analysis/cfg.py": """
            import os

            def tuning():
                return os.getenv("HOME")
            """
        }
        sanctioned = {
            "analysis/cfg.py": """
            import os

            def tuning():
                return os.getenv("REPRO_NO_NUMPY")
            """
        }
        assert codes(violation) == ["FTMCP03"]
        assert codes(sanctioned) == []

    def test_p03_sanction_resolves_module_constants(self):
        sanctioned = {
            "analysis/cfg.py": """
            import os

            ENV_KEY = "REPRO_FAST_PATH"

            def tuning():
                return os.getenv(ENV_KEY)
            """
        }
        assert codes(sanctioned) == []

    def test_purity_rules_do_not_apply_outside_scope(self):
        elsewhere = {
            "experiments/driver.py": """
            import os

            def run():
                return os.getenv("HOME")
            """
        }
        assert codes(elsewhere) == []


class TestCatalogAndOrdering:
    def test_catalog_covers_all_emitted_codes(self):
        assert set(TAINT_RULE_CATALOG) == {
            "FTMCD01", "FTMCD02", "FTMCD03",
            "FTMCF01", "FTMCF02", "FTMCF03",
            "FTMCP01", "FTMCP02", "FTMCP03",
        }

    def test_diagnostics_sorted_and_deduplicated(self):
        sources = {
            "runner/many.py": """
            import random
            import time
            from repro.io import append_jsonl

            STATE = []

            def a(path):
                append_jsonl(path, time.time())

            def b(path):
                STATE.append(1)
                append_jsonl(path, random.random())
            """
        }
        diags = findings(sources)
        keys = [(d.location, d.code) for d in diags]
        assert keys == sorted(
            keys, key=lambda item: (int(item[0].rsplit(":", 1)[1]), item[1])
        )
        assert len(set(keys)) == len(keys)
