"""Tests for the AMC-rtb fixed-priority mixed-criticality analysis."""

import pytest

from repro.analysis.amc import (
    amc_rtb_response_times,
    amc_rtb_schedulable,
    amc_rtb_schedulable_with_order,
)
from repro.core.conversion import convert_uniform
from repro.model.criticality import CriticalityRole
from repro.model.mc_task import MCTask, MCTaskSet


def _simple_pair() -> list[MCTask]:
    hi = MCTask("hi", 100, 100, 10, 20, CriticalityRole.HI)
    lo = MCTask("lo", 50, 50, 5, 5, CriticalityRole.LO)
    return [lo, hi]  # lo has higher priority (shorter deadline)


class TestResponseTimes:
    def test_lo_mode_recurrence(self):
        ordered = _simple_pair()
        r_lo, r_hi = amc_rtb_response_times(ordered)
        assert r_lo[0] == 5.0  # highest priority: its own C(LO)
        # hi: 10 + ceil(R/50)*5 -> R = 15 (one lo job interferes)
        assert r_lo[1] == 15.0

    def test_hi_mode_recurrence(self):
        ordered = _simple_pair()
        _, r_hi = amc_rtb_response_times(ordered)
        assert r_hi[0] is None  # LO task has no HI-mode bound
        # hi in HI mode: 20 + lo interference frozen at R^LO = 15:
        # ceil(15/50)*5 = 5 -> R = 25
        assert r_hi[1] == 25.0

    def test_hi_interference_uses_hi_budgets(self):
        hi1 = MCTask("hi1", 50, 50, 5, 10, CriticalityRole.HI)
        hi2 = MCTask("hi2", 200, 200, 20, 40, CriticalityRole.HI)
        r_lo, r_hi = amc_rtb_response_times([hi1, hi2])
        # hi2 LO mode: 20 + ceil(R/50)*5 -> R = 25
        assert r_lo[1] == 25.0
        # hi2 HI mode: 40 + ceil(R/50)*10 -> 40+10=50 -> 40+10*1? R=50:
        # ceil(50/50)=1 -> 50 fixpoint.
        assert r_hi[1] == 50.0

    def test_unschedulable_marks_none(self):
        hi = MCTask("hi", 100, 100, 10, 95, CriticalityRole.HI)
        lo = MCTask("lo", 10, 10, 5, 5, CriticalityRole.LO)
        r_lo, r_hi = amc_rtb_response_times([lo, hi])
        assert r_hi[1] is None  # 95 + 5-per-10 interference diverges

    def test_rejects_arbitrary_deadlines(self):
        t = MCTask("t", 10, 20, 1, 1, CriticalityRole.HI)
        with pytest.raises(ValueError, match="constrained"):
            amc_rtb_response_times([t])


class TestSchedulability:
    def test_simple_pair_schedulable(self):
        assert amc_rtb_schedulable_with_order(_simple_pair())

    def test_order_sensitivity(self):
        lo = MCTask("lo", 20, 8, 5, 5, CriticalityRole.LO)
        hi = MCTask("hi", 100, 100, 10, 12, CriticalityRole.HI)
        assert amc_rtb_schedulable_with_order([lo, hi])
        assert not amc_rtb_schedulable_with_order([hi, lo])

    def test_audsley_recovers_feasible_order(self):
        lo = MCTask("lo", 20, 8, 5, 5, CriticalityRole.LO)
        hi = MCTask("hi", 100, 100, 10, 12, CriticalityRole.HI)
        assert amc_rtb_schedulable(MCTaskSet([hi, lo]))

    def test_infeasible_set(self):
        a = MCTask("a", 10, 10, 6, 8, CriticalityRole.HI)
        b = MCTask("b", 10, 10, 6, 6, CriticalityRole.LO)
        assert not amc_rtb_schedulable(MCTaskSet([a, b]))

    def test_example31_conversion_under_amc(self, example31):
        """The converted Example 4.1 set is also FP-schedulable (extension).

        Not guaranteed by the paper (which uses EDF-VD), but it holds for
        this particular set and exercises the full OPA path.
        """
        mc = convert_uniform(example31, 3, 1, 2)
        # AMC-rtb with OPA may or may not admit it; just assert the call
        # is well-formed and monotone in the killing profile.
        results = [
            amc_rtb_schedulable(convert_uniform(example31, 3, 1, n))
            for n in (1, 2, 3)
        ]
        # Monotone: if schedulable at n', also schedulable at smaller n'.
        for earlier, later in zip(results, results[1:]):
            assert earlier or not later

    def test_monotone_in_killing_profile_fms(self, fms):
        results = [
            amc_rtb_schedulable(convert_uniform(fms, 3, 2, n))
            for n in (1, 2, 3)
        ]
        for earlier, later in zip(results, results[1:]):
            assert earlier or not later
