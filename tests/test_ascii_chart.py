"""Tests for the ASCII chart renderer."""

import math

from repro.experiments.ascii_chart import line_chart


class TestLineChart:
    def test_basic_rendering(self):
        text = line_chart({"s": [(0, 0), (1, 1), (2, 4)]}, title="t")
        assert "t" in text
        assert "legend: o=s" in text
        assert "|" in text

    def test_multiple_series_get_distinct_markers(self):
        text = line_chart({"a": [(0, 1)], "b": [(1, 2)]})
        assert "o=a" in text
        assert "x=b" in text

    def test_log_scale_drops_nonpositive(self):
        text = line_chart({"s": [(0, 0.0), (1, 10.0)]}, log_y=True)
        assert "log10" in text
        assert "legend" in text

    def test_all_points_invalid(self):
        text = line_chart({"s": [(0, math.nan), (1, math.inf)]})
        assert "no finite data points" in text

    def test_constant_series(self):
        text = line_chart({"s": [(0, 5.0), (1, 5.0)]})
        assert "legend" in text  # degenerate ranges must not crash

    def test_single_point(self):
        text = line_chart({"s": [(3.0, 7.0)]})
        assert "o" in text

    def test_axis_labels(self):
        text = line_chart(
            {"s": [(0, 1), (1, 2)]}, x_label="n'", y_label="U_MC"
        )
        assert "(n')" in text
        assert "U_MC" in text

    def test_dimensions_respected(self):
        text = line_chart({"s": [(0, 0), (10, 10)]}, width=20, height=5)
        grid_lines = [ln for ln in text.splitlines() if "|" in ln]
        assert len(grid_lines) == 5

    def test_many_series_wrap_markers(self):
        series = {f"s{i}": [(i, i)] for i in range(10)}
        text = line_chart(series)
        assert "legend" in text
