"""Tests for repro.obs.trace: sessions, spans, loading, validation.

The central property: any nested span tree written through the public
API round-trips through the JSONL stream — every span start has a
matching end with the right parent link, every event lands on the
innermost open span, and ``check_trace`` accepts the file.  A torn
final line (the one failure mode of a flushed appender) must be
skipped-and-counted by the loader and tolerated by the validator.
"""

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import metrics
from repro.obs.trace import (
    TRACE_SCHEMA,
    active_session,
    check_trace,
    event,
    load_trace,
    open_span,
    reset_inherited_session,
    span,
    start_tracing,
    stop_tracing,
    tracing,
)


@pytest.fixture(autouse=True)
def no_leftover_session():
    """Never leak an open session (or enabled registry) across tests."""
    stop_tracing()
    metrics.disable()
    metrics.registry().reset()
    yield
    stop_tracing()
    metrics.disable()
    metrics.registry().reset()


names = st.text(
    alphabet=st.characters(min_codepoint=ord("a"), max_codepoint=ord("z")),
    min_size=1,
    max_size=8,
)

#: Nested span trees: {"name": str, "events": [str], "children": [tree]}.
span_trees = st.recursive(
    st.builds(
        lambda name, evts: {"name": name, "events": evts, "children": []},
        names,
        st.lists(names, max_size=2),
    ),
    lambda child: st.builds(
        lambda name, evts, kids: {"name": name, "events": evts, "children": kids},
        names,
        st.lists(names, max_size=2),
        st.lists(child, max_size=3),
    ),
    max_leaves=6,
)


def emit_tree(tree):
    with span(tree["name"], depth_marker=True):
        for event_name in tree["events"]:
            event(event_name)
        for child in tree["children"]:
            emit_tree(child)


def count_spans(tree):
    return 1 + sum(count_spans(child) for child in tree["children"])


def count_events(tree):
    return len(tree["events"]) + sum(count_events(c) for c in tree["children"])


class TestRoundTrip:
    @given(st.lists(span_trees, min_size=1, max_size=3), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_span_forest_round_trips(self, forest, tear_tail):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "trace.jsonl")
            with tracing(path):
                metrics.inc("test.counter", 3)
                for tree in forest:
                    emit_tree(tree)
            if tear_tail:
                with open(path, "a") as handle:
                    handle.write('{"type": "event", "name": "to')

            log = load_trace(path)
            expected_spans = sum(count_spans(t) for t in forest)
            expected_events = sum(count_events(t) for t in forest)
            starts = log.span_starts()
            assert len(starts) == expected_spans
            assert len(log.of_type("span-end")) == expected_spans
            assert len(log.of_type("event")) == expected_events
            assert log.corrupt_lines == (1 if tear_tail else 0)
            assert log.header is not None
            assert log.header["schema"] == TRACE_SCHEMA

            # Parent links: every span except the forest roots has one,
            # and it references an already-started span.
            seen = set()
            roots = 0
            for record in log.records:
                if record["type"] == "span-start":
                    parent = record.get("parent")
                    if parent is None:
                        roots += 1
                    else:
                        assert parent in seen
                    seen.add(record["id"])
            assert roots == len(forest)

            # The final metrics snapshot carries the session's counters.
            assert log.final_metrics()["counters"]["test.counter"] == 3

            # Torn tails are the tolerated failure mode.
            assert check_trace(path) == []

    def test_span_names_and_attrs_survive(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with tracing(path):
            with span("outer", experiment="fig1"):
                event("milestone", shard="nprime-2")
        log = load_trace(path)
        [start] = log.span_starts("outer")
        assert start["attrs"]["experiment"] == "fig1"
        [evt] = log.of_type("event")
        assert evt["attrs"] == {"shard": "nprime-2"}
        assert evt["span"] == start["id"]

    def test_error_spans_are_flagged(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with tracing(path):
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        [end] = load_trace(path).of_type("span-end")
        assert end["error"] is True
        assert check_trace(path) == []


class TestManualSpans:
    """open_span/SpanHandle: overlapping lifetimes outside the contextvar."""

    def test_overlapping_spans_round_trip(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with tracing(path):
            with span("campaign") as campaign_id:
                a = open_span("shard", id="a", slot=0)
                b = open_span("shard", id="b", slot=1)
                # interleaved closure — impossible with lexical nesting
                a.end()
                b.end()
                assert a.span_id != b.span_id
        log = load_trace(path)
        starts = log.span_starts("shard")
        assert [s["attrs"]["slot"] for s in starts] == [0, 1]
        # both parent to the enclosing contextvar span by default
        assert all(s["parent"] == campaign_id for s in starts)
        assert len(log.of_type("span-end")) == 3
        assert check_trace(path) == []

    def test_explicit_parent_and_event_span_id(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with tracing(path):
            outer = open_span("shard")
            inner = open_span("shard.attempt", parent=outer.span_id)
            event("shard.timeout", span_id=inner.span_id)
            inner.end()
            event("shard.retry", span_id=outer.span_id)
            outer.end()
        log = load_trace(path)
        [attempt] = log.span_starts("shard.attempt")
        assert attempt["parent"] == outer.span_id
        timeout, retry = log.of_type("event")
        assert timeout["span"] == inner.span_id
        assert retry["span"] == outer.span_id
        assert check_trace(path) == []

    def test_end_is_idempotent(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with tracing(path):
            handle = open_span("once")
            handle.end()
            handle.end()
            handle.end(error=True)
        log = load_trace(path)
        [end] = log.of_type("span-end")
        assert end["dur_ns"] >= 0
        assert "error" not in end

    def test_end_after_stop_is_safe(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        start_tracing(path)
        handle = open_span("orphan")
        stop_tracing()
        handle.end()  # must not write to (or crash on) the closed stream
        log = load_trace(path)
        assert log.of_type("span-end") == []
        assert check_trace(path) == []  # unclosed spans are tolerated

    def test_noop_when_untraced(self):
        assert open_span("nothing") is None


class TestDisabledPath:
    def test_span_and_event_are_noops_without_session(self, tmp_path):
        assert active_session() is None
        with span("nothing") as span_id:
            assert span_id is None
            event("nothing.either")
        assert list(tmp_path.iterdir()) == []

    def test_session_lifecycle_and_nesting_refusal(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        session = start_tracing(path)
        assert active_session() is session
        with pytest.raises(RuntimeError, match="already active"):
            start_tracing(str(tmp_path / "other.jsonl"))
        stop_tracing()
        assert active_session() is None
        stop_tracing()  # idempotent

    def test_stop_tracing_restores_metrics_state(self, tmp_path):
        assert not metrics.enabled()
        with tracing(str(tmp_path / "a.jsonl")):
            assert metrics.enabled()
        assert not metrics.enabled()

        metrics.enable()
        with tracing(str(tmp_path / "b.jsonl")):
            assert metrics.enabled()
        assert metrics.enabled()

    def test_session_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "t.jsonl")
        with tracing(path):
            pass
        assert check_trace(path) == []

    def test_reset_inherited_session_disarms_tracing(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        start_tracing(path)
        reset_inherited_session()
        assert active_session() is None
        with span("after.fork"):
            event("ignored")
        # Nothing past the header was written (the stream was abandoned).
        log = load_trace(path)
        assert log.span_starts() == []
        assert log.of_type("event") == []


class TestCheckTrace:
    def write(self, tmp_path, lines):
        path = str(tmp_path / "t.jsonl")
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        return path

    HEADER = f'{{"schema": "{TRACE_SCHEMA}", "type": "header", "created_unix": 1.0}}'

    def test_missing_header_is_reported(self, tmp_path):
        path = self.write(
            tmp_path,
            ['{"type": "event", "t_ns": 1, "name": "e"}', '{"type": "metrics", "t_ns": 2, "metrics": {}}'],
        )
        assert any("header" in p for p in check_trace(path))

    def test_wrong_schema_is_reported(self, tmp_path):
        path = self.write(
            tmp_path, ['{"schema": "ftmc-obs/99", "type": "header"}']
        )
        assert any("ftmc-obs/1" in p for p in check_trace(path))

    def test_unknown_record_type_is_reported(self, tmp_path):
        path = self.write(
            tmp_path, [self.HEADER, '{"type": "mystery", "t_ns": 1}']
        )
        assert any("unknown record type" in p for p in check_trace(path))

    def test_span_end_without_start_is_reported(self, tmp_path):
        path = self.write(
            tmp_path, [self.HEADER, '{"type": "span-end", "id": 9, "t_ns": 1, "dur_ns": 1}']
        )
        assert any("unopened span" in p for p in check_trace(path))

    def test_duplicate_span_id_is_reported(self, tmp_path):
        start = '{"type": "span-start", "id": 1, "t_ns": 1, "name": "s"}'
        path = self.write(tmp_path, [self.HEADER, start, start])
        assert any("duplicate span id" in p for p in check_trace(path))

    def test_dangling_parent_is_reported(self, tmp_path):
        path = self.write(
            tmp_path,
            [self.HEADER, '{"type": "span-start", "id": 1, "t_ns": 1, "name": "s", "parent": 42}'],
        )
        assert any("unknown parent" in p for p in check_trace(path))

    def test_garbage_in_the_middle_is_reported(self, tmp_path):
        path = self.write(
            tmp_path, [self.HEADER, "{torn", '{"type": "metrics", "t_ns": 1, "metrics": {}}']
        )
        assert any("unparseable" in p for p in check_trace(path))

    def test_unclosed_spans_are_tolerated(self, tmp_path):
        path = self.write(
            tmp_path,
            [self.HEADER, '{"type": "span-start", "id": 1, "t_ns": 1, "name": "killed"}'],
        )
        assert check_trace(path) == []

    def test_empty_file_is_reported(self, tmp_path):
        path = self.write(tmp_path, [""])
        assert any("empty trace" in p for p in check_trace(path))

    def test_loader_skips_duplicate_headers(self, tmp_path):
        path = self.write(tmp_path, [self.HEADER, self.HEADER])
        log = load_trace(path)
        assert log.corrupt_lines == 1
        assert any("duplicate header" in p for p in check_trace(path))


class TestForkResets:
    def test_registered_callback_runs_on_reset(self):
        from repro.obs.trace import _fork_resets, register_fork_reset

        calls = []

        def callback():
            calls.append(True)

        register_fork_reset(callback)
        try:
            reset_inherited_session()
            assert calls == [True]
        finally:
            _fork_resets.remove(callback)

    def test_registration_is_idempotent(self):
        from repro.obs.trace import _fork_resets, register_fork_reset

        def callback():
            pass

        register_fork_reset(callback)
        register_fork_reset(callback)
        try:
            assert _fork_resets.count(callback) == 1
        finally:
            _fork_resets.remove(callback)

    def test_killing_timing_point_memo_cleared(self):
        """FTMCF regression: a forked worker must not pin the parent's
        lru_cache pages through copy-on-write references."""
        from repro.safety.killing import _timing_points_cached
        from repro.experiments.tables import example31_taskset

        taskset = example31_taskset()
        task = taskset.lo_tasks[0]
        _timing_points_cached(task, 1, 3.6e6, True)
        assert _timing_points_cached.cache_info().currsize >= 1
        reset_inherited_session()
        assert _timing_points_cached.cache_info().currsize == 0
