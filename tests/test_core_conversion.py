"""Tests for the Lemma 4.1 problem conversion (Example 4.1 / Table 3)."""

import pytest

from repro.core.conversion import (
    convert,
    convert_uniform,
    convert_uniform_series,
)
from repro.model.criticality import CriticalityRole
from repro.model.faults import AdaptationProfile, ReexecutionProfile


class TestConvertUniform:
    def test_table3_exact(self, example31):
        """The converted set must equal Table 3 of the paper."""
        mc = convert_uniform(example31, n_hi=3, n_lo=1, n_prime_hi=2)
        expected = {
            "tau1": (15.0, 10.0),
            "tau2": (12.0, 8.0),
            "tau3": (7.0, 7.0),
            "tau4": (6.0, 6.0),
            "tau5": (8.0, 8.0),
        }
        for task in mc:
            hi, lo = expected[task.name]
            assert task.wcet_hi == hi
            assert task.wcet_lo == lo

    def test_preserves_periods_deadlines_criticalities(self, example31):
        mc = convert_uniform(example31, 3, 1, 2)
        for original, converted in zip(example31, mc):
            assert converted.period == original.period
            assert converted.deadline == original.deadline
            assert converted.criticality is original.criticality

    def test_hi_budgets_scale_with_profiles(self, example31):
        mc = convert_uniform(example31, 4, 2, 3)
        tau1 = mc.task("tau1")
        assert tau1.wcet_hi == 20.0  # 4 * 5
        assert tau1.wcet_lo == 15.0  # 3 * 5
        tau3 = mc.task("tau3")
        assert tau3.wcet_hi == tau3.wcet_lo == 14.0  # 2 * 7

    def test_n_prime_equal_n_gives_equal_budgets(self, example31):
        mc = convert_uniform(example31, 3, 1, 3)
        for task in mc.hi_tasks:
            assert task.wcet_lo == task.wcet_hi

    def test_utilization_relations(self, example31):
        """U_HI^HI = n_HI*U_HI etc. — the identities Algorithm 2 relies on."""
        n_hi, n_lo, n_prime = 3, 2, 2
        mc = convert_uniform(example31, n_hi, n_lo, n_prime)
        u_hi = example31.utilization(CriticalityRole.HI)
        u_lo = example31.utilization(CriticalityRole.LO)
        assert mc.u_hi_hi == pytest.approx(n_hi * u_hi)
        assert mc.u_hi_lo == pytest.approx(n_prime * u_hi)
        assert mc.u_lo_lo == pytest.approx(n_lo * u_lo)


class TestConvertGeneral:
    def test_per_task_profiles(self, example31):
        reexecution = ReexecutionProfile(
            {"tau1": 4, "tau2": 2, "tau3": 1, "tau4": 2, "tau5": 1}
        )
        adaptation = AdaptationProfile({"tau1": 3, "tau2": 1})
        mc = convert(example31, reexecution, adaptation)
        assert mc.task("tau1").wcet_hi == 20.0
        assert mc.task("tau1").wcet_lo == 15.0
        assert mc.task("tau2").wcet_hi == 8.0
        assert mc.task("tau2").wcet_lo == 4.0
        assert mc.task("tau4").wcet_hi == 12.0
        assert mc.task("tau4").wcet_lo == 12.0

    def test_rejects_incomplete_reexecution(self, example31):
        partial = ReexecutionProfile({"tau1": 2})
        adaptation = AdaptationProfile.uniform(example31, 1)
        with pytest.raises(ValueError, match="missing"):
            convert(example31, partial, adaptation)

    def test_rejects_adaptation_above_reexecution(self, example31):
        reexecution = ReexecutionProfile.uniform(example31, 2, 1)
        adaptation = AdaptationProfile.uniform(example31, 3)
        with pytest.raises(ValueError, match="exceeds"):
            convert(example31, reexecution, adaptation)

    def test_converted_name_tagged(self, example31):
        mc = convert_uniform(example31, 3, 1, 2)
        assert "converted" in mc.name


class TestConvertUniformSeries:
    def test_entries_match_convert_uniform(self, example31):
        n_hi, n_lo = 3, 2
        series = dict(
            convert_uniform_series(example31, n_hi, n_lo, range(n_hi, 0, -1))
        )
        assert sorted(series) == [1, 2, 3]
        for n_prime, mc in series.items():
            expected = convert_uniform(example31, n_hi, n_lo, n_prime)
            for got, want in zip(mc, expected):
                assert (got.name, got.period, got.deadline) == (
                    want.name,
                    want.period,
                    want.deadline,
                )
                assert got.wcet_lo == want.wcet_lo
                assert got.wcet_hi == want.wcet_hi
                assert got.criticality is want.criticality

    def test_lazy_generation_order(self, example31):
        gen = convert_uniform_series(example31, 3, 1, range(3, 0, -1))
        n_prime, _ = next(gen)
        assert n_prime == 3

    def test_rejects_invalid_n_prime(self, example31):
        with pytest.raises(ValueError):
            list(convert_uniform_series(example31, 3, 1, [0]))
        with pytest.raises(ValueError, match="exceeds"):
            list(convert_uniform_series(example31, 3, 1, [4]))
