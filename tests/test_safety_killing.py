"""Tests for safety under task killing — eqs. (3)-(5), Lemmas 3.2/3.3."""

import math

import numpy as np
import pytest

from repro.model.criticality import CriticalityRole
from repro.model.faults import AdaptationProfile, ReexecutionProfile
from repro.model.task import HOUR_MS, Task, TaskSet
from repro.safety.killing import (
    kill_probability,
    pfh_lo_killing,
    pfh_lo_killing_reference,
    survival_probability,
    survival_probability_at,
    timing_points,
)
from repro.safety.pfh import max_rounds


def _single_hi_set(period=1000.0, wcet=10.0, f=1e-3) -> TaskSet:
    tasks = [
        Task("hi", period, period, wcet, CriticalityRole.HI, f),
        Task("lo", 500.0, 500.0, 5.0, CriticalityRole.LO, f),
    ]
    return TaskSet(tasks)


class TestSurvivalProbability:
    def test_hand_computed_single_task(self):
        """R = (1 - f^n')^r with one HI task — directly checkable."""
        ts = _single_hi_set(period=1000.0, wcet=10.0, f=1e-2)
        adaptation = AdaptationProfile({"hi": 2})
        horizon = 10_000.0
        rounds = max_rounds(ts.task("hi"), 2, horizon)
        expected = (1.0 - 1e-4) ** rounds
        assert survival_probability(ts, adaptation, horizon) == pytest.approx(
            expected, rel=1e-12
        )

    def test_product_over_hi_tasks(self, example31, example31_adaptation):
        """R is the product of per-HI-task survival factors (eq. 3)."""
        horizon = HOUR_MS
        total = survival_probability(example31, example31_adaptation, horizon)
        expected = 1.0
        for task in example31.hi_tasks:
            rounds = max_rounds(task, 2, horizon)
            expected *= (1.0 - task.failure_probability**2) ** rounds
        assert total == pytest.approx(expected, rel=1e-9)

    def test_decreases_with_time(self, example31, example31_adaptation):
        """Lemma 3.2 remark: R(N', t) decreases as t grows."""
        horizons = [1e4, 1e5, 1e6, HOUR_MS, 10 * HOUR_MS]
        values = [
            survival_probability(example31, example31_adaptation, t)
            for t in horizons
        ]
        for earlier, later in zip(values, values[1:]):
            assert later <= earlier + 1e-15

    def test_increases_with_adaptation_profile(self, example31):
        """Larger n' => LO tasks killed less often => larger R."""
        horizon = HOUR_MS
        values = [
            survival_probability(
                example31, AdaptationProfile.uniform(example31, n), horizon
            )
            for n in (1, 2, 3)
        ]
        assert values[0] < values[1] < values[2]

    def test_no_hi_tasks_gives_certain_survival(self):
        ts = TaskSet([Task("lo", 100, 100, 5, CriticalityRole.LO, 1e-3)])
        assert survival_probability(ts, AdaptationProfile({}), HOUR_MS) == 1.0

    def test_vectorised_matches_scalar(self, example31, example31_adaptation):
        horizons = np.array([1e3, 5e4, 2e5, HOUR_MS])
        vector = survival_probability_at(
            example31, example31_adaptation, horizons
        )
        for t, v in zip(horizons, vector):
            assert v == pytest.approx(
                survival_probability(example31, example31_adaptation, float(t)),
                rel=1e-12,
            )

    def test_at_time_zero(self, example31, example31_adaptation):
        """At t = 0 every HI task still fits one round (r_i >= 0)."""
        value = survival_probability(example31, example31_adaptation, 0.0)
        assert 0.0 < value <= 1.0

    def test_kill_probability_complements(self, example31, example31_adaptation):
        t = HOUR_MS
        assert kill_probability(
            example31, example31_adaptation, t
        ) == pytest.approx(
            1.0 - survival_probability(example31, example31_adaptation, t)
        )

    def test_rejects_negative_horizon(self, example31, example31_adaptation):
        with pytest.raises(ValueError, match="non-negative"):
            survival_probability(example31, example31_adaptation, -1.0)


class TestTimingPoints:
    def test_last_point_is_horizon(self, example31):
        points = timing_points(example31.task("tau3"), 1, HOUR_MS)
        assert points[-1] == HOUR_MS

    def test_count_matches_rounds(self, example31):
        """|pi_i(t)| = r_i(n_i, t) when no point falls below zero."""
        task = example31.task("tau3")
        rounds = max_rounds(task, 1, HOUR_MS)
        points = timing_points(task, 1, HOUR_MS)
        assert len(points) == rounds

    def test_spacing_is_period(self, example31):
        """Consecutive eq.-(4) points differ by exactly T_i."""
        task = example31.task("tau4")
        points = timing_points(task, 2, 1e5)
        interior = points[:-1]
        gaps = np.diff(interior)
        assert np.allclose(gaps, task.period)

    def test_eq4_formula(self):
        """pi_i(t) = {t - n C - m T + D : 1 <= m < r} + {t}, checked by hand."""
        task = Task("x", period=100.0, deadline=80.0, wcet=10.0,
                     criticality=CriticalityRole.LO, failure_probability=1e-3)
        t = 450.0
        # r = floor((450 - 20)/100) + 1 = 5 rounds; m in {1,2,3,4}
        expected = sorted(
            [450.0 - 20.0 - m * 100.0 + 80.0 for m in (1, 2, 3, 4)]
        ) + [450.0]
        points = timing_points(task, 2, t)
        assert np.allclose(points, expected)

    def test_nonpositive_points_dropped(self):
        task = Task("x", period=100.0, deadline=10.0, wcet=30.0,
                     criticality=CriticalityRole.LO, failure_probability=1e-3)
        t = 250.0
        # r = floor((250-60)/100)+1 = 2; m=1: 250-60-100+10 = 100 > 0 kept
        points = timing_points(task, 2, t)
        assert all(p > 0 for p in points)

    def test_empty_when_no_round_fits(self):
        task = Task("x", period=100.0, deadline=100.0, wcet=60.0,
                     criticality=CriticalityRole.LO, failure_probability=1e-3)
        assert timing_points(task, 2, 100.0).size == 0


class TestPfhLoKilling:
    def test_vectorised_matches_reference(self, example31):
        reexecution = ReexecutionProfile.uniform(example31, 3, 2)
        adaptation = AdaptationProfile.uniform(example31, 2)
        fast = pfh_lo_killing(example31, reexecution, adaptation, 1.0)
        slow = pfh_lo_killing_reference(example31, reexecution, adaptation, 1.0)
        assert fast == pytest.approx(slow, rel=1e-9)

    def test_vectorised_matches_reference_at_mission_scale(self, fms):
        """The batched evaluator (one eq.-(3) call over all LO tasks'
        concatenated timing points) must agree with the per-point scalar
        oracle on the 10-hour FMS workload the Fig. 3 sweeps use."""
        reexecution = ReexecutionProfile.uniform(fms, 3, 2)
        adaptation = AdaptationProfile.uniform(fms, 2)
        fast = pfh_lo_killing(fms, reexecution, adaptation, 10.0)
        slow = pfh_lo_killing_reference(fms, reexecution, adaptation, 10.0)
        assert fast == pytest.approx(slow, rel=1e-9)

    def test_no_numpy_env_selects_reference(self, example31, monkeypatch):
        from repro.analysis import kernels

        reexecution = ReexecutionProfile.uniform(example31, 3, 2)
        adaptation = AdaptationProfile.uniform(example31, 2)
        fast = pfh_lo_killing(example31, reexecution, adaptation, 1.0)
        monkeypatch.setenv(kernels.NO_NUMPY_ENV, "1")
        scalar = pfh_lo_killing(example31, reexecution, adaptation, 1.0)
        assert scalar == pytest.approx(fast, rel=1e-9)

    def test_memoized_timing_points_are_immutable(self, example31):
        from repro.safety.killing import _timing_points_cached

        points = _timing_points_cached(example31.task("tau3"), 1, HOUR_MS, True)
        with pytest.raises(ValueError):
            points[0] = -1.0
        again = _timing_points_cached(example31.task("tau3"), 1, HOUR_MS, True)
        assert np.array_equal(points, again)

    def test_decreases_with_adaptation_profile(self, example31):
        """Section 3.3: increasing n' improves LO safety."""
        reexecution = ReexecutionProfile.uniform(example31, 3, 2)
        values = [
            pfh_lo_killing(
                example31,
                reexecution,
                AdaptationProfile.uniform(example31, n),
                10.0,
            )
            for n in (1, 2, 3)
        ]
        assert values[0] > values[1] > values[2]

    def test_no_hi_tasks_reduces_to_plain_round_failures(self):
        """With no HI tasks R == 1 and each round contributes f^n."""
        lo = Task("lo", 1000.0, 1000.0, 10.0, CriticalityRole.LO, 1e-3)
        ts = TaskSet([lo])
        reexecution = ReexecutionProfile({"lo": 2})
        adaptation = AdaptationProfile({})
        value = pfh_lo_killing(ts, reexecution, adaptation, 1.0)
        rounds = max_rounds(lo, 2, HOUR_MS)
        assert value == pytest.approx(rounds * 1e-6, rel=1e-6)

    def test_fms_order_of_magnitude_matches_paper(self, fms):
        """Paper, Section 5.1: at n' = 2 killing yields pfh(LO) ~ 1e-1."""
        reexecution = ReexecutionProfile.uniform(fms, 3, 2)
        adaptation = AdaptationProfile.uniform(fms, 2)
        value = pfh_lo_killing(fms, reexecution, adaptation, 10.0)
        assert -1.0 <= math.log10(value) <= 0.0

    def test_scales_sublinearly_with_operation_hours(self, example31):
        """Failure rate accumulates, the per-hour average grows with OS."""
        reexecution = ReexecutionProfile.uniform(example31, 3, 2)
        adaptation = AdaptationProfile.uniform(example31, 2)
        one = pfh_lo_killing(example31, reexecution, adaptation, 1.0)
        ten = pfh_lo_killing(example31, reexecution, adaptation, 10.0)
        # Kill probability grows with elapsed time, so the 10-hour average
        # per-hour failure rate exceeds the 1-hour one.
        assert ten > one

    def test_rejects_nonpositive_operation_hours(self, example31):
        reexecution = ReexecutionProfile.uniform(example31, 3, 2)
        adaptation = AdaptationProfile.uniform(example31, 2)
        with pytest.raises(ValueError, match="operation hours"):
            pfh_lo_killing(example31, reexecution, adaptation, 0.0)

    def test_validates_adaptation_against_reexecution(self, example31):
        reexecution = ReexecutionProfile.uniform(example31, 2, 1)
        adaptation = AdaptationProfile.uniform(example31, 3)
        with pytest.raises(ValueError, match="exceeds"):
            pfh_lo_killing(example31, reexecution, adaptation, 1.0)

    def test_footnote1_variant_is_larger(self, example31):
        """Dropping the n*C setup admits more rounds => larger bound."""
        reexecution = ReexecutionProfile.uniform(example31, 3, 2)
        adaptation = AdaptationProfile.uniform(example31, 2)
        with_setup = pfh_lo_killing(
            example31, reexecution, adaptation, 1.0, assume_full_wcet=True
        )
        without = pfh_lo_killing(
            example31, reexecution, adaptation, 1.0, assume_full_wcet=False
        )
        assert without >= with_setup


class TestUniformSeriesEvaluator:
    """The breakpoint evaluator vs the rounds-matrix oracle (eq. 5)."""

    def _oracle(self, taskset, n_hi, n_lo, n_prime, hours, full_wcet=True):
        return pfh_lo_killing(
            taskset,
            ReexecutionProfile.uniform(taskset, n_hi, n_lo),
            AdaptationProfile.uniform(taskset, n_prime),
            hours,
            assume_full_wcet=full_wcet,
        )

    def test_matches_matrix_path_on_example31(self, example31):
        from repro.safety.killing import pfh_lo_killing_uniform

        for n_prime in (1, 2, 3):
            fast = pfh_lo_killing_uniform(example31, 3, 2, n_prime, 10.0)
            slow = self._oracle(example31, 3, 2, n_prime, 10.0)
            assert fast == pytest.approx(slow, rel=1e-6)

    def test_matches_matrix_path_on_fms(self, fms):
        from repro.safety.killing import pfh_lo_killing_uniform

        for n_prime in (1, 2, 3):
            for hours in (1.0, 10.0):
                fast = pfh_lo_killing_uniform(fms, 3, 2, n_prime, hours)
                slow = self._oracle(fms, 3, 2, n_prime, hours)
                assert fast == pytest.approx(slow, rel=1e-6)

    def test_matches_on_generated_corpus(self):
        from repro.gen.taskset import generate_taskset
        from repro.model.criticality import DualCriticalitySpec
        from repro.safety.killing import pfh_lo_killing_uniform

        spec = DualCriticalitySpec.from_names("B", "C")
        for seed in range(6):
            rng = np.random.default_rng([41, seed])
            taskset = generate_taskset(0.85, spec, rng)
            for n_prime in (1, 2, 4):
                fast = pfh_lo_killing_uniform(taskset, 4, 2, n_prime, 10.0)
                slow = self._oracle(taskset, 4, 2, n_prime, 10.0)
                assert fast == pytest.approx(slow, rel=1e-6)

    def test_footnote1_variant_matches(self, fms):
        from repro.safety.killing import pfh_lo_killing_uniform

        fast = pfh_lo_killing_uniform(
            fms, 3, 2, 2, 10.0, assume_full_wcet=False
        )
        slow = self._oracle(fms, 3, 2, 2, 10.0, full_wcet=False)
        assert fast == pytest.approx(slow, rel=1e-6)

    def test_memoized_across_candidates(self, fms):
        from repro.safety.killing import pfh_lo_killing_uniform

        first = pfh_lo_killing_uniform(fms, 3, 2, 2, 10.0)
        second = pfh_lo_killing_uniform(fms, 3, 2, 2, 10.0)
        assert second == first

    def test_validates_arguments(self, fms):
        from repro.safety.killing import pfh_lo_killing_uniform

        with pytest.raises(ValueError, match="operation hours"):
            pfh_lo_killing_uniform(fms, 3, 2, 2, 0.0)
        with pytest.raises(ValueError, match="1..3"):
            pfh_lo_killing_uniform(fms, 3, 2, 4, 10.0)
