"""Unit tests for the Fig. 1/2 sweep machinery (u_mc closed forms)."""

import math

import pytest

from repro.experiments.fms_sweep import adaptation_sweep, u_mc_degrade, u_mc_kill
from repro.model.criticality import CriticalityRole


class TestUMcKill:
    def test_matches_edf_vd_analysis_in_valid_range(self, example31):
        """For n' <= n_HI the closed form equals the eq. (10) U_MC."""
        from repro.analysis.edf_vd import edf_vd_utilization
        from repro.core.conversion import convert_uniform

        for n_prime in (1, 2, 3):
            closed = u_mc_kill(example31, 3, 1, n_prime)
            via_set = edf_vd_utilization(
                convert_uniform(example31, 3, 1, n_prime)
            )
            assert closed == pytest.approx(via_set)

    def test_extends_past_n_hi(self, example31):
        """The figure's hypothetical n' = 4 point evaluates finitely."""
        value = u_mc_kill(example31, 3, 1, 4)
        assert math.isfinite(value)
        assert value > u_mc_kill(example31, 3, 1, 3)

    def test_infinite_when_lo_load_full(self, example31):
        assert math.isinf(u_mc_kill(example31, 3, 9, 1))


class TestUMcDegrade:
    def test_matches_degradation_analysis(self, fms):
        from repro.analysis.edf_vd_degradation import (
            edf_vd_degradation_utilization,
        )
        from repro.core.conversion import convert_uniform

        for n_prime in (1, 2):
            closed = u_mc_degrade(fms, 3, 2, n_prime, 6.0)
            via_set = edf_vd_degradation_utilization(
                convert_uniform(fms, 3, 2, n_prime), 6.0
            )
            assert closed == pytest.approx(via_set)

    def test_rejects_bad_factor(self, fms):
        with pytest.raises(ValueError, match="factor"):
            u_mc_degrade(fms, 3, 2, 1, 1.0)

    def test_infinite_when_lambda_saturates(self, fms):
        assert math.isinf(u_mc_degrade(fms, 3, 2, 30, 6.0))


class TestAdaptationSweep:
    def test_rejects_unknown_mechanism(self, fms):
        with pytest.raises(ValueError, match="mechanism"):
            adaptation_sweep(fms, "pause", 10.0)

    def test_degrade_requires_factor(self, fms):
        with pytest.raises(ValueError, match="factor"):
            adaptation_sweep(fms, "degrade", 10.0)

    def test_hypothetical_points_flagged(self, fms):
        result = adaptation_sweep(
            fms, "kill", 10.0, n_prime_max=5, name="x", description="d"
        )
        flags = dict(zip(result.column("n_prime"),
                         result.column("hypothetical")))
        assert not flags[3]  # n_HI = 3 is still real
        assert flags[4] and flags[5]

    def test_custom_range(self, fms):
        result = adaptation_sweep(
            fms, "kill", 10.0, n_prime_max=2, name="x", description="d"
        )
        assert result.column("n_prime") == [1, 2]

    def test_sweep_on_unsafe_set_raises(self, example31):
        """A set that cannot meet its ceilings at all is rejected."""
        from repro.model.criticality import DualCriticalitySpec
        from repro.model.task import Task, TaskSet

        hopeless = TaskSet(
            [
                Task("hi", 10, 10, 1, CriticalityRole.HI, 0.9),
                Task("lo", 10, 10, 1, CriticalityRole.LO, 0.9),
            ],
            DualCriticalitySpec.from_names("A", "E"),
        )
        with pytest.raises(ValueError, match="ceilings"):
            adaptation_sweep(hopeless, "kill", 10.0)
