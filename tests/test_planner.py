"""Tests for the partitioned planning subsystem (repro.planner)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backends import EDFVDBackend
from repro.core.conversion import convert_uniform
from repro.gen.taskset import generate_taskset
from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.mc_task import MCTask, MCTaskSet
from repro.planner import (
    DEFAULT_PORTFOLIO,
    HeuristicSpec,
    PlanOptions,
    branch_and_bound,
    core_load,
    pack,
    partition_objective,
    plan_partition,
    run_portfolio,
    size_key,
)
from repro.planner.sizes import SIZE_KEYS, reexecution_surplus, task_size

SPEC = DualCriticalitySpec.from_names("B", "D")


def mc_from_sizes(sizes, hi_sizes=None):
    """A converted-style MCTaskSet from per-task (LO, HI) utilizations."""
    hi_sizes = sizes if hi_sizes is None else hi_sizes
    tasks = []
    for index, (lo, hi) in enumerate(zip(sizes, hi_sizes)):
        role = CriticalityRole.HI if hi > lo else CriticalityRole.LO
        tasks.append(
            MCTask(f"t{index}", 100.0, 100.0, lo * 100.0, hi * 100.0, role)
        )
    return MCTaskSet(tasks)


class TestSizeKeys:
    def test_catalog(self):
        assert set(SIZE_KEYS) == {"lo-util", "hi-util", "max-util", "density"}

    def test_unknown_size_key_rejected(self):
        with pytest.raises(ValueError, match="size key"):
            size_key("volume")

    def test_task_size_is_max_mode_utilization(self):
        task = MCTask("t", 100.0, 100.0, 10.0, 30.0, CriticalityRole.HI)
        assert task_size(task) == pytest.approx(0.3)
        assert size_key("lo-util")(task) == pytest.approx(0.1)
        assert size_key("hi-util")(task) == pytest.approx(0.3)

    def test_reexecution_surplus(self):
        task = MCTask("t", 100.0, 100.0, 10.0, 30.0, CriticalityRole.HI)
        assert reexecution_surplus(task) == pytest.approx(0.2)
        lo = MCTask("l", 100.0, 100.0, 10.0, 10.0, CriticalityRole.LO)
        assert reexecution_surplus(lo) == 0.0


class TestHeuristicSpec:
    def test_name(self):
        assert HeuristicSpec("wfd", "hi-util").name == "wfd/hi-util"

    def test_unknown_fit_rejected(self):
        with pytest.raises(ValueError, match="fit rule"):
            HeuristicSpec("next-fit", "max-util")

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError):
            HeuristicSpec("ffd", "weight")

    def test_default_portfolio_is_valid_and_deduplicated(self):
        names = [spec.name for spec in DEFAULT_PORTFOLIO]
        assert len(names) == len(set(names))
        assert "ffd/max-util" in names
        assert "wfd-reexec/max-util" in names


class TestPack:
    def test_every_fit_rule_packs_a_balanced_set(self):
        mc = mc_from_sizes([0.38, 0.38, 0.3, 0.3, 0.2, 0.2])
        for spec in DEFAULT_PORTFOLIO:
            partition = pack(mc, 2, EDFVDBackend(), spec)
            assert partition is not None, spec.name
            placed = sorted(
                t.name for core in partition.processors for t in core
            )
            assert placed == sorted(t.name for t in mc)

    def test_rejects_zero_processors(self):
        mc = mc_from_sizes([0.2])
        with pytest.raises(ValueError, match="processor"):
            pack(mc, 0, EDFVDBackend(), HeuristicSpec("ffd", "max-util"))

    def test_wfd_balances_better_than_ffd(self):
        """Worst fit spreads equal tasks; first fit piles them up."""
        mc = mc_from_sizes([0.3, 0.3, 0.3, 0.3])
        backend = EDFVDBackend()
        ffd = pack(mc, 2, backend, HeuristicSpec("ffd", "max-util"))
        wfd = pack(mc, 2, backend, HeuristicSpec("wfd", "max-util"))
        assert partition_objective(wfd) <= partition_objective(ffd)
        assert partition_objective(wfd) == pytest.approx(0.6)

    def test_miss_returns_none_not_raise(self):
        mc = mc_from_sizes([0.6, 0.6, 0.6])
        spec = HeuristicSpec("ffd", "max-util")
        assert pack(mc, 2, EDFVDBackend(), spec) is None


class TestPortfolio:
    def test_keeps_best_objective(self):
        mc = mc_from_sizes([0.3, 0.3, 0.3, 0.3])
        partition, spec, objective = run_portfolio(mc, 2, EDFVDBackend())
        assert partition is not None
        assert spec is not None
        assert objective == pytest.approx(0.6)

    def test_total_miss_returns_inf(self):
        mc = mc_from_sizes([0.9, 0.9, 0.9])
        partition, spec, objective = run_portfolio(mc, 2, EDFVDBackend())
        assert partition is None
        assert spec is None
        assert objective == math.inf


class TestBranchAndBound:
    def test_rescues_a_weak_portfolio_miss(self):
        """FFD alone mis-packs this instance; the exact search places it."""
        mc = mc_from_sizes([0.44, 0.44, 0.34, 0.34, 0.19, 0.19])
        backend = EDFVDBackend()
        weak = (HeuristicSpec("ffd", "max-util"),)
        assert run_portfolio(mc, 2, backend, weak)[0] is None
        result = branch_and_bound(mc, 2, backend)
        assert result.partition is not None
        assert result.complete
        assert result.objective == pytest.approx(0.97)

    def test_proves_infeasibility(self):
        mc = mc_from_sizes([0.6, 0.6, 0.6])
        result = branch_and_bound(mc, 2, EDFVDBackend())
        assert result.partition is None
        assert result.complete

    def test_node_budget_truncates(self):
        taskset = generate_taskset(2.6, SPEC, 5)
        mc = convert_uniform(taskset, 2, 1, 1)
        result = branch_and_bound(mc, 3, EDFVDBackend(), max_nodes=3)
        assert result.nodes >= 3
        assert not result.complete

    def test_incumbent_prunes_equal_objectives(self):
        """Only strictly better solutions than the incumbent come back."""
        mc = mc_from_sizes([0.3, 0.3, 0.3, 0.3])
        backend = EDFVDBackend()
        result = branch_and_bound(mc, 2, backend, incumbent_objective=0.6)
        assert result.partition is None  # 0.6 is already optimal
        assert result.complete


class TestPlanPartition:
    def test_schedulable_via_portfolio(self):
        mc = mc_from_sizes([0.3, 0.3, 0.3, 0.3])
        plan = plan_partition(mc, 2, EDFVDBackend())
        assert plan.schedulable
        assert plan
        assert plan.strategy in {spec.name for spec in DEFAULT_PORTFOLIO}
        assert plan.gap is not None and plan.gap >= 0.0

    def test_exact_rescue_sets_strategy(self):
        mc = mc_from_sizes([0.44, 0.44, 0.34, 0.34, 0.19, 0.19])
        options = PlanOptions(portfolio=(HeuristicSpec("ffd", "max-util"),))
        plan = plan_partition(mc, 2, EDFVDBackend(), options)
        assert plan.schedulable
        assert plan.strategy == "exact"
        assert plan.heuristic_objective == math.inf
        assert plan.gap is None  # no heuristic objective to compare

    def test_proven_infeasible(self):
        mc = mc_from_sizes([0.6, 0.6, 0.6])
        plan = plan_partition(mc, 2, EDFVDBackend())
        assert not plan.schedulable
        assert plan.proven_infeasible
        assert not plan.inconclusive
        assert not plan

    def test_inconclusive_without_exact(self):
        mc = mc_from_sizes([0.6, 0.6, 0.6])
        plan = plan_partition(
            mc, 2, EDFVDBackend(), PlanOptions(exact=False)
        )
        assert not plan.schedulable
        assert not plan.proven_infeasible
        assert plan.inconclusive

    def test_inconclusive_on_truncated_search(self):
        taskset = generate_taskset(3.4, SPEC, 19)
        mc = convert_uniform(taskset, 2, 1, 1)
        plan = plan_partition(
            mc, 3, EDFVDBackend(), PlanOptions(max_nodes=2)
        )
        if not plan.schedulable:
            assert not plan.proven_infeasible
            assert plan.inconclusive

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError, match="processor"):
            plan_partition(mc_from_sizes([0.2]), 0, EDFVDBackend())


class TestPlannerProperties:
    """The soundness properties the subsystem is built around."""

    @given(st.integers(0, 60), st.integers(1, 3), st.floats(0.3, 2.2))
    @settings(max_examples=40, deadline=None)
    def test_partition_is_exact_cover_and_per_core_schedulable(
        self, seed, m, utilization
    ):
        taskset = generate_taskset(utilization, SPEC, seed)
        mc = convert_uniform(taskset, 2, 1, 1)
        plan = plan_partition(
            mc, m, EDFVDBackend(), PlanOptions(max_nodes=500)
        )
        if plan.partition is None:
            return
        names = sorted(
            t.name for core in plan.partition.processors for t in core
        )
        assert names == sorted(t.name for t in mc)
        backend = EDFVDBackend()
        for core in plan.partition.processors:
            assert backend.is_schedulable(core)

    @given(st.integers(0, 60), st.integers(1, 3), st.floats(0.3, 2.2))
    @settings(max_examples=30, deadline=None)
    def test_exact_verdicts_dominate_heuristic(self, seed, m, utilization):
        """Exact planning never loses a set the portfolio schedules."""
        taskset = generate_taskset(utilization, SPEC, seed)
        mc = convert_uniform(taskset, 2, 1, 1)
        backend = EDFVDBackend()
        heuristic = plan_partition(
            mc, m, backend, PlanOptions(exact=False)
        )
        full = plan_partition(mc, m, backend, PlanOptions(max_nodes=500))
        if heuristic.schedulable:
            assert full.schedulable
            assert not full.proven_infeasible
            assert full.exact_objective <= heuristic.heuristic_objective
        if full.proven_infeasible:
            assert not heuristic.schedulable

    @given(st.integers(0, 60), st.floats(0.3, 2.2))
    @settings(max_examples=30, deadline=None)
    def test_objective_matches_adopted_partition(self, seed, utilization):
        taskset = generate_taskset(utilization, SPEC, seed)
        mc = convert_uniform(taskset, 2, 1, 1)
        plan = plan_partition(
            mc, 2, EDFVDBackend(), PlanOptions(max_nodes=500)
        )
        if plan.partition is None:
            return
        assert partition_objective(plan.partition) == pytest.approx(
            plan.exact_objective
            if plan.strategy == "exact" or plan.exact_complete
            else plan.heuristic_objective
        )

    @given(st.integers(0, 30))
    @settings(max_examples=20, deadline=None)
    def test_core_load_is_max_of_mode_sums(self, seed):
        taskset = generate_taskset(0.8, SPEC, seed)
        mc = convert_uniform(taskset, 2, 1, 1)
        lo = sum(t.utilization(CriticalityRole.LO) for t in mc)
        hi = sum(t.utilization(CriticalityRole.HI) for t in mc)
        assert core_load(mc) == pytest.approx(max(lo, hi))
