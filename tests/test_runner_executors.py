"""Executor topologies: protocol units, worker groups, fault tolerance.

The distributed-campaign acceptance criteria from docs/robustness.md,
as tests: the wire protocol survives torn and foreign lines, a
``SubprocessExecutor`` worker group starts/heartbeats/shuts down, and —
the headline — results and coverage are byte-identical across
``executors=1``/``executors=2``/local topologies, fresh, resumed, and
under chaos that SIGKILLs whole executors mid-shard.  Killing one of
two executors loses zero completed shards; losing every executor
degrades to exit code 3 with explicit orphan accounting, and a later
``--resume`` still converges to the clean bytes.
"""

import json

import pytest

from repro.runner import (
    CampaignConfigError,
    PipeChannel,
    RetryPolicy,
    run_campaign,
)
from repro.runner.executors import ExecutorLost, SubprocessExecutor
from repro.runner.protocol import decode_line, encode

FAST_RETRY = RetryPolicy(max_retries=0, base_delay=0.0)
CHAOS_RETRY = RetryPolicy(max_retries=2, base_delay=0.05, max_delay=0.2)

OPTIONS = {"tables": ["table1", "table2", "table3", "table4"]}
FILES = [f"table{i}{ext}" for i in range(1, 5) for ext in (".json", ".csv")]


def _run(tmp_path, subdir, **kwargs):
    kwargs.setdefault("retry", FAST_RETRY)
    kwargs.setdefault("timeout", 60.0)
    return run_campaign(
        "tables",
        options=OPTIONS,
        output_dir=str(tmp_path / subdir),
        **kwargs,
    )


def _bytes(tmp_path, subdir):
    out = tmp_path / subdir
    return {name: (out / name).read_bytes() for name in FILES}


def _coverage_sans_timing(tmp_path, subdir):
    coverage = json.loads(
        (tmp_path / subdir / "tables.coverage.json").read_text()
    )
    del coverage["executed_seconds"]
    for entry in coverage["retried_shards"] + coverage["failed_shards"]:
        del entry["duration_s"]
    return coverage


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "run", "task": 3, "params": {"n": 5}}
        assert decode_line(encode(message).rstrip(b"\n")) == message

    def test_torn_line_decodes_to_none(self):
        line = encode({"op": "result", "task": 1, "message": "x" * 64})
        assert decode_line(line[: len(line) // 2]) is None

    def test_foreign_lines_decode_to_none(self):
        assert decode_line(b"[1, 2, 3]") is None
        assert decode_line(b'{"no_op_key": true}') is None
        assert decode_line(b'{"op": 7}') is None
        assert decode_line(b"\xff\xfe garbage") is None


class _PipePair:
    """A PipeChannel plus raw handles on the far ends of its pipes."""

    def __init__(self):
        import os

        out_r, out_w = os.pipe()  # channel writes ops here
        in_r, in_w = os.pipe()  # channel reads replies here
        self.channel = PipeChannel(os.fdopen(out_w, "wb"), os.fdopen(in_r, "rb"))
        self.peer_reader = os.fdopen(out_r, "rb")
        self.peer_writer = os.fdopen(in_w, "wb")

    def peer_send(self, data: bytes) -> None:
        self.peer_writer.write(data)
        self.peer_writer.flush()

    def close(self):
        self.channel.close()
        for stream in (self.peer_reader, self.peer_writer):
            try:
                stream.close()
            except OSError:
                pass


@pytest.fixture
def pipes():
    pair = _PipePair()
    yield pair
    pair.close()


class TestPipeChannel:
    def test_send_and_poll_round_trip(self, pipes):
        pipes.channel.send({"op": "run", "task": 1})
        assert decode_line(pipes.peer_reader.readline().rstrip(b"\n")) == {
            "op": "run",
            "task": 1,
        }
        pipes.peer_send(encode({"op": "heartbeat", "seq": 0}))
        assert pipes.channel.poll() == [{"op": "heartbeat", "seq": 0}]

    def test_partial_lines_buffer_across_polls(self, pipes):
        line = encode({"op": "result", "task": 9, "message": "ok"})
        pipes.peer_send(line[:10])
        assert pipes.channel.poll() == []
        pipes.peer_send(line[10:])
        assert pipes.channel.poll() == [
            {"op": "result", "task": 9, "message": "ok"}
        ]

    def test_torn_and_foreign_lines_dropped_and_counted(self, pipes):
        pipes.peer_send(b'{"op": "ready", "tor\n')
        pipes.peer_send(b"[1,2,3]\n")
        pipes.peer_send(encode({"op": "ready", "pid": 1}))
        assert pipes.channel.poll() == [{"op": "ready", "pid": 1}]
        assert pipes.channel.dropped == 2

    def test_peer_hangup_reports_closed_not_raises(self, pipes):
        pipes.peer_send(encode({"op": "heartbeat", "seq": 1}))
        pipes.peer_writer.close()
        assert pipes.channel.poll() == [{"op": "heartbeat", "seq": 1}]
        assert pipes.channel.closed
        assert pipes.channel.poll() == []

    def test_send_after_close_raises(self, pipes):
        pipes.channel.close()
        from repro.runner import ChannelClosed

        with pytest.raises(ChannelClosed):
            pipes.channel.send({"op": "shutdown"})


class TestWorkerGroupLifecycle:
    def test_spawn_heartbeat_and_clean_shutdown(self):
        import time

        executor = SubprocessExecutor("exec-t", 0)
        executor.start()
        spawned_at = executor._last_seen
        try:
            assert executor.alive()
            # the group announces itself (ready/heartbeat) over the pipe,
            # which advances the liveness clock past the spawn instant
            deadline = time.monotonic() + 10.0
            while (
                executor._last_seen == spawned_at
                and time.monotonic() < deadline
            ):
                executor.pump()
                time.sleep(0.02)
            assert executor._last_seen > spawned_at
            assert executor.alive()
        finally:
            executor.shutdown()
        assert not executor.alive()

    def test_killed_group_refuses_new_attempts(self):
        executor = SubprocessExecutor("exec-t", 0)
        executor.start()
        try:
            executor.kill()
            assert not executor.alive()
            with pytest.raises(ExecutorLost):
                executor.start_attempt("tables", {}, None, 0.0)
        finally:
            executor.shutdown()


class TestSubprocessTopology:
    """Clean runs: subprocess fleets match the local pool byte for byte."""

    def test_results_byte_identical_across_topologies(self, tmp_path):
        local = _run(tmp_path, "local", jobs=1)
        one = _run(tmp_path, "exec1", jobs=4, executors=1)
        two = _run(tmp_path, "exec2", jobs=4, executors=2)
        assert (local.exit_code, one.exit_code, two.exit_code) == (0, 0, 0)
        assert (
            _bytes(tmp_path, "local")
            == _bytes(tmp_path, "exec1")
            == _bytes(tmp_path, "exec2")
        )
        assert (
            _coverage_sans_timing(tmp_path, "local")
            == _coverage_sans_timing(tmp_path, "exec1")
            == _coverage_sans_timing(tmp_path, "exec2")
        )

    def test_subprocess_resume_byte_identical(self, tmp_path):
        _run(tmp_path, "serial", jobs=1)
        _run(tmp_path, "fleet", jobs=4, executors=2)
        out = tmp_path / "fleet"
        for name in FILES:
            (out / name).unlink()
        resumed = _run(tmp_path, "fleet", jobs=4, executors=2, resume=True)
        assert resumed.exit_code == 0
        assert len(resumed.resumed) == 4
        assert _bytes(tmp_path, "fleet") == _bytes(tmp_path, "serial")

    def test_executors_below_one_rejected(self, tmp_path):
        with pytest.raises(CampaignConfigError, match="executors"):
            _run(tmp_path, "out", jobs=2, executors=0)

    def test_negative_executor_restarts_rejected(self, tmp_path):
        with pytest.raises(CampaignConfigError, match="restarts"):
            _run(tmp_path, "out", jobs=2, executors=1, executor_restarts=-1)


class TestExecutorChaos:
    """--chaos SIGKILLs a whole executor mid-shard; bytes still converge."""

    def _chaos(self, tmp_path, subdir, **kwargs):
        # The watchdog clock starts at dispatch, which for a subprocess
        # fleet includes worker-group startup; a 1 s budget (fine for
        # the in-process pool) produces spurious, timing-dependent
        # timeout-retries on a loaded machine, so give the hang-reaper
        # more headroom here.
        kwargs.setdefault("retry", CHAOS_RETRY)
        return _run(
            tmp_path, subdir, chaos_seed=42, timeout=3.0, jobs=4, **kwargs
        )

    def test_executor_kill_converges_to_clean_bytes(self, tmp_path):
        clean = _run(tmp_path, "clean", jobs=1)
        assert clean.exit_code == 0
        events = []
        two = self._chaos(tmp_path, "exec2", executors=2, on_event=events.append)
        one = self._chaos(tmp_path, "exec1", executors=1)
        # every injected fault — including the executor SIGKILL — was
        # absorbed: full coverage, and the result files are
        # indistinguishable from a clean serial run
        assert (two.exit_code, one.exit_code) == (0, 0)
        assert not two.failed and not one.failed
        assert any("chaos: SIGKILLing executor" in e for e in events)
        assert two.reclaimed_leases >= 1
        assert one.reclaimed_leases >= 1
        assert (
            _bytes(tmp_path, "clean")
            == _bytes(tmp_path, "exec2")
            == _bytes(tmp_path, "exec1")
        )
        # coverage (timing aside) is identical across executor *counts*
        # — executor faults are invisible in the coverage bytes
        assert _coverage_sans_timing(
            tmp_path, "exec2"
        ) == _coverage_sans_timing(tmp_path, "exec1")

    def test_killing_one_of_two_executors_loses_nothing(self, tmp_path):
        clean = _run(tmp_path, "clean", jobs=1)
        assert clean.exit_code == 0
        # no restart budget: the surviving executor must absorb the work
        report = self._chaos(
            tmp_path, "chaos", executors=2, executor_restarts=0
        )
        assert report.exit_code == 0
        assert not report.failed
        assert report.reclaimed_leases >= 1
        assert _bytes(tmp_path, "clean") == _bytes(tmp_path, "chaos")

    def test_all_executors_lost_degrades_then_resume_completes(self, tmp_path):
        clean = _run(tmp_path, "clean", jobs=1)
        assert clean.exit_code == 0
        report = self._chaos(
            tmp_path, "chaos", executors=1, executor_restarts=0
        )
        # the only executor is gone and may not restart: partial
        # coverage, explicit orphan accounting, degraded exit code
        assert report.exit_code == 3
        assert report.failed
        for outcome in report.failed:
            assert any("orphaned" in error for error in outcome.errors)
        # a later resume (any topology) still reaches the clean bytes
        resumed = _run(tmp_path, "chaos", resume=True, jobs=2)
        assert resumed.exit_code == 0
        assert not resumed.failed
        assert resumed.stale_leases >= 1
        assert _bytes(tmp_path, "clean") == _bytes(tmp_path, "chaos")
