"""Property-based tests for the discrete-event simulator.

Random small systems and fault patterns, checking the structural
invariants any correct uniprocessor simulation must satisfy.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.faults import (
    AdaptationProfile,
    FaultToleranceConfig,
    ReexecutionProfile,
)
from repro.model.task import Task, TaskSet
from repro.sim.engine import Simulator
from repro.sim.fault_injection import BernoulliFaultInjector
from repro.sim.policies import EDFPolicy
from repro.sim.trace import TraceRecorder

HI = CriticalityRole.HI
LO = CriticalityRole.LO


@st.composite
def small_systems(draw):
    """2-4 tasks with integer-ish parameters keeping runs short."""
    n_tasks = draw(st.integers(2, 4))
    tasks = []
    for i in range(n_tasks):
        period = float(draw(st.integers(20, 200)))
        wcet = float(draw(st.integers(1, max(2, int(period // 4)))))
        role = HI if i == 0 or draw(st.booleans()) else LO
        tasks.append(
            Task(
                f"t{i}",
                period,
                period,
                wcet,
                role,
                draw(st.sampled_from([0.0, 0.05, 0.2])),
            )
        )
    if all(t.criticality is HI for t in tasks):
        last = tasks[-1]
        tasks[-1] = Task(last.name, last.period, last.deadline, last.wcet,
                         LO, last.failure_probability)
    return TaskSet(tasks, DualCriticalitySpec.from_names("B", "D"))


@st.composite
def configs(draw, taskset):
    n_hi = draw(st.integers(1, 3))
    n_lo = draw(st.integers(1, 2))
    use_adaptation = draw(st.booleans())
    mechanism_degrade = draw(st.booleans())
    adaptation = None
    df = None
    if use_adaptation:
        adaptation = AdaptationProfile.uniform(
            taskset, draw(st.integers(1, n_hi))
        )
        if mechanism_degrade:
            df = float(draw(st.sampled_from([2.0, 6.0])))
    return FaultToleranceConfig(
        reexecution=ReexecutionProfile.uniform(taskset, n_hi, n_lo),
        adaptation=adaptation,
        degradation_factor=df,
    )


@st.composite
def scenarios(draw):
    taskset = draw(small_systems())
    config = draw(configs(taskset))
    seed = draw(st.integers(0, 100))
    return taskset, config, seed


class TestSimulatorInvariants:
    @given(scenarios())
    @settings(max_examples=40, deadline=None)
    def test_outcome_conservation(self, scenario):
        """Every released job ends in exactly one outcome bucket."""
        taskset, config, seed = scenario
        metrics = Simulator(
            taskset, EDFPolicy(), config, BernoulliFaultInjector(seed)
        ).run(5_000.0)
        for counters in metrics.per_task.values():
            assert (
                counters.success
                + counters.fault_exhausted
                + counters.deadline_miss
                + counters.killed
                + counters.unfinished
                == counters.released
            )

    @given(scenarios())
    @settings(max_examples=40, deadline=None)
    def test_trace_segments_never_overlap(self, scenario):
        """A uniprocessor executes at most one job at any instant."""
        taskset, config, seed = scenario
        trace = TraceRecorder()
        Simulator(
            taskset, EDFPolicy(), config, BernoulliFaultInjector(seed),
            trace=trace,
        ).run(5_000.0)
        ordered = sorted(trace.segments, key=lambda s: s.start)
        for earlier, later in zip(ordered, ordered[1:]):
            assert earlier.end <= later.start + 1e-9

    @given(scenarios())
    @settings(max_examples=40, deadline=None)
    def test_busy_time_consistent_with_trace(self, scenario):
        taskset, config, seed = scenario
        trace = TraceRecorder()
        metrics = Simulator(
            taskset, EDFPolicy(), config, BernoulliFaultInjector(seed),
            trace=trace,
        ).run(5_000.0)
        assert trace.busy_time() <= 5_000.0 + 1e-6
        assert abs(trace.busy_time() - metrics.busy_time) < 1e-6

    @given(scenarios())
    @settings(max_examples=40, deadline=None)
    def test_kills_only_under_kill_mechanism(self, scenario):
        taskset, config, seed = scenario
        metrics = Simulator(
            taskset, EDFPolicy(), config, BernoulliFaultInjector(seed)
        ).run(5_000.0)
        if config.mechanism != "kill":
            assert metrics.kills() == 0
        if config.mechanism == "none":
            assert not metrics.hi_mode_entered
        if metrics.kills() > 0:
            assert metrics.hi_mode_entered

    @given(scenarios())
    @settings(max_examples=40, deadline=None)
    def test_executions_bounded_by_profiles(self, scenario):
        """A task never executes more than released * n_i times."""
        taskset, config, seed = scenario
        metrics = Simulator(
            taskset, EDFPolicy(), config, BernoulliFaultInjector(seed)
        ).run(5_000.0)
        for task in taskset:
            counters = metrics.counters(task.name)
            assert counters.executions <= (
                counters.released * config.reexecution[task]
            )

    @given(scenarios())
    @settings(max_examples=40, deadline=None)
    def test_fault_free_run_sees_no_faults(self, scenario):
        taskset, config, _ = scenario
        metrics = Simulator(taskset, EDFPolicy(), config).run(5_000.0)
        for counters in metrics.per_task.values():
            assert counters.faults_injected == 0
            assert counters.fault_exhausted == 0
        assert not metrics.hi_mode_entered

    @given(scenarios())
    @settings(max_examples=25, deadline=None)
    def test_determinism(self, scenario):
        taskset, config, seed = scenario

        def run():
            return Simulator(
                taskset, EDFPolicy(), config, BernoulliFaultInjector(seed)
            ).run(5_000.0)

        assert run().outcome_histogram() == run().outcome_histogram()
