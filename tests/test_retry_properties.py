"""Property-based tests for the retry/backoff policy.

The delay schedule is load-bearing for the determinism contract: every
value the supervisor sleeps on is ``RetryPolicy.delay(attempt, rng)``
with ``rng = backoff_rng(spec)``, so the schedule for a shard must be a
pure function of the shard's identity and the policy — and must never
exceed ``max_delay`` or go negative, whatever the jitter draws.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner.retry import RetryPolicy
from repro.runner.shards import ShardSpec, backoff_rng


def _spec(seed: int, index: int) -> ShardSpec:
    return ShardSpec(id=f"s{index}", index=index, seed=seed, params={})


@st.composite
def policies(draw):
    base = draw(st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False))
    return RetryPolicy(
        max_retries=draw(st.integers(0, 6)),
        base_delay=base,
        factor=draw(st.floats(1.0, 8.0, allow_nan=False, allow_infinity=False)),
        max_delay=base
        + draw(st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False)),
        jitter=draw(st.floats(0.0, 0.99, allow_nan=False, allow_infinity=False)),
    )


class TestDelayProperties:
    @settings(max_examples=200)
    @given(
        policy=policies(),
        attempt=st.integers(1, 12),
        seed=st.integers(0, 2**31),
        index=st.integers(0, 1000),
    )
    def test_jittered_delay_bounded(self, policy, attempt, seed, index):
        """0 <= delay <= max_delay for every attempt and jitter draw."""
        delay = policy.delay(attempt, backoff_rng(_spec(seed, index)))
        assert 0.0 <= delay <= policy.max_delay

    @settings(max_examples=200)
    @given(
        policy=policies(),
        attempt=st.integers(1, 12),
        seed=st.integers(0, 2**31),
        index=st.integers(0, 1000),
    )
    def test_delay_is_pure_function_of_shard_identity(
        self, policy, attempt, seed, index
    ):
        """Fresh backoff_rng(spec) streams replay the exact schedule.

        This is the property the supervisor relies on for byte-identical
        coverage across ``--jobs``/``--executors``: nothing that happens
        to *other* shards (or executors) can perturb this shard's
        delays, because the stream is re-derivable from the spec alone.
        """
        spec = _spec(seed, index)
        first = [
            policy.delay(a, backoff_rng(spec)) for a in range(1, attempt + 1)
        ]
        second = [
            policy.delay(a, backoff_rng(spec)) for a in range(1, attempt + 1)
        ]
        assert first == second

    @settings(max_examples=100)
    @given(policy=policies(), attempt=st.integers(1, 12))
    def test_unjittered_delay_monotone_and_capped(self, policy, attempt):
        """Without jitter the schedule is nondecreasing up to the cap."""
        current = policy.delay(attempt)
        following = policy.delay(attempt + 1)
        assert 0.0 <= current <= policy.max_delay
        assert following >= current or following == policy.max_delay

    def test_attempt_below_one_rejected(self):
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().delay(0)
