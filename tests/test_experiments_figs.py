"""Tests for the figure reproduction drivers (Figs. 1, 2, 3)."""

import math

import pytest

from repro.experiments.fig1 import render_fig1, run_fig1
from repro.experiments.fig2 import render_fig2, run_fig2
from repro.experiments.fig3 import (
    FIG3_PANELS,
    render_fig3_panel,
    run_fig3,
    run_fig3_panel,
)


@pytest.fixture(scope="module")
def fig1_result():
    return run_fig1()


@pytest.fixture(scope="module")
def fig2_result():
    return run_fig2()


class TestFig1:
    def test_four_points(self, fig1_result):
        assert fig1_result.column("n_prime") == [1, 2, 3, 4]

    def test_u_mc_monotone_increasing(self, fig1_result):
        u_mc = fig1_result.column("u_mc")
        assert u_mc == sorted(u_mc)

    def test_schedulable_region_ends_at_two(self, fig1_result):
        """Paper: no longer schedulable when n' > 2."""
        sched = dict(zip(fig1_result.column("n_prime"),
                         fig1_result.column("schedulable")))
        assert sched[1] and sched[2]
        assert not sched[3] and not sched[4]

    def test_pfh_monotone_decreasing(self, fig1_result):
        pfh = fig1_result.column("pfh_lo")
        assert pfh == sorted(pfh, reverse=True)

    def test_pfh_at_two_is_order_1e_minus_1(self, fig1_result):
        """Paper: order of magnitude 1e-1 at n' = 2 under killing."""
        pfh = dict(zip(fig1_result.column("n_prime"),
                       fig1_result.column("pfh_lo")))
        assert -1.0 <= math.log10(pfh[2]) <= 0.0

    def test_safe_region_starts_at_three(self, fig1_result):
        safe = dict(zip(fig1_result.column("n_prime"),
                        fig1_result.column("safe")))
        assert not safe[1] and not safe[2]
        assert safe[3] and safe[4]

    def test_fts_failure_note(self, fig1_result):
        notes = " ".join(fig1_result.notes)
        assert "FAILURE" in notes

    def test_render_produces_charts(self, fig1_result):
        text = render_fig1(fig1_result)
        assert "U_MC" in text
        assert "pfh(LO)" in text
        assert "log10" in text


class TestFig2:
    def test_schedulable_region_matches_fig1(self, fig2_result):
        sched = dict(zip(fig2_result.column("n_prime"),
                         fig2_result.column("schedulable")))
        assert sched[1] and sched[2]
        assert not sched[3]

    def test_pfh_at_two_is_order_1e_minus_11(self, fig2_result):
        """Paper: order of magnitude 1e-11 at n' = 2 under degradation."""
        pfh = dict(zip(fig2_result.column("n_prime"),
                       fig2_result.column("pfh_lo")))
        assert -12.0 <= math.log10(pfh[2]) <= -10.0

    def test_degradation_always_safe_here(self, fig2_result):
        assert all(fig2_result.column("safe"))

    def test_fts_success_note(self, fig2_result):
        notes = " ".join(fig2_result.notes)
        assert "SUCCESS with n'_HI=2" in notes

    def test_killing_much_less_safe_than_degradation(
        self, fig1_result, fig2_result
    ):
        """The headline comparison of Section 5.1, ~10 orders at n'=2."""
        kill = dict(zip(fig1_result.column("n_prime"),
                        fig1_result.column("pfh_lo")))
        degrade = dict(zip(fig2_result.column("n_prime"),
                           fig2_result.column("pfh_lo")))
        assert math.log10(kill[2]) - math.log10(degrade[2]) > 8.0

    def test_render(self, fig2_result):
        assert "degradation" in render_fig2(fig2_result)


class TestFig3:
    UTILIZATIONS = (0.5, 0.8, 1.0)

    def test_panel_a_adaptation_widens_region(self):
        result = run_fig3_panel(
            FIG3_PANELS["a"], 1e-5, self.UTILIZATIONS, sets_per_point=40
        )
        without = result.column("acceptance_without")
        with_adapt = result.column("acceptance_with")
        assert all(w >= wo for w, wo in zip(with_adapt, without))
        assert sum(with_adapt) > sum(without)

    def test_panel_b_killing_rarely_helps(self):
        result = run_fig3_panel(
            FIG3_PANELS["b"], 1e-5, self.UTILIZATIONS, sets_per_point=40
        )
        gaps = [
            w - wo
            for w, wo in zip(
                result.column("acceptance_with"),
                result.column("acceptance_without"),
            )
        ]
        assert all(g <= 0.15 for g in gaps)

    def test_panel_d_degradation_helps_with_lo_c(self):
        util = (0.4, 0.5)
        kill = run_fig3_panel(FIG3_PANELS["b"], 1e-5, util, sets_per_point=40)
        degrade = run_fig3_panel(FIG3_PANELS["d"], 1e-5, util, sets_per_point=40)
        kill_gain = sum(kill.column("acceptance_with")) - sum(
            kill.column("acceptance_without")
        )
        degrade_gain = sum(degrade.column("acceptance_with")) - sum(
            degrade.column("acceptance_without")
        )
        assert degrade_gain > kill_gain

    def test_smaller_f_improves_acceptance(self):
        util = (0.5, 0.7)
        coarse = run_fig3_panel(FIG3_PANELS["a"], 1e-3, util, sets_per_point=40)
        fine = run_fig3_panel(FIG3_PANELS["a"], 1e-5, util, sets_per_point=40)
        assert sum(fine.column("acceptance_with")) >= sum(
            coarse.column("acceptance_with")
        )

    def test_acceptance_decreases_with_utilization(self):
        result = run_fig3_panel(
            FIG3_PANELS["a"], 1e-5, (0.4, 0.7, 1.0, 1.2), sets_per_point=40
        )
        series = result.column("acceptance_with")
        assert series[0] >= series[-1]

    def test_run_fig3_collects_all_requested(self):
        results = run_fig3(
            panels=("a",),
            failure_probabilities=(1e-5,),
            utilizations=(0.5,),
            sets_per_point=5,
        )
        assert set(results) == {"a-f1e-05"}

    def test_determinism(self):
        a = run_fig3_panel(FIG3_PANELS["a"], 1e-5, (0.7,), sets_per_point=25,
                           seed=4)
        b = run_fig3_panel(FIG3_PANELS["a"], 1e-5, (0.7,), sets_per_point=25,
                           seed=4)
        assert a.rows == b.rows

    def test_render(self):
        result = run_fig3_panel(FIG3_PANELS["a"], 1e-5, (0.5, 0.9),
                                sets_per_point=10)
        text = render_fig3_panel(result)
        assert "acceptance ratio" in text
        assert "legend" in text
