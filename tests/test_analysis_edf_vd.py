"""Tests for the EDF-VD test (eq. 10) and its degradation variant (eq. 12)."""

import math

import pytest

from repro.analysis.edf_vd import (
    analyse,
    edf_vd_schedulable,
    edf_vd_utilization,
    edf_vd_x,
)
from repro.analysis.edf_vd_degradation import (
    analyse as analyse_degradation,
    edf_vd_degradation_schedulable,
    edf_vd_degradation_utilization,
)
from repro.core.conversion import convert_uniform
from repro.model.criticality import CriticalityRole
from repro.model.mc_task import MCTask, MCTaskSet


def _mc(u_hi_lo, u_hi_hi, u_lo_lo, period=100.0) -> MCTaskSet:
    """A 2-task set with exactly the requested utilizations."""
    return MCTaskSet(
        [
            MCTask("hi", period, period, u_hi_lo * period, u_hi_hi * period,
                   CriticalityRole.HI),
            MCTask("lo", period, period, u_lo_lo * period, u_lo_lo * period,
                   CriticalityRole.LO),
        ]
    )


class TestEDFVD:
    def test_example41_converted_set(self, example31):
        """Paper: Gamma(3, 1, 2) of Example 3.1 passes eq. (10)."""
        mc = convert_uniform(example31, 3, 1, 2)
        result = analyse(mc)
        assert result.schedulable
        assert result.u_mc == pytest.approx(0.99897, abs=1e-4)

    def test_example41_without_killing_help_fails(self, example31):
        """n' = 3 (kill only at the last re-execution) is unschedulable."""
        mc = convert_uniform(example31, 3, 1, 3)
        assert not edf_vd_schedulable(mc)

    def test_eq10_both_terms(self):
        mc = _mc(u_hi_lo=0.3, u_hi_hi=0.5, u_lo_lo=0.4)
        result = analyse(mc)
        assert result.lo_mode_load == pytest.approx(0.7)
        x = 0.3 / (1 - 0.4)
        assert result.x == pytest.approx(x)
        assert result.hi_mode_load == pytest.approx(0.5 + x * 0.4)
        assert result.u_mc == pytest.approx(max(0.7, 0.5 + x * 0.4))

    def test_lo_mode_dominates(self):
        mc = _mc(u_hi_lo=0.5, u_hi_hi=0.5, u_lo_lo=0.45)
        result = analyse(mc)
        assert result.u_mc == pytest.approx(result.lo_mode_load)

    def test_unbounded_when_lo_utilization_full(self):
        mc = _mc(u_hi_lo=0.1, u_hi_hi=0.2, u_lo_lo=1.0)
        result = analyse(mc)
        assert result.x is None
        assert math.isinf(result.u_mc)
        assert not result.schedulable

    def test_requires_implicit_deadlines(self):
        mc = MCTaskSet(
            [MCTask("hi", 100, 50, 10, 20, CriticalityRole.HI)]
        )
        with pytest.raises(ValueError, match="implicit"):
            analyse(mc)

    def test_x_none_when_unschedulable(self):
        mc = _mc(u_hi_lo=0.6, u_hi_hi=0.9, u_lo_lo=0.5)
        assert edf_vd_x(mc) is None

    def test_x_clamped_to_one(self):
        mc = _mc(u_hi_lo=0.5, u_hi_hi=0.5, u_lo_lo=0.45)
        x = edf_vd_x(mc)
        assert x is not None and x <= 1.0

    def test_x_value_for_example41(self, example31):
        mc = convert_uniform(example31, 3, 1, 2)
        assert edf_vd_x(mc) == pytest.approx(0.48667 / (1 - 0.35595), abs=1e-4)

    def test_utilization_metric_alias(self, example31):
        mc = convert_uniform(example31, 3, 1, 2)
        assert edf_vd_utilization(mc) == pytest.approx(analyse(mc).u_mc)

    def test_monotone_in_killing_profile(self, example31):
        """Smaller n' (earlier kills) never raises U_MC."""
        values = [
            edf_vd_utilization(convert_uniform(example31, 3, 1, n))
            for n in (1, 2, 3)
        ]
        assert values == sorted(values)


class TestEDFVDDegradation:
    def test_eq12_hand_computed(self):
        mc = _mc(u_hi_lo=0.2, u_hi_hi=0.4, u_lo_lo=0.3)
        df = 6.0
        result = analyse_degradation(mc, df)
        lam = 0.2 / 0.7
        assert result.lam == pytest.approx(lam)
        assert result.hi_mode_load == pytest.approx(0.4 / (1 - lam) + 0.3 / 5.0)
        assert result.lo_mode_load == pytest.approx(0.5)

    def test_infinite_when_lambda_reaches_one(self):
        mc = _mc(u_hi_lo=0.7, u_hi_hi=0.7, u_lo_lo=0.3)
        result = analyse_degradation(mc, 6.0)
        assert math.isinf(result.hi_mode_load)
        assert not result.schedulable

    def test_infinite_when_lo_utilization_full(self):
        mc = _mc(u_hi_lo=0.1, u_hi_hi=0.1, u_lo_lo=1.0)
        result = analyse_degradation(mc, 6.0)
        assert result.lam is None
        assert not result.schedulable

    def test_larger_df_helps(self):
        mc = _mc(u_hi_lo=0.2, u_hi_hi=0.4, u_lo_lo=0.3)
        u2 = edf_vd_degradation_utilization(mc, 2.0)
        u6 = edf_vd_degradation_utilization(mc, 6.0)
        u100 = edf_vd_degradation_utilization(mc, 100.0)
        assert u2 >= u6 >= u100

    def test_rejects_df_at_or_below_one(self):
        mc = _mc(0.2, 0.4, 0.3)
        with pytest.raises(ValueError, match="factor"):
            analyse_degradation(mc, 1.0)

    def test_requires_implicit_deadlines(self):
        mc = MCTaskSet([MCTask("hi", 100, 50, 10, 20, CriticalityRole.HI)])
        with pytest.raises(ValueError, match="implicit"):
            analyse_degradation(mc, 6.0)

    def test_degradation_schedulable_on_fms_conversion(self, fms):
        """The pinned FMS: degradation passes at n' = 2, fails at n' = 3."""
        ok = convert_uniform(fms, 3, 2, 2)
        assert edf_vd_degradation_schedulable(ok, 6.0)
        bad = convert_uniform(fms, 3, 2, 3)
        assert not edf_vd_degradation_schedulable(bad, 6.0)

    def test_killing_schedulable_on_fms_conversion(self, fms):
        """Same schedulable region for the killing backend on the FMS."""
        assert edf_vd_schedulable(convert_uniform(fms, 3, 2, 2))
        assert not edf_vd_schedulable(convert_uniform(fms, 3, 2, 3))
