"""Tests for the bursty (correlated) fault injector and the validity study.

The paper's fault model assumes independent per-execution faults; the
bursty injector quantifies what breaks when that assumption does.
"""

import pytest

from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.faults import FaultToleranceConfig, ReexecutionProfile
from repro.model.task import Task, TaskSet
from repro.sim.engine import Simulator
from repro.sim.fault_injection import BernoulliFaultInjector, BurstyFaultInjector
from repro.sim.policies import EDFPolicy

HI = CriticalityRole.HI
LO = CriticalityRole.LO


def _probe_task():
    return Task("probe", 100, 100, 10, HI, 0.05)


class TestBurstyInjectorConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="average"):
            BurstyFaultInjector(1.0)
        with pytest.raises(ValueError, match="burst"):
            BurstyFaultInjector(0.5, burst_probability=0.3)
        with pytest.raises(ValueError, match="switchiness"):
            BurstyFaultInjector(0.05, switchiness=0.0)

    def test_zero_average_never_faults(self):
        injector = BurstyFaultInjector(0.0, seed=1)
        task = _probe_task()
        assert not any(
            injector.execution_faulty(task, float(t)) for t in range(2000)
        )

    def test_average_rate_matches_target(self):
        """Long-run fault rate converges to the configured average."""
        target = 0.05
        injector = BurstyFaultInjector(target, burst_probability=0.8,
                                       switchiness=0.1, seed=3)
        task = _probe_task()
        draws = 60_000
        faults = sum(
            injector.execution_faulty(task, float(t)) for t in range(draws)
        )
        assert faults / draws == pytest.approx(target, rel=0.15)

    def test_faults_are_bursty(self):
        """Consecutive-fault runs are far longer than under Bernoulli."""
        injector = BurstyFaultInjector(0.05, burst_probability=0.9,
                                       switchiness=0.02, seed=5)
        task = _probe_task()
        outcomes = [
            injector.execution_faulty(task, float(t)) for t in range(30_000)
        ]
        # Count the longest run of consecutive faults.
        longest = current = 0
        for outcome in outcomes:
            current = current + 1 if outcome else 0
            longest = max(longest, current)
        assert longest >= 5  # Bernoulli at 0.05 virtually never reaches 5


class TestIndependenceAssumptionStudy:
    """Correlated faults break the f^n round-failure bound; independent
    faults respect it — the library's honest threat-to-validity check."""

    def _round_failures(self, injector, n, horizon=400_000.0):
        task = Task("probe", 100, 100, 10, HI, 0.05)
        ts = TaskSet(
            [task, Task("idle", 100_000, 100_000, 1, LO, 0.0)],
            DualCriticalitySpec.from_names("B", "D"),
        )
        config = FaultToleranceConfig(
            reexecution=ReexecutionProfile({"probe": n, "idle": 1})
        )
        metrics = Simulator(ts, EDFPolicy(), config, injector).run(horizon)
        counters = metrics.counters("probe")
        return counters.fault_exhausted, counters.released

    def test_independent_faults_respect_f_power_n(self):
        failures, released = self._round_failures(
            BernoulliFaultInjector(seed=11), n=2
        )
        expected = released * 0.05**2  # f^2 per round
        assert failures <= expected + 4.0 * max(expected, 1.0) ** 0.5

    def test_bursty_faults_exceed_f_power_n(self):
        """Within-round correlation drives round failures far above f^n."""
        failures, released = self._round_failures(
            BurstyFaultInjector(0.05, burst_probability=0.9,
                                switchiness=0.02, seed=11),
            n=2,
        )
        expected_independent = released * 0.05**2
        # The bursty process produces many times the independent rate.
        assert failures > 3.0 * expected_independent

    def test_reexecution_still_helps_under_bursts(self):
        """More attempts still reduce failures, just less effectively."""
        f1, r1 = self._round_failures(
            BurstyFaultInjector(0.05, seed=7), n=1
        )
        f3, r3 = self._round_failures(
            BurstyFaultInjector(0.05, seed=7), n=3
        )
        assert f3 / max(r3, 1) < f1 / max(r1, 1)
