"""Unit tests for the sporadic task model (Section 2.1)."""

import math

import pytest

from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.task import HOUR_MS, Task, TaskSet


def _task(**overrides) -> Task:
    params = dict(
        name="t",
        period=100.0,
        deadline=100.0,
        wcet=10.0,
        criticality=CriticalityRole.HI,
        failure_probability=1e-5,
    )
    params.update(overrides)
    return Task(**params)


class TestTaskValidation:
    def test_hour_constant(self):
        assert HOUR_MS == 3_600_000.0

    @pytest.mark.parametrize("period", [0.0, -1.0])
    def test_rejects_nonpositive_period(self, period):
        with pytest.raises(ValueError, match="period"):
            _task(period=period)

    @pytest.mark.parametrize("deadline", [0.0, -5.0])
    def test_rejects_nonpositive_deadline(self, deadline):
        with pytest.raises(ValueError, match="deadline"):
            _task(deadline=deadline)

    def test_rejects_negative_wcet(self):
        with pytest.raises(ValueError, match="WCET"):
            _task(wcet=-1.0)

    def test_zero_wcet_allowed(self):
        assert _task(wcet=0.0).utilization == 0.0

    @pytest.mark.parametrize("f", [-0.1, 1.0, 1.5])
    def test_rejects_failure_probability_outside_unit(self, f):
        with pytest.raises(ValueError, match="failure probability"):
            _task(failure_probability=f)

    def test_rejects_wcet_exceeding_both_bounds(self):
        with pytest.raises(ValueError, match="exceeds both"):
            _task(wcet=150.0)

    def test_wcet_above_deadline_but_below_period_allowed(self):
        # Arbitrary-deadline model: D < C <= T is a legal (if tight) task.
        task = _task(deadline=5.0, wcet=10.0, period=100.0)
        assert task.wcet == 10.0


class TestTaskProperties:
    def test_utilization(self):
        assert _task(wcet=25.0, period=100.0).utilization == 0.25

    def test_density_uses_min_of_deadline_and_period(self):
        task = _task(wcet=10.0, deadline=50.0, period=100.0)
        assert task.density == pytest.approx(0.2)

    def test_implicit_deadline_detection(self):
        assert _task().is_implicit_deadline
        assert not _task(deadline=80.0).is_implicit_deadline

    def test_constrained_deadline_detection(self):
        assert _task(deadline=80.0).is_constrained_deadline
        assert not _task(deadline=120.0).is_constrained_deadline

    def test_with_period_preserves_deadline(self):
        task = _task()
        stretched = task.with_period(600.0)
        assert stretched.period == 600.0
        assert stretched.deadline == task.deadline
        assert stretched.wcet == task.wcet

    def test_scaled_wcet(self):
        assert _task(wcet=4.0).scaled_wcet(3) == 12.0

    def test_scaled_wcet_rejects_negative(self):
        with pytest.raises(ValueError):
            _task().scaled_wcet(-1)

    def test_tasks_are_immutable(self):
        with pytest.raises(AttributeError):
            _task().wcet = 5.0  # type: ignore[misc]


class TestTaskSet:
    def test_iteration_preserves_order(self, example31):
        names = [t.name for t in example31]
        assert names == ["tau1", "tau2", "tau3", "tau4", "tau5"]

    def test_len_and_indexing(self, example31):
        assert len(example31) == 5
        assert example31[0].name == "tau1"

    def test_lookup_by_name(self, example31):
        assert example31.task("tau3").wcet == 7.0
        with pytest.raises(KeyError):
            example31.task("missing")

    def test_rejects_duplicate_names(self):
        task = _task()
        with pytest.raises(ValueError, match="duplicate"):
            TaskSet([task, task])

    def test_criticality_partition(self, example31):
        assert [t.name for t in example31.hi_tasks] == ["tau1", "tau2"]
        assert [t.name for t in example31.lo_tasks] == ["tau3", "tau4", "tau5"]

    def test_utilization_total_matches_example31(self, example31):
        # U = 5/60 + 4/25 + 7/40 + 6/90 + 8/70
        expected = 5 / 60 + 4 / 25 + 7 / 40 + 6 / 90 + 8 / 70
        assert example31.utilization() == pytest.approx(expected)

    def test_utilization_by_role(self, example31):
        assert example31.utilization(CriticalityRole.HI) == pytest.approx(
            5 / 60 + 4 / 25
        )
        assert example31.utilization(CriticalityRole.LO) == pytest.approx(
            7 / 40 + 6 / 90 + 8 / 70
        )

    def test_example31_inflated_utilization_matches_paper(self, example31):
        # Paper: U = 3 * U_HI + U_LO = 1.08595
        inflated = 3 * example31.utilization(
            CriticalityRole.HI
        ) + example31.utilization(CriticalityRole.LO)
        assert inflated == pytest.approx(1.08595, abs=1e-5)

    def test_scaled_utilization(self, example31):
        scaled = example31.scaled_utilization(CriticalityRole.HI, lambda t: 3)
        assert scaled == pytest.approx(3 * (5 / 60 + 4 / 25))

    def test_implicit_deadline_flags(self, example31):
        assert example31.is_implicit_deadline
        assert example31.is_constrained_deadline

    def test_hyperperiod(self, two_task_set):
        assert two_task_set.hyperperiod() == 100.0

    def test_hyperperiod_rejects_non_integer_periods(self):
        tasks = [
            _task(name="a", period=10.5),
            _task(name="b", period=7.0, criticality=CriticalityRole.LO),
        ]
        ts = TaskSet(tasks)
        with pytest.raises(ValueError, match="hyperperiod"):
            ts.hyperperiod()

    def test_with_tasks_keeps_spec(self, example31):
        subset = example31.with_tasks(example31.tasks[:2], name="sub")
        assert subset.spec == example31.spec
        assert len(subset) == 2
        assert subset.name == "sub"

    def test_with_spec_swaps_binding(self, example31):
        new_spec = DualCriticalitySpec.from_names("A", "E")
        swapped = example31.with_spec(new_spec)
        assert swapped.spec == new_spec
        assert [t.name for t in swapped] == [t.name for t in example31]

    def test_degraded_stretches_only_lo_periods(self, example31):
        degraded = example31.degraded(6.0)
        for original, stretched in zip(example31, degraded):
            if original.criticality is CriticalityRole.LO:
                assert stretched.period == pytest.approx(6.0 * original.period)
            else:
                assert stretched.period == original.period
            assert stretched.deadline == original.deadline

    def test_degraded_rejects_factor_below_one(self, example31):
        with pytest.raises(ValueError, match="factor"):
            example31.degraded(0.5)

    def test_degraded_identity_factor(self, example31):
        same = example31.degraded(1.0)
        assert same.utilization() == pytest.approx(example31.utilization())

    def test_describe_mentions_every_task(self, example31):
        text = example31.describe()
        for task in example31:
            assert task.name in text
        assert "U = " in text

    def test_empty_taskset(self):
        empty = TaskSet([])
        assert len(empty) == 0
        assert empty.utilization() == 0.0
        assert empty.is_implicit_deadline  # vacuously

    def test_degraded_utilization_shrinks(self, example31):
        degraded = example31.degraded(2.0)
        assert degraded.utilization() < example31.utilization()
        assert degraded.utilization(CriticalityRole.HI) == pytest.approx(
            example31.utilization(CriticalityRole.HI)
        )

    def test_spec_optional(self):
        ts = TaskSet([_task()])
        assert ts.spec is None
