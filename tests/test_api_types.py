"""Golden wire-shape tests for the ``repro.api`` request/response types."""

import json
import math

import pytest

from repro.api import (
    AnalyzeRequest,
    ApiError,
    DbfRequest,
    DbfResponse,
    PFHRequest,
    PFHResponse,
    ScheduleRequest,
    ScheduleResponse,
    SchedulabilityRequest,
    SchedulabilityResponse,
)
from repro.io import taskset_to_dict


@pytest.fixture()
def document(example31):
    return taskset_to_dict(example31)


class TestScheduleRequest:
    def test_round_trip(self, document):
        request = ScheduleRequest.from_dict(
            {"taskset": document, "backend": "edf-vd", "operation_hours": 5.0}
        )
        again = ScheduleRequest.from_dict(request.to_dict())
        assert again.to_dict() == request.to_dict()
        assert again.operation_hours == 5.0
        assert again.backend == "edf-vd"

    def test_defaults(self, document):
        request = ScheduleRequest.from_dict({"taskset": document})
        assert request.backend == "edf-vd"
        assert request.operation_hours == 10.0
        assert request.degradation_factor is None

    def test_degradation_factor_survives_round_trip(self, document):
        request = ScheduleRequest.from_dict(
            {"taskset": document, "backend": "edf-vd-degradation",
             "degradation_factor": 4.0}
        )
        assert ScheduleRequest.from_dict(
            request.to_dict()
        ).degradation_factor == 4.0

    def test_missing_taskset_is_structured(self):
        with pytest.raises(ApiError) as excinfo:
            ScheduleRequest.from_dict({})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "missing-taskset"

    def test_malformed_taskset_is_structured(self):
        with pytest.raises(ApiError) as excinfo:
            ScheduleRequest.from_dict({"taskset": {"tasks": 1}})
        assert excinfo.value.status == 400
        assert excinfo.value.code == "invalid-taskset"

    def test_non_object_body_is_structured(self):
        with pytest.raises(ApiError) as excinfo:
            ScheduleRequest.from_dict([1, 2])
        assert excinfo.value.code == "invalid-request"

    @pytest.mark.parametrize("hours", [0, -1, "soon"])
    def test_bad_operation_hours(self, document, hours):
        with pytest.raises(ApiError) as excinfo:
            ScheduleRequest.from_dict(
                {"taskset": document, "operation_hours": hours}
            )
        assert excinfo.value.status == 400

    def test_bool_is_not_an_integer(self, document):
        with pytest.raises(ApiError):
            ScheduleRequest.from_dict({"taskset": document, "max_n": True})


class TestScheduleResponse:
    def test_nan_maps_to_null_on_the_wire(self):
        response = ScheduleResponse(
            success=False, failure="NO_SAFE_PROFILE", backend="edf-vd",
            mechanism="kill", operation_hours=10.0, degradation_factor=None,
            n_hi=None, n_lo=None, n1_hi=None, n2_hi=None, adaptation=None,
            pfh_hi=math.nan, pfh_lo=math.nan, u_mc=math.nan,
        )
        wire = json.loads(json.dumps(response.to_dict()))
        assert wire["pfh_hi"] is None
        assert wire["u_mc"] is None
        back = ScheduleResponse.from_dict(wire)
        assert math.isnan(back.pfh_hi) and math.isnan(back.u_mc)

    def test_finite_floats_round_trip_exactly(self):
        response = ScheduleResponse(
            success=True, failure=None, backend="edf-vd", mechanism="kill",
            operation_hours=10.0, degradation_factor=None, n_hi=3, n_lo=1,
            n1_hi=1, n2_hi=2, adaptation=2, pfh_hi=2.04e-05,
            pfh_lo=1.1754330e-08, u_mc=0.9617,
        )
        wire = json.loads(json.dumps(response.to_dict(), sort_keys=True))
        assert ScheduleResponse.from_dict(wire) == response


class TestPFHRequest:
    def test_plain_ignores_adaptation(self, document):
        request = PFHRequest.from_dict(
            {"taskset": document, "n_hi": 2, "n_lo": 1, "mechanism": "plain"}
        )
        assert request.adaptation is None
        assert PFHRequest.from_dict(request.to_dict()).to_dict() == request.to_dict()

    def test_kill_requires_adaptation(self, document):
        with pytest.raises(ApiError) as excinfo:
            PFHRequest.from_dict(
                {"taskset": document, "n_hi": 2, "n_lo": 1, "mechanism": "kill"}
            )
        assert excinfo.value.status == 400

    def test_unknown_mechanism_rejected(self, document):
        with pytest.raises(ApiError) as excinfo:
            PFHRequest.from_dict(
                {"taskset": document, "n_hi": 1, "n_lo": 1,
                 "mechanism": "wish"}
            )
        assert "mechanism" in excinfo.value.message

    def test_response_round_trip(self):
        response = PFHResponse(pfh_hi=1e-9, pfh_lo=math.nan, mechanism="kill",
                               n_hi=3, n_lo=1, adaptation=2)
        wire = json.loads(json.dumps(response.to_dict()))
        assert wire["pfh_lo"] is None
        back = PFHResponse.from_dict(wire)
        assert back.pfh_hi == 1e-9 and math.isnan(back.pfh_lo)


class TestDbfRequest:
    def test_round_trip(self):
        request = DbfRequest.from_dict(
            {"workload": [{"period": 10, "wcet": 2},
                          {"period": 20, "deadline": 15, "wcet": 4}],
             "instants": [0, 10, 15.5]}
        )
        again = DbfRequest.from_dict(request.to_dict())
        assert again == request
        # The implicit deadline defaulted to the period.
        assert request.workload[0].deadline == 10

    @pytest.mark.parametrize(
        "payload",
        [
            {"instants": [1.0]},
            {"workload": [], "instants": [1.0]},
            {"workload": [{"period": 10, "wcet": 2}]},
            {"workload": [{"period": 10, "wcet": 2}], "instants": []},
            {"workload": [{"wcet": 2}], "instants": [1.0]},
            {"workload": [{"period": -1, "wcet": 2}], "instants": [1.0]},
            {"workload": [{"period": 10, "wcet": 2}], "instants": [-1.0]},
            {"workload": [{"period": 10, "wcet": 2}], "instants": ["x"]},
        ],
    )
    def test_malformed_payloads_are_structured_400s(self, payload):
        with pytest.raises(ApiError) as excinfo:
            DbfRequest.from_dict(payload)
        assert excinfo.value.status == 400

    def test_response_round_trip(self):
        response = DbfResponse(demands=(0.0, 2.0, 4.0))
        assert DbfResponse.from_dict(
            json.loads(json.dumps(response.to_dict()))
        ) == response


class TestSchedulabilityAndAnalyze:
    def test_schedulability_round_trip(self, document):
        request = SchedulabilityRequest.from_dict(
            {"taskset": document, "backend": "dbf-mc", "n_hi": 2, "n_lo": 1,
             "n_prime_hi": 1}
        )
        assert SchedulabilityRequest.from_dict(
            request.to_dict()
        ).to_dict() == request.to_dict()

    def test_schedulability_response_round_trip(self):
        response = SchedulabilityResponse(
            schedulable=True, backend="edf-vd", mechanism="kill",
            kernel_tier="numpy",
        )
        assert SchedulabilityResponse.from_dict(
            json.loads(json.dumps(response.to_dict()))
        ) == response

    def test_analyze_round_trip(self, document):
        request = AnalyzeRequest.from_dict(
            {"taskset": document, "degradation_factor": 4.0}
        )
        again = AnalyzeRequest.from_dict(request.to_dict())
        assert again.to_dict() == request.to_dict()
        assert again.degradation_factor == 4.0


class TestApiErrorShape:
    def test_error_body_shape(self):
        error = ApiError.bad_request("invalid-taskset", "boom")
        assert error.to_dict() == {
            "error": {"status": 400, "code": "invalid-taskset",
                      "message": "boom"}
        }


class TestPlanTypes:
    def test_request_round_trip(self, document):
        from repro.api import PlanRequest

        request = PlanRequest.from_dict(
            {"taskset": document, "cores": 2, "exact": False,
             "max_nodes": 123}
        )
        assert request.cores == 2
        assert request.exact is False
        assert request.max_nodes == 123
        assert PlanRequest.from_dict(
            request.to_dict()
        ).to_dict() == request.to_dict()

    def test_request_requires_cores(self, document):
        from repro.api import PlanRequest

        with pytest.raises(ApiError) as excinfo:
            PlanRequest.from_dict({"taskset": document})
        assert excinfo.value.status == 400

    @pytest.mark.parametrize("cores", [0, -1, "two", True])
    def test_bad_cores_rejected(self, document, cores):
        from repro.api import PlanRequest

        with pytest.raises(ApiError):
            PlanRequest.from_dict({"taskset": document, "cores": cores})

    def test_bad_max_nodes_rejected(self, document):
        from repro.api import PlanRequest

        with pytest.raises(ApiError):
            PlanRequest.from_dict(
                {"taskset": document, "cores": 2, "max_nodes": 0}
            )

    def test_response_round_trip_with_partition(self, example31):
        from repro.api import PlanRequest, PlanResponse
        from repro.api.service import AnalysisService

        response = AnalysisService().plan(
            PlanRequest(taskset=example31, cores=2)
        )
        assert response.success
        assert response.partition is not None
        again = PlanResponse.from_dict(
            json.loads(json.dumps(response.to_dict()))
        )
        assert again == response

    def test_infinite_objectives_map_to_null(self, example31):
        from repro.api import PlanResponse

        response = PlanResponse(
            success=False, failure="UNSCHEDULABLE", cores=2,
            backend="edf-vd", mechanism="kill", operation_hours=1.0,
            inconclusive=True, n_hi=2, n_lo=1, n1_hi=1, n2_hi=None,
            adaptation=None, partition=None, strategy=None,
            heuristic_objective=math.inf, exact_objective=math.inf,
            gap=None, exact_nodes=0, exact_complete=False,
            pfh_hi=1e-9, pfh_lo=1e-7,
        )
        wire = json.loads(json.dumps(response.to_dict()))
        assert wire["heuristic_objective"] is None
        assert wire["exact_objective"] is None
        again = PlanResponse.from_dict(wire)
        assert again.heuristic_objective == math.inf
        assert again.exact_objective == math.inf
