"""Tests for the FT-S profile searches (Algorithm 1, lines 2/4/8)."""

import pytest

from repro.core.backends import EDFVDBackend, EDFVDDegradationBackend
from repro.core.profiles import (
    maximal_adaptation_profile,
    minimal_adaptation_profile,
    minimal_reexecution_profiles,
    pfh_lo_adapted,
)
from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.task import Task, TaskSet


class TestMinimalReexecutionProfiles:
    def test_example31(self, example31):
        """Paper: n_HI = 3 (level B), n_LO = 1 (level D, no requirement)."""
        profiles = minimal_reexecution_profiles(example31)
        assert profiles is not None
        assert profiles.n_hi == 3
        assert profiles.n_lo == 1

    def test_fms(self, fms):
        """Paper: n_HI = 3, n_LO = 2 for the FMS (levels B and C)."""
        profiles = minimal_reexecution_profiles(fms)
        assert profiles is not None
        assert (profiles.n_hi, profiles.n_lo) == (3, 2)

    def test_example31_with_lo_c(self, example31_lo_c):
        profiles = minimal_reexecution_profiles(example31_lo_c)
        assert profiles is not None
        assert profiles.n_hi == 3
        assert profiles.n_lo >= 2  # level C forces LO re-execution

    def test_requires_spec(self, example31):
        unbound = TaskSet(example31.tasks, spec=None)
        with pytest.raises(ValueError, match="spec"):
            minimal_reexecution_profiles(unbound)

    def test_none_when_max_n_too_small(self, example31):
        assert minimal_reexecution_profiles(example31, max_n=2) is None

    def test_safety_actually_met(self, fms):
        from repro.model.faults import ReexecutionProfile
        from repro.safety.pfh import pfh_plain

        profiles = minimal_reexecution_profiles(fms)
        reexecution = ReexecutionProfile.uniform(fms, profiles.n_hi, profiles.n_lo)
        assert pfh_plain(fms, CriticalityRole.HI, reexecution) <= 1e-7
        assert pfh_plain(fms, CriticalityRole.LO, reexecution) <= 1e-5


class TestMinimalAdaptationProfile:
    def test_trivial_when_lo_not_safety_related(self, example31):
        assert (
            minimal_adaptation_profile(example31, 3, 1, "kill", 10.0) == 1
        )

    def test_fms_killing_needs_three(self, fms):
        """Fig. 1: the killing safe region starts at n' = 3."""
        assert minimal_adaptation_profile(fms, 3, 2, "kill", 10.0) == 3

    def test_fms_degradation_safe_from_one(self, fms):
        """Fig. 2: degradation is safe already at n' = 1."""
        assert minimal_adaptation_profile(fms, 3, 2, "degrade", 10.0) == 1

    def test_none_when_unreachable(self, example31_lo_c):
        """Killing level-C tasks in Example 3.1 violates safety at any n'."""
        assert (
            minimal_adaptation_profile(example31_lo_c, 3, 3, "kill", 10.0)
            is None
        )

    def test_unknown_mechanism_rejected(self, fms):
        with pytest.raises(ValueError, match="mechanism"):
            pfh_lo_adapted(fms, 3, 2, 2, "pause", 10.0)

    def test_requires_spec(self, example31):
        unbound = TaskSet(example31.tasks, spec=None)
        with pytest.raises(ValueError, match="spec"):
            minimal_adaptation_profile(unbound, 3, 1, "kill", 10.0)

    def test_no_lo_tasks_trivial(self):
        hi_only = TaskSet(
            [Task("hi", 100, 100, 5, CriticalityRole.HI, 1e-5)],
            DualCriticalitySpec.from_names("B", "C"),
        )
        assert minimal_adaptation_profile(hi_only, 3, 1, "kill", 10.0) == 1


class TestMaximalAdaptationProfile:
    def test_example31_edf_vd(self, example31):
        """Example 4.1: n2_HI = 2 under EDF-VD."""
        assert (
            maximal_adaptation_profile(example31, 3, 1, EDFVDBackend()) == 2
        )

    def test_fms_edf_vd(self, fms):
        """Fig. 1: the FMS schedulable region ends at n' = 2."""
        assert maximal_adaptation_profile(fms, 3, 2, EDFVDBackend()) == 2

    def test_fms_degradation(self, fms):
        backend = EDFVDDegradationBackend(6.0)
        assert maximal_adaptation_profile(fms, 3, 2, backend) == 2

    def test_none_when_nothing_schedulable(self):
        overloaded = TaskSet(
            [
                Task("hi", 100, 100, 60, CriticalityRole.HI, 1e-5),
                Task("lo", 100, 100, 60, CriticalityRole.LO, 1e-5),
            ],
            DualCriticalitySpec.from_names("B", "D"),
        )
        assert (
            maximal_adaptation_profile(overloaded, 2, 1, EDFVDBackend()) is None
        )

    def test_result_is_schedulable_and_supremum(self, fms):
        from repro.core.conversion import convert_uniform

        backend = EDFVDBackend()
        n2 = maximal_adaptation_profile(fms, 3, 2, backend)
        assert backend.is_schedulable(convert_uniform(fms, 3, 2, n2))
        if n2 < 3:
            assert not backend.is_schedulable(
                convert_uniform(fms, 3, 2, n2 + 1)
            )

    def test_repeated_calls_stable_across_cache_states(self, fms):
        """The schedulability cache must never change the search result."""
        from repro.core.backends import clear_schedulability_cache

        backend = EDFVDBackend()
        clear_schedulability_cache()
        cold = maximal_adaptation_profile(fms, 3, 2, backend)
        warm = maximal_adaptation_profile(fms, 3, 2, backend)
        assert cold == warm
        clear_schedulability_cache()
        assert maximal_adaptation_profile(fms, 3, 2, backend) == cold


class TestMinimalReexecutionMemo:
    def test_memo_returns_consistent_results(self, fms):
        """Repeated profile derivations (the Fig. 3 hot path) agree."""
        first = minimal_reexecution_profiles(fms)
        second = minimal_reexecution_profiles(fms)
        assert second is first  # memoized per task set

    def test_memo_distinguishes_arguments(self, example31):
        full = minimal_reexecution_profiles(example31)
        capped = minimal_reexecution_profiles(example31, max_n=2)
        assert full is not None and capped is None

    def test_memo_released_with_taskset(self, fms):
        """The memo holds task sets weakly — no unbounded growth."""
        import gc
        import weakref

        from repro.core.profiles import _reexecution_memo
        from repro.model.task import TaskSet

        clone = TaskSet(list(fms), fms.spec, name="clone")
        minimal_reexecution_profiles(clone)
        assert clone in _reexecution_memo
        ref = weakref.ref(clone)
        del clone
        gc.collect()
        assert ref() is None
