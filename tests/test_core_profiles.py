"""Tests for the FT-S profile searches (Algorithm 1, lines 2/4/8)."""

import pytest

from repro.core.backends import EDFVDBackend, EDFVDDegradationBackend
from repro.core.profiles import (
    maximal_adaptation_profile,
    minimal_adaptation_profile,
    minimal_reexecution_profiles,
    pfh_lo_adapted,
)
from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.task import Task, TaskSet


class TestMinimalReexecutionProfiles:
    def test_example31(self, example31):
        """Paper: n_HI = 3 (level B), n_LO = 1 (level D, no requirement)."""
        profiles = minimal_reexecution_profiles(example31)
        assert profiles is not None
        assert profiles.n_hi == 3
        assert profiles.n_lo == 1

    def test_fms(self, fms):
        """Paper: n_HI = 3, n_LO = 2 for the FMS (levels B and C)."""
        profiles = minimal_reexecution_profiles(fms)
        assert profiles is not None
        assert (profiles.n_hi, profiles.n_lo) == (3, 2)

    def test_example31_with_lo_c(self, example31_lo_c):
        profiles = minimal_reexecution_profiles(example31_lo_c)
        assert profiles is not None
        assert profiles.n_hi == 3
        assert profiles.n_lo >= 2  # level C forces LO re-execution

    def test_requires_spec(self, example31):
        unbound = TaskSet(example31.tasks, spec=None)
        with pytest.raises(ValueError, match="spec"):
            minimal_reexecution_profiles(unbound)

    def test_none_when_max_n_too_small(self, example31):
        assert minimal_reexecution_profiles(example31, max_n=2) is None

    def test_safety_actually_met(self, fms):
        from repro.model.faults import ReexecutionProfile
        from repro.safety.pfh import pfh_plain

        profiles = minimal_reexecution_profiles(fms)
        reexecution = ReexecutionProfile.uniform(fms, profiles.n_hi, profiles.n_lo)
        assert pfh_plain(fms, CriticalityRole.HI, reexecution) <= 1e-7
        assert pfh_plain(fms, CriticalityRole.LO, reexecution) <= 1e-5


class TestMinimalAdaptationProfile:
    def test_trivial_when_lo_not_safety_related(self, example31):
        assert (
            minimal_adaptation_profile(example31, 3, 1, "kill", 10.0) == 1
        )

    def test_fms_killing_needs_three(self, fms):
        """Fig. 1: the killing safe region starts at n' = 3."""
        assert minimal_adaptation_profile(fms, 3, 2, "kill", 10.0) == 3

    def test_fms_degradation_safe_from_one(self, fms):
        """Fig. 2: degradation is safe already at n' = 1."""
        assert minimal_adaptation_profile(fms, 3, 2, "degrade", 10.0) == 1

    def test_none_when_unreachable(self, example31_lo_c):
        """Killing level-C tasks in Example 3.1 violates safety at any n'."""
        assert (
            minimal_adaptation_profile(example31_lo_c, 3, 3, "kill", 10.0)
            is None
        )

    def test_unknown_mechanism_rejected(self, fms):
        with pytest.raises(ValueError, match="mechanism"):
            pfh_lo_adapted(fms, 3, 2, 2, "pause", 10.0)

    def test_requires_spec(self, example31):
        unbound = TaskSet(example31.tasks, spec=None)
        with pytest.raises(ValueError, match="spec"):
            minimal_adaptation_profile(unbound, 3, 1, "kill", 10.0)

    def test_no_lo_tasks_trivial(self):
        hi_only = TaskSet(
            [Task("hi", 100, 100, 5, CriticalityRole.HI, 1e-5)],
            DualCriticalitySpec.from_names("B", "C"),
        )
        assert minimal_adaptation_profile(hi_only, 3, 1, "kill", 10.0) == 1


class TestMaximalAdaptationProfile:
    def test_example31_edf_vd(self, example31):
        """Example 4.1: n2_HI = 2 under EDF-VD."""
        assert (
            maximal_adaptation_profile(example31, 3, 1, EDFVDBackend()) == 2
        )

    def test_fms_edf_vd(self, fms):
        """Fig. 1: the FMS schedulable region ends at n' = 2."""
        assert maximal_adaptation_profile(fms, 3, 2, EDFVDBackend()) == 2

    def test_fms_degradation(self, fms):
        backend = EDFVDDegradationBackend(6.0)
        assert maximal_adaptation_profile(fms, 3, 2, backend) == 2

    def test_none_when_nothing_schedulable(self):
        overloaded = TaskSet(
            [
                Task("hi", 100, 100, 60, CriticalityRole.HI, 1e-5),
                Task("lo", 100, 100, 60, CriticalityRole.LO, 1e-5),
            ],
            DualCriticalitySpec.from_names("B", "D"),
        )
        assert (
            maximal_adaptation_profile(overloaded, 2, 1, EDFVDBackend()) is None
        )

    def test_result_is_schedulable_and_supremum(self, fms):
        from repro.core.conversion import convert_uniform

        backend = EDFVDBackend()
        n2 = maximal_adaptation_profile(fms, 3, 2, backend)
        assert backend.is_schedulable(convert_uniform(fms, 3, 2, n2))
        if n2 < 3:
            assert not backend.is_schedulable(
                convert_uniform(fms, 3, 2, n2 + 1)
            )

    def test_repeated_calls_stable_across_cache_states(self, fms):
        """The schedulability cache must never change the search result."""
        from repro.core.backends import clear_schedulability_cache

        backend = EDFVDBackend()
        clear_schedulability_cache()
        cold = maximal_adaptation_profile(fms, 3, 2, backend)
        warm = maximal_adaptation_profile(fms, 3, 2, backend)
        assert cold == warm
        clear_schedulability_cache()
        assert maximal_adaptation_profile(fms, 3, 2, backend) == cold


class TestMinimalReexecutionMemo:
    def test_memo_returns_consistent_results(self, fms):
        """Repeated profile derivations (the Fig. 3 hot path) agree."""
        first = minimal_reexecution_profiles(fms)
        second = minimal_reexecution_profiles(fms)
        assert second is first  # memoized per task set

    def test_memo_distinguishes_arguments(self, example31):
        full = minimal_reexecution_profiles(example31)
        capped = minimal_reexecution_profiles(example31, max_n=2)
        assert full is not None and capped is None

    def test_memo_released_with_taskset(self, fms):
        """The memo holds task sets weakly — no unbounded growth."""
        import gc
        import weakref

        from repro.core.profiles import _reexecution_memo
        from repro.model.task import TaskSet

        clone = TaskSet(list(fms), fms.spec, name="clone")
        minimal_reexecution_profiles(clone)
        assert clone in _reexecution_memo
        ref = weakref.ref(clone)
        del clone
        gc.collect()
        assert ref() is None


class TestMemoForkReset:
    """Regression: every profile-search memo must reset in forked workers.

    ``_reexecution_memo`` (and the candidate-series memos it feeds) was
    originally not registered with ``register_fork_reset``, so forked
    campaign workers kept the parent's memo pages alive through
    copy-on-write references — against the FTMCF fork-safety rules.
    """

    def test_reexecution_memo_cleared_on_fork_reset(self, fms):
        from repro.core.profiles import _reexecution_memo
        from repro.obs.trace import reset_inherited_session

        expected = minimal_reexecution_profiles(fms)
        assert fms in _reexecution_memo
        reset_inherited_session()  # what a forked worker runs first
        assert fms not in _reexecution_memo
        # Cold recomputation after the reset still agrees.
        fresh = minimal_reexecution_profiles(fms)
        assert (fresh.n_hi, fresh.n_lo) == (expected.n_hi, expected.n_lo)

    def test_safety_series_memos_cleared_on_fork_reset(self, fms):
        from repro.analysis import kernels
        from repro.obs.trace import reset_inherited_session
        from repro.safety.degradation import _degradation_series_memo
        from repro.safety.killing import _killing_series_memo

        if not kernels.batch_enabled():
            pytest.skip("series memos are only populated on the batch tier")
        minimal_adaptation_profile(fms, 3, 2, "kill", 10.0)
        minimal_adaptation_profile(fms, 3, 2, "degrade", 10.0)
        assert fms in _killing_series_memo
        assert fms in _degradation_series_memo
        reset_inherited_session()
        assert fms not in _killing_series_memo
        assert fms not in _degradation_series_memo


class TestMemoSpecKeying:
    """Regression: the memo must key on the *bound* spec, not just args.

    ``TaskSet.spec`` is a plain attribute; rebinding a different
    :class:`DualCriticalitySpec` to the same object used to serve the
    previous spec's profile out of the memo.
    """

    def test_rebinding_spec_invalidates_memo(self, example31):
        relaxed = minimal_reexecution_profiles(example31)
        assert relaxed is not None and relaxed.n_lo == 1  # LO=D: no PFH req
        example31.spec = DualCriticalitySpec.from_names("B", "C")
        strict = minimal_reexecution_profiles(example31)
        assert strict is not None
        assert strict.n_lo >= 2  # level C forces LO re-execution

    def test_original_spec_result_restored_on_rebind_back(self, example31):
        original_spec = example31.spec
        first = minimal_reexecution_profiles(example31)
        example31.spec = DualCriticalitySpec.from_names("B", "C")
        minimal_reexecution_profiles(example31)
        example31.spec = original_spec
        again = minimal_reexecution_profiles(example31)
        assert again is first  # memo entry for the original spec survives


class TestBatchTierEquivalence:
    """The sweep-batch profile searches must agree with the per-set path."""

    def _profile_rows(self, taskset):
        profiles = minimal_reexecution_profiles(taskset)
        if profiles is None:
            return None
        n1_kill = minimal_adaptation_profile(
            taskset, profiles.n_hi, profiles.n_lo, "kill", 10.0
        )
        n1_degrade = minimal_adaptation_profile(
            taskset, profiles.n_hi, profiles.n_lo, "degrade", 10.0
        )
        n2 = maximal_adaptation_profile(
            taskset, profiles.n_hi, profiles.n_lo, EDFVDBackend()
        )
        return (profiles.n_hi, profiles.n_lo, n1_kill, n1_degrade, n2)

    def _corpus(self):
        import numpy as np

        from repro.gen.taskset import generate_taskset

        sets = []
        for seed, (utilization, lo) in enumerate(
            [(0.6, "C"), (0.85, "C"), (0.85, "D"), (1.0, "C")]
        ):
            rng = np.random.default_rng([97, seed])
            sets.append(
                generate_taskset(
                    utilization,
                    DualCriticalitySpec.from_names("B", lo),
                    rng,
                )
            )
        return sets

    def test_batch_and_per_set_profiles_agree(self, monkeypatch, fms):
        from repro.analysis import kernels
        from repro.core.backends import clear_schedulability_cache

        if not kernels.numpy_enabled():
            pytest.skip("NumPy kernels disabled")
        corpus = [fms] + self._corpus()
        clear_schedulability_cache()
        batch = [self._profile_rows(ts) for ts in corpus]
        monkeypatch.setenv(kernels.NO_BATCH_ENV, "1")
        clear_schedulability_cache()
        per_set = [self._profile_rows(ts) for ts in corpus]
        assert batch == per_set

    def test_monotone_precheck_matches_full_scan(self, example31_lo_c):
        """Line 4's n_HI-first bail-out must never change the verdict."""
        from repro.analysis import kernels

        if not kernels.batch_enabled():
            pytest.skip("pre-check only runs on the batch tier")
        # example31_lo_c: killing is unsafe at every n' (FAILURE), the
        # exact case the pre-check answers with one evaluation.
        assert (
            minimal_adaptation_profile(example31_lo_c, 3, 3, "kill", 10.0)
            is None
        )
        # And a scan that succeeds is unaffected by it.
        assert (
            minimal_adaptation_profile(example31_lo_c, 3, 3, "degrade", 10.0)
            == 1
        )
