"""Deterministic scenario tests for the discrete-event engine."""

import pytest

from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.faults import (
    AdaptationProfile,
    FaultToleranceConfig,
    ReexecutionProfile,
)
from repro.model.task import Task, TaskSet
from repro.sim.engine import PeriodicArrivals, Simulator, SporadicArrivals
from repro.sim.fault_injection import NoFaultInjector, ScriptedFaultInjector
from repro.sim.jobs import JobOutcome
from repro.sim.policies import EDFPolicy, EDFVDPolicy, FixedPriorityPolicy


def _ts(*tasks: Task) -> TaskSet:
    return TaskSet(tasks, DualCriticalitySpec.from_names("B", "D"))


def _config(ts: TaskSet, n_hi=1, n_lo=1, adaptation=None, df=None):
    return FaultToleranceConfig(
        reexecution=ReexecutionProfile.uniform(ts, n_hi, n_lo),
        adaptation=(
            AdaptationProfile.uniform(ts, adaptation)
            if adaptation is not None
            else None
        ),
        degradation_factor=df,
    )


HI = CriticalityRole.HI
LO = CriticalityRole.LO


class TestBasicExecution:
    def test_single_task_all_jobs_complete(self):
        ts = _ts(Task("a", 100, 100, 10, HI))
        sim = Simulator(ts, EDFPolicy(), _config(ts))
        metrics = sim.run(1000.0)
        counters = metrics.counters("a")
        assert counters.released == 10
        assert counters.success == 10
        assert counters.deadline_miss == 0
        assert counters.executions == 10

    def test_busy_time_accounts_execution(self):
        ts = _ts(Task("a", 100, 100, 10, HI))
        metrics = Simulator(ts, EDFPolicy(), _config(ts)).run(1000.0)
        assert metrics.busy_time == pytest.approx(100.0)
        assert metrics.utilization_observed == pytest.approx(0.1)

    def test_two_tasks_edf_order(self):
        """EDF runs the shorter-deadline job first; both complete."""
        ts = _ts(Task("short", 50, 50, 10, HI), Task("long", 100, 100, 30, LO))
        metrics = Simulator(ts, EDFPolicy(), _config(ts)).run(100.0)
        assert metrics.counters("short").success == 2
        assert metrics.counters("long").success == 1

    def test_preemption_counted(self):
        """The long LO job is preempted by the HI releases at 20 and 40."""
        ts = _ts(Task("hi", 20, 20, 5, HI), Task("lo", 100, 100, 40, LO))
        metrics = Simulator(ts, EDFPolicy(), _config(ts)).run(100.0)
        assert metrics.preemptions == 2
        assert metrics.counters("lo").success == 1

    def test_overload_misses_deadlines(self):
        ts = _ts(Task("a", 10, 10, 6, HI), Task("b", 10, 10, 6, LO))
        metrics = Simulator(ts, EDFPolicy(), _config(ts)).run(100.0)
        assert metrics.deadline_misses() > 0

    def test_idle_gaps_are_skipped(self):
        ts = _ts(Task("a", 1000, 1000, 1, HI))
        metrics = Simulator(ts, EDFPolicy(), _config(ts)).run(10_000.0)
        assert metrics.counters("a").success == 10
        assert metrics.busy_time == pytest.approx(10.0)

    def test_zero_horizon_rejected(self):
        ts = _ts(Task("a", 100, 100, 10, HI))
        with pytest.raises(ValueError, match="horizon"):
            Simulator(ts, EDFPolicy(), _config(ts)).run(0.0)


class TestReexecution:
    def test_fault_triggers_reexecution(self):
        ts = _ts(Task("a", 100, 100, 10, HI, 0.5))
        injector = ScriptedFaultInjector({"a": [True, False]})
        sim = Simulator(ts, EDFPolicy(), _config(ts, n_hi=2), injector)
        metrics = sim.run(100.0)
        counters = metrics.counters("a")
        assert counters.success == 1
        assert counters.executions == 2
        assert counters.faults_injected == 1
        assert metrics.busy_time == pytest.approx(20.0)

    def test_exhausted_attempts_fail(self):
        ts = _ts(Task("a", 100, 100, 10, HI, 0.5))
        injector = ScriptedFaultInjector({"a": [True, True]})
        sim = Simulator(ts, EDFPolicy(), _config(ts, n_hi=2), injector)
        metrics = sim.run(100.0)
        counters = metrics.counters("a")
        assert counters.fault_exhausted == 1
        assert counters.success == 0
        assert counters.temporal_failures == 1

    def test_single_attempt_task_fails_on_first_fault(self):
        ts = _ts(Task("a", 100, 100, 10, HI, 0.5))
        injector = ScriptedFaultInjector({"a": [True]})
        metrics = Simulator(ts, EDFPolicy(), _config(ts, n_hi=1), injector).run(
            100.0
        )
        assert metrics.counters("a").fault_exhausted == 1

    def test_reexecution_can_cause_deadline_miss(self):
        """Two executions of 60 don't fit a deadline of 100."""
        ts = _ts(Task("a", 200, 100, 60, HI, 0.5))
        injector = ScriptedFaultInjector({"a": [True, False]})
        metrics = Simulator(ts, EDFPolicy(), _config(ts, n_hi=2), injector).run(
            200.0
        )
        assert metrics.counters("a").deadline_miss == 1

    def test_fault_free_no_reexecutions(self):
        ts = _ts(Task("a", 100, 100, 10, HI, 0.9))
        metrics = Simulator(
            ts, EDFPolicy(), _config(ts, n_hi=3), NoFaultInjector()
        ).run(1000.0)
        assert metrics.counters("a").executions == 10


class TestModeSwitchKilling:
    def _system(self):
        hi = Task("hi", 100, 100, 10, HI, 0.5)
        lo = Task("lo", 100, 100, 10, LO, 0.0)
        return _ts(hi, lo)

    def test_switch_on_third_attempt_start(self):
        """n' = 2: two faults force a third attempt, killing LO tasks."""
        ts = self._system()
        injector = ScriptedFaultInjector({"hi": [True, True, False]})
        sim = Simulator(
            ts, EDFPolicy(), _config(ts, n_hi=3, adaptation=2), injector
        )
        metrics = sim.run(1000.0)
        assert metrics.hi_mode_entered
        assert sim.hi_mode
        # LO releases stop after the switch (t ~ 20): 1 job at t=0 only.
        assert metrics.counters("lo").released <= 2

    def test_no_switch_within_profile(self):
        """A single re-execution (attempt 2 <= n' = 2) must not switch."""
        ts = self._system()
        injector = ScriptedFaultInjector({"hi": [True, False]})
        sim = Simulator(
            ts, EDFPolicy(), _config(ts, n_hi=3, adaptation=2), injector
        )
        metrics = sim.run(500.0)
        assert not metrics.hi_mode_entered
        assert metrics.counters("lo").released == 5

    def test_pending_lo_jobs_killed_at_switch(self):
        hi = Task("hi", 100, 100, 10, HI, 0.5)
        lo = Task("lo", 100, 100, 50, LO, 0.0)  # long job, still pending
        ts = _ts(hi, lo)
        injector = ScriptedFaultInjector({"hi": [True, True, False]})
        metrics = Simulator(
            ts, EDFPolicy(), _config(ts, n_hi=3, adaptation=2), injector
        ).run(400.0)
        assert metrics.kills(LO) >= 1

    def test_killed_jobs_count_as_temporal_failures(self):
        hi = Task("hi", 100, 100, 10, HI, 0.5)
        lo = Task("lo", 100, 100, 50, LO, 0.0)
        ts = _ts(hi, lo)
        injector = ScriptedFaultInjector({"hi": [True, True, False]})
        metrics = Simulator(
            ts, EDFPolicy(), _config(ts, n_hi=3, adaptation=2), injector
        ).run(400.0)
        assert metrics.temporal_failures(LO) >= 1

    def test_hi_tasks_keep_running_after_switch(self):
        ts = self._system()
        injector = ScriptedFaultInjector({"hi": [True, True, False]})
        metrics = Simulator(
            ts, EDFPolicy(), _config(ts, n_hi=3, adaptation=2), injector
        ).run(1000.0)
        assert metrics.counters("hi").released == 10
        assert metrics.counters("hi").success == 10


class TestModeSwitchDegradation:
    def test_lo_periods_stretched_after_switch(self):
        hi = Task("hi", 100, 100, 10, HI, 0.5)
        lo = Task("lo", 100, 100, 5, LO, 0.0)
        ts = _ts(hi, lo)
        injector = ScriptedFaultInjector({"hi": [True, True, False]})
        config = _config(ts, n_hi=3, adaptation=2, df=5.0)
        metrics = Simulator(ts, EDFPolicy(), config, injector).run(2000.0)
        assert metrics.hi_mode_entered
        # Without degradation: 20 LO releases.  Switch happens near t=20;
        # afterwards the LO period is 500, so far fewer jobs arrive.
        lo_released = metrics.counters("lo").released
        assert 3 <= lo_released <= 7

    def test_degraded_jobs_still_complete(self):
        hi = Task("hi", 100, 100, 10, HI, 0.5)
        lo = Task("lo", 100, 100, 5, LO, 0.0)
        ts = _ts(hi, lo)
        injector = ScriptedFaultInjector({"hi": [True, True, False]})
        config = _config(ts, n_hi=3, adaptation=2, df=5.0)
        metrics = Simulator(ts, EDFPolicy(), config, injector).run(2000.0)
        counters = metrics.counters("lo")
        assert counters.killed == 0
        assert counters.success == counters.released


class TestPolicies:
    def test_fixed_priority_order(self):
        """FP runs the higher-priority (lower number) task first."""
        a = Task("a", 100, 100, 30, HI)
        b = Task("b", 100, 100, 30, LO)
        ts = _ts(a, b)
        policy = FixedPriorityPolicy({"a": 1, "b": 0})
        metrics = Simulator(ts, policy, _config(ts)).run(100.0)
        assert metrics.counters("a").success == 1
        assert metrics.counters("b").success == 1

    def test_fixed_priority_missing_task_raises(self):
        ts = _ts(Task("a", 100, 100, 10, HI))
        policy = FixedPriorityPolicy({})
        with pytest.raises(KeyError, match="priority"):
            Simulator(ts, policy, _config(ts)).run(100.0)

    def test_edf_vd_prefers_hi_in_lo_mode(self):
        """With x = 0.5, a HI job's virtual deadline beats a LO job's."""
        hi = Task("hi", 100, 100, 10, HI)
        lo = Task("lo", 80, 80, 10, LO)
        ts = _ts(hi, lo)
        metrics = Simulator(ts, EDFVDPolicy(0.4), _config(ts)).run(80.0)
        # virtual deadline of hi = 40 < lo's 80: hi finished first.
        assert metrics.counters("hi").success == 1

    def test_edf_vd_policy_validates_x(self):
        with pytest.raises(ValueError, match="factor"):
            EDFVDPolicy(0.0)
        with pytest.raises(ValueError, match="factor"):
            EDFVDPolicy(1.5)


class TestArrivals:
    def test_sporadic_arrivals_release_fewer_jobs(self):
        ts = _ts(Task("a", 100, 100, 1, HI))
        periodic = Simulator(ts, EDFPolicy(), _config(ts)).run(10_000.0)
        sporadic = Simulator(
            ts, EDFPolicy(), _config(ts),
            arrivals=SporadicArrivals(seed=7, jitter_fraction=0.5),
        ).run(10_000.0)
        assert sporadic.counters("a").released <= periodic.counters("a").released

    def test_sporadic_respects_minimum_gap(self):
        model = SporadicArrivals(seed=3, jitter_fraction=0.25)
        task = Task("a", 100, 100, 1, HI)
        for _ in range(100):
            gap = model.interarrival(task, 100.0)
            assert 100.0 <= gap <= 125.0

    def test_periodic_is_exact(self):
        model = PeriodicArrivals()
        task = Task("a", 100, 100, 1, HI)
        assert model.interarrival(task, 100.0) == 100.0

    def test_sporadic_rejects_negative_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            SporadicArrivals(jitter_fraction=-0.1)


class TestFinalization:
    def test_pending_job_past_deadline_counts_as_miss(self):
        """A job released near the horizon with a passed deadline is a miss."""
        ts = _ts(Task("a", 100, 50, 60, HI))  # C > D: always misses
        metrics = Simulator(ts, EDFPolicy(), _config(ts)).run(100.0)
        assert metrics.counters("a").deadline_miss >= 1

    def test_pending_job_with_future_deadline_censored(self):
        ts = _ts(Task("a", 1000, 1000, 900, HI))
        metrics = Simulator(ts, EDFPolicy(), _config(ts)).run(500.0)
        counters = metrics.counters("a")
        assert counters.unfinished == 1
        assert counters.deadline_miss == 0

    def test_outcome_conservation(self):
        """released == success + failures + killed + unfinished."""
        ts = _ts(
            Task("a", 70, 70, 20, HI, 0.3),
            Task("b", 110, 110, 30, LO, 0.3),
        )
        from repro.sim.fault_injection import BernoulliFaultInjector

        metrics = Simulator(
            ts,
            EDFPolicy(),
            _config(ts, n_hi=2, n_lo=2, adaptation=1),
            BernoulliFaultInjector(seed=5),
        ).run(50_000.0)
        for name in ("a", "b"):
            c = metrics.counters(name)
            assert (
                c.success
                + c.fault_exhausted
                + c.deadline_miss
                + c.killed
                + c.unfinished
                == c.released
            )


class TestJobOutcome:
    def test_temporal_failure_classification(self):
        assert JobOutcome.FAULT_EXHAUSTED.is_temporal_failure
        assert JobOutcome.DEADLINE_MISS.is_temporal_failure
        assert JobOutcome.KILLED.is_temporal_failure
        assert not JobOutcome.SUCCESS.is_temporal_failure
        assert not JobOutcome.PENDING.is_temporal_failure
