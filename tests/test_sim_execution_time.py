"""Tests for execution-time models and response-time statistics."""

import pytest

from repro.analysis.edf import Workload
from repro.analysis.fixed_priority import response_time
from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.faults import FaultToleranceConfig, ReexecutionProfile
from repro.model.task import Task, TaskSet
from repro.sim.engine import Simulator
from repro.sim.execution_time import FullWCET, UniformFraction
from repro.sim.policies import EDFPolicy, FixedPriorityPolicy

HI = CriticalityRole.HI
LO = CriticalityRole.LO


def _system():
    tasks = [
        Task("a", 100, 100, 10, HI),
        Task("b", 150, 150, 20, LO),
    ]
    return TaskSet(tasks, DualCriticalitySpec.from_names("B", "D"))


def _config(ts):
    return FaultToleranceConfig(reexecution=ReexecutionProfile.uniform(ts, 1, 1))


class TestExecutionTimeModels:
    def test_full_wcet(self):
        task = Task("a", 100, 100, 10, HI)
        assert FullWCET()(task) == 10.0

    def test_uniform_fraction_range(self):
        model = UniformFraction(seed=1, min_fraction=0.4)
        task = Task("a", 100, 100, 10, HI)
        for _ in range(200):
            value = model(task)
            assert 4.0 <= value <= 10.0

    def test_uniform_fraction_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            UniformFraction(min_fraction=0.0)
        with pytest.raises(ValueError, match="fraction"):
            UniformFraction(min_fraction=1.5)

    def test_min_fraction_one_is_full_wcet(self):
        model = UniformFraction(seed=0, min_fraction=1.0)
        task = Task("a", 100, 100, 10, HI)
        assert model(task) == 10.0

    def test_simulator_with_early_completions(self):
        ts = _system()
        metrics = Simulator(
            ts, EDFPolicy(), _config(ts),
            execution_time_of=UniformFraction(seed=3, min_fraction=0.5),
        ).run(3000.0)
        # Early completions reduce busy time below the WCET-based load.
        full = Simulator(ts, EDFPolicy(), _config(ts)).run(3000.0)
        assert metrics.busy_time < full.busy_time
        assert metrics.deadline_misses() == 0

    def test_engine_rejects_overrun_model(self):
        ts = _system()
        sim = Simulator(
            ts, EDFPolicy(), _config(ts),
            execution_time_of=lambda t: t.wcet * 2.0,
        )
        with pytest.raises(ValueError, match="outside"):
            sim.run(1000.0)


class TestResponseTimeStatistics:
    def test_single_task_response_equals_wcet(self):
        ts = TaskSet(
            [Task("a", 100, 100, 10, HI)],
            DualCriticalitySpec.from_names("B", "D"),
        )
        metrics = Simulator(ts, EDFPolicy(), _config(ts)).run(1000.0)
        counters = metrics.counters("a")
        assert counters.max_response == pytest.approx(10.0)
        assert counters.mean_response == pytest.approx(10.0)
        assert metrics.max_response_time("a") == pytest.approx(10.0)

    def test_observed_response_bounded_by_rta(self):
        """Under fixed priorities, observed responses never exceed RTA."""
        tasks = [
            Task("hp", 20, 20, 5, HI),
            Task("lp", 50, 50, 12, LO),
        ]
        ts = TaskSet(tasks, DualCriticalitySpec.from_names("B", "D"))
        policy = FixedPriorityPolicy({"hp": 0, "lp": 1})
        metrics = Simulator(ts, policy, _config(ts)).run(10_000.0)
        bound_lp = response_time(
            Workload(50, 50, 12), [Workload(20, 20, 5)]
        )
        assert bound_lp is not None
        assert metrics.max_response_time("lp") <= bound_lp + 1e-9
        assert metrics.max_response_time("hp") <= 5.0 + 1e-9

    def test_synchronous_release_attains_rta_bound(self):
        """The critical instant (synchronous release) realises the bound."""
        tasks = [
            Task("hp", 20, 20, 5, HI),
            Task("lp", 50, 50, 12, LO),
        ]
        ts = TaskSet(tasks, DualCriticalitySpec.from_names("B", "D"))
        policy = FixedPriorityPolicy({"hp": 0, "lp": 1})
        metrics = Simulator(ts, policy, _config(ts)).run(10_000.0)
        bound_lp = response_time(Workload(50, 50, 12), [Workload(20, 20, 5)])
        # lp at t=0: 12 + interference from hp releases at 0, 20 -> R = 22.
        assert metrics.max_response_time("lp") == pytest.approx(bound_lp)

    def test_mean_response_zero_when_nothing_finished(self):
        from repro.sim.metrics import TaskCounters

        assert TaskCounters().mean_response == 0.0

    def test_unknown_task_max_response(self):
        ts = _system()
        metrics = Simulator(ts, EDFPolicy(), _config(ts)).run(100.0)
        assert metrics.max_response_time("ghost") == 0.0
