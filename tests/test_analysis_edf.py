"""Tests for classical EDF analysis: utilization bound, dbf, PDC."""

import pytest

from repro.analysis.edf import (
    Workload,
    demand_bound_function,
    edf_processor_demand_test,
    edf_processor_demand_test_reference,
    edf_schedulable,
    edf_utilization_test,
    inflated_workload,
    schedulable_without_adaptation,
    workload_from_taskset,
)
from repro.analysis.qpa import qpa_schedulable
from repro.model.criticality import CriticalityRole
from repro.model.faults import ReexecutionProfile
from repro.model.task import Task, TaskSet


class TestWorkload:
    def test_utilization(self):
        assert Workload(100.0, 100.0, 25.0).utilization == 0.25

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            Workload(0.0, 100.0, 10.0)
        with pytest.raises(ValueError):
            Workload(100.0, 100.0, -1.0)

    def test_from_taskset_defaults_to_single_wcet(self, example31):
        workload = workload_from_taskset(example31)
        assert [w.wcet for w in workload] == [5.0, 4.0, 7.0, 6.0, 8.0]

    def test_from_taskset_custom_budget(self, example31):
        workload = workload_from_taskset(example31, lambda t: 2 * t.wcet)
        assert [w.wcet for w in workload] == [10.0, 8.0, 14.0, 12.0, 16.0]

    def test_inflated_workload(self, example31, example31_profiles):
        workload = inflated_workload(example31, example31_profiles)
        # HI tasks inflated by 3, LO tasks by 1.
        assert [w.wcet for w in workload] == [15.0, 12.0, 7.0, 6.0, 8.0]


class TestUtilizationTest:
    def test_example31_single_execution_fits(self, example31):
        assert edf_utilization_test(workload_from_taskset(example31))

    def test_example31_inflated_fails(self, example31, example31_profiles):
        """Paper: U = 1.08595 > 1 with full re-execution budgets."""
        assert not edf_utilization_test(
            inflated_workload(example31, example31_profiles)
        )

    def test_boundary_exactly_one(self):
        assert edf_utilization_test([Workload(10.0, 10.0, 10.0)])

    def test_empty(self):
        assert edf_utilization_test([])


class TestDemandBoundFunction:
    def test_below_first_deadline(self):
        w = Workload(10.0, 8.0, 3.0)
        assert demand_bound_function([w], 7.9) == 0.0

    def test_at_first_deadline(self):
        w = Workload(10.0, 8.0, 3.0)
        assert demand_bound_function([w], 8.0) == 3.0

    def test_accumulates_per_period(self):
        w = Workload(10.0, 8.0, 3.0)
        assert demand_bound_function([w], 28.0) == 9.0  # jobs at 8, 18, 28

    def test_multiple_tasks_sum(self):
        a = Workload(10.0, 10.0, 2.0)
        b = Workload(20.0, 15.0, 5.0)
        t = 30.0
        # a: floor((30-10)/10)+1 = 3 jobs; b: floor((30-15)/20)+1 = 1 job
        assert demand_bound_function([a, b], t) == 3 * 2.0 + 1 * 5.0

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            demand_bound_function([Workload(10, 10, 1)], -1.0)


class TestEpsilonBoundaryRegression:
    """Regression: demand landing exactly on ``dbf(t) = t`` at an instant
    whose floating-point image sits a few ulps off the rational boundary.

    ``t = 0.2 + 13 * 0.3 = 4.1`` is an absolute deadline of the first
    workload item, but ``(4.1 - 0.2) / 0.3`` evaluates to
    ``12.999999999999998``: an epsilon-less floor sees 13 jobs instead of
    14, reports ``dbf(4.1) = 4.0 <= 4.1``, and every demand-based test
    built on it accepts a workload whose exact demand is ``4.2 > 4.1``.
    The tolerance-aware job count must reject it.
    """

    WORKLOAD = [Workload(0.3, 0.2, 0.2), Workload(1000.0, 4.05, 1.4)]

    def test_raw_floor_really_undercounts(self):
        # Guard the premise: the quotient is short of 13 in binary.
        assert (4.1 - 0.2) / 0.3 < 13.0

    def test_dbf_counts_the_boundary_job(self):
        # Exact demand at 4.1: 14 jobs of 0.2 plus the long task's 1.4.
        assert demand_bound_function(self.WORKLOAD, 4.1) == pytest.approx(4.2)

    def test_pdc_rejects(self):
        assert not edf_processor_demand_test(self.WORKLOAD)

    def test_pdc_reference_rejects(self):
        assert not edf_processor_demand_test_reference(self.WORKLOAD)

    def test_qpa_rejects(self):
        assert not qpa_schedulable(self.WORKLOAD)


class TestProcessorDemandCriterion:
    def test_implicit_deadline_consistent_with_utilization(self):
        good = [Workload(10, 10, 4), Workload(20, 20, 10)]  # U = 0.9
        assert edf_processor_demand_test(good)
        bad = [Workload(10, 10, 6), Workload(20, 20, 10)]  # U = 1.1
        assert not edf_processor_demand_test(bad)

    def test_constrained_deadline_infeasible(self):
        """U < 1 but constrained deadlines overload a short window."""
        workload = [Workload(100, 5, 4), Workload(100, 5, 4)]
        assert not edf_processor_demand_test(workload)

    def test_constrained_deadline_feasible(self):
        workload = [Workload(100, 10, 4), Workload(100, 20, 4)]
        assert edf_processor_demand_test(workload)

    def test_arbitrary_deadline_feasible(self):
        """D > T tasks pass when total utilization behaves."""
        workload = [Workload(10, 15, 5), Workload(20, 30, 8)]
        assert edf_processor_demand_test(workload)

    def test_zero_wcet_tasks_ignored(self):
        assert edf_processor_demand_test([Workload(10, 1, 0.0)])

    def test_empty(self):
        assert edf_processor_demand_test([])

    def test_utilization_above_one_rejected_fast(self):
        assert not edf_processor_demand_test([Workload(10, 100, 11)])


class TestEdfSchedulableDispatch:
    def test_implicit_uses_utilization(self):
        assert edf_schedulable([Workload(10, 10, 10)])

    def test_constrained_uses_pdc(self):
        assert not edf_schedulable([Workload(100, 5, 4), Workload(100, 5, 4)])


class TestBaselineWithoutAdaptation:
    def test_example31_unschedulable_with_full_profiles(
        self, example31, example31_profiles
    ):
        """The motivation of Section 3.2: re-execution overloads EDF."""
        assert not schedulable_without_adaptation(example31, example31_profiles)

    def test_example31_schedulable_without_reexecution(self, example31):
        single = ReexecutionProfile.uniform(example31, 1, 1)
        assert schedulable_without_adaptation(example31, single)

    def test_requires_complete_profile(self, example31):
        partial = ReexecutionProfile({"tau1": 2})
        with pytest.raises(ValueError, match="missing"):
            schedulable_without_adaptation(example31, partial)

    def test_lo_inflation_counts(self):
        tasks = [
            Task("hi", 100, 100, 10, CriticalityRole.HI, 1e-5),
            Task("lo", 100, 100, 40, CriticalityRole.LO, 1e-5),
        ]
        ts = TaskSet(tasks)
        ok = ReexecutionProfile.uniform(ts, 2, 2)  # U = 0.2 + 0.8 = 1.0
        too_much = ReexecutionProfile.uniform(ts, 2, 3)  # U = 1.4
        assert schedulable_without_adaptation(ts, ok)
        assert not schedulable_without_adaptation(ts, too_much)
