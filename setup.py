"""Setup shim for environments without the `wheel` package.

The offline environment lacks `wheel`, which setuptools' PEP 660 editable
backend requires; this shim lets `pip install -e . --no-use-pep517
--no-build-isolation` (and plain `pip install -e .` on newer stacks) work.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
