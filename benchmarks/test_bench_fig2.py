"""Bench regenerating Fig. 2 (ID F2): service degradation on the FMS."""

import math

from repro.experiments.fig2 import run_fig2


def test_fig2_sweep(benchmark, fms):
    """F2: same schedulable region as Fig. 1, but pfh(LO) ~ 1e-11 at
    n' = 2 — the safe and schedulable regions overlap and FT-S succeeds."""
    result = benchmark(run_fig2, fms)

    n_primes = result.column("n_prime")
    sched = dict(zip(n_primes, result.column("schedulable")))
    values = dict(zip(n_primes, result.column("pfh_lo")))

    assert sched[1] and sched[2] and not sched[3]
    assert all(result.column("safe"))
    assert -12.0 <= math.log10(values[2]) <= -10.0
    assert "SUCCESS with n'_HI=2" in " ".join(result.notes)


def test_fig1_vs_fig2_safety_gap(benchmark, fms):
    """Headline Section 5.1 comparison: degradation ~10 orders safer."""
    from repro.experiments.fig1 import run_fig1

    def both():
        return run_fig1(fms), run_fig2(fms)

    fig1, fig2 = benchmark(both)
    kill = dict(zip(fig1.column("n_prime"), fig1.column("pfh_lo")))
    degrade = dict(zip(fig2.column("n_prime"), fig2.column("pfh_lo")))
    assert math.log10(kill[2]) - math.log10(degrade[2]) > 8.0
