"""Backend-comparison bench: Theorem 4.1's generality, quantified.

Runs the acceptance-per-backend experiment at reduced scale and asserts
the published domination orderings among the fixed-priority tests.
"""

from repro.experiments.backend_comparison import run_backend_comparison

UTILIZATIONS = (0.5, 0.7, 0.9)
SETS = 30


def test_bench_backend_comparison(benchmark):
    result = benchmark(
        run_backend_comparison, UTILIZATIONS, SETS
    )
    by_name = {name: result.column(name) for name in result.columns[1:]}

    # Published domination results, point by point (shared samples).
    for rtb, mx in zip(by_name["amc-rtb"], by_name["amc-max"]):
        assert mx >= rtb - 1e-12
    for smc, rtb in zip(by_name["smc"], by_name["amc-rtb"]):
        assert rtb >= smc - 1e-12

    # Nothing should be degenerate at moderate load.
    assert all(by_name[name][0] > 0.3 for name in by_name)
