"""Micro-benchmarks of the analytical kernels and the simulator.

Not tied to a specific paper artifact; these track the performance of the
pieces every experiment is built from (and pin the numpy evaluator's
speedup over the reference implementation of eq. 5).
"""

import pytest

from repro.core.ftmc import ft_edf_vd, ft_edf_vd_degradation
from repro.gen.taskset import generate_taskset
from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.model.faults import AdaptationProfile, ReexecutionProfile
from repro.safety.killing import pfh_lo_killing, pfh_lo_killing_reference
from repro.safety.pfh import pfh_plain
from repro.sim.runtime import simulate_ft_result

SPEC = DualCriticalitySpec.from_names("B", "D")


def test_bench_pfh_plain(benchmark, fms):
    profile = ReexecutionProfile.uniform(fms, 3, 2)
    value = benchmark(pfh_plain, fms, CriticalityRole.HI, profile)
    assert value < 1e-7


def test_bench_pfh_killing_vectorised(benchmark, fms):
    """The numpy evaluator of eq. (5) over a 10-hour mission."""
    reexecution = ReexecutionProfile.uniform(fms, 3, 2)
    adaptation = AdaptationProfile.uniform(fms, 2)
    value = benchmark(pfh_lo_killing, fms, reexecution, adaptation, 10.0)
    assert 0.0 < value < 1.0


def test_bench_pfh_killing_reference_short_horizon(benchmark, fms):
    """Reference implementation, kept honest on a 0.2-hour horizon."""
    reexecution = ReexecutionProfile.uniform(fms, 3, 2)
    adaptation = AdaptationProfile.uniform(fms, 2)
    fast = pfh_lo_killing(fms, reexecution, adaptation, 0.2)
    slow = benchmark(
        pfh_lo_killing_reference, fms, reexecution, adaptation, 0.2
    )
    assert slow == pytest.approx(fast, rel=1e-9)


def test_bench_ft_edf_vd(benchmark, fms):
    result = benchmark(ft_edf_vd, fms)
    assert not result.success  # killing fails on the FMS (Fig. 1)


def test_bench_ft_edf_vd_degradation(benchmark, fms):
    result = benchmark(ft_edf_vd_degradation, fms, 6.0)
    assert result.success


def test_bench_taskset_generation(benchmark):
    ts = benchmark(generate_taskset, 0.9, SPEC, 7)
    assert ts.utilization() == pytest.approx(0.9)


def test_bench_simulator_one_minute(benchmark, fms):
    """Simulate one minute of the FMS under degradation with faults."""
    result = ft_edf_vd_degradation(fms, 6.0)

    def run():
        return simulate_ft_result(
            fms, result, horizon=60_000.0, seed=1, probability_scale=100.0
        )

    metrics = benchmark(run)
    assert metrics.deadline_misses(CriticalityRole.HI) == 0
