"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not paper artifacts — these quantify the library's own design decisions:

- **Backend generality** (Theorem 4.1): acceptance of the EDF-VD
  utilization test vs the AMC-rtb fixed-priority test vs the dbf-based
  demand test, plugged into the same FT-S driver.
- **Uniform vs per-task re-execution profiles** (the paper's Section 4.2
  restriction): how much inflated utilization the per-task relaxation
  saves on heterogeneous task sets.
"""

import numpy as np
import pytest

from repro.core.backends import AMCBackend, DbfMCBackend, EDFVDBackend
from repro.core.ftmc import ft_schedule
from repro.core.optimize import minimal_per_task_reexecution
from repro.gen.taskset import GeneratorConfig, generate_taskset
from repro.model.criticality import CriticalityRole, DualCriticalitySpec
from repro.safety.pfh import minimal_uniform_reexecution

SPEC = DualCriticalitySpec.from_names("B", "D")
SETS = 40


def _acceptance(backend, utilization, sets=SETS):
    accepted = 0
    for seed in range(sets):
        taskset = generate_taskset(utilization, SPEC, seed)
        if ft_schedule(taskset, backend).success:
            accepted += 1
    return accepted / sets


def test_ablation_backend_generality(benchmark):
    """All three killing backends drive FT-S; acceptance is comparable.

    The tests are incomparable in general (utilization vs response-time vs
    demand bounds), but on the paper's workload none may be degenerate
    (zero acceptance where another accepts most sets).
    """

    def run():
        return {
            "edf-vd": _acceptance(EDFVDBackend(), 0.7),
            "amc-rtb": _acceptance(AMCBackend(), 0.7),
            "dbf-mc": _acceptance(DbfMCBackend(), 0.7),
        }

    rates = benchmark(run)
    assert all(0.0 <= rate <= 1.0 for rate in rates.values())
    best = max(rates.values())
    assert best > 0.5
    for name, rate in rates.items():
        assert rate > best - 0.6, f"{name} degenerate: {rates}"


def test_ablation_per_task_adaptation(benchmark):
    """Per-task adaptation profiles accept at least what uniform FT-S
    accepts when LO tasks carry no ceiling (finer kills only relieve the
    EDF-VD test further)."""
    from repro.core.conversion import convert
    from repro.core.optimize import search_per_task_adaptation
    from repro.core.profiles import minimal_reexecution_profiles
    from repro.core.ftmc import ft_edf_vd
    from repro.model.faults import ReexecutionProfile

    backend = EDFVDBackend()

    def run():
        uniform_wins = per_task_wins = both = 0
        for seed in range(SETS):
            taskset = generate_taskset(0.85, SPEC, seed)
            profiles = minimal_reexecution_profiles(taskset)
            if profiles is None:
                continue
            uniform = ft_edf_vd(taskset).success
            per_task = search_per_task_adaptation(
                taskset, profiles.n_hi, profiles.n_lo, backend, 10.0
            )
            if per_task.success:
                # Sanity: the reported profile really is schedulable.
                reexecution = ReexecutionProfile.uniform(
                    taskset, profiles.n_hi, profiles.n_lo
                )
                assert backend.is_schedulable(
                    convert(taskset, reexecution, per_task.adaptation)
                )
            uniform_wins += uniform and not per_task.success
            per_task_wins += per_task.success and not uniform
            both += uniform and per_task.success
        return uniform_wins, per_task_wins, both

    uniform_wins, per_task_wins, both = benchmark(run)
    # With LO in {D, E} the safety check is vacuous, so per-task search
    # accepts everything uniform accepts (and possibly more).
    assert uniform_wins == 0
    assert both + per_task_wins > 0


def test_ablation_per_task_profiles(benchmark):
    """Per-task profiles never need more load than uniform ones, and save
    load on heterogeneous sets (periods spread over a decade)."""
    config = GeneratorConfig(period_min=100.0, period_max=10_000.0)

    def run():
        savings = []
        for seed in range(SETS):
            taskset = generate_taskset(0.8, SPEC, seed, config)
            uniform_n = minimal_uniform_reexecution(
                taskset, CriticalityRole.HI, 1e-7
            )
            per_task = minimal_per_task_reexecution(
                taskset, CriticalityRole.HI, 1e-7
            )
            if uniform_n is None or per_task is None:
                continue
            uniform_load = uniform_n * taskset.utilization(CriticalityRole.HI)
            savings.append(uniform_load - per_task.inflated_utilization)
        return savings

    savings = benchmark(run)
    assert savings, "no comparable task sets generated"
    assert min(savings) >= -1e-12  # never worse
    assert float(np.mean(savings)) >= 0.0
