"""Sensitivity benches: df, OS and P_HI sweeps on the pinned FMS.

Quantify the constants the paper fixes without exploration (df = 6,
OS = 10 h, P_HI = 0.2) — part of the DESIGN.md ablation plan.
"""



from repro.experiments.sensitivity import (
    sweep_degradation_factor,
    sweep_operation_hours,
    sweep_p_hi,
)


def test_bench_df_sweep(benchmark, fms):
    """The FMS needs df >= 3; the paper's df = 6 is comfortably inside."""
    result = benchmark(sweep_degradation_factor, fms)
    outcome = dict(zip(result.column("df"), result.column("success")))
    assert not outcome[2.0] and outcome[3.0] and outcome[6.0]


def test_bench_os_sweep(benchmark, fms):
    """Both adapted LO bounds grow ~linearly with the mission duration."""
    result = benchmark(sweep_operation_hours, fms)
    kills = result.column("pfh_lo_killing")
    assert kills == sorted(kills)
    # Roughly linear growth: the 10 h bound is ~10x the 1 h bound.
    ratio = kills[-1] / kills[0]
    assert 8.0 < ratio < 12.0


def test_bench_p_hi_sweep(benchmark):
    """Acceptance falls as the HI-task share (and its 3x budget) grows."""
    result = benchmark(
        sweep_p_hi, 0.8, (0.1, 0.3, 0.6), 40
    )
    acceptance = result.column("acceptance")
    assert acceptance[0] >= acceptance[-1]
