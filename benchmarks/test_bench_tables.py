"""Benches regenerating Tables 1-4 and Examples 3.1/4.1 (IDs T1-T4)."""

import math

import pytest

from repro.experiments.tables import (
    table1,
    table2_example31,
    table3_example41,
    table4_fms,
)


def test_table1(benchmark):
    """T1: DO-178B PFH requirements."""
    result = benchmark(table1)
    ceilings = dict(zip(result.column("level"), result.column("pfh_requirement")))
    assert ceilings == {
        "A": 1e-9, "B": 1e-7, "C": 1e-5,
        "D": math.inf, "E": math.inf,
    }


def test_table2_example31(benchmark):
    """T2/E31: the motivating example — pfh(HI)=2.04e-10, U=1.08595."""
    result = benchmark(table2_example31)
    notes = " ".join(result.notes)
    assert "2.040e-10" in notes
    assert "1.08595" in notes
    assert "n_HI=3" in notes


def test_table3_example41(benchmark):
    """T3/E41: the Lemma 4.1 conversion is EDF-VD schedulable."""
    result = benchmark(table3_example41)
    assert result.column("C(HI)") == [15.0, 12.0, 7.0, 6.0, 8.0]
    assert result.column("C(LO)") == [10.0, 8.0, 7.0, 6.0, 8.0]
    assert "schedulable: True" in " ".join(result.notes)


def test_table4_fms(benchmark):
    """T4: the FMS instance conforms to the Table 4 ranges."""
    result = benchmark(table4_fms)
    assert len(result.rows) == 11
    levels = result.column("chi(DO-178B)")
    assert levels.count("B") == 7 and levels.count("C") == 4
