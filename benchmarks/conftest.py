"""Benchmark-suite fixtures (pytest-benchmark).

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one paper artifact (table or figure) and
asserts its qualitative shape, so the numbers reported by
pytest-benchmark double as a regression record of the reproduction.
Fig. 3 benches use reduced sets-per-point; the full 500-set runs are
available through ``ftmc fig3 --sets 500``.
"""

from __future__ import annotations

import pytest

from repro.gen.fms import canonical_fms
from repro.model.task import TaskSet


@pytest.fixture(scope="session")
def fms() -> TaskSet:
    return canonical_fms()
