"""Benches regenerating the four Fig. 3 panels (IDs F3a-F3d).

Each bench runs a reduced version of the paper's sweep (fewer sets per
data point and a coarser utilization grid) and asserts the qualitative
conclusions of Section 5.2.  The paper-scale run (500 sets/point, both
failure probabilities) is exposed through ``ftmc fig3``.
"""

from repro.experiments.fig3 import FIG3_PANELS, run_fig3_panel

UTILIZATIONS = (0.4, 0.6, 0.8, 1.0)
SETS = 60
F = 1e-5


def _series(result):
    return (
        result.column("acceptance_without"),
        result.column("acceptance_with"),
    )


def test_fig3a_killing_lo_de(benchmark):
    """F3a: killing widens the region considerably when LO in {D, E}."""
    result = benchmark(
        run_fig3_panel, FIG3_PANELS["a"], F, UTILIZATIONS, SETS
    )
    without, with_adapt = _series(result)
    assert all(w >= wo for w, wo in zip(with_adapt, without))
    assert sum(with_adapt) - sum(without) > 0.3  # a substantial gap


def test_fig3b_killing_lo_c(benchmark):
    """F3b: killing rarely helps when LO tasks are level C."""
    result = benchmark(
        run_fig3_panel, FIG3_PANELS["b"], F, UTILIZATIONS, SETS
    )
    without, with_adapt = _series(result)
    assert all(w >= wo for w, wo in zip(with_adapt, without))
    assert sum(with_adapt) - sum(without) < 0.25  # nearly no gap


def test_fig3c_degradation_lo_de(benchmark):
    """F3c: degradation widens the region when LO in {D, E}.

    The gap is smaller than killing's (eq. 12 keeps the degraded LO load
    ``U_LO^LO / (df - 1)`` in HI mode, where killing drops it entirely) but
    must be clearly positive.
    """
    result = benchmark(
        run_fig3_panel, FIG3_PANELS["c"], F, UTILIZATIONS, SETS
    )
    without, with_adapt = _series(result)
    assert all(w >= wo for w, wo in zip(with_adapt, without))
    assert sum(with_adapt) - sum(without) > 0.15


def test_fig3d_degradation_lo_c(benchmark):
    """F3d: degradation still helps when LO is level C — unlike killing."""
    kill = run_fig3_panel(FIG3_PANELS["b"], F, UTILIZATIONS, SETS)
    result = benchmark(
        run_fig3_panel, FIG3_PANELS["d"], F, UTILIZATIONS, SETS
    )
    without, with_adapt = _series(result)
    degrade_gain = sum(with_adapt) - sum(without)
    kill_gain = sum(kill.column("acceptance_with")) - sum(
        kill.column("acceptance_without")
    )
    assert degrade_gain >= kill_gain


def test_fig3_hardware_quality(benchmark):
    """Fig. 3 cross-cut: decreasing f improves schedulability."""

    def run_both():
        coarse = run_fig3_panel(FIG3_PANELS["a"], 1e-3, (0.5, 0.7), 40)
        fine = run_fig3_panel(FIG3_PANELS["a"], 1e-5, (0.5, 0.7), 40)
        return coarse, fine

    coarse, fine = benchmark(run_both)
    assert sum(fine.column("acceptance_with")) >= sum(
        coarse.column("acceptance_with")
    )
    assert sum(fine.column("acceptance_without")) >= sum(
        coarse.column("acceptance_without")
    )
