"""Benches for the library extensions beyond the paper's evaluation.

- overhead sensitivity: how much context-switch cost an FT-S-accepted
  system absorbs before HI deadlines start slipping (the analytical
  model charges zero overhead);
- multi-level FT-S-ML on the four-level avionics system;
- generator robustness: the Fig. 3a conclusion under UUniFast instead of
  the Appendix C incremental-fill generator.
"""

import numpy as np

from repro.core.backends import EDFVDBackend, EDFVDDegradationBackend
from repro.core.ftmc import ft_edf_vd
from repro.experiments.tables import example31_taskset
from repro.model.criticality import CriticalityRole, DO178BLevel, \
    DualCriticalitySpec
from repro.multilevel import MLTask, MLTaskSet, ft_schedule_multilevel
from repro.sim.runtime import build_simulator


def test_bench_overhead_sensitivity(benchmark):
    """Example 3.1 under EDF-VD absorbs small dispatch costs; large ones
    break it — quantifying the zero-overhead modelling assumption."""
    taskset = example31_taskset()
    result = ft_edf_vd(taskset)
    assert result.success

    def misses_at(costs):
        outcome = {}
        for cost in costs:
            simulator = build_simulator(taskset, result)
            simulator.context_switch_cost = cost
            metrics = simulator.run(60_000.0)
            outcome[cost] = metrics.deadline_misses(CriticalityRole.HI)
        return outcome

    outcome = benchmark(misses_at, (0.0, 0.1, 0.5, 2.0, 5.0))
    assert outcome[0.0] == 0
    assert outcome[0.1] == 0  # small overhead absorbed
    assert outcome[5.0] > 0   # 5 ms per dispatch clearly breaks it
    misses = [outcome[c] for c in sorted(outcome)]
    assert misses == sorted(misses)  # monotone degradation


def _avionics() -> MLTaskSet:
    A, B, C, D = (DO178BLevel.A, DO178BLevel.B, DO178BLevel.C,
                  DO178BLevel.D)
    return MLTaskSet(
        [
            MLTask("flight-ctl", 50, 50, 2, A, 1e-6),
            MLTask("autopilot", 100, 100, 5, B, 1e-5),
            MLTask("nav", 200, 200, 10, B, 1e-5),
            MLTask("flightplan", 500, 500, 60, C, 1e-5),
            MLTask("display", 250, 250, 25, C, 1e-5),
            MLTask("maint-log", 1000, 1000, 250, D, 1e-5),
        ],
        name="avionics",
    )


def test_bench_multilevel(benchmark):
    """Four-level FT-S-ML: killing protects A/B/C, degradation can adapt
    C too — the paper's dual-criticality insight generalised."""

    def run():
        system = _avionics()
        return (
            ft_schedule_multilevel(system, EDFVDBackend()),
            ft_schedule_multilevel(system, EDFVDDegradationBackend(6.0)),
        )

    kill, degrade = benchmark(run)
    assert kill.success and kill.boundary is DO178BLevel.C
    assert degrade.success and degrade.boundary is DO178BLevel.B
    assert degrade.pfh_adapted[DO178BLevel.C] < 1e-5


def test_bench_multicore_scaling(benchmark):
    """FT-MP acceptance grows with the processor count; m=1 reduces to
    the paper's uniprocessor FT-S."""
    from repro.gen.taskset import generate_taskset
    from repro.multicore import ft_schedule_partitioned

    spec = DualCriticalitySpec.from_names("B", "D")

    def run():
        acceptance = {}
        for m in (1, 2, 4):
            accepted = 0
            for seed in range(25):
                taskset = generate_taskset(1.4, spec, seed)
                if ft_schedule_partitioned(
                    taskset, m, EDFVDBackend()
                ).success:
                    accepted += 1
            acceptance[m] = accepted / 25
        return acceptance

    acceptance = benchmark(run)
    assert acceptance[1] <= acceptance[2] <= acceptance[4]
    assert acceptance[4] > acceptance[1]


def test_bench_generator_robustness(benchmark):
    """Fig. 3a's conclusion (killing widens the region when LO in {D,E})
    must not depend on the Appendix C generator: it holds under UUniFast
    too."""
    from repro.analysis.edf import schedulable_without_adaptation
    from repro.core.profiles import minimal_reexecution_profiles
    from repro.gen.taskset import uunifast_taskset
    from repro.model.faults import ReexecutionProfile

    spec = DualCriticalitySpec.from_names("B", "D")

    def run():
        baseline_ok = adapted_ok = total = 0
        for point, utilization in enumerate((0.6, 0.8)):
            for index in range(40):
                rng = np.random.default_rng([point, index])
                taskset = uunifast_taskset(8, utilization, spec, rng)
                profiles = minimal_reexecution_profiles(taskset)
                if profiles is None:
                    total += 1
                    continue
                reexecution = ReexecutionProfile.uniform(
                    taskset, profiles.n_hi, profiles.n_lo
                )
                base = schedulable_without_adaptation(taskset, reexecution)
                adapted = base or ft_edf_vd(taskset).success
                baseline_ok += base
                adapted_ok += adapted
                total += 1
        return baseline_ok, adapted_ok, total

    baseline_ok, adapted_ok, total = benchmark(run)
    assert adapted_ok >= baseline_ok
    assert adapted_ok - baseline_ok >= 0.1 * total  # a clear gap remains
