"""Bench regenerating Fig. 1 (ID F1): task killing on the FMS."""

import math


from repro.experiments.fig1 import run_fig1


def test_fig1_sweep(benchmark, fms):
    """F1: U_MC grows with n'; schedulable iff n' <= 2; pfh(LO) ~ 1e-1 at
    n' = 2; safe region disjoint from the schedulable region."""
    result = benchmark(run_fig1, fms)

    n_primes = result.column("n_prime")
    u_mc = result.column("u_mc")
    pfh = result.column("pfh_lo")
    sched = dict(zip(n_primes, result.column("schedulable")))
    safe = dict(zip(n_primes, result.column("safe")))

    # Shape: U_MC increasing, pfh decreasing.
    assert u_mc == sorted(u_mc)
    assert pfh == sorted(pfh, reverse=True)
    # Regions exactly as the paper reports for its instance.
    assert sched[1] and sched[2] and not sched[3]
    assert not safe[2] and safe[3]
    # Order of magnitude at n' = 2 (paper: 1e-1).
    values = dict(zip(n_primes, pfh))
    assert -1.0 <= math.log10(values[2]) <= 0.0
