"""Overhead study: how much dispatch cost an accepted system absorbs.

The analytical model (like most MC schedulability theory) charges zero
context-switch overhead.  This experiment sweeps the simulator's dispatch
cost on an FT-S-accepted configuration and records when HI deadlines
start slipping — the empirical safety margin of the zero-overhead
assumption, and a practical input for choosing WCET padding.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.ftmc import FTSResult, ft_edf_vd
from repro.experiments.results import ExperimentResult
from repro.experiments.tables import example31_taskset
from repro.model.criticality import CriticalityRole
from repro.model.task import TaskSet
from repro.sim.fault_injection import BernoulliFaultInjector
from repro.sim.runtime import build_simulator

__all__ = ["run_overhead_study"]

DEFAULT_COSTS: tuple[float, ...] = (0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0)


def run_overhead_study(
    taskset: TaskSet | None = None,
    result: FTSResult | None = None,
    costs: Sequence[float] = DEFAULT_COSTS,
    horizon: float = 120_000.0,
    probability_scale: float = 500.0,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep the context-switch cost on one accepted configuration.

    Defaults to Example 3.1 under FT-EDF-VD.  Faults are injected (scaled)
    so the sweep also exercises re-execution and the mode switch, where
    extra dispatches concentrate.
    """
    if taskset is None:
        taskset = example31_taskset()
    if result is None:
        result = ft_edf_vd(taskset)
    if not result.success:
        raise ValueError("overhead study needs an accepted configuration")

    study = ExperimentResult(
        name="overhead-study",
        description=(
            f"{taskset.name}: HI misses vs context-switch cost "
            f"(faults x{probability_scale:g})"
        ),
        columns=[
            "cost_ms",
            "hi_misses",
            "lo_misses",
            "overhead_share",
            "preemptions",
        ],
    )
    for cost in costs:
        simulator = build_simulator(
            taskset,
            result,
            fault_injector=BernoulliFaultInjector(seed, probability_scale),
        )
        simulator.context_switch_cost = cost
        metrics = simulator.run(horizon)
        study.add_row(
            cost,
            metrics.deadline_misses(CriticalityRole.HI),
            metrics.deadline_misses(CriticalityRole.LO),
            metrics.overhead_time / metrics.busy_time
            if metrics.busy_time > 0
            else 0.0,
            metrics.preemptions,
        )
    study.extend_notes(
        [
            "the analytical acceptance charges zero overhead; the first "
            "row must therefore show zero HI misses",
            "the cost at which HI misses appear bounds the dispatch "
            "overhead the deployment may exhibit without re-analysis",
        ]
    )
    return study
