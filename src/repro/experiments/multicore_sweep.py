"""Multicore sweep: FT-MP acceptance ratio versus core count.

A figure the paper never had: how partitioned FT-EDF-VD acceptance
scales with the number of cores ``m`` when the offered load scales
proportionally (target utilization ``= per-core utilization x m``).  Two
curves per sweep:

- **heuristic** — acceptance with the packing portfolio alone
  (``PlanOptions(exact=False)``), the production-cheap configuration;
- **planned** — acceptance with the exact branch-and-bound on top; the
  difference (``exact_rescues``) is precisely the sets the heuristics
  mis-packed, i.e. the measured price of heuristic partitioning.

Because the planner's exact stage starts from the heuristic incumbent,
``planned`` acceptance dominates ``heuristic`` acceptance set by set —
the sweep also counts ``inconclusive`` verdicts (planner node budget
exhausted), which is the honest-uncertainty band of the planned curve.

Task sets come from the paper's Appendix C generator (HI=B, LO=D,
killing); like Fig. 3 the per-set RNG is seeded ``[seed, point_index,
set_index]`` so campaign shards reproduce exactly the sets an in-process
sweep would generate at the same grid position.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.backends import make_backend
from repro.experiments.ascii_chart import line_chart
from repro.experiments.results import ExperimentResult
from repro.gen.taskset import PAPER_CONFIG, generate_taskset
from repro.model.criticality import DualCriticalitySpec
from repro.multicore.ftmp import ft_schedule_partitioned
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.planner import PlanOptions

__all__ = [
    "DEFAULT_CORES",
    "DEFAULT_PER_CORE_UTILIZATION",
    "DEFAULT_PLANNER_MAX_NODES",
    "MULTICORE_COLUMNS",
    "multicore_point",
    "multicore_skeleton",
    "run_multicore_sweep",
    "render_multicore",
]

#: Core counts on the x-axis.
DEFAULT_CORES: tuple[int, ...] = (1, 2, 3, 4)

#: Per-core target utilization; the total generator target is this times
#: ``m``.  Chosen in the steep region of the uniprocessor acceptance
#: curve so partitioning effects are visible.
DEFAULT_PER_CORE_UTILIZATION: float = 0.7

#: Branch-and-bound budget per planning run inside the sweep — small
#: enough for campaign shards, large enough that small instances finish
#: exactly (inconclusive counts are reported either way).
DEFAULT_PLANNER_MAX_NODES: int = 6000

MULTICORE_COLUMNS: tuple[str, ...] = (
    "m",
    "acceptance_heuristic",
    "acceptance_planned",
    "exact_rescues",
    "inconclusive",
    "sets",
)

#: The sweep's generator criticality levels: HI=B, LO=D (killing allowed).
_SPEC = DualCriticalitySpec.from_names("B", "D")


def multicore_point(
    m: int,
    point_index: int,
    per_core_utilization: float,
    sets_per_point: int,
    backend_name: str,
    max_nodes: int,
    seed: int,
) -> tuple[int, float, float, int, int, int]:
    """One data point: heuristic/planned acceptance at one core count."""
    backend = make_backend(backend_name)
    heuristic_only = PlanOptions(exact=False)
    planned = PlanOptions(exact=True, max_nodes=max_nodes)
    target = per_core_utilization * m
    heuristic_ok = 0
    planned_ok = 0
    rescues = 0
    inconclusive = 0
    with obs_trace.span(
        "multicore.point", m=m, utilization=target, sets=sets_per_point,
        backend=backend_name,
    ):
        for set_index in range(sets_per_point):
            rng = np.random.default_rng([seed, point_index, set_index])
            taskset = generate_taskset(target, _SPEC, rng, PAPER_CONFIG)
            heuristic = ft_schedule_partitioned(
                taskset, m, backend, plan_options=heuristic_only
            )
            full = ft_schedule_partitioned(
                taskset, m, backend, plan_options=planned
            )
            heuristic_ok += heuristic.success
            planned_ok += full.success
            rescues += full.success and not heuristic.success
            inconclusive += full.inconclusive
        obs_metrics.inc("experiments.multicore.sets", sets_per_point)
        obs_metrics.inc("experiments.multicore.accepted", planned_ok)
        obs_metrics.inc("experiments.multicore.rescues", rescues)
    return (
        m,
        heuristic_ok / sets_per_point,
        planned_ok / sets_per_point,
        rescues,
        inconclusive,
        sets_per_point,
    )


def multicore_skeleton(
    per_core_utilization: float,
    backend_name: str,
    max_nodes: int,
) -> ExperimentResult:
    """An empty sweep result with the canonical name/columns/notes."""
    result = ExperimentResult(
        name="multicore",
        description=(
            "FT-MP acceptance ratio vs core count "
            f"(U = {per_core_utilization:g} x m, {backend_name})"
        ),
        columns=list(MULTICORE_COLUMNS),
    )
    result.extend_notes(
        [
            "HI=B, LO=D task sets from the Appendix C generator; "
            f"target utilization {per_core_utilization:g} per core",
            f"backend {backend_name}; planner branch-and-bound budget "
            f"{max_nodes} nodes per run",
            "acceptance_heuristic: packing portfolio only; "
            "acceptance_planned: portfolio + exact search "
            "(dominates heuristic set by set)",
            "inconclusive: sets whose planned verdict exhausted the node "
            "budget at some adaptation profile",
        ]
    )
    return result


def run_multicore_sweep(
    cores: Sequence[int] = DEFAULT_CORES,
    per_core_utilization: float = DEFAULT_PER_CORE_UTILIZATION,
    sets_per_point: int = 40,
    backend_name: str = "edf-vd",
    max_nodes: int = DEFAULT_PLANNER_MAX_NODES,
    seed: int = 0,
) -> ExperimentResult:
    """The in-process sweep (campaigns shard it per core count instead)."""
    result = multicore_skeleton(per_core_utilization, backend_name, max_nodes)
    for point_index, m in enumerate(cores):
        result.add_row(
            *multicore_point(
                int(m),
                point_index,
                per_core_utilization,
                sets_per_point,
                backend_name,
                max_nodes,
                seed,
            )
        )
    return result


def render_multicore(result: ExperimentResult) -> str:
    """ASCII chart of the two acceptance curves over core count."""
    xs = [float(m) for m in result.column("m")]
    planned = list(zip(xs, result.column("acceptance_planned")))
    heuristic = list(zip(xs, result.column("acceptance_heuristic")))
    return line_chart(
        {"planned (portfolio+exact)": planned, "heuristic only": heuristic},
        title=result.description,
        x_label="cores m",
        y_label="acceptance ratio",
    )
