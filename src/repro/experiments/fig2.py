"""Figure 2: the impacts of service degradation on the FMS (Section 5.1).

Same sweep as Fig. 1 but the mode switch degrades the level-C tasks
(periods stretched by ``df = 6``) instead of killing them; ``U_MC`` comes
from eq. (11) and the LO-level PFH bound from eq. (7).

Expected qualitative shape (paper):

- the schedulable region is again ``n' <= 2``;
- ``pfh(LO)`` is orders of magnitude below the killing case — 1e-11 at
  ``n' = 2`` versus 1e-1 — so the schedulable and safe regions *overlap*
  and FT-S succeeds: degradation is the proper mechanism when LO tasks
  carry safety requirements.
"""

from __future__ import annotations

from repro.experiments.fms_sweep import adaptation_sweep, render_sweep_chart
from repro.experiments.results import ExperimentResult
from repro.gen.fms import (
    FMS_DEGRADATION_FACTOR,
    FMS_OPERATION_HOURS,
    canonical_fms,
)
from repro.model.task import TaskSet

__all__ = ["run_fig2", "render_fig2"]


def run_fig2(
    taskset: TaskSet | None = None,
    operation_hours: float = FMS_OPERATION_HOURS,
    degradation_factor: float = FMS_DEGRADATION_FACTOR,
    n_prime_max: int = 4,
) -> ExperimentResult:
    """Reproduce the Fig. 2 series on ``taskset`` (default: pinned FMS)."""
    taskset = taskset or canonical_fms()
    return adaptation_sweep(
        taskset,
        mechanism="degrade",
        operation_hours=operation_hours,
        degradation_factor=degradation_factor,
        n_prime_max=n_prime_max,
        name="fig2",
        description=(
            "FMS: impacts of service degradation "
            f"(df={degradation_factor:g}; U_MC and pfh(LO) vs n'_HI)"
        ),
    )


def render_fig2(result: ExperimentResult | None = None) -> str:
    """ASCII chart of the Fig. 2 series."""
    result = result or run_fig2()
    return render_sweep_chart(result, "Fig. 2 (service degradation)")
