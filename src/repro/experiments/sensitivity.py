"""Sensitivity studies around the paper's fixed experiment constants.

The paper fixes three knobs without exploring them: the degradation
factor ``df = 6``, the mission duration ``OS = 10`` h and the HI-task
share ``P_HI = 0.2``.  These sweeps quantify how each drives the results
— the "ablation benches for the design choices" called out in DESIGN.md.

- :func:`sweep_degradation_factor`: ``df`` trades LO service against
  schedulability (eq. 12's ``U_LO^LO / (df - 1)`` term) while leaving the
  LO safety bound (eq. 7) untouched.
- :func:`sweep_operation_hours`: the adapted LO-safety bounds grow with
  ``OS`` (the kill/degrade trigger accumulates), so certification is
  sensitive to the declared mission duration.
- :func:`sweep_p_hi`: acceptance as the criticality mix shifts.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.core.ftmc import ft_edf_vd_degradation
from repro.core.profiles import minimal_reexecution_profiles, pfh_lo_adapted
from repro.experiments.results import ExperimentResult
from repro.gen.taskset import PAPER_CONFIG, generate_taskset
from repro.model.criticality import DualCriticalitySpec
from repro.model.task import TaskSet

__all__ = [
    "sweep_degradation_factor",
    "sweep_operation_hours",
    "sweep_p_hi",
]


def sweep_degradation_factor(
    taskset: TaskSet,
    factors: Sequence[float] = (1.5, 2.0, 3.0, 6.0, 12.0, 100.0),
    operation_hours: float = 10.0,
) -> ExperimentResult:
    """FT-S outcome vs the degradation factor ``df`` on one system."""
    result = ExperimentResult(
        name="sweep-df",
        description=f"{taskset.name}: FT-S (degradation) vs df",
        columns=["df", "success", "n_prime", "pfh_lo", "u_mc"],
    )
    for df in factors:
        fts = ft_edf_vd_degradation(taskset, df, operation_hours=operation_hours)
        result.add_row(df, fts.success, fts.adaptation, fts.pfh_lo, fts.u_mc)
    result.extend_notes(
        [
            "larger df relieves the HI-mode load term U_LO/(df-1) of "
            "eq. (12) but degrades LO service harder",
            "the eq. (7) safety bound is df-independent (worst case places "
            "the trigger at mission end)",
        ]
    )
    return result


def sweep_operation_hours(
    taskset: TaskSet,
    hours: Sequence[float] = (1.0, 2.0, 5.0, 10.0),
    n_prime: int = 2,
) -> ExperimentResult:
    """Adapted LO-safety bounds vs the mission duration ``OS``.

    The paper cites 1-10 h as the commercial-aircraft range; both eq. (5)
    and eq. (7) grow with ``OS`` because the kill/degrade trigger
    probability accumulates over the mission.
    """
    profiles = minimal_reexecution_profiles(taskset)
    if profiles is None:
        raise ValueError("task set cannot meet its PFH ceilings")
    result = ExperimentResult(
        name="sweep-os",
        description=f"{taskset.name}: pfh(LO) bounds vs OS at n'={n_prime}",
        columns=["os_hours", "pfh_lo_killing", "pfh_lo_degradation"],
    )
    for os_hours in hours:
        kill = pfh_lo_adapted(
            taskset, profiles.n_hi, profiles.n_lo, n_prime, "kill", os_hours
        )
        degrade = pfh_lo_adapted(
            taskset, profiles.n_hi, profiles.n_lo, n_prime, "degrade", os_hours
        )
        result.add_row(os_hours, kill, degrade)
    result.extend_notes(
        ["both bounds increase with OS: longer missions accumulate trigger "
         "probability (Lemma 3.2)"]
    )
    return result


def sweep_p_hi(
    utilization: float = 0.8,
    shares: Sequence[float] = (0.1, 0.2, 0.4, 0.6),
    sets_per_point: int = 100,
    failure_probability: float = 1e-5,
    seed: int = 0,
) -> ExperimentResult:
    """Acceptance ratio (degradation, LO in {D,E}) vs the HI-task share."""
    spec = DualCriticalitySpec.from_names("B", "D")
    result = ExperimentResult(
        name="sweep-phi",
        description=(
            f"acceptance at U={utilization:g} vs P_HI "
            "(degradation, LO not safety-related)"
        ),
        columns=["p_hi", "acceptance", "sets"],
    )
    for p_hi in shares:
        config = replace(
            PAPER_CONFIG, p_hi=p_hi, failure_probability=failure_probability
        )
        accepted = 0
        for index in range(sets_per_point):
            rng = np.random.default_rng([seed, int(p_hi * 1000), index])
            taskset = generate_taskset(utilization, spec, rng, config)
            if ft_edf_vd_degradation(taskset, 6.0).success:
                accepted += 1
        result.add_row(p_hi, accepted / sets_per_point, sets_per_point)
    result.extend_notes(
        ["more HI tasks -> more tripled budgets -> lower acceptance"]
    )
    return result
