"""Figure 1: the impacts of task killing on the FMS (Section 5.1).

Sweeps the killing profile ``n'_HI`` of the HI (level-B) tasks and records
the mixed-criticality utilization ``U_MC`` (Algorithm 2, line 11) and the
LO-level PFH bound under killing (eq. 5) for the pinned FMS instance.

Expected qualitative shape (paper):

- ``U_MC`` increases with ``n'`` and the system is schedulable iff
  ``n' <= 2``;
- ``pfh(LO)`` decreases with ``n'``; at ``n' = 2`` it has order of
  magnitude 1e-1 — far above the level-C ceiling 1e-5, so the schedulable
  region and the safe region are disjoint: task killing cannot serve this
  FMS safely.
"""

from __future__ import annotations

from repro.experiments.fms_sweep import adaptation_sweep, render_sweep_chart
from repro.experiments.results import ExperimentResult
from repro.gen.fms import FMS_OPERATION_HOURS, canonical_fms
from repro.model.task import TaskSet

__all__ = ["run_fig1", "render_fig1"]


def run_fig1(
    taskset: TaskSet | None = None,
    operation_hours: float = FMS_OPERATION_HOURS,
    n_prime_max: int = 4,
) -> ExperimentResult:
    """Reproduce the Fig. 1 series on ``taskset`` (default: pinned FMS)."""
    taskset = taskset or canonical_fms()
    return adaptation_sweep(
        taskset,
        mechanism="kill",
        operation_hours=operation_hours,
        n_prime_max=n_prime_max,
        name="fig1",
        description="FMS: impacts of task killing (U_MC and pfh(LO) vs n'_HI)",
    )


def render_fig1(result: ExperimentResult | None = None) -> str:
    """ASCII chart of the Fig. 1 series."""
    result = result or run_fig1()
    return render_sweep_chart(result, "Fig. 1 (task killing)")
