"""Backend comparison: acceptance curves per MC scheduling technique.

Theorem 4.1 makes FT-S scheduler-agnostic; this experiment quantifies how
much the backend choice matters, sweeping system utilization and
measuring the FT-S acceptance ratio for each shipped killing backend
(EDF-VD, AMC-rtb, AMC-max, SMC, dbf-mc) on identical task-set samples.

Known orderings the data must respect (property-checked by the bench):

- AMC-max >= AMC-rtb >= SMC (published domination results);
- EDF-VD generally leads the fixed-priority family on implicit-deadline
  workloads (EDF optimality in each mode).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.backends import (
    AMCBackend,
    AMCMaxBackend,
    DbfMCBackend,
    EDFVDBackend,
    SchedulerBackend,
    SMCBackend,
)
from repro.core.ftmc import ft_schedule
from repro.experiments.ascii_chart import line_chart
from repro.experiments.results import ExperimentResult
from repro.gen.taskset import PAPER_CONFIG, generate_taskset
from repro.model.criticality import DualCriticalitySpec

__all__ = ["DEFAULT_BACKENDS", "run_backend_comparison",
           "render_backend_comparison"]


def DEFAULT_BACKENDS() -> list[SchedulerBackend]:
    """Fresh instances of every killing backend (they are stateless)."""
    return [
        EDFVDBackend(),
        AMCBackend(),
        AMCMaxBackend(),
        SMCBackend(),
        DbfMCBackend(),
    ]


def run_backend_comparison(
    utilizations: Sequence[float] = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    sets_per_point: int = 100,
    backends: Sequence[SchedulerBackend] | None = None,
    lo_level: str = "D",
    seed: int = 0,
) -> ExperimentResult:
    """Acceptance per backend over a shared sample of random task sets."""
    chosen = list(backends) if backends is not None else DEFAULT_BACKENDS()
    spec = DualCriticalitySpec.from_names("B", lo_level)
    result = ExperimentResult(
        name="backend-comparison",
        description=(
            "FT-S acceptance ratio per scheduler backend "
            f"(HI=B, LO={lo_level}, killing)"
        ),
        columns=["utilization"] + [b.name for b in chosen],
    )
    for point, utilization in enumerate(utilizations):
        accepted = [0] * len(chosen)
        for index in range(sets_per_point):
            rng = np.random.default_rng([seed, point, index])
            taskset = generate_taskset(utilization, spec, rng)
            for slot, backend in enumerate(chosen):
                if ft_schedule(taskset, backend).success:
                    accepted[slot] += 1
        result.add_row(
            utilization, *(count / sets_per_point for count in accepted)
        )
    result.extend_notes(
        [
            "identical task-set samples per data point across backends",
            "expected orderings: amc-max >= amc-rtb >= smc; edf-vd leads "
            "on implicit deadlines",
        ]
    )
    return result


def render_backend_comparison(result: ExperimentResult) -> str:
    """ASCII chart with one acceptance curve per backend."""
    xs = result.column("utilization")
    series = {
        name: list(zip(xs, result.column(name)))
        for name in result.columns[1:]
    }
    return line_chart(
        series,
        title=result.description,
        x_label="system utilization U",
        y_label="acceptance ratio",
    )
