"""Minimal ASCII plotting for terminal inspection of reproduced figures.

Not a plotting library — just enough to see the *shape* of each series
(monotonicity, crossovers, schedulable regions) in a terminal, since the
offline environment ships no matplotlib.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["line_chart"]

_MARKERS = "ox+*#@%&"


def _format_tick(value: float) -> str:
    return f"{value:.3g}"


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named ``(x, y)`` series on a character grid.

    Each series gets a marker from ``oxq+*...``; non-finite points and, in
    ``log_y`` mode, non-positive values are skipped.
    """
    points: list[tuple[float, float, str]] = []
    markers: dict[str, str] = {}
    for i, (name, data) in enumerate(series.items()):
        marker = _MARKERS[i % len(_MARKERS)]
        markers[name] = marker
        for x, y in data:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            if log_y:
                if y <= 0:
                    continue
                y = math.log10(y)
            points.append((x, y, marker))
    lines: list[str] = []
    if title:
        lines.append(title)
    if not points:
        lines.append("(no finite data points)")
        return "\n".join(lines)

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if math.isclose(x_lo, x_hi):
        x_hi = x_lo + 1.0
    if math.isclose(y_lo, y_hi):
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = marker

    y_top = _format_tick(y_hi)
    y_bottom = _format_tick(y_lo)
    label_width = max(len(y_top), len(y_bottom))
    axis_label = f"{y_label}{' (log10)' if log_y else ''}"
    lines.append(f"{axis_label}:")
    for i, row_chars in enumerate(grid):
        if i == 0:
            prefix = y_top.rjust(label_width)
        elif i == height - 1:
            prefix = y_bottom.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row_chars)}")
    lines.append(f"{' ' * label_width} +{'-' * width}")
    x_axis = f"{_format_tick(x_lo)}{' ' * max(width - 12, 1)}{_format_tick(x_hi)}"
    lines.append(f"{' ' * label_width}  {x_axis}  ({x_label})")
    legend = "  ".join(f"{m}={name}" for name, m in markers.items())
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
