"""Structured experiment results: tables, CSV export, rendering.

The offline environment has no plotting stack, so every figure is
reproduced as the *series data* behind it — an :class:`ExperimentResult`
holding named columns and rows — plus an ASCII chart for quick visual
inspection (:mod:`repro.experiments.ascii_chart`).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.io import atomic_write_text

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """A reproduced table or figure as structured data."""

    #: Short identifier, e.g. ``"fig1"`` or ``"table3"``.
    name: str
    #: One-line description of the paper artifact this reproduces.
    description: str
    #: Ordered column names.
    columns: Sequence[str]
    #: Row values, parallel to ``columns``.
    rows: list[Sequence[Any]] = field(default_factory=list)
    #: Free-form annotations (expected shape, caveats, derived findings).
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        index = list(self.columns).index(name)
        return [row[index] for row in self.rows]

    def to_csv(self, path: str | None = None) -> str:
        """Serialise as CSV; also write to ``path`` (atomically) when given."""
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        text = buffer.getvalue()
        if path is not None:
            atomic_write_text(path, text)
        return text

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-serialisable for checkpoints/result files)."""
        return {
            "name": self.name,
            "description": self.description,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` data."""
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            columns=list(data["columns"]),
            rows=[list(row) for row in data.get("rows", [])],
            notes=[str(note) for note in data.get("notes", [])],
        )

    def render(self, float_format: str = "{:.6g}") -> str:
        """ASCII table of the result plus its notes."""
        display_rows = [
            [
                float_format.format(v) if isinstance(v, float) else str(v)
                for v in row
            ]
            for row in self.rows
        ]
        widths = [
            max(len(str(col)), *(len(r[i]) for r in display_rows), 1)
            if display_rows
            else len(str(col))
            for i, col in enumerate(self.columns)
        ]
        lines = [f"== {self.name}: {self.description} =="]
        header = "  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in display_rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def extend_notes(self, notes: Iterable[str]) -> None:
        self.notes.extend(notes)
