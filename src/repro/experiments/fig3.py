"""Figure 3: schedulability evaluation on synthetic task sets (Section 5.2).

Four panels, each comparing the acceptance ratio (fraction of schedulable
task sets) *with* and *without* runtime adaptation, across system
utilizations and hardware failure probabilities ``f in {1e-3, 1e-5}``:

- (a) task killing,        HI=B, LO in {D, E} (LO not safety-related);
- (b) task killing,        HI=B, LO=C         (LO must stay safe);
- (c) service degradation, HI=B, LO in {D, E};
- (d) service degradation, HI=B, LO=C.

Task sets come from the Appendix C generator (``u in [0.01, 0.2]``,
``T in [200 ms, 2 s]``, ``P_HI = 0.2``); the paper uses 500 sets per data
point.  "Task killing or service degradation is only adopted if the system
is not feasible otherwise" — a set counts as accepted when either the
plain no-adaptation baseline (EDF on the ``n_i``-inflated workload) or
FT-S succeeds.

Expected qualitative shape (paper): adaptation widens the schedulable
region considerably in (a) and (c); killing *rarely* helps in (b) because
it violates the level-C ceiling; degradation still helps in (d); smaller
``f`` always improves acceptance.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.analysis import kernels
from repro.analysis.edf import schedulable_without_adaptation
from repro.core.backends import baseline_schedulable_series
from repro.core.ftmc import ft_edf_vd, ft_edf_vd_degradation
from repro.core.profiles import minimal_reexecution_profiles
from repro.experiments.ascii_chart import line_chart
from repro.experiments.results import ExperimentResult
from repro.gen.taskset import PAPER_CONFIG, GeneratorConfig, generate_taskset
from repro.model.criticality import DualCriticalitySpec
from repro.model.faults import ReexecutionProfile
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = [
    "PanelConfig",
    "FIG3_PANELS",
    "DEFAULT_UTILIZATIONS",
    "DEFAULT_FAILURE_PROBABILITIES",
    "fig3_point",
    "fig3_panel_skeleton",
    "run_fig3_panel",
    "run_fig3",
    "render_fig3_panel",
]

#: Degradation factor for panels (c)/(d).  The paper states ``df`` only for
#: the FMS experiment (6); the same value is adopted here.
FIG3_DEGRADATION_FACTOR: float = 6.0

#: Mission duration assumed for the LO-safety bounds (as in the FMS study).
FIG3_OPERATION_HOURS: float = 10.0

#: Utilization grid for the x-axis.
DEFAULT_UTILIZATIONS: tuple[float, ...] = tuple(
    round(u, 3) for u in np.arange(0.40, 1.2001, 0.05)
)

#: The two hardware qualities of Fig. 3.
DEFAULT_FAILURE_PROBABILITIES: tuple[float, ...] = (1e-3, 1e-5)


@dataclass(frozen=True)
class PanelConfig:
    """One of the four Fig. 3 panels."""

    key: str
    mechanism: str
    lo_level: str
    hi_level: str = "B"

    @property
    def spec(self) -> DualCriticalitySpec:
        return DualCriticalitySpec.from_names(self.hi_level, self.lo_level)

    @property
    def label(self) -> str:
        lo = "{D,E}" if self.lo_level in ("D", "E") else self.lo_level
        return f"HI={self.hi_level}, LO={lo}, {self.mechanism}"


FIG3_PANELS: dict[str, PanelConfig] = {
    "a": PanelConfig("a", "kill", "D"),
    "b": PanelConfig("b", "kill", "C"),
    "c": PanelConfig("c", "degrade", "D"),
    "d": PanelConfig("d", "degrade", "C"),
}


def _accept(taskset, mechanism: str) -> tuple[bool, bool]:
    """(baseline accepted, accepted with adaptation-if-needed)."""
    profiles = minimal_reexecution_profiles(taskset)
    if profiles is None:
        return False, False
    reexecution = ReexecutionProfile.uniform(taskset, profiles.n_hi, profiles.n_lo)
    baseline = schedulable_without_adaptation(taskset, reexecution)
    if baseline:
        return True, True
    if mechanism == "kill":
        fts = ft_edf_vd(taskset, operation_hours=FIG3_OPERATION_HOURS)
    else:
        fts = ft_edf_vd_degradation(
            taskset,
            FIG3_DEGRADATION_FACTOR,
            operation_hours=FIG3_OPERATION_HOURS,
        )
    return False, fts.success


def _accept_batch(tasksets, mechanism: str) -> list[tuple[bool, bool]]:
    """:func:`_accept` over one sweep point's whole set list (batch tier).

    Same verdicts in the same per-set order, but the no-adaptation
    baselines of every eligible set travel together through
    :func:`~repro.core.backends.baseline_schedulable_series` — one stacked
    processor-demand sweep for constrained-deadline generators, plus the
    campaign's cross-process verdict cache for the sets fig3 re-generates
    across panels.  FT-S still runs per set (only where the baseline
    failed), on the batch-tier profile searches.
    """
    profiles = [minimal_reexecution_profiles(ts) for ts in tasksets]
    eligible = [
        (index, taskset, prof)
        for index, (taskset, prof) in enumerate(zip(tasksets, profiles))
        if prof is not None
    ]
    baselines = baseline_schedulable_series(
        [taskset for _, taskset, _ in eligible],
        [
            ReexecutionProfile.uniform(taskset, prof.n_hi, prof.n_lo)
            for _, taskset, prof in eligible
        ],
    )
    results = [(False, False)] * len(tasksets)
    for (index, taskset, _), baseline in zip(eligible, baselines):
        if baseline:
            results[index] = (True, True)
            continue
        if mechanism == "kill":
            fts = ft_edf_vd(taskset, operation_hours=FIG3_OPERATION_HOURS)
        else:
            fts = ft_edf_vd_degradation(
                taskset,
                FIG3_DEGRADATION_FACTOR,
                operation_hours=FIG3_OPERATION_HOURS,
            )
        results[index] = (False, fts.success)
    return results


def fig3_point(
    panel: PanelConfig,
    failure_probability: float,
    point_index: int,
    utilization: float,
    sets_per_point: int = 500,
    seed: int = 0,
    generator: GeneratorConfig = PAPER_CONFIG,
) -> tuple[float, float, float, int]:
    """One data point of a panel: acceptance ratios at one utilization.

    ``point_index`` is the point's position on the utilization grid; it
    enters the per-set RNG seed, so a campaign shard that evaluates a
    single point reproduces exactly the sets an in-process sweep would
    have generated at that grid position.
    """
    config = replace(generator, failure_probability=failure_probability)
    baseline_ok = 0
    adapted_ok = 0
    with obs_trace.span(
        "fig3.point",
        panel=panel.key,
        f=failure_probability,
        utilization=utilization,
        sets=sets_per_point,
    ):
        tasksets = []
        for set_index in range(sets_per_point):
            rng = np.random.default_rng(
                [seed, point_index, set_index, int(failure_probability * 1e9)]
            )
            tasksets.append(
                generate_taskset(utilization, panel.spec, rng, config)
            )
        if kernels.batch_enabled():
            accepts = _accept_batch(tasksets, panel.mechanism)
        else:
            accepts = [_accept(ts, panel.mechanism) for ts in tasksets]
        for base, adapted in accepts:
            baseline_ok += base
            adapted_ok += adapted
        obs_metrics.inc("experiments.fig3.sets", sets_per_point)
        obs_metrics.inc("experiments.fig3.accepted_baseline", baseline_ok)
        obs_metrics.inc("experiments.fig3.accepted_adapted", adapted_ok)
    return (
        utilization,
        baseline_ok / sets_per_point,
        adapted_ok / sets_per_point,
        sets_per_point,
    )


def fig3_panel_skeleton(
    panel: PanelConfig, failure_probability: float
) -> ExperimentResult:
    """An empty panel result with the canonical name/columns/notes."""
    result = ExperimentResult(
        name=f"fig3{panel.key}-f{failure_probability:g}",
        description=(
            f"Fig. 3{panel.key} ({panel.label}) at f={failure_probability:g}: "
            "acceptance ratio vs utilization"
        ),
        columns=[
            "utilization",
            "acceptance_without",
            "acceptance_with",
            "sets",
        ],
    )
    result.extend_notes(
        [
            f"panel {panel.key}: {panel.label}",
            f"f={failure_probability:g}, OS={FIG3_OPERATION_HOURS:g} h, "
            f"df={FIG3_DEGRADATION_FACTOR:g} (degradation panels)",
            "adaptation adopted only when the plain inflated-EDF baseline "
            "fails (Appendix C)",
        ]
    )
    return result


def run_fig3_panel(
    panel: PanelConfig,
    failure_probability: float,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    sets_per_point: int = 500,
    seed: int = 0,
    generator: GeneratorConfig = PAPER_CONFIG,
) -> ExperimentResult:
    """Acceptance-ratio series for one panel at one failure probability."""
    result = fig3_panel_skeleton(panel, failure_probability)
    for point_index, utilization in enumerate(utilizations):
        result.add_row(
            *fig3_point(
                panel,
                failure_probability,
                point_index,
                utilization,
                sets_per_point,
                seed,
                generator,
            )
        )
    return result


def run_fig3(
    panels: Sequence[str] = ("a", "b", "c", "d"),
    failure_probabilities: Sequence[float] = DEFAULT_FAILURE_PROBABILITIES,
    utilizations: Sequence[float] = DEFAULT_UTILIZATIONS,
    sets_per_point: int = 500,
    seed: int = 0,
) -> dict[str, ExperimentResult]:
    """All requested Fig. 3 series, keyed ``"<panel>-f<probability>"``."""
    results: dict[str, ExperimentResult] = {}
    for key in panels:
        panel = FIG3_PANELS[key]
        for f in failure_probabilities:
            result = run_fig3_panel(
                panel, f, utilizations, sets_per_point, seed
            )
            results[f"{key}-f{f:g}"] = result
    return results


def render_fig3_panel(result: ExperimentResult) -> str:
    """ASCII chart of one panel's two acceptance-ratio curves."""
    xs = result.column("utilization")
    with_adaptation = list(zip(xs, result.column("acceptance_with")))
    without = list(zip(xs, result.column("acceptance_without")))
    return line_chart(
        {"with adaptation": with_adaptation, "without": without},
        title=result.description,
        x_label="system utilization U",
        y_label="acceptance ratio",
    )
