"""Experiment drivers reproducing every table and figure of the paper."""

from repro.experiments.ascii_chart import line_chart
from repro.experiments.backend_comparison import (
    render_backend_comparison,
    run_backend_comparison,
)
from repro.experiments.fig1 import render_fig1, run_fig1
from repro.experiments.fig2 import render_fig2, run_fig2
from repro.experiments.fig3 import (
    DEFAULT_FAILURE_PROBABILITIES,
    DEFAULT_UTILIZATIONS,
    FIG3_PANELS,
    PanelConfig,
    render_fig3_panel,
    run_fig3,
    run_fig3_panel,
)
from repro.experiments.fms_sweep import (
    adaptation_sweep,
    render_sweep_chart,
    u_mc_degrade,
    u_mc_kill,
)
from repro.experiments.results import ExperimentResult
from repro.experiments.sensitivity import (
    sweep_degradation_factor,
    sweep_operation_hours,
    sweep_p_hi,
)
from repro.experiments.overhead_study import run_overhead_study
from repro.experiments.validation_campaign import run_validation_campaign
from repro.experiments.tables import (
    example31_taskset,
    table1,
    table2_example31,
    table3_example41,
    table4_fms,
)

__all__ = [
    "line_chart",
    "render_backend_comparison",
    "run_backend_comparison",
    "render_fig1",
    "run_fig1",
    "render_fig2",
    "run_fig2",
    "DEFAULT_FAILURE_PROBABILITIES",
    "DEFAULT_UTILIZATIONS",
    "FIG3_PANELS",
    "PanelConfig",
    "render_fig3_panel",
    "run_fig3",
    "run_fig3_panel",
    "adaptation_sweep",
    "render_sweep_chart",
    "u_mc_degrade",
    "u_mc_kill",
    "ExperimentResult",
    "sweep_degradation_factor",
    "sweep_operation_hours",
    "sweep_p_hi",
    "run_validation_campaign",
    "run_overhead_study",
    "example31_taskset",
    "table1",
    "table2_example31",
    "table3_example41",
    "table4_fms",
]
