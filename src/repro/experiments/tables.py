"""Reproduction of the paper's tables (1-4) and Examples 3.1 / 4.1.

- Table 1: DO-178B PFH requirements (constants of the model);
- Table 2 + Example 3.1: the motivating task set, its minimal re-execution
  profiles, HI-level PFH and inflated utilization;
- Table 3 + Example 4.1: the converted conventional MC task set and its
  EDF-VD schedulability;
- Table 4: the FMS use-case parameters (ranges) and the repository's
  pinned instance.
"""

from __future__ import annotations

from repro.analysis.edf_vd import analyse as edf_vd_analyse
from repro.core.conversion import convert_uniform
from repro.core.profiles import minimal_reexecution_profiles
from repro.experiments.results import ExperimentResult
from repro.gen.fms import canonical_fms
from repro.model.criticality import CriticalityRole, DO178BLevel, DualCriticalitySpec
from repro.model.faults import ReexecutionProfile
from repro.model.task import Task, TaskSet
from repro.safety.pfh import pfh_plain

__all__ = [
    "example31_taskset",
    "table1",
    "table2_example31",
    "table3_example41",
    "table4_fms",
]

#: Failure probability assumed for every job in Examples 3.1 / 4.1.
EXAMPLE31_FAILURE_PROBABILITY = 1e-5


def example31_taskset(
    hi: str = "B", lo: str = "D", failure_probability: float = EXAMPLE31_FAILURE_PROBABILITY
) -> TaskSet:
    """The 5-task motivating example of Table 2.

    ``HI in {A, B, C}`` and ``LO in {D, E}`` per the example's statement;
    the default binding (B, D) matches the derivation in the text
    (``PFH_HI < 1e-7`` requiring ``n_HI = 3``).
    """
    spec = DualCriticalitySpec.from_names(hi, lo)
    parameters = [
        ("tau1", 60.0, 5.0, CriticalityRole.HI),
        ("tau2", 25.0, 4.0, CriticalityRole.HI),
        ("tau3", 40.0, 7.0, CriticalityRole.LO),
        ("tau4", 90.0, 6.0, CriticalityRole.LO),
        ("tau5", 70.0, 8.0, CriticalityRole.LO),
    ]
    tasks = [
        Task(name, period, period, wcet, criticality, failure_probability)
        for name, period, wcet, criticality in parameters
    ]
    return TaskSet(tasks, spec=spec, name="example3.1")


def table1() -> ExperimentResult:
    """Table 1: the DO-178B safety requirements encoded by the library."""
    result = ExperimentResult(
        name="table1",
        description="DO-178B PFH requirements per criticality level",
        columns=["level", "pfh_requirement", "safety_related"],
    )
    for level in sorted(DO178BLevel, reverse=True):
        result.add_row(level.name, level.pfh_ceiling, level.is_safety_related)
    return result


def table2_example31() -> ExperimentResult:
    """Table 2 / Example 3.1: profiles, PFH and utilization of the example.

    Expected values from the paper: minimal HI profile ``n = 3``; HI-level
    PFH ``2.04e-10``; inflated utilization ``1.08595 > 1``.
    """
    taskset = example31_taskset()
    result = ExperimentResult(
        name="table2",
        description="Example 3.1 task set and derived quantities",
        columns=["task", "chi", "T=D", "C", "f"],
    )
    for task in taskset:
        result.add_row(
            task.name,
            task.criticality.name,
            task.period,
            task.wcet,
            task.failure_probability,
        )
    profiles = minimal_reexecution_profiles(taskset)
    assert profiles is not None
    reexecution = ReexecutionProfile.uniform(taskset, profiles.n_hi, profiles.n_lo)
    pfh_hi = pfh_plain(taskset, CriticalityRole.HI, reexecution)
    inflated = profiles.n_hi * taskset.utilization(
        CriticalityRole.HI
    ) + profiles.n_lo * taskset.utilization(CriticalityRole.LO)
    result.extend_notes(
        [
            f"minimal re-execution profiles: n_HI={profiles.n_hi}, "
            f"n_LO={profiles.n_lo} (paper: 3, 1)",
            f"pfh(HI) = {pfh_hi:.3e} (paper: 2.04e-10)",
            f"inflated utilization U = {inflated:.5f} (paper: 1.08595)",
        ]
    )
    return result


def table3_example41() -> ExperimentResult:
    """Table 3 / Example 4.1: converted MC task set, EDF-VD schedulable.

    Expected: HI tasks get ``C(HI) = 3C`` and ``C(LO) = 2C``; LO tasks keep
    their WCETs; the converted set passes the EDF-VD test of eq. (10).
    """
    taskset = example31_taskset()
    mc = convert_uniform(taskset, n_hi=3, n_lo=1, n_prime_hi=2)
    result = ExperimentResult(
        name="table3",
        description="Example 4.1 converted mixed-criticality task set",
        columns=["task", "chi", "T=D", "C(HI)", "C(LO)"],
    )
    for task in mc:
        result.add_row(
            task.name, task.criticality.name, task.period, task.wcet_hi, task.wcet_lo
        )
    analysis = edf_vd_analyse(mc)
    result.extend_notes(
        [
            f"EDF-VD U_MC = {analysis.u_mc:.5f} "
            f"(schedulable: {analysis.schedulable}; paper: schedulable)",
            f"virtual deadline factor x = {analysis.x:.5f}",
        ]
    )
    return result


def table4_fms() -> ExperimentResult:
    """Table 4: the FMS use case — ranges plus the pinned random instance."""
    taskset = canonical_fms()
    result = ExperimentResult(
        name="table4",
        description="FMS use case (Table 4 ranges; pinned instance WCETs)",
        columns=["task", "chi(DO-178B)", "T=D", "C_range", "C_instance"],
    )
    for task in taskset:
        level = taskset.spec.level(task.criticality)  # type: ignore[union-attr]
        c_max = 20 if task.criticality is CriticalityRole.HI else 200
        result.add_row(
            task.name, level.name, task.period, f"(0, {c_max}]", round(task.wcet, 3)
        )
    result.extend_notes(
        [
            f"instance utilization U = {taskset.utilization():.5f}",
            "WCETs drawn uniformly from the Table 4 ranges "
            "(industrial values were not published)",
        ]
    )
    return result
