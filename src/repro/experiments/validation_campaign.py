"""Validation campaign: simulate every FT-S-accepted random system.

The repository's strongest soundness evidence beyond unit tests: generate
random task sets across the utilization range, run FT-S, and for every
*accepted* configuration fire the simulation stress campaign
(:func:`repro.sim.validate.validate_by_simulation`).  Any HI-criticality
deadline miss would falsify the implementation of Theorem 4.1.

This experiment is deliberately expensive; the bench runs a reduced
version and the CLI (``ftmc validate``) exposes the full campaign.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.ftmc import ft_edf_vd, ft_edf_vd_degradation
from repro.experiments.results import ExperimentResult
from repro.gen.taskset import generate_taskset
from repro.model.criticality import DualCriticalitySpec
from repro.sim.validate import validate_by_simulation

__all__ = [
    "run_validation_campaign",
    "validation_point",
    "validation_skeleton",
]


def validation_point(
    mechanism: str,
    point_index: int,
    utilization: float,
    sets_per_point: int = 20,
    runs_per_set: int = 3,
    horizon: float = 120_000.0,
    probability_scale: float = 1000.0,
    lo_level: str = "D",
    degradation_factor: float = 6.0,
    seed: int = 0,
) -> tuple[float, int, int, int, int, int]:
    """One utilization point of the campaign (shardable unit).

    ``point_index`` is the point's position in the utilization sequence;
    it enters the per-set RNG seed, preserving the exact task sets an
    in-process campaign would generate at that position.
    """
    if mechanism not in ("kill", "degrade"):
        raise ValueError(f"unknown mechanism: {mechanism!r}")
    spec = DualCriticalitySpec.from_names("B", lo_level)
    accepted = validated = hi_misses = switches = hi_jobs = 0
    for index in range(sets_per_point):
        rng = np.random.default_rng([seed, point_index, index])
        taskset = generate_taskset(utilization, spec, rng)
        if mechanism == "kill":
            fts = ft_edf_vd(taskset)
        else:
            fts = ft_edf_vd_degradation(taskset, degradation_factor)
        if not fts.success:
            continue
        accepted += 1
        report = validate_by_simulation(
            taskset,
            fts,
            runs=runs_per_set,
            horizon=horizon,
            probability_scale=probability_scale,
            seed=seed + index,
        )
        validated += report.passed
        hi_misses += report.hi_misses
        switches += report.mode_switches
        hi_jobs += report.hi_jobs
    return (utilization, accepted, validated, hi_misses, switches, hi_jobs)


def validation_skeleton(
    mechanism: str,
    runs_per_set: int = 3,
    horizon: float = 120_000.0,
    probability_scale: float = 1000.0,
    lo_level: str = "D",
) -> ExperimentResult:
    """An empty campaign result with the canonical name/columns/notes."""
    result = ExperimentResult(
        name=f"validation-{mechanism}",
        description=(
            "simulation validation of FT-S-accepted systems "
            f"({mechanism}, LO={lo_level}, faults x{probability_scale:g})"
        ),
        columns=[
            "utilization",
            "accepted",
            "validated",
            "hi_misses",
            "mode_switch_runs",
            "hi_jobs",
        ],
    )
    result.extend_notes(
        [
            "'validated' must equal 'accepted' at every point — a HI miss "
            "would falsify the toolchain",
            f"{runs_per_set} randomized runs per accepted system "
            f"({horizon:g} ms each, mixed periodic/jittered arrivals)",
        ]
    )
    return result


def run_validation_campaign(
    utilizations: Sequence[float] = (0.5, 0.7, 0.9),
    sets_per_point: int = 20,
    runs_per_set: int = 3,
    horizon: float = 120_000.0,
    probability_scale: float = 1000.0,
    lo_level: str = "D",
    mechanism: str = "kill",
    degradation_factor: float = 6.0,
    seed: int = 0,
) -> ExperimentResult:
    """Run the campaign; every accepted system must simulate miss-free."""
    if mechanism not in ("kill", "degrade"):
        raise ValueError(f"unknown mechanism: {mechanism!r}")
    result = validation_skeleton(
        mechanism, runs_per_set, horizon, probability_scale, lo_level
    )
    for point, utilization in enumerate(utilizations):
        result.add_row(
            *validation_point(
                mechanism,
                point,
                utilization,
                sets_per_point=sets_per_point,
                runs_per_set=runs_per_set,
                horizon=horizon,
                probability_scale=probability_scale,
                lo_level=lo_level,
                degradation_factor=degradation_factor,
                seed=seed,
            )
        )
    return result
