"""Shared machinery for the FMS case-study sweeps (Figs. 1 and 2).

Both figures plot, against the adaptation profile ``n'_HI`` of the HI
tasks, (i) the mixed-criticality utilization ``U_MC`` and (ii) the
LO-level PFH bound — under task killing (Fig. 1) and service degradation
(Fig. 2).

``U_MC`` is evaluated by the closed forms of Algorithm 2 (line 11 for
killing, eq. 11 for degradation), which remain well-defined for the
figure's hypothetical points ``n' > n_HI`` (the paper's x-axis extends to
4 while ``n_HI = 3``); those points carry no runtime semantics — an
instance never executes more than ``n_HI`` times — and are flagged in the
output.
"""

from __future__ import annotations

import math

from repro.analysis.tolerance import utilization_exceeds
from repro.core.ftmc import ft_edf_vd, ft_edf_vd_degradation
from repro.core.profiles import minimal_reexecution_profiles, pfh_lo_adapted
from repro.experiments.ascii_chart import line_chart
from repro.experiments.results import ExperimentResult
from repro.model.criticality import CriticalityRole
from repro.model.task import TaskSet
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = [
    "u_mc_kill",
    "u_mc_degrade",
    "adaptation_sweep",
    "sweep_point",
    "sweep_notes",
    "SWEEP_COLUMNS",
]

#: Column layout shared by the Fig. 1 / Fig. 2 sweeps (and their campaign
#: shards, which compute one row each).
SWEEP_COLUMNS: tuple[str, ...] = (
    "n_prime",
    "u_mc",
    "schedulable",
    "pfh_lo",
    "log10_pfh_lo",
    "safe",
    "hypothetical",
)


def u_mc_kill(taskset: TaskSet, n_hi: int, n_lo: int, n_prime: int) -> float:
    """``U_MC(n')`` of Algorithm 2, lines 8-11 (EDF-VD with killing).

    ``U_MC(n) = max(n*U_HI + U_LO^LO, U_HI^HI + lambda(n) * U_LO^LO)``
    with ``U_HI^HI = n_HI * U_HI``, ``U_LO^LO = n_LO * U_LO`` and
    ``lambda(n) = n * U_HI / (1 - U_LO^LO)``.
    """
    u_hi = taskset.utilization(CriticalityRole.HI)
    u_lo_lo = n_lo * taskset.utilization(CriticalityRole.LO)
    u_hi_hi = n_hi * u_hi
    lo_mode = n_prime * u_hi + u_lo_lo
    if u_lo_lo >= 1.0:
        return math.inf
    lam = n_prime * u_hi / (1.0 - u_lo_lo)
    return max(lo_mode, u_hi_hi + lam * u_lo_lo)


def u_mc_degrade(
    taskset: TaskSet, n_hi: int, n_lo: int, n_prime: int, degradation_factor: float
) -> float:
    """``U_MC(n')`` under service degradation (eq. 11)."""
    if degradation_factor <= 1.0:
        raise ValueError(
            f"degradation factor must be > 1, got {degradation_factor}"
        )
    u_hi = taskset.utilization(CriticalityRole.HI)
    u_lo_lo = n_lo * taskset.utilization(CriticalityRole.LO)
    u_hi_hi = n_hi * u_hi
    lo_mode = n_prime * u_hi + u_lo_lo
    if u_lo_lo >= 1.0:
        return math.inf
    lam = n_prime * u_hi / (1.0 - u_lo_lo)
    if lam >= 1.0:
        return math.inf
    hi_mode = u_hi_hi / (1.0 - lam) + u_lo_lo / (degradation_factor - 1.0)
    return max(lo_mode, hi_mode)


def _checked_mechanism(mechanism: str, degradation_factor: float | None) -> None:
    if mechanism not in ("kill", "degrade"):
        raise ValueError(f"unknown mechanism: {mechanism!r}")
    if mechanism == "degrade" and degradation_factor is None:
        raise ValueError("degradation sweep needs a degradation factor")


def sweep_point(
    taskset: TaskSet,
    mechanism: str,
    n_prime: int,
    operation_hours: float,
    degradation_factor: float | None = None,
) -> tuple:
    """One row of the Fig. 1 / Fig. 2 sweep (columns :data:`SWEEP_COLUMNS`).

    Self-contained — derives the minimal re-execution profiles itself —
    so a campaign shard can evaluate a single ``n'`` point independently
    of the rest of the sweep.
    """
    _checked_mechanism(mechanism, degradation_factor)
    obs_metrics.inc("experiments.sweep.points")
    with obs_trace.span("sweep.point", mechanism=mechanism, n_prime=n_prime):
        profiles = minimal_reexecution_profiles(taskset)
        if profiles is None:
            raise ValueError("task set cannot meet its PFH ceilings at all")
        n_hi, n_lo = profiles.n_hi, profiles.n_lo
        ceiling = taskset.spec.pfh_requirement(CriticalityRole.LO)  # type: ignore[union-attr]
        if mechanism == "kill":
            u_mc = u_mc_kill(taskset, n_hi, n_lo, n_prime)
        else:
            assert degradation_factor is not None
            u_mc = u_mc_degrade(taskset, n_hi, n_lo, n_prime, degradation_factor)
        pfh_lo = pfh_lo_adapted(
            taskset, max(n_hi, n_prime), n_lo, n_prime, mechanism, operation_hours
        )
    return (
        n_prime,
        u_mc,
        not utilization_exceeds(u_mc, 1.0),
        pfh_lo,
        math.log10(pfh_lo) if pfh_lo > 0 else -math.inf,
        pfh_lo < ceiling,
        n_prime > n_hi,
    )


def sweep_notes(
    taskset: TaskSet,
    mechanism: str,
    operation_hours: float,
    degradation_factor: float | None = None,
) -> list[str]:
    """The FT-S summary notes attached to a Fig. 1 / Fig. 2 result."""
    _checked_mechanism(mechanism, degradation_factor)
    profiles = minimal_reexecution_profiles(taskset)
    if profiles is None:
        raise ValueError("task set cannot meet its PFH ceilings at all")
    if mechanism == "kill":
        fts = ft_edf_vd(taskset, operation_hours=operation_hours)
    else:
        assert degradation_factor is not None
        fts = ft_edf_vd_degradation(
            taskset, degradation_factor, operation_hours=operation_hours
        )
    return [
        f"re-execution profiles: n_HI={profiles.n_hi}, n_LO={profiles.n_lo} "
        "(paper: 3, 2)",
        f"FT-S ({fts.backend_name}): "
        + (
            f"SUCCESS with n'_HI={fts.adaptation}"
            if fts.success
            else f"FAILURE ({fts.failure.value})"  # type: ignore[union-attr]
        ),
        f"n1_HI={fts.n1_hi} (minimal safe), n2_HI={fts.n2_hi} "
        "(maximal schedulable)",
    ]


def adaptation_sweep(
    taskset: TaskSet,
    mechanism: str,
    operation_hours: float,
    degradation_factor: float | None = None,
    n_prime_max: int = 4,
    name: str = "sweep",
    description: str = "",
) -> ExperimentResult:
    """Sweep ``n'_HI`` and record ``U_MC`` + LO-level PFH (Fig. 1 / Fig. 2).

    The re-execution profiles are the minimal safe profiles of line 2
    (``n_HI = 3, n_LO = 2`` for the FMS).  For hypothetical points
    ``n' > n_HI``, the LO-safety bound is still evaluated (only the LO
    tasks' ``n_i`` and the HI adaptation profile enter eqs. 5/7) and
    ``U_MC`` comes from the closed form.
    """
    _checked_mechanism(mechanism, degradation_factor)
    result = ExperimentResult(
        name=name,
        description=description,
        columns=list(SWEEP_COLUMNS),
    )
    for n_prime in range(1, n_prime_max + 1):
        result.add_row(
            *sweep_point(
                taskset, mechanism, n_prime, operation_hours, degradation_factor
            )
        )
    result.extend_notes(
        sweep_notes(taskset, mechanism, operation_hours, degradation_factor)
    )
    return result


def render_sweep_chart(result: ExperimentResult, title: str) -> str:
    """ASCII rendering of a sweep: U_MC and log10 pfh(LO) vs n'."""
    n_primes = result.column("n_prime")
    u_series = list(zip(n_primes, result.column("u_mc")))
    pfh_series = [
        (n, p) for n, p in zip(n_primes, result.column("pfh_lo")) if p > 0
    ]
    chart_u = line_chart(
        {"U_MC": u_series}, title=f"{title}: U_MC vs n'", x_label="n'_HI",
        y_label="U_MC",
    )
    chart_p = line_chart(
        {"pfh(LO)": pfh_series},
        log_y=True,
        title=f"{title}: pfh(LO) vs n'",
        x_label="n'_HI",
        y_label="pfh(LO)",
    )
    return f"{chart_u}\n\n{chart_p}"


__all__.append("render_sweep_chart")
