"""Performance baselines: the machinery behind ``ftmc bench``.

Measures the demand-bound kernels and the end-to-end experiment hot paths
against their scalar reference implementations and records the results as
a ``BENCH_<date>.json`` artifact (see ``docs/performance.md``).
"""

from repro.perf.bench import (
    PLAN_FLOORS,
    QPS_FLOORS,
    SCHEMA,
    SPEEDUP_FLOORS,
    check_report,
    render_report,
    run_benchmarks,
    write_report,
)

__all__ = [
    "PLAN_FLOORS",
    "QPS_FLOORS",
    "SCHEMA",
    "SPEEDUP_FLOORS",
    "check_report",
    "render_report",
    "run_benchmarks",
    "write_report",
]
