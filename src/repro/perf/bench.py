"""Headless performance benchmarks for the schedulability hot paths.

The suite pits the optimized implementations (NumPy kernels of
:mod:`repro.analysis.kernels` plus the schedulability caching of
:mod:`repro.core.backends`) against the scalar reference paths, in one
process, by toggling ``REPRO_NO_NUMPY`` between measurements — the same
escape hatch users have.  The sweep-level subjects (``fig3_sweep``,
``profile_search_batch``) pair against ``REPRO_NO_BATCH`` instead, so
their ratios isolate the cross-task-set batch tier from the per-set
NumPy win.  Three kinds of numbers are recorded:

- **kernels**: ns/op of the individual demand-bound primitives
  (``demand_bound_function``, ``dbf_batch``, the PDC, QPA);
- **end_to_end**: wall-clock of ``dbf_mc_analyse``, of a Fig. 3
  acceptance-ratio point / the Fig. 1 sweep — the paths the experiment
  campaigns actually spend their time in — and of a full campaign run
  at ``--jobs 1`` versus ``--jobs 4`` (the worker-pool speedup);
- **speedups**: optimized over reference, with the regression floors of
  :data:`SPEEDUP_FLOORS` enforced by the ``ftmc bench`` exit code.

Timing uses ``time.perf_counter_ns`` with adaptive repetition: each
subject runs until :data:`MIN_TIME_ENV` milliseconds (default 200, quick
mode 40) of cumulative runtime, after one untimed warm-up call.  The
schedulability cache is cleared before every repetition of both variants,
so the reported end-to-end numbers show the *within-call* benefit of
caching and vectorization, not a warm cache artifact.

This module never prints (rule FTMCC04) and writes its artifact through
:func:`repro.io.atomic_write_json` (rule FTMCC05); the CLI renders
:func:`render_report` and maps :func:`run_benchmarks` results to exit
codes.
"""

from __future__ import annotations

import os
import tempfile
import time
from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

from repro.analysis import kernels
from repro.analysis.dbf_mc import dbf_mc_analyse
from repro.api.server import ApiServer
from repro.api.service import AnalysisService
from repro.api.types import SchedulabilityRequest
from repro.analysis.edf import (
    Workload,
    demand_bound_function,
    edf_processor_demand_test,
    edf_processor_demand_test_reference,
)
from repro.analysis.qpa import qpa_schedulable
from repro.core.backends import (
    clear_schedulability_cache,
    schedulability_cache_info,
)
from repro.core.backends import make_backend
from repro.core.conversion import convert_uniform
from repro.core.profiles import (
    maximal_adaptation_profile,
    minimal_adaptation_profile,
    minimal_reexecution_profiles,
)
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig3 import (
    FIG3_OPERATION_HOURS,
    FIG3_PANELS,
    fig3_point,
)
from repro.gen.taskset import PAPER_CONFIG, GeneratorConfig, generate_taskset
from repro.io import atomic_write_json
from repro.model.criticality import DualCriticalitySpec
from repro.planner import DEFAULT_MAX_NODES, PlanOptions, plan_partition
from repro.runner.supervisor import run_campaign

__all__ = [
    "MIN_TIME_ENV",
    "PLAN_FLOORS",
    "QPS_FLOORS",
    "SCHEMA",
    "SPEEDUP_FLOORS",
    "check_report",
    "render_report",
    "run_benchmarks",
    "write_report",
]

#: Report format identifier embedded in every artifact.
SCHEMA: str = "ftmc-bench/1"

#: Environment override for the per-subject measurement budget (ms).
#: Tests set it to a tiny value so the smoke run stays fast.
MIN_TIME_ENV: str = "FTMC_BENCH_MIN_TIME_MS"

#: Regression floors on the optimized/reference speedups.  ``ftmc bench``
#: exits 1 when a measured speedup falls below its floor (only when the
#: NumPy kernels are available — without them there is nothing to guard).
SPEEDUP_FLOORS: dict[str, float] = {
    "dbf_mc_analyse": 3.0,
    "fig3_point": 2.0,
    "fig3_sweep": 3.0,
    # The quick-mode corpus is tiny and set generation (common to both
    # variants) dilutes the ratio; full-shape runs measure ~2.5x.
    "profile_search_batch": 1.3,
    "campaign_jobs4": 2.0,
}

#: Throughput floors (queries/second) on the ``repro.api`` facade under
#: a warm verdict cache — the load a resident ``ftmc serve`` process is
#: expected to sustain.  Deliberately conservative: a warm verdict is a
#: dict lookup plus request plumbing, so dropping below the floor means
#: the facade grew a per-request cost, not that the machine is slow.
#: Guarded by the same ``ftmc bench`` exit code as the speedup floors.
QPS_FLOORS: dict[str, float] = {
    "api_schedulability_warm": 2000.0,
}

#: Throughput floor (plans/second) on the heuristic planning portfolio
#: against a *cold* verdict cache — the configuration every campaign
#: shard and ``ftmc plan`` invocation pays.  The exact branch-and-bound
#: is reported alongside but not guarded: its node count (and therefore
#: its runtime) depends on how adversarial the instance is, which is a
#: property of the workload, not a regression.  Guarded by the same
#: ``ftmc bench`` exit code as the other floors.
PLAN_FLOORS: dict[str, float] = {
    "plan_portfolio": 20.0,
}


def _min_time_ns(quick: bool) -> int:
    override = os.environ.get(MIN_TIME_ENV, "")
    if override:
        return max(int(float(override) * 1e6), 1)
    return int((40 if quick else 200) * 1e6)


def _measure(fn: Callable[[], object], budget_ns: int) -> dict:
    """Adaptive timing: repeat ``fn`` until the budget is consumed."""
    fn()  # warm-up: imports, allocator, branch caches
    ops = 0
    elapsed = 0
    while elapsed < budget_ns:
        start = time.perf_counter_ns()
        fn()
        elapsed += time.perf_counter_ns() - start
        ops += 1
    return {
        "ns_per_op": elapsed / ops,
        "ops": ops,
        "total_ms": elapsed / 1e6,
    }


@contextmanager
def _scalar_reference() -> Iterator[None]:
    """Force the scalar reference paths for the duration of the block."""
    previous = os.environ.get(kernels.NO_NUMPY_ENV)
    os.environ[kernels.NO_NUMPY_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[kernels.NO_NUMPY_ENV]
        else:
            os.environ[kernels.NO_NUMPY_ENV] = previous


@contextmanager
def _per_set_reference() -> Iterator[None]:
    """Disable only the sweep-batch tier for the duration of the block.

    The per-set NumPy kernels stay on, so a pair measured against this
    reference isolates the cross-task-set batching win (stacked PDC
    sweeps, uniform-series profile scans, the breakpoint pfh evaluator)
    from the scalar-vs-NumPy win that :func:`_scalar_reference` prices.
    """
    previous = os.environ.get(kernels.NO_BATCH_ENV)
    os.environ[kernels.NO_BATCH_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            del os.environ[kernels.NO_BATCH_ENV]
        else:
            os.environ[kernels.NO_BATCH_ENV] = previous


def _fresh(fn: Callable[[], object]) -> Callable[[], object]:
    """Wrap ``fn`` to run against a cold schedulability cache."""

    def wrapped() -> object:
        clear_schedulability_cache()
        return fn()

    return wrapped


def _bench_pair(
    fn: Callable[[], object], budget_ns: int
) -> tuple[dict, dict]:
    """Measure ``fn`` optimized and on the scalar reference path."""
    optimized = _measure(_fresh(fn), budget_ns)
    with _scalar_reference():
        reference = _measure(_fresh(fn), budget_ns)
    return optimized, reference


#: Many small-utilization tasks, half of them HI — the regime where the
#: scalar per-task loops hurt most and the vectorized QPA/PDC kernels pay
#: off.  (Paper-config sets at moderate utilization have ~5 tasks, where
#: array dispatch overhead hides the kernels' benefit.)
_MC_CORPUS_CONFIG = GeneratorConfig(u_min=0.004, u_max=0.02, p_hi=0.5)


def _corpus_workload(seed: int, utilization: float) -> list[Workload]:
    """A deterministic constrained-deadline workload for the PDC/QPA."""
    gen = np.random.default_rng(seed)
    spec = DualCriticalitySpec.from_names("B", "C")
    taskset = generate_taskset(
        utilization, spec, gen, config=_MC_CORPUS_CONFIG
    )
    # Constrain the deadlines but keep the utilization at the target —
    # an infeasible workload would be rejected by the utilization bound
    # before either sweep runs.
    return [Workload(t.period, 0.8 * t.period, t.wcet) for t in taskset]


def _corpus_mc(seed: int, utilization: float):
    """A deterministic converted MC set exercising ``dbf_mc_analyse``."""
    gen = np.random.default_rng(seed)
    spec = DualCriticalitySpec.from_names("B", "C")
    taskset = generate_taskset(utilization, spec, gen, config=_MC_CORPUS_CONFIG)
    # n_lo = n' = 1 keeps the converted LO utilization equal to the target
    # (higher settings double it past 1 and the scan rejects immediately,
    # measuring nothing but setup overhead).
    return convert_uniform(taskset, n_hi=2, n_lo=1, n_prime_hi=1)


def run_benchmarks(quick: bool = False, seed: int = 0) -> dict:
    """Run the full suite and return the report dictionary.

    ``quick`` shrinks the measurement budget and the end-to-end problem
    sizes (the CI smoke configuration); the schema is identical.
    """
    budget = _min_time_ns(quick)
    numpy_active = kernels.numpy_enabled()
    report: dict = {
        "schema": SCHEMA,
        "date": time.strftime("%Y-%m-%d"),
        "quick": quick,
        "seed": seed,
        "numpy": numpy_active,
        "budget_ms_per_subject": budget / 1e6,
        "kernels": {},
        "end_to_end": {},
        "speedups": {},
    }

    # --- kernel microbenchmarks -----------------------------------------
    workload = _corpus_workload(seed, utilization=0.85)
    horizon = max(w.deadline for w in workload) * 8.0
    instants = np.linspace(1.0, horizon, 4096)
    mid_t = float(instants[len(instants) // 2])

    report["kernels"]["demand_bound_function"] = _measure(
        lambda: demand_bound_function(workload, mid_t), budget
    )
    if numpy_active:
        arrays = kernels.workload_arrays(workload)
        batch = _measure(
            lambda: kernels.dbf_batch(*arrays, instants), budget
        )
        batch["ns_per_point"] = batch["ns_per_op"] / len(instants)
        report["kernels"]["dbf_batch"] = batch

    pdc_opt = _measure(lambda: edf_processor_demand_test(workload), budget)
    pdc_ref = _measure(
        lambda: edf_processor_demand_test_reference(workload), budget
    )
    report["kernels"]["pdc"] = pdc_opt
    report["kernels"]["pdc_reference"] = pdc_ref
    report["speedups"]["pdc"] = pdc_ref["ns_per_op"] / pdc_opt["ns_per_op"]
    report["kernels"]["qpa"] = _measure(
        lambda: qpa_schedulable(workload), budget
    )

    # --- end-to-end: the dbf-mc backend ---------------------------------
    mc = _corpus_mc(seed + 1, utilization=0.6)
    opt, ref = _bench_pair(lambda: dbf_mc_analyse(mc), budget)
    report["end_to_end"]["dbf_mc_analyse"] = opt
    report["end_to_end"]["dbf_mc_analyse_reference"] = ref
    report["speedups"]["dbf_mc_analyse"] = (
        ref["ns_per_op"] / opt["ns_per_op"]
    )

    # --- end-to-end: one Fig. 3 acceptance-ratio point ------------------
    sets = 4 if quick else 16

    def point() -> tuple:
        return fig3_point(
            FIG3_PANELS["b"],
            failure_probability=1e-5,
            point_index=9,
            utilization=0.85,
            sets_per_point=sets,
            seed=seed,
        )

    opt, ref = _bench_pair(point, budget)
    report["end_to_end"]["fig3_point"] = {**opt, "sets_per_point": sets}
    report["end_to_end"]["fig3_point_reference"] = {
        **ref,
        "sets_per_point": sets,
    }
    report["speedups"]["fig3_point"] = ref["ns_per_op"] / opt["ns_per_op"]

    # --- end-to-end: a Fig. 3 mini-sweep, batch tier vs per-set ---------
    # Multiple panels x utilizations in one process, the shape a campaign
    # shard sequence takes.  The reference keeps the per-set NumPy kernels
    # (``REPRO_NO_BATCH``), so the ratio prices exactly what the sweep
    # batch tier adds: stacked baseline PDC sweeps, the uniform-series
    # line-8 scan, and the breakpoint pfh(LO) evaluator with its monotone
    # line-4 pre-check.
    sweep_sets = 3 if quick else 8
    sweep_panels = ("a", "b") if quick else ("a", "b", "c", "d")
    sweep_points = (0.70, 0.90)

    def sweep() -> None:
        for key in sweep_panels:
            for point_index, utilization in enumerate(sweep_points):
                fig3_point(
                    FIG3_PANELS[key],
                    failure_probability=1e-3,
                    point_index=point_index,
                    utilization=utilization,
                    sets_per_point=sweep_sets,
                    seed=seed,
                )

    sweep_shape = {
        "panels": len(sweep_panels),
        "points_per_panel": len(sweep_points),
        "sets_per_point": sweep_sets,
    }
    opt = _measure(_fresh(sweep), budget)
    with _per_set_reference():
        ref = _measure(_fresh(sweep), budget)
    report["end_to_end"]["fig3_sweep"] = {**opt, **sweep_shape}
    report["end_to_end"]["fig3_sweep_per_set"] = {**ref, **sweep_shape}
    report["speedups"]["fig3_sweep"] = ref["ns_per_op"] / opt["ns_per_op"]

    # --- end-to-end: the Algorithm 1 profile searches, batch vs per-set -
    # Lines 2, 4 and 8 back-to-back on fresh LO-safety-related sets (the
    # regime where the line-4 pfh(LO) scan dominates).  Sets are generated
    # inside the subject so the per-task-set memos start cold on every
    # repetition for both variants; generation cost is common to both
    # sides and only biases the ratio toward 1.
    search_sets = 3 if quick else 8
    search_spec = DualCriticalitySpec.from_names("B", "C")
    search_backend = make_backend("edf-vd")

    def profile_search() -> None:
        for set_index in range(search_sets):
            rng = np.random.default_rng([seed + 11, set_index])
            taskset = generate_taskset(0.9, search_spec, rng, PAPER_CONFIG)
            profiles = minimal_reexecution_profiles(taskset)
            if profiles is None:
                continue
            minimal_adaptation_profile(
                taskset, profiles.n_hi, profiles.n_lo, "kill",
                FIG3_OPERATION_HOURS,
            )
            maximal_adaptation_profile(
                taskset, profiles.n_hi, profiles.n_lo, search_backend
            )

    opt = _measure(_fresh(profile_search), budget)
    with _per_set_reference():
        ref = _measure(_fresh(profile_search), budget)
    report["end_to_end"]["profile_search_batch"] = {
        **opt, "sets": search_sets,
    }
    report["end_to_end"]["profile_search_per_set"] = {
        **ref, "sets": search_sets,
    }
    report["speedups"]["profile_search_batch"] = (
        ref["ns_per_op"] / opt["ns_per_op"]
    )

    # --- end-to-end: the Fig. 1 sweep (optimized only; it is dominated
    # by the safety bounds, not the kernels, and serves as a regression
    # canary for the whole pipeline rather than a speedup subject) -------
    report["end_to_end"]["fig1_sweep"] = _measure(
        _fresh(lambda: run_fig1()), budget
    )

    # --- end-to-end: the campaign runner's worker pool ------------------
    # A single timed run per pool width (the adaptive loop would rerun a
    # multi-second campaign many times over).  The per-worker shard delay
    # makes the shards' wall-clock dominate fork/checkpoint overhead, so
    # the ratio isolates the pool's concurrency win; results are
    # byte-identical across jobs, which run_campaign's own tests pin.
    delay = 0.1 if quick else 0.25

    def timed_campaign(jobs: int, executors: int | None = None) -> int:
        with tempfile.TemporaryDirectory() as tmp:
            start = time.perf_counter_ns()
            run_campaign(
                "tables",
                output_dir=tmp,
                jobs=jobs,
                executors=executors,
                shard_delay=delay,
            )
            return time.perf_counter_ns() - start

    serial_ns = timed_campaign(1)
    pool_ns = timed_campaign(4)
    report["end_to_end"]["campaign_jobs1"] = {
        "ns_per_op": float(serial_ns),
        "ops": 1,
        "total_ms": serial_ns / 1e6,
        "shard_delay_s": delay,
    }
    report["end_to_end"]["campaign_jobs4"] = {
        "ns_per_op": float(pool_ns),
        "ops": 1,
        "total_ms": pool_ns / 1e6,
        "shard_delay_s": delay,
    }
    report["speedups"]["campaign_jobs4"] = serial_ns / pool_ns

    # Subprocess-executor topology: same shards over two worker groups.
    # Reported (the transport tax is worker-group spawn + pipe framing)
    # but not floor-guarded — spawn latency is machine-dependent in a
    # way the in-process ratio is not.
    exec_ns = timed_campaign(4, executors=2)
    report["end_to_end"]["campaign_exec2"] = {
        "ns_per_op": float(exec_ns),
        "ops": 1,
        "total_ms": exec_ns / 1e6,
        "shard_delay_s": delay,
    }
    report["speedups"]["campaign_exec2"] = serial_ns / exec_ns

    # --- the repro.api facade + ftmc serve front-end --------------------
    report["api"] = _bench_api(seed + 2, budget)

    # --- the partitioned planner (repro.planner) ------------------------
    report["plan"] = _bench_plan(seed + 3, budget)

    report["cache"] = schedulability_cache_info()
    if numpy_active:
        failures: dict[str, dict] = {
            name: {"speedup": report["speedups"][name], "floor": floor}
            for name, floor in SPEEDUP_FLOORS.items()
            if report["speedups"][name] < floor
        }
        for name, floor in QPS_FLOORS.items():
            qps = report["api"][name]["qps"]
            if qps < floor:
                failures[name] = {"qps": qps, "floor_qps": floor}
        for name, floor in PLAN_FLOORS.items():
            qps = report["plan"][name]["qps"]
            if qps < floor:
                failures[name] = {"qps": qps, "floor_qps": floor}
        report["guard"] = {"passed": not failures, "failures": failures}
    else:
        report["guard"] = {"passed": None, "failures": {}}
    return report


def _bench_api(seed: int, budget_ns: int) -> dict:
    """Facade and HTTP round-trip load numbers for ``ftmc serve``.

    Both subjects run against a *warm* verdict cache — the steady state
    of a resident server — so they price the facade plumbing (request
    objects, spans, dispatch; plus socket + JSON framing for the HTTP
    row), not the schedulability analysis itself.  Only the in-process
    row is floor-guarded (:data:`QPS_FLOORS`): loopback socket latency
    varies across machines in a way the facade's own overhead does not.
    """
    gen = np.random.default_rng(seed)
    spec = DualCriticalitySpec.from_names("B", "C")
    taskset = generate_taskset(0.6, spec, gen, config=_MC_CORPUS_CONFIG)
    request = SchedulabilityRequest(taskset=taskset, n_hi=2, n_lo=1,
                                    n_prime_hi=1)
    service = AnalysisService()
    clear_schedulability_cache()
    section: dict = {}

    # Prime the memo: the subject is the *warm* steady state, and under
    # the tiny CI measurement budgets the single cold miss would
    # otherwise dominate the mean.
    service.schedulability(request)
    entry = _measure(lambda: service.schedulability(request), budget_ns)
    entry["qps"] = 1e9 / entry["ns_per_op"]
    section["api_schedulability_warm"] = entry

    import http.client
    import json as _json

    from repro.io import taskset_to_dict

    body = _json.dumps(
        {"taskset": taskset_to_dict(taskset), "n_hi": 2, "n_lo": 1,
         "n_prime_hi": 1}
    ).encode("utf-8")
    with ApiServer(service=service) as server:
        conn = http.client.HTTPConnection(server.host, server.port)

        def round_trip() -> None:
            conn.request(
                "POST", "/v1/schedulability", body,
                {"Content-Type": "application/json"},
            )
            conn.getresponse().read()

        try:
            entry = _measure(round_trip, budget_ns)
        finally:
            conn.close()
    entry["qps"] = 1e9 / entry["ns_per_op"]
    section["serve_schedulability_http"] = entry
    return section


def _bench_plan(seed: int, budget_ns: int) -> dict:
    """Partitioned-planner throughput on a paper-config two-core instance.

    Both subjects run against a *cold* verdict cache (cleared before
    every repetition) because that is how the planner is actually used:
    campaign shards and ``ftmc plan`` invocations each see fresh task
    sets.  ``plan_portfolio`` prices the heuristic packing portfolio
    alone (the floor-guarded production path); ``plan_exact`` adds the
    branch-and-bound confirmation pass and is reported unguarded — its
    cost tracks the instance's node count, not the code's efficiency.
    """
    gen = np.random.default_rng(seed)
    spec = DualCriticalitySpec.from_names("B", "D")
    taskset = generate_taskset(1.4, spec, gen, config=PAPER_CONFIG)
    mc = convert_uniform(taskset, n_hi=1, n_lo=1, n_prime_hi=1)
    backend = make_backend("edf-vd")
    section: dict = {}

    portfolio_only = PlanOptions(exact=False)
    entry = _measure(
        _fresh(lambda: plan_partition(mc, 2, backend, portfolio_only)),
        budget_ns,
    )
    entry["qps"] = 1e9 / entry["ns_per_op"]
    section["plan_portfolio"] = entry

    with_exact = PlanOptions(exact=True, max_nodes=DEFAULT_MAX_NODES)
    entry = _measure(
        _fresh(lambda: plan_partition(mc, 2, backend, with_exact)),
        budget_ns,
    )
    entry["qps"] = 1e9 / entry["ns_per_op"]
    section["plan_exact"] = entry
    return section


def write_report(report: dict, output_dir: str) -> str:
    """Persist ``report`` as ``<output_dir>/BENCH_<date>.json``."""
    os.makedirs(output_dir, exist_ok=True)
    path = os.path.join(output_dir, f"BENCH_{report['date']}.json")
    atomic_write_json(path, report)
    return path


def _is_number(value: object) -> bool:
    """Strictly numeric (``bool`` is an ``int`` but not a measurement)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_report(report: object) -> list[str]:
    """Offline validation of a bench artifact (``ftmc bench --check``).

    Returns problem strings; empty means the report is well-formed and
    every committed floor holds.  Every row of every section must carry a
    numeric ``ns_per_op`` — malformed rows (truncated artifacts,
    hand-edited baselines, schema drift) are reported individually
    instead of raising ``KeyError`` or silently passing.  Floors are only
    enforced for reports measured with the NumPy kernels active, matching
    the live guard in :func:`run_benchmarks`.
    """
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    problems: list[str] = []
    schema = report.get("schema")
    if schema != SCHEMA:
        problems.append(
            f"unrecognised schema {schema!r} (expected {SCHEMA!r})"
        )
    for section in ("kernels", "end_to_end", "api", "plan"):
        rows = report.get(section)
        if rows is None:
            continue
        if not isinstance(rows, dict):
            problems.append(f"section {section!r} is not an object")
            continue
        for name, entry in sorted(rows.items()):
            if not isinstance(entry, dict) or not _is_number(
                entry.get("ns_per_op")
            ):
                problems.append(
                    f"{section}.{name}: missing or non-numeric ns_per_op"
                )
    speedups = report.get("speedups")
    if not isinstance(speedups, dict):
        problems.append("section 'speedups' is missing or not an object")
        speedups = {}
    if report.get("numpy"):
        for name, floor in sorted(SPEEDUP_FLOORS.items()):
            value = speedups.get(name)
            if not _is_number(value):
                problems.append(
                    f"speedups.{name}: missing or non-numeric speedup"
                )
            elif value < floor:
                problems.append(
                    f"speedups.{name}: {value:.2f}x below floor {floor:g}x"
                )
        for section, floors in (("api", QPS_FLOORS), ("plan", PLAN_FLOORS)):
            rows = report.get(section)
            rows = rows if isinstance(rows, dict) else {}
            for name, floor in sorted(floors.items()):
                entry = rows.get(name)
                qps = entry.get("qps") if isinstance(entry, dict) else None
                if not _is_number(qps):
                    problems.append(
                        f"{section}.{name}: missing or non-numeric qps"
                    )
                elif qps < floor:
                    problems.append(
                        f"{section}.{name}: {qps:.0f} qps below floor "
                        f"{floor:g} qps"
                    )
    return problems


def render_report(report: dict) -> str:
    """Human-readable summary of a benchmark report."""
    lines = [
        f"ftmc bench — {report['date']}"
        f"{' (quick)' if report['quick'] else ''}"
        f" — numpy kernels {'on' if report['numpy'] else 'OFF'}",
        "",
        f"{'subject':<28}{'ns/op':>14}{'ops':>8}",
        "-" * 50,
    ]
    for section in ("kernels", "end_to_end", "api", "plan"):
        for name, entry in report.get(section, {}).items():
            lines.append(
                f"{name:<28}{entry['ns_per_op']:>14.0f}{entry['ops']:>8}"
            )
    lines.append("")
    for section, floors in (("api", QPS_FLOORS), ("plan", PLAN_FLOORS)):
        for name, entry in report.get(section, {}).items():
            floor = floors.get(name)
            suffix = f" (floor {floor:g} qps)" if floor is not None else ""
            lines.append(
                f"throughput {name}: {entry['qps']:.0f} qps{suffix}"
            )
    for name, value in report["speedups"].items():
        floor = SPEEDUP_FLOORS.get(name)
        suffix = f" (floor {floor:g}x)" if floor is not None else ""
        lines.append(f"speedup {name}: {value:.2f}x{suffix}")
    guard = report["guard"]
    if guard["passed"] is None:
        lines.append("perf guard: skipped (NumPy kernels unavailable)")
    elif guard["passed"]:
        lines.append("perf guard: PASS")
    else:
        lines.append(f"perf guard: FAIL {sorted(guard['failures'])}")
    return "\n".join(lines)
