"""The :class:`Partition` value type: an assignment of tasks to cores.

Historically defined in :mod:`repro.multicore.partition` (which still
re-exports it); it lives with the planner now because every planning
stage produces and consumes it, while :mod:`repro.multicore` merely
wraps planning into the FT-MP driver.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.mc_task import MCTaskSet

__all__ = ["Partition"]


@dataclass(frozen=True)
class Partition:
    """An assignment of MC tasks to processors."""

    processors: tuple[MCTaskSet, ...]

    @property
    def m(self) -> int:
        return len(self.processors)

    def processor_of(self, task_name: str) -> int:
        for index, processor in enumerate(self.processors):
            if any(t.name == task_name for t in processor):
                return index
        raise KeyError(task_name)

    def task_names(self) -> tuple[tuple[str, ...], ...]:
        """Per-core task names in placement order (the wire shape)."""
        return tuple(
            tuple(t.name for t in processor) for processor in self.processors
        )

    def describe(self) -> str:
        lines = []
        for index, processor in enumerate(self.processors):
            names = ", ".join(t.name for t in processor)
            lines.append(
                f"P{index}: U_HI^HI={processor.u_hi_hi:.3f} "
                f"U_LO^LO={processor.u_lo_lo:.3f} [{names}]"
            )
        return "\n".join(lines)
