"""The heuristic packing portfolio: FFD/BFD/WFD over pluggable size keys.

Every packer shares the same shape: order the tasks by decreasing size
(HI tasks first, task name as the final tie-breaker, so the packing is a
pure function of the task parameters), then place each task on a core
chosen among those whose accumulated set still passes the uniprocessor
backend test.  The *fit rules* differ only in how they rank the cores:

``ffd``
    first feasible core in index order — the classic baseline;
``bfd``
    the feasible core already carrying the most load (best fit keeps
    fragmentation low, leaving whole cores for the big tasks to come);
``wfd``
    the feasible core carrying the least load (worst fit balances, which
    utilization-style MC tests reward because their per-core bound is a
    max over modes);
``wfd-reexec``
    fault-tolerance-aware worst fit: balance the *re-execution surplus*
    ``sum (C(HI) - C(LO)) / T`` across cores, so no single core absorbs
    all the inflated post-switch demand the mode switch can trigger.

A returned :class:`~repro.multicore.partition.Partition` is proof of
schedulability (every core passed the backend's sufficient test); a
``None`` is *only* a heuristic miss — the exact search
(:mod:`repro.planner.exact`) is what turns misses into verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.backends import SchedulerBackend
from repro.model.criticality import CriticalityRole
from repro.model.mc_task import MCTask, MCTaskSet
from repro.planner.partition import Partition
from repro.planner.sizes import reexecution_surplus, size_key

__all__ = [
    "HeuristicSpec",
    "DEFAULT_PORTFOLIO",
    "pack",
    "run_portfolio",
    "partition_objective",
    "core_load",
]

_FITS = ("ffd", "bfd", "wfd", "wfd-reexec")


@dataclass(frozen=True)
class HeuristicSpec:
    """One portfolio entry: a fit rule plus a size key."""

    fit: str
    size: str

    def __post_init__(self) -> None:
        if self.fit not in _FITS:
            raise ValueError(
                f"unknown fit rule {self.fit!r} (known: {', '.join(_FITS)})"
            )
        size_key(self.size)  # validates the key name

    @property
    def name(self) -> str:
        return f"{self.fit}/{self.size}"


#: The default portfolio, tried in order; the first entries are the
#: cheapest-to-compute classics, the tail the fault-tolerance-aware
#: balancer.  Order matters only for tie-breaking between equally good
#: partitions (the earliest winner is kept).
DEFAULT_PORTFOLIO: tuple[HeuristicSpec, ...] = (
    HeuristicSpec("ffd", "max-util"),
    HeuristicSpec("ffd", "hi-util"),
    HeuristicSpec("ffd", "lo-util"),
    HeuristicSpec("ffd", "density"),
    HeuristicSpec("bfd", "max-util"),
    HeuristicSpec("bfd", "hi-util"),
    HeuristicSpec("bfd", "density"),
    HeuristicSpec("wfd", "max-util"),
    HeuristicSpec("wfd", "hi-util"),
    HeuristicSpec("wfd", "density"),
    HeuristicSpec("wfd-reexec", "max-util"),
)


def core_load(tasks: list[MCTask] | MCTaskSet) -> float:
    """A core's backend-agnostic load: the larger per-mode utilization sum.

    For a converted set, the LO-mode sum is the fault-free demand and the
    HI-mode sum the fully-inflated post-switch demand; either exceeding 1
    already fails every shipped test, and their max is the quantity the
    planner minimises across cores (the partition *makespan*).
    """
    lo = sum(t.utilization(CriticalityRole.LO) for t in tasks)
    hi = sum(t.utilization(CriticalityRole.HI) for t in tasks)
    return max(lo, hi)


def partition_objective(partition: Partition) -> float:
    """The makespan objective: the most loaded core's :func:`core_load`."""
    return max(core_load(processor) for processor in partition.processors)


def ordered_tasks(mc: MCTaskSet, size_name: str) -> list[MCTask]:
    """Decreasing-size order, HI first, task name as the final tie-breaker.

    The name tie-breaker makes the order — and hence every packing built
    on it — a pure function of the task parameters rather than of dict or
    insertion order (the determinism contract the campaign runner needs).
    """
    size = size_key(size_name)
    return sorted(
        mc,
        key=lambda t: (
            t.criticality is not CriticalityRole.HI,  # HI first
            -size(t),
            t.name,
        ),
    )


def pack(
    mc: MCTaskSet,
    m: int,
    backend: SchedulerBackend,
    spec: HeuristicSpec,
) -> Partition | None:
    """Run one portfolio entry; ``None`` on a (merely heuristic) miss."""
    if m < 1:
        raise ValueError(f"need at least one processor, got {m}")
    size = size_key(spec.size)
    bins: list[list[MCTask]] = [[] for _ in range(m)]
    loads = [0.0] * m
    surpluses = [0.0] * m
    for task in ordered_tasks(mc, spec.size):
        if spec.fit == "ffd":
            ranked = range(m)
        elif spec.fit == "bfd":
            ranked = sorted(range(m), key=lambda i: (-loads[i], i))
        elif spec.fit == "wfd":
            ranked = sorted(range(m), key=lambda i: (loads[i], i))
        else:  # wfd-reexec
            ranked = sorted(range(m), key=lambda i: (surpluses[i], loads[i], i))
        placed = False
        for index in ranked:
            candidate = MCTaskSet(bins[index] + [task])
            if backend.is_schedulable_cached(candidate):
                bins[index].append(task)
                loads[index] += size(task)
                surpluses[index] += reexecution_surplus(task)
                placed = True
                break
        if not placed:
            return None
    return Partition(
        processors=tuple(
            MCTaskSet(bin_tasks, name=f"{mc.name}/P{index}")
            for index, bin_tasks in enumerate(bins)
        )
    )


def run_portfolio(
    mc: MCTaskSet,
    m: int,
    backend: SchedulerBackend,
    portfolio: tuple[HeuristicSpec, ...] = DEFAULT_PORTFOLIO,
) -> tuple[Partition | None, HeuristicSpec | None, float]:
    """Try every entry; keep the feasible partition with the best objective.

    Returns ``(partition, winning spec, objective)`` — ``(None, None,
    inf)`` when every entry misses.  Ties go to the earliest entry, so
    the result is independent of anything but ``mc``'s parameters.
    """
    best: Partition | None = None
    best_spec: HeuristicSpec | None = None
    best_objective = float("inf")
    for spec in portfolio:
        partition = pack(mc, m, backend, spec)
        if partition is None:
            continue
        objective = partition_objective(partition)
        if objective < best_objective:
            best, best_spec, best_objective = partition, spec, objective
    return best, best_spec, best_objective
