"""The planning driver: portfolio first, branch-and-bound on top.

:func:`plan_partition` is the one entry point the rest of the library
uses to place a converted task set (Lemma 4.1) on ``m`` cores.  It runs
the heuristic portfolio, then — unless disabled — the exact search
seeded with the portfolio's best objective as incumbent, and merges the
two into a single :class:`PlanResult` with three-valued semantics:

- ``schedulable`` — some partition passes every per-core backend test
  (found by either stage; the partition is the proof);
- ``proven_infeasible`` — the exact search exhausted the assignment tree
  without a solution, so *no* partition passes the backend's sufficient
  test (see :mod:`repro.planner.exact` for the monotonicity assumption
  this rests on);
- ``inconclusive`` — neither: the portfolio missed and the exact search
  was disabled or ran out of its node budget.

Because the exact stage starts from the heuristic incumbent, its verdict
can only confirm or improve the heuristic one — a set the portfolio
schedules is never "lost" by the optimizer, which is the domination
property the soundness tests pin.

Everything is instrumented under the ``planner.*`` obs namespace
(span ``planner.plan`` with per-stage counters; see
``docs/observability.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.backends import SchedulerBackend
from repro.model.mc_task import MCTaskSet
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.planner.exact import DEFAULT_MAX_NODES, branch_and_bound
from repro.planner.heuristics import (
    DEFAULT_PORTFOLIO,
    HeuristicSpec,
    run_portfolio,
)
from repro.planner.partition import Partition

__all__ = ["PlanOptions", "PlanResult", "plan_partition"]


@dataclass(frozen=True)
class PlanOptions:
    """Knobs for one planning run.

    ``exact=False`` restricts planning to the portfolio (verdicts can
    then never be ``proven_infeasible``); ``max_nodes`` budgets the
    branch-and-bound; ``portfolio`` substitutes the heuristic lineup
    (mainly for tests that need a deliberately weak portfolio).
    """

    exact: bool = True
    max_nodes: int = DEFAULT_MAX_NODES
    portfolio: tuple[HeuristicSpec, ...] = field(default=DEFAULT_PORTFOLIO)


@dataclass(frozen=True)
class PlanResult:
    """Merged heuristic + exact outcome for one ``(mc, m)`` instance."""

    m: int
    backend_name: str
    schedulable: bool
    proven_infeasible: bool
    partition: Partition | None
    #: Winning portfolio entry name, ``"exact"`` when the optimizer found
    #: the adopted partition, ``None`` when nothing was found.
    strategy: str | None
    heuristic_objective: float
    exact_objective: float
    exact_nodes: int
    exact_complete: bool

    @property
    def inconclusive(self) -> bool:
        """Neither schedulable nor proven infeasible."""
        return not self.schedulable and not self.proven_infeasible

    @property
    def gap(self) -> float | None:
        """Heuristic-vs-optimal makespan gap (``None`` when undefined).

        Only meaningful when the exact search completed: then
        ``exact_objective`` is the true optimum and the gap measures how
        much the portfolio over-packed its worst core.
        """
        if not self.exact_complete:
            return None
        if self.heuristic_objective == float("inf"):
            return None
        if self.exact_objective == float("inf"):
            return None
        return self.heuristic_objective - self.exact_objective

    def __bool__(self) -> bool:
        return self.schedulable


def plan_partition(
    mc: MCTaskSet,
    m: int,
    backend: SchedulerBackend,
    options: PlanOptions = PlanOptions(),
) -> PlanResult:
    """Plan ``mc`` onto ``m`` cores under ``backend``'s uniprocessor test."""
    if m < 1:
        raise ValueError(f"need at least one processor, got {m}")
    with obs_trace.span(
        "planner.plan", m=m, tasks=len(mc), backend=backend.name,
        exact=options.exact,
    ):
        obs_metrics.inc("planner.plans")
        heuristic, spec, heuristic_objective = run_portfolio(
            mc, m, backend, options.portfolio
        )
        if heuristic is not None:
            obs_metrics.inc("planner.heuristic.feasible")

        partition = heuristic
        strategy = spec.name if spec is not None else None
        exact_objective = heuristic_objective
        exact_nodes = 0
        exact_complete = False
        proven_infeasible = False

        if options.exact:
            with obs_trace.span("planner.exact", m=m, tasks=len(mc)):
                result = branch_and_bound(
                    mc,
                    m,
                    backend,
                    incumbent_objective=heuristic_objective,
                    max_nodes=options.max_nodes,
                )
            obs_metrics.inc("planner.exact.runs")
            obs_metrics.inc("planner.exact.nodes", result.nodes)
            exact_nodes = result.nodes
            exact_complete = result.complete
            if result.partition is not None:
                partition = result.partition
                strategy = "exact"
                exact_objective = result.objective
                if heuristic is None:
                    obs_metrics.inc("planner.exact.rescues")
            elif heuristic is None and result.complete:
                proven_infeasible = True
                obs_metrics.inc("planner.proven_infeasible")

        schedulable = partition is not None
        if not schedulable and not proven_infeasible:
            obs_metrics.inc("planner.inconclusive")
        gap = (
            heuristic_objective - exact_objective
            if exact_complete
            and heuristic_objective != float("inf")
            and exact_objective != float("inf")
            else None
        )
        if gap is not None:
            obs_metrics.observe("planner.gap", gap)
        return PlanResult(
            m=m,
            backend_name=backend.name,
            schedulable=schedulable,
            proven_infeasible=proven_infeasible,
            partition=partition,
            strategy=strategy,
            heuristic_objective=heuristic_objective,
            exact_objective=exact_objective,
            exact_nodes=exact_nodes,
            exact_complete=exact_complete,
        )
