"""Exact partitioning: branch-and-bound over task-to-core assignments.

Stdlib-only depth-first search in the classic bin-packing shape: tasks
in decreasing :func:`~repro.planner.sizes.task_size` order (name as the
tie-breaker), each placed on one core per level of the tree.  Three
prunings keep the tree tractable:

- **necessary utilization bound** — a core whose per-mode utilization
  sum would exceed 1 cannot pass any correct uniprocessor test, so the
  (much more expensive) backend test is never consulted for it;
- **incumbent bound** — the makespan objective only grows along a
  branch, and ``max(total_lo, total_hi) / m`` lower-bounds every
  completion, so any branch whose bound reaches the best objective found
  so far (seeded with the heuristic portfolio's incumbent) is cut;
- **symmetry breaking** — empty cores are interchangeable, so a task may
  only open the *first* empty core; permutations of a partition are
  explored once.

Soundness relative to the backend: the search prunes a branch as soon as
one core fails the backend test, which is justified because every
shipped test is *monotone under adding tasks to a core* (the module
docstring of :mod:`repro.core.backends` states the obligation) — a core
that fails can never be repaired by the remaining placements.  Under
that assumption an exhausted search (``complete=True``, no solution) is
a proof that **no** partition passes the backend's sufficient test; it
is never a claim about feasibility beyond what that test certifies.

The search is budgeted: ``max_nodes`` caps the number of attempted
placements, and a truncated search reports ``complete=False`` so callers
(:mod:`repro.planner.plan`) degrade the verdict to *inconclusive*
instead of over-claiming infeasibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tolerance import utilization_exceeds
from repro.core.backends import SchedulerBackend
from repro.model.criticality import CriticalityRole
from repro.model.mc_task import MCTask, MCTaskSet
from repro.planner.partition import Partition
from repro.planner.sizes import task_size

__all__ = ["ExactResult", "DEFAULT_MAX_NODES", "branch_and_bound"]

#: Default placement-attempt budget; generous for the study sizes
#: (tens of tasks on <= 8 cores) while bounding adversarial inputs.
DEFAULT_MAX_NODES: int = 50_000


@dataclass(frozen=True)
class ExactResult:
    """Outcome of one branch-and-bound search.

    ``partition``/``objective`` describe the best assignment the *search
    itself* found — ``None``/``inf`` when nothing beat the incumbent it
    was seeded with.  ``complete`` is True when the tree was exhausted
    within the node budget; only then is a solution provably optimal and
    a miss provably infeasible (relative to the backend's test).
    """

    partition: Partition | None
    objective: float
    nodes: int
    complete: bool


def branch_and_bound(
    mc: MCTaskSet,
    m: int,
    backend: SchedulerBackend,
    incumbent_objective: float = float("inf"),
    max_nodes: int = DEFAULT_MAX_NODES,
) -> ExactResult:
    """Search for the minimum-makespan feasible partition of ``mc``.

    ``incumbent_objective`` seeds the bound (pass the heuristic
    portfolio's best); only strictly better assignments are reported, so
    the caller's incumbent remains the answer when the search finds
    nothing — exact verdicts can only *improve* on heuristic ones.
    """
    if m < 1:
        raise ValueError(f"need at least one processor, got {m}")
    if max_nodes < 1:
        raise ValueError(f"need a positive node budget, got {max_nodes}")

    tasks = sorted(mc, key=lambda t: (-task_size(t), t.name))
    total_lo = sum(t.utilization(CriticalityRole.LO) for t in tasks)
    total_hi = sum(t.utilization(CriticalityRole.HI) for t in tasks)
    # Every completion's makespan is at least the per-mode average load.
    floor_bound = max(total_lo, total_hi) / m

    bins: list[list[MCTask]] = [[] for _ in range(m)]
    loads_lo = [0.0] * m
    loads_hi = [0.0] * m

    best_partition: Partition | None = None
    best_objective = incumbent_objective
    nodes = 0
    truncated = False

    def snapshot() -> Partition:
        return Partition(
            processors=tuple(
                MCTaskSet(list(bin_tasks), name=f"{mc.name}/P{index}")
                for index, bin_tasks in enumerate(bins)
            )
        )

    def current_makespan() -> float:
        return max(
            max(lo, hi) for lo, hi in zip(loads_lo, loads_hi)
        ) if m else 0.0

    def dfs(depth: int) -> None:
        nonlocal best_partition, best_objective, nodes, truncated
        if truncated:
            return
        if depth == len(tasks):
            objective = current_makespan()
            if objective < best_objective:
                best_objective = objective
                best_partition = snapshot()
            return
        task = tasks[depth]
        used = sum(1 for bin_tasks in bins if bin_tasks)
        for index in range(min(used + 1, m)):
            nodes += 1
            if nodes > max_nodes:
                truncated = True
                return
            new_lo = loads_lo[index] + task.utilization(CriticalityRole.LO)
            new_hi = loads_hi[index] + task.utilization(CriticalityRole.HI)
            if utilization_exceeds(new_lo) or utilization_exceeds(new_hi):
                continue
            bound = max(current_makespan(), new_lo, new_hi, floor_bound)
            if bound >= best_objective:
                continue
            if not backend.is_schedulable_cached(MCTaskSet(bins[index] + [task])):
                continue
            old_lo, old_hi = loads_lo[index], loads_hi[index]
            bins[index].append(task)
            loads_lo[index] = new_lo
            loads_hi[index] = new_hi
            dfs(depth + 1)
            bins[index].pop()
            loads_lo[index], loads_hi[index] = old_lo, old_hi
            if truncated:
                return

    dfs(0)
    return ExactResult(
        partition=best_partition,
        objective=(
            best_objective if best_partition is not None else float("inf")
        ),
        nodes=nodes,
        complete=not truncated,
    )
