"""Partitioned multicore planning: heuristic portfolio + exact optimizer.

The planning subsystem behind the FT-MP extension
(:mod:`repro.multicore`), the ``ftmc plan`` CLI verb and the ``/v1/plan``
API endpoint.  See ``docs/multicore.md`` for the architecture and the
heuristic-vs-exact verdict semantics.
"""

from repro.planner.exact import DEFAULT_MAX_NODES, ExactResult, branch_and_bound
from repro.planner.heuristics import (
    DEFAULT_PORTFOLIO,
    HeuristicSpec,
    core_load,
    pack,
    partition_objective,
    run_portfolio,
)
from repro.planner.partition import Partition
from repro.planner.plan import PlanOptions, PlanResult, plan_partition
from repro.planner.sizes import SIZE_KEYS, size_key

__all__ = [
    "DEFAULT_MAX_NODES",
    "DEFAULT_PORTFOLIO",
    "ExactResult",
    "HeuristicSpec",
    "Partition",
    "PlanOptions",
    "PlanResult",
    "SIZE_KEYS",
    "branch_and_bound",
    "core_load",
    "pack",
    "partition_objective",
    "plan_partition",
    "run_portfolio",
    "size_key",
]
