"""Pluggable bin-packing size measures for the partition planner.

A *size key* maps an :class:`~repro.model.mc_task.MCTask` of a converted
task set (Lemma 4.1) to the scalar the decreasing-order heuristics sort
by.  Different keys expose different structure to the packers:

- ``lo-util`` — LO-mode utilization ``C(LO)/T``; orders by the load the
  task contributes *before* the mode switch (the EDF-VD LO-mode term);
- ``hi-util`` — HI-mode utilization ``C(HI)/T``; for a converted set the
  HI budgets carry the re-execution inflation ``(n'+1)C``, so this key
  front-loads exactly the tasks that stress the post-switch term;
- ``density`` — ``max(C(LO), C(HI)) / min(D, T)``; the converted sets
  are implicit-deadline, but density stays meaningful for
  constrained-deadline inputs fed to the planner directly;
- ``max-util`` — the largest per-mode utilization, the measure the
  original :func:`repro.multicore.partition.first_fit_decreasing` seed
  used; kept as the portfolio default.

Keys are registered in :data:`SIZE_KEYS`; the portfolio iterates the
registry in sorted-name order so planning is deterministic regardless of
registration order.
"""

from __future__ import annotations

from typing import Callable

from repro.model.criticality import CriticalityRole
from repro.model.mc_task import MCTask

__all__ = ["SIZE_KEYS", "size_key", "task_size", "reexecution_surplus"]

SizeKey = Callable[[MCTask], float]


def _lo_util(task: MCTask) -> float:
    return task.utilization(CriticalityRole.LO)


def _hi_util(task: MCTask) -> float:
    return task.utilization(CriticalityRole.HI)


def _max_util(task: MCTask) -> float:
    return max(_lo_util(task), _hi_util(task))


def _density(task: MCTask) -> float:
    return max(task.wcet_lo, task.wcet_hi) / min(task.deadline, task.period)


#: The pluggable size measures, by registry name.
SIZE_KEYS: dict[str, SizeKey] = {
    "lo-util": _lo_util,
    "hi-util": _hi_util,
    "max-util": _max_util,
    "density": _density,
}


def size_key(name: str) -> SizeKey:
    """Look up a registered size key by name."""
    try:
        return SIZE_KEYS[name]
    except KeyError:
        known = ", ".join(sorted(SIZE_KEYS))
        raise ValueError(f"unknown size key {name!r} (known: {known})") from None


def task_size(task: MCTask) -> float:
    """The default size measure (``max-util``), shared with the exact search."""
    return _max_util(task)


def reexecution_surplus(task: MCTask) -> float:
    """The utilization a task adds only when faults force re-execution.

    For a converted task (Lemma 4.1) ``C(HI) - C(LO)`` is exactly the
    inflated re-execution budget beyond the fault-free demand, so
    ``(C(HI) - C(LO)) / T`` is the extra per-core load the mode switch
    can materialise.  The fault-tolerance-aware packer balances this
    quantity across cores instead of the fault-free load.
    """
    return max(0.0, task.wcet_hi - task.wcet_lo) / task.period
