"""Lint rules for the Vestal (conventional MC) model (FTMC020-023).

Structural per-task rules delegate to
:func:`repro.lint.checks.check_mc_task_fields`; aggregate rules reason
over the :class:`~repro.lint.records.MCTaskSetRecord`.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from repro.lint.checks import check_mc_task_fields
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.records import MCTaskSetRecord
from repro.lint.registry import rule


def _structural(subject: MCTaskSetRecord) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for t in subject.tasks:
        diags.extend(
            check_mc_task_fields(
                t.name, t.period, t.deadline, t.wcet_lo, t.wcet_hi, t.criticality
            )
        )
    return diags


def _select(diags: Iterable[Diagnostic], code: str) -> Iterator[Diagnostic]:
    return (d for d in diags if d.code == code)


@rule(
    "FTMC020",
    Severity.ERROR,
    "mc",
    "Vestal monotonicity violated: C(LO) > C(HI)",
)
def _r_monotonicity(subject: MCTaskSetRecord) -> Iterator[Diagnostic]:
    return _select(_structural(subject), "FTMC020")


@rule(
    "FTMC021",
    Severity.ERROR,
    "mc",
    "LO-criticality task with distinct per-level WCETs",
)
def _r_lo_budgets(subject: MCTaskSetRecord) -> Iterator[Diagnostic]:
    return _select(_structural(subject), "FTMC021")


@rule(
    "FTMC022",
    Severity.WARNING,
    "mc",
    "HI-level budget C(HI) exceeds min(D, T) (the full budget can never "
    "fit in one window)",
)
def _r_hi_budget_window(subject: MCTaskSetRecord) -> Iterator[Diagnostic]:
    for t in subject.tasks:
        window = min(t.deadline, t.period)
        if (
            math.isfinite(t.wcet_hi)
            and math.isfinite(window)
            and window > 0
            and t.wcet_hi > window + 1e-12
        ):
            yield Diagnostic(
                "FTMC022",
                Severity.WARNING,
                t.name,
                f"{t.name}: C(HI)={t.wcet_hi} exceeds min(D, T)="
                f"{window:g}; the HI-mode budget cannot complete within "
                "one window",
                suggestion="reduce the re-execution profile or relax the "
                "deadline",
            )


@rule(
    "FTMC023",
    Severity.ERROR,
    "mc",
    "LO-mode utilization of the converted set exceeds 1",
)
def _r_lo_mode_overutilized(subject: MCTaskSetRecord) -> Iterator[Diagnostic]:
    total = subject.utilization_lo()
    if math.isfinite(total) and total > 1.0 + 1e-9:
        yield Diagnostic(
            "FTMC023",
            Severity.ERROR,
            "taskset",
            f"LO-mode utilization {total:.5f} exceeds 1; no MC scheduler "
            "can even sustain normal operation",
            suggestion="the converted set is trivially unschedulable; "
            "shrink the LO budgets",
        )
