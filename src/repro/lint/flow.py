"""Intraprocedural taint analysis for the determinism rules.

The determinism contract of the campaign runner (byte-identical result
files across ``--jobs``, fresh/resume/chaos — ``docs/robustness.md``) is
a *dataflow* property: no nondeterministic value may flow into a result
or checkpoint write.  This module implements the analysis that checks
it:

- **Sources** introduce taint *kinds*: unseeded RNG draws (``rng``),
  wall-clock reads (``wallclock``), entropy (``entropy``:
  ``os.urandom``/``uuid4``/``secrets``), and set-iteration /
  filesystem-listing order (``order``).
- **Sanitizers** remove kinds: ``sorted()`` (and the order-insensitive
  reductions ``len``/``sum``/``min``/``max``/``any``/``all``) clear
  ``order``; seeding clears ``rng`` at the source (``random.Random(s)``,
  ``np.random.default_rng(s)`` and ``backoff_rng(spec)`` streams are
  sanctioned and never tainted).
- **Sinks** are the result/checkpoint emission points:
  :mod:`repro.io`'s atomic writers, checkpoint records
  (``append_shard``/``checkpoint.create``) and ``ShardOutcome``
  payloads.

The analysis is intraprocedural with *function summaries* for
cross-module flows: each function is summarised as "returns kinds K" and
"forwards parameter p to sink S"; :mod:`repro.lint.taint` iterates
summary computation to a fixpoint and applies summaries at call sites,
so a helper that launders ``random.random()`` through two modules is
still caught.  Every reported flow carries an ordered
:class:`~repro.lint.diagnostics.TracePoint` trace from source to sink.

Soundness posture: the engine is a linter, not a verifier — it
over-approximates propagation (any call forwards its arguments' taint to
its result) and under-approximates aliasing (containers are tainted as
wholes).  False positives are expected to be rare and suppressable via
``lint-baseline.json``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping

from repro.lint.diagnostics import TracePoint
from repro.lint.project import FunctionInfo, ModuleInfo, attribute_chain

__all__ = [
    "KINDS",
    "KIND_DESCRIPTIONS",
    "Taint",
    "TaintedFlow",
    "FunctionSummary",
    "analyze_function",
    "analyze_module_body",
    "module_environment",
]

#: The real taint kinds (``param:*`` pseudo-kinds feed the summaries).
KINDS = ("rng", "wallclock", "entropy", "order")

KIND_DESCRIPTIONS: dict[str, str] = {
    "rng": "unseeded-RNG",
    "wallclock": "wall-clock",
    "entropy": "entropy",
    "order": "iteration-order-dependent",
}

#: Module-level ``random`` draws (on the shared, unseedable-by-shard
#: global generator).  ``random.seed`` mutates, never returns a draw.
_RANDOM_DRAWS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "sample",
    "shuffle", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "lognormvariate", "paretovariate",
    "triangular", "vonmisesvariate", "weibullvariate", "getrandbits",
    "randbytes",
})

#: Seeded-stream constructors: sanctioned *with* a seed argument,
#: an ``rng`` source without one (they seed from system entropy).
_RNG_CONSTRUCTORS = frozenset({
    "random.Random",
    "random.SystemRandom",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
})

_WALLCLOCK_SOURCES = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "repro.obs.clock.wall_time",
    "repro.obs.clock.monotonic", "repro.obs.clock.monotonic_ns",
})

_ENTROPY_SOURCES = frozenset({
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbits", "secrets.randbelow", "secrets.choice",
})

#: Filesystem enumeration order is not specified — an ``order`` source.
_ORDER_SOURCES = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})

#: ``order``-clearing builtins: deterministic results over unordered input.
_ORDER_SANITIZERS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all",
})

#: Leaf names of the crash-safe writers — the result emission sinks.
_WRITER_SINKS = frozenset({
    "atomic_write_text", "atomic_write_json", "append_jsonl",
})

#: Attribute-call sinks: checkpoint records and shard result payloads.
_CHECKPOINT_ATTR_SINKS = frozenset(
    {"append_shard", "append_lease", "append_heartbeat"}
)

#: Functions returning sanctioned per-shard streams (never tainted).
_SANCTIONED_STREAMS = frozenset({"backoff_rng"})

#: The audited provenance stampers (``repro.obs.clock.metadata_stamp``):
#: wall time deliberately flowing into an artifact header.  Their return
#: value is clean by decree — this is the whitelist that lets FTMCD02
#: flag every *other* clock read that reaches a checkpoint or result.
_SANCTIONED_METADATA = frozenset({"metadata_stamp"})

_TRACE_CAP = 8


@dataclass(frozen=True)
class Taint:
    """One taint kind with the trace of how it got here."""

    kind: str
    trace: tuple[TracePoint, ...]

    def step(self, point: TracePoint) -> "Taint":
        if len(self.trace) >= _TRACE_CAP:
            return self
        if self.trace and self.trace[-1].note == point.note:
            return self
        return replace(self, trace=(*self.trace, point))


@dataclass
class Val:
    """Abstract value of one expression: taints plus a shape tag."""

    taints: dict[str, Taint] = field(default_factory=dict)
    #: "set" | "dict" | "rng_seeded" | "rng_unseeded" | None
    tag: str | None = None

    def merge(self, other: "Val") -> "Val":
        taints = dict(self.taints)
        for kind, taint in other.taints.items():
            taints.setdefault(kind, taint)
        return Val(taints=taints, tag=self.tag or other.tag)

    def without(self, kind: str) -> "Val":
        taints = {k: t for k, t in self.taints.items() if k != kind}
        return Val(taints=taints, tag=self.tag)

    @property
    def tainted(self) -> bool:
        return bool(self.taints)


@dataclass(frozen=True)
class TaintedFlow:
    """One source→sink flow found by the analysis."""

    kind: str  #: A real kind, or ``param:<name>`` inside a summary run.
    sink: str  #: Human-readable sink ("append_jsonl(...)").
    lineno: int
    trace: tuple[TracePoint, ...]


@dataclass(frozen=True)
class FunctionSummary:
    """Cross-module summary of one function's taint behaviour."""

    returns: frozenset[str] = frozenset()
    #: ``(param name, sink description)`` pairs.
    param_sinks: tuple[tuple[str, str], ...] = ()


def _location(module: ModuleInfo, node: ast.AST) -> str:
    return f"{module.relpath}:{getattr(node, 'lineno', 0)}"


class _FunctionTaint:
    """One analysis run over one function (or module) body."""

    def __init__(
        self,
        module: ModuleInfo,
        summaries: Mapping[str, FunctionSummary],
        env: dict[str, Val],
        emit: Callable[[TaintedFlow], None],
    ) -> None:
        self.module = module
        self.summaries = summaries
        self.env = env
        self.emit_cb = emit
        self.emitting = False
        self.returns: set[str] = set()

    # -- helpers ---------------------------------------------------------------

    def _resolve_call(self, func: ast.expr) -> str | None:
        """Dotted origin of the callee, through the import map."""
        return self.module.resolve(func)

    def _emit(self, flow: TaintedFlow) -> None:
        if self.emitting:
            self.emit_cb(flow)

    def _sink_hit(self, node: ast.Call, sink: str, args: list[Val]) -> None:
        for val in args:
            for kind, taint in sorted(val.taints.items()):
                point = TracePoint(
                    _location(self.module, node), f"sink: {sink}"
                )
                self._emit(
                    TaintedFlow(
                        kind=kind,
                        sink=sink,
                        lineno=node.lineno,
                        trace=(*taint.step(point).trace,),
                    )
                )

    def _source(self, node: ast.AST, kind: str, what: str) -> Val:
        point = TracePoint(
            _location(self.module, node),
            f"source: {what} ({KIND_DESCRIPTIONS[kind]} value)",
        )
        return Val(taints={kind: Taint(kind=kind, trace=(point,))})

    # -- expression evaluation -------------------------------------------------

    def eval(self, node: ast.expr | None) -> Val:
        if node is None:
            return Val()
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        return self._eval_children(node)

    def _eval_children(self, node: ast.AST) -> Val:
        result = Val()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                result = result.merge(self.eval(child))
            elif isinstance(child, (ast.comprehension, ast.keyword)):
                result = result.merge(self._eval_children(child))
        result.tag = None
        return result

    def _eval_Name(self, node: ast.Name) -> Val:
        val = self.env.get(node.id)
        if val is None:
            return Val()
        return Val(taints=dict(val.taints), tag=val.tag)

    def _eval_Attribute(self, node: ast.Attribute) -> Val:
        chain = attribute_chain(node)
        if chain:
            dotted = ".".join(chain)
            val = self.env.get(dotted)
            if val is not None:
                return Val(taints=dict(val.taints), tag=val.tag)
        return self._eval_children(node)

    def _eval_Set(self, node: ast.Set) -> Val:
        val = self._eval_children(node)
        val.tag = "set"
        return val

    def _eval_SetComp(self, node: ast.SetComp) -> Val:
        val = self._eval_comprehension(node, [node.elt])
        val.tag = "set"
        return val

    def _eval_Dict(self, node: ast.Dict) -> Val:
        val = self._eval_children(node)
        val.tag = "dict"
        return val

    def _eval_ListComp(self, node: ast.ListComp) -> Val:
        return self._eval_comprehension(node, [node.elt])

    def _eval_GeneratorExp(self, node: ast.GeneratorExp) -> Val:
        return self._eval_comprehension(node, [node.elt])

    def _eval_DictComp(self, node: ast.DictComp) -> Val:
        val = self._eval_comprehension(node, [node.key, node.value])
        val.tag = "dict"
        return val

    def _eval_comprehension(
        self, node: ast.expr, elements: list[ast.expr]
    ) -> Val:
        """A comprehension: iteration order of a set generator leaks out."""
        result = Val()
        saved: dict[str, Val | None] = {}
        for gen in node.generators:  # type: ignore[attr-defined]
            iter_val = self.eval(gen.iter)
            element = Val(taints=dict(iter_val.taints))
            if iter_val.tag == "set":
                element = element.merge(
                    self._source(
                        gen.iter, "order",
                        "iteration over a set",
                    )
                )
            for name in _target_names(gen.target):
                saved.setdefault(name, self.env.get(name))
                self.env[name] = element
            for cond in gen.ifs:
                self.eval(cond)
            result = result.merge(element)
        for element_expr in elements:
            result = result.merge(self.eval(element_expr))
        for name, val in saved.items():
            if val is None:
                self.env.pop(name, None)
            else:
                self.env[name] = val
        result.tag = None
        return result

    def _eval_Call(self, node: ast.Call) -> Val:  # noqa: C901
        arg_vals = [self.eval(arg) for arg in node.args]
        kw_vals = [self.eval(kw.value) for kw in node.keywords]
        all_args = arg_vals + kw_vals
        merged = Val()
        for val in all_args:
            merged = merged.merge(val)
        merged.tag = None

        func = node.func
        dotted = self._resolve_call(func)
        leaf = dotted.rpartition(".")[2] if dotted else None
        chain = attribute_chain(func) or []

        # --- sanitizers -------------------------------------------------------
        if dotted in _ORDER_SANITIZERS:
            # ``sorted`` (et al.) erase iteration-order dependence, and
            # reading a set through them is fine in the first place.
            result = merged.without("order")
            result.tag = None
            return result

        # --- constructors / sanctioned streams --------------------------------
        if dotted in _RNG_CONSTRUCTORS:
            seeded = bool(node.args or node.keywords)
            merged.tag = "rng_seeded" if seeded else "rng_unseeded"
            return merged
        if leaf in _SANCTIONED_STREAMS:
            merged.tag = "rng_seeded"
            return merged
        if leaf in _SANCTIONED_METADATA:
            # Deliberate provenance (created_unix headers), not leakage:
            # the stamp is clean even though it reads the wall clock.
            return Val()
        if dotted in ("set", "frozenset"):
            merged.tag = "set"
            return merged
        if dotted == "dict":
            merged.tag = "dict"
            return merged
        if dotted in ("list", "tuple", "iter", "enumerate", "reversed"):
            # Materialising a set exposes its iteration order.
            if any(val.tag == "set" for val in all_args):
                merged = merged.merge(
                    self._source(node, "order", f"{dotted}() over a set")
                )
            return merged

        # --- sources ----------------------------------------------------------
        if dotted is not None:
            head = dotted.partition(".")[0]
            if head == "random" and leaf in _RANDOM_DRAWS:
                return merged.merge(
                    self._source(node, "rng", f"{dotted}() on the global "
                                              "random stream")
                )
            if dotted.startswith("numpy.random.") and dotted not in \
                    _RNG_CONSTRUCTORS:
                return merged.merge(
                    self._source(node, "rng", f"{dotted}() on the global "
                                              "numpy stream")
                )
            if dotted in _WALLCLOCK_SOURCES:
                return merged.merge(
                    self._source(node, "wallclock", f"{dotted}()")
                )
            if dotted in _ENTROPY_SOURCES:
                return merged.merge(
                    self._source(node, "entropy", f"{dotted}()")
                )
            if dotted in _ORDER_SOURCES:
                return merged.merge(
                    self._source(node, "order", f"{dotted}() (filesystem "
                                                "order)")
                )

        # Draws on an unseeded generator object are sources; draws on a
        # seeded one are the sanctioned way to be random.
        if isinstance(func, ast.Attribute):
            base = self.eval(func.value)
            if base.tag == "rng_unseeded":
                return merged.merge(
                    self._source(node, "rng",
                                 f"{func.attr}() on an unseeded generator")
                )
            if base.tag == "rng_seeded":
                return merged
            if base.tag == "set" and func.attr == "pop":
                return merged.merge(
                    self._source(node, "order", "set.pop() (arbitrary "
                                                "element)")
                )
            merged = merged.merge(Val(taints=dict(base.taints)))

        # --- sinks ------------------------------------------------------------
        if leaf in _WRITER_SINKS:
            self._sink_hit(node, f"{leaf}(...)", all_args)
        elif isinstance(func, ast.Attribute) and (
            func.attr in _CHECKPOINT_ATTR_SINKS
            or (func.attr == "create" and "checkpoint" in chain[:-1])
        ):
            self._sink_hit(node, f"checkpoint {func.attr}(...)", all_args)
        elif leaf == "ShardOutcome":
            self._sink_hit(node, "ShardOutcome(...)", all_args)

        # --- summaries --------------------------------------------------------
        summary = self._summary_for(dotted)
        if summary is not None:
            if summary.param_sinks:
                bound = self._bind_args(dotted, node, arg_vals, kw_vals)
                for param, sink in summary.param_sinks:
                    val = bound.get(param)
                    if val is None or not val.tainted:
                        continue
                    for kind, taint in sorted(val.taints.items()):
                        point = TracePoint(
                            _location(self.module, node),
                            f"passed to {leaf}(), which forwards it to "
                            f"{sink}",
                        )
                        self._emit(
                            TaintedFlow(
                                kind=kind,
                                sink=sink,
                                lineno=node.lineno,
                                trace=taint.step(point).trace,
                            )
                        )
            for kind in sorted(summary.returns):
                merged = merged.merge(
                    Val(taints={kind: Taint(kind=kind, trace=(TracePoint(
                        _location(self.module, node),
                        f"{leaf}() returns a "
                        f"{KIND_DESCRIPTIONS.get(kind, kind)} value",
                    ),))})
                )
        return merged

    def _summary_for(self, dotted: str | None) -> FunctionSummary | None:
        if dotted is None:
            return None
        summary = self.summaries.get(dotted)
        if summary is not None:
            return summary
        # Intra-module call by bare name.
        return self.summaries.get(f"{self.module.module}.{dotted}")

    def _bind_args(
        self,
        dotted: str | None,
        node: ast.Call,
        arg_vals: list[Val],
        kw_vals: list[Val],
    ) -> dict[str, Val]:
        """Best-effort positional/keyword binding against the summary owner."""
        params = self._params_of(dotted)
        bound: dict[str, Val] = {}
        for i, val in enumerate(arg_vals):
            if params and i < len(params):
                bound[params[i]] = val
            else:
                bound[f"#{i}"] = val
        for kw, val in zip(node.keywords, kw_vals):
            if kw.arg is not None:
                bound[kw.arg] = val
        return bound

    def _params_of(self, dotted: str | None) -> tuple[str, ...]:
        if dotted is None:
            return ()
        info = _PARAMS_CACHE.get(dotted)
        return info if info is not None else ()

    # -- statement execution ---------------------------------------------------

    def exec_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.exec(stmt)

    def exec(self, node: ast.stmt) -> None:
        method = getattr(self, f"_exec_{type(node).__name__}", None)
        if method is not None:
            method(node)
            return
        # Generic: evaluate embedded expressions, walk nested bodies.
        for fieldname in ("body", "orelse", "finalbody"):
            sub = getattr(node, fieldname, None)
            if isinstance(sub, list):
                self.exec_body([s for s in sub if isinstance(s, ast.stmt)])
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)

    def _exec_Expr(self, node: ast.Expr) -> None:
        self.eval(node.value)

    def _exec_Assign(self, node: ast.Assign) -> None:
        val = self.eval(node.value)
        for target in node.targets:
            self._bind_target(target, val, node.lineno)

    def _exec_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind_target(node.target, self.eval(node.value), node.lineno)

    def _exec_AugAssign(self, node: ast.AugAssign) -> None:
        val = self.eval(node.value)
        if isinstance(node.target, ast.Name):
            current = self.env.get(node.target.id, Val())
            self._bind_target(node.target, current.merge(val), node.lineno)

    def _bind_target(self, target: ast.expr, val: Val, lineno: int) -> None:
        if isinstance(target, ast.Name):
            names = [target.id]
        elif isinstance(target, ast.Attribute):
            chain = attribute_chain(target)
            names = [".".join(chain)] if chain else []
            # ``outcome.payload = <tainted>`` is a result-emission sink.
            if (
                chain
                and chain[-1] == "payload"
                and val.tainted
            ):
                for kind, taint in sorted(val.taints.items()):
                    point = TracePoint(
                        f"{self.module.relpath}:{lineno}",
                        "sink: assigned to a shard result payload",
                    )
                    self._emit(
                        TaintedFlow(
                            kind=kind,
                            sink="shard payload",
                            lineno=lineno,
                            trace=taint.step(point).trace,
                        )
                    )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, val, lineno)
            return
        elif isinstance(target, ast.Subscript):
            # ``record["k"] = tainted`` taints the whole container.
            chain = attribute_chain(target.value)
            if chain and val.tainted:
                name = ".".join(chain)
                current = self.env.get(name, Val())
                self._bind_target_merge(name, current.merge(val), lineno)
            return
        else:
            return
        for name in names:
            self._bind_target_merge(name, val, lineno)

    def _bind_target_merge(self, name: str, val: Val, lineno: int) -> None:
        bound = Val(taints={}, tag=val.tag)
        point = TracePoint(
            f"{self.module.relpath}:{lineno}", f"assigned to '{name}'"
        )
        for kind, taint in val.taints.items():
            bound.taints[kind] = taint.step(point)
        self.env[name] = bound

    def _exec_For(self, node: ast.For) -> None:
        iter_val = self.eval(node.iter)
        element = Val(taints=dict(iter_val.taints))
        if iter_val.tag == "set":
            element = element.merge(
                self._source(node.iter, "order", "iteration over a set")
            )
        self._bind_target(node.target, element, node.lineno)
        self.exec_body(node.body)
        self.exec_body(node.orelse)

    def _exec_While(self, node: ast.While) -> None:
        self.eval(node.test)
        self.exec_body(node.body)
        self.exec_body(node.orelse)

    def _exec_If(self, node: ast.If) -> None:
        self.eval(node.test)
        self.exec_body(node.body)
        self.exec_body(node.orelse)

    def _exec_With(self, node: ast.With) -> None:
        for item in node.items:
            val = self.eval(item.context_expr)
            if item.optional_vars is not None:
                self._bind_target(item.optional_vars, val, node.lineno)
        self.exec_body(node.body)

    _exec_AsyncWith = _exec_With

    def _exec_Try(self, node: ast.Try) -> None:
        self.exec_body(node.body)
        for handler in node.handlers:
            self.exec_body(handler.body)
        self.exec_body(node.orelse)
        self.exec_body(node.finalbody)

    def _exec_Return(self, node: ast.Return) -> None:
        val = self.eval(node.value)
        self.returns.update(val.taints)

    def _exec_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are analysed as their own functions

    _exec_AsyncFunctionDef = _exec_FunctionDef

    def _exec_ClassDef(self, node: ast.ClassDef) -> None:
        pass  # methods are collected by the project index


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


#: qualname → parameter names, shared so call sites can bind summary
#: parameters without holding the whole index (populated by taint.py).
_PARAMS_CACHE: dict[str, tuple[str, ...]] = {}


def register_params(functions: Mapping[str, tuple[str, ...]]) -> None:
    """Install the project's qualname→params table for argument binding."""
    _PARAMS_CACHE.clear()
    _PARAMS_CACHE.update(functions)


def module_environment(
    module: ModuleInfo, summaries: Mapping[str, FunctionSummary]
) -> dict[str, Val]:
    """Tags/taints of module-level bindings (no emission)."""
    analyzer = _FunctionTaint(module, summaries, {}, lambda flow: None)
    analyzer.exec_body(module.tree.body)
    return analyzer.env


def analyze_module_body(
    module: ModuleInfo,
    summaries: Mapping[str, FunctionSummary],
    emit: Callable[[TaintedFlow], None],
) -> None:
    """Emit flows for module-level (import-time) code."""
    analyzer = _FunctionTaint(module, summaries, {}, emit)
    analyzer.exec_body(module.tree.body)  # warm-up pass
    analyzer.emitting = True
    analyzer.exec_body(module.tree.body)


def analyze_function(
    module: ModuleInfo,
    info: FunctionInfo,
    summaries: Mapping[str, FunctionSummary],
    module_env: Mapping[str, Val],
    emit: Callable[[TaintedFlow], None],
) -> FunctionSummary:
    """Analyse one function; emit real-kind flows; return its summary.

    Parameters are seeded with ``param:<name>`` pseudo-taints so that a
    parameter reaching a sink is recorded in the summary (and surfaced
    at call sites that pass tainted arguments), and returned kinds feed
    the callers.
    """
    env: dict[str, Val] = {
        name: Val(taints=dict(val.taints), tag=val.tag)
        for name, val in module_env.items()
    }
    def_location = f"{module.relpath}:{info.lineno}"
    for param in info.params:
        kind = f"param:{param}"
        env[param] = Val(taints={kind: Taint(kind=kind, trace=(TracePoint(
            def_location, f"parameter '{param}' of {info.name}()"
        ),))})

    param_sinks: dict[tuple[str, str], None] = {}

    def collect(flow: TaintedFlow) -> None:
        if flow.kind.startswith("param:"):
            param_sinks.setdefault((flow.kind[6:], flow.sink), None)
        else:
            emit(flow)

    analyzer = _FunctionTaint(module, summaries, env, collect)
    analyzer.exec_body(info.node.body)  # warm-up pass (loop-carried taint)
    analyzer.emitting = True
    analyzer.exec_body(info.node.body)
    returns = frozenset(
        kind for kind in analyzer.returns if not kind.startswith("param:")
    )
    return FunctionSummary(
        returns=returns, param_sinks=tuple(sorted(param_sinks))
    )
