"""Project model for the dataflow lint passes.

Where :mod:`repro.lint.codecheck` looks at one file at a time, the
dataflow rules (``FTMCD``/``FTMCF``/``FTMCP``) need a *project* view:
which module a name was imported from, which function a ``Process``
target resolves to, which module-level names are mutable state.  This
module builds that view once per tree walk:

- :class:`ModuleInfo` — one parsed module: AST, import map (local name →
  dotted origin), module-level string constants, module-level mutable
  bindings, and every function definition with its qualified name;
- :class:`ProjectIndex` — the whole tree: modules keyed by dotted name,
  an import graph, and cross-module resolution
  (:meth:`ProjectIndex.resolve_function`);
- :func:`build_index` — parallel per-file parse (a thread pool; parsing
  is the dominant cost and the tree must index in well under a second so
  ``ftmc selfcheck`` stays interactive).

Everything here is standard library only and import-free at analysis
time: *resolution is textual*.  ``from repro.io import append_jsonl``
maps the local name ``append_jsonl`` to the dotted path
``repro.io.append_jsonl`` whether or not ``repro.io`` is importable,
which is what lets the same pass run over fixtures and foreign trees.
"""

from __future__ import annotations

import ast
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "build_index",
    "index_from_sources",
    "module_from_source",
    "dotted_name",
    "attribute_chain",
]

#: Constructors whose module-level bindings count as mutable state.
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray", "deque",
                                   "defaultdict", "Counter", "OrderedDict"})


def attribute_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; ``None`` for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` rendered back to its dotted source form."""
    chain = attribute_chain(node)
    return ".".join(chain) if chain else None


@dataclass(frozen=True)
class FunctionInfo:
    """One function (or method) definition inside a module."""

    qualname: str  #: ``module.func`` or ``module.Class.func`` (dotted).
    name: str
    module: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: tuple[str, ...]

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ModuleInfo:
    """One parsed module and its name-resolution tables."""

    relpath: str  #: Path relative to the scanned root, ``/``-separated.
    module: str  #: Dotted module name (``repro.runner.worker``).
    tree: ast.Module
    source: str
    #: Local name → dotted origin (``np`` → ``numpy``,
    #: ``append_jsonl`` → ``repro.io.append_jsonl``).
    imports: dict[str, str] = field(default_factory=dict)
    #: Module-level ``NAME = "literal string"`` constants.
    constants: dict[str, str] = field(default_factory=dict)
    #: Module-level names bound to mutable containers (fork-safety pass).
    mutable_globals: dict[str, int] = field(default_factory=dict)
    #: Functions by in-module qualname (``Class.meth`` or ``func``).
    functions: dict[str, FunctionInfo] = field(default_factory=dict)

    def resolve(self, node: ast.expr) -> str | None:
        """The dotted origin of a Name/Attribute chain, if importable.

        ``np.random.rand`` with ``import numpy as np`` resolves to
        ``numpy.random.rand``; an unimported local name resolves to
        itself so intra-module references still compare.
        """
        chain = attribute_chain(node)
        if not chain:
            return None
        head, rest = chain[0], chain[1:]
        origin = self.imports.get(head, head)
        return ".".join([origin, *rest]) if rest else origin

    def resolve_dotted(self, name: str) -> str:
        """Resolve an already-dotted local name through the import map."""
        head, _, rest = name.partition(".")
        origin = self.imports.get(head, head)
        return f"{origin}.{rest}" if rest else origin


def _module_name(relpath: str, package: str) -> str:
    parts = relpath.replace(os.sep, "/").split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join([package, *parts]) if parts else package


def _record_imports(module: ModuleInfo, node: ast.stmt, is_package: bool) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            local = alias.asname or alias.name.partition(".")[0]
            target = alias.name if alias.asname else alias.name.partition(".")[0]
            module.imports[local] = target
            if alias.asname is None and "." in alias.name:
                # ``import a.b`` binds ``a`` locally but the dependency
                # is on ``a.b`` — keep the full path for the graph (the
                # dotted key can never collide with a local identifier).
                module.imports[alias.name] = alias.name
    elif isinstance(node, ast.ImportFrom):
        base = node.module or ""
        if node.level:
            # Resolve ``from .mod import f`` against this module's
            # package: level 1 is the containing package (the module
            # itself when it *is* a package ``__init__``).
            parts = module.module.split(".")
            drop = node.level - 1 if is_package else node.level
            anchor = parts[: len(parts) - drop] if drop else parts
            base = ".".join([*anchor, base]) if base else ".".join(anchor)
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            module.imports[local] = f"{base}.{alias.name}" if base else alias.name


def _is_mutable_binding(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        callee = value.func
        name = callee.id if isinstance(callee, ast.Name) else (
            callee.attr if isinstance(callee, ast.Attribute) else None
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _collect_functions(
    module: ModuleInfo, body: list[ast.stmt], prefix: str
) -> None:
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{prefix}{node.name}"
            args = node.args
            params = tuple(
                a.arg
                for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            )
            module.functions[qual] = FunctionInfo(
                qualname=f"{module.module}.{qual}",
                name=node.name,
                module=module.module,
                node=node,
                params=params,
            )
        elif isinstance(node, ast.ClassDef):
            _collect_functions(module, node.body, f"{prefix}{node.name}.")


def module_from_source(
    source: str, relpath: str = "<string>", package: str = "project"
) -> ModuleInfo | None:
    """Parse one source string into a :class:`ModuleInfo` (None = syntax error)."""
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError:
        return None
    normalized = relpath.replace(os.sep, "/")
    module = ModuleInfo(
        relpath=normalized,
        module=_module_name(normalized, package),
        tree=tree,
        source=source,
    )
    is_package = normalized.endswith("__init__.py")
    for node in tree.body:
        _record_imports(module, node, is_package)
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if (
                    isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    module.constants[target.id] = node.value.value
                elif _is_mutable_binding(node.value):
                    module.mutable_globals[target.id] = node.lineno
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                if (
                    isinstance(node.value, ast.Constant)
                    and isinstance(node.value.value, str)
                ):
                    module.constants[node.target.id] = node.value.value
                elif _is_mutable_binding(node.value):
                    module.mutable_globals[node.target.id] = node.lineno
    _collect_functions(module, tree.body, "")
    return module


def index_from_sources(
    sources: Mapping[str, str], package: str = "project"
) -> "ProjectIndex":
    """Build an in-memory index from ``{relpath: source}`` (fixtures)."""
    index = ProjectIndex(root="<memory>", package=package)
    unparsed: list[str] = []
    for relpath in sorted(sources):
        module = module_from_source(sources[relpath], relpath, package)
        if module is None:
            unparsed.append(relpath.replace(os.sep, "/"))
        else:
            index.modules[module.module] = module
    index.unparsed = tuple(unparsed)
    return index


@dataclass
class ProjectIndex:
    """Every parsed module of one tree, plus cross-module resolution."""

    root: str
    package: str
    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    #: relpaths (sorted) that failed to parse; the syntactic pass
    #: reports them as FTMCC00, the dataflow passes just skip them.
    unparsed: tuple[str, ...] = ()

    def ordered(self) -> list[ModuleInfo]:
        """Modules in deterministic (relpath) order."""
        return sorted(self.modules.values(), key=lambda m: m.relpath)

    def by_relpath(self, relpath: str) -> ModuleInfo | None:
        normalized = relpath.replace(os.sep, "/")
        for module in self.modules.values():
            if module.relpath == normalized:
                return module
        return None

    def resolve_function(self, dotted: str) -> FunctionInfo | None:
        """Find the definition behind a dotted path, across modules.

        ``repro.runner.worker.shard_worker`` splits into the longest
        module prefix present in the index plus an in-module qualname.
        """
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = self.modules.get(".".join(parts[:split]))
            if module is not None:
                qual = ".".join(parts[split:])
                info = module.functions.get(qual)
                if info is not None:
                    return info
        return None

    def import_graph(self) -> dict[str, tuple[str, ...]]:
        """module → imported in-project modules (deterministic order)."""
        known = set(self.modules)
        graph: dict[str, tuple[str, ...]] = {}
        for module in self.ordered():
            targets: set[str] = set()
            for origin in module.imports.values():
                # An imported *name* may be module.attr; try both forms.
                if origin in known:
                    targets.add(origin)
                else:
                    parent = origin.rpartition(".")[0]
                    if parent in known:
                        targets.add(parent)
            targets.discard(module.module)
            graph[module.module] = tuple(sorted(targets))
        return graph


def _iter_py_files(root: str) -> list[str]:
    paths: list[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                paths.append(os.path.join(dirpath, filename))
    return paths


def default_jobs() -> int:
    """Worker count for the per-file phases (bounded; 1 on tiny trees)."""
    return max(1, min(8, (os.cpu_count() or 2)))


def build_index(
    root: str, package: str | None = None, jobs: int | None = None
) -> ProjectIndex:
    """Parse every ``.py`` file under ``root`` into a :class:`ProjectIndex`.

    Files are read and parsed concurrently (``jobs`` threads); the index
    itself is assembled deterministically in sorted-path order, so the
    output is independent of completion order.
    """
    if package is None:
        package = os.path.basename(os.path.normpath(root)) or "project"
    paths = _iter_py_files(root)
    jobs = jobs if jobs is not None else default_jobs()

    def parse_one(path: str) -> tuple[str, ModuleInfo | None]:
        relpath = os.path.relpath(path, root).replace(os.sep, "/")
        with open(path) as handle:
            source = handle.read()
        return relpath, module_from_source(source, relpath, package)

    if jobs > 1 and len(paths) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            parsed = list(pool.map(parse_one, paths))
    else:
        parsed = [parse_one(path) for path in paths]

    index = ProjectIndex(root=root, package=package)
    unparsed: list[str] = []
    for relpath, module in sorted(parsed, key=lambda pair: pair[0]):
        if module is None:
            unparsed.append(relpath)
        else:
            index.modules[module.module] = module
    index.unparsed = tuple(unparsed)
    return index
