"""Baseline suppression: land strict rules without a big-bang cleanup.

A *baseline* (``lint-baseline.json`` at the repo root) records the
accepted pre-existing findings of the dataflow rule families.  Findings
whose fingerprint appears in the baseline are suppressed; anything new
fails the build — strict on new code, tolerant of the audited past.

Design points:

- Only the dataflow families (``FTMCD``/``FTMCF``/``FTMCP``) are
  baselinable.  The syntactic ``FTMCC`` rules and the model rules have
  been enforced since PR 1; violations there are fixed, not suppressed.
- Fingerprints are **line-number-insensitive**: the hash covers
  ``(code, file path, message)``, so unrelated edits that shift a
  finding up or down do not invalidate its entry.  Messages carry no
  line numbers by construction.
- Stale entries (fingerprints matching no current finding) are reported
  so the baseline only ever shrinks; ``ftmc selfcheck
  --update-baseline`` rewrites the file from the current findings,
  expiring them.
- The file is written through :func:`repro.io.atomic_write_text` and is
  deterministic (sorted entries, stable JSON), so CI can diff it.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.io import atomic_write_text
from repro.lint.diagnostics import Diagnostic, LintReport

__all__ = [
    "BASELINABLE_PREFIXES",
    "Baseline",
    "fingerprint",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
    "default_baseline_path",
]

#: Rule-code prefixes the baseline may suppress.
BASELINABLE_PREFIXES = ("FTMCD", "FTMCF", "FTMCP")

_FORMAT_VERSION = 1


def _is_baselinable(diag: Diagnostic) -> bool:
    return diag.code.startswith(BASELINABLE_PREFIXES)


def fingerprint(diag: Diagnostic) -> str:
    """Stable, line-insensitive identity of one finding.

    Hashes ``code | file path | message`` — the line component of the
    location is dropped so edits elsewhere in the file do not expire the
    entry.
    """
    path, sep, line = diag.location.rpartition(":")
    anchor = path if sep and line.isdigit() else diag.location
    digest = hashlib.sha256(
        f"{diag.code}|{anchor}|{diag.message}".encode()
    ).hexdigest()
    return digest[:16]


@dataclass
class Baseline:
    """The parsed baseline file: fingerprint → recorded entry."""

    path: str | None = None
    entries: dict[str, dict[str, str]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, diag: Diagnostic) -> bool:
        return fingerprint(diag) in self.entries


def default_baseline_path(root: str) -> str | None:
    """``lint-baseline.json`` next to (or two levels above) the tree.

    ``ftmc selfcheck`` scans ``src/repro``; the baseline lives at the
    repo root, so walk up a bounded number of levels looking for it.
    """
    level = os.path.abspath(root)
    for _ in range(3):
        candidate = os.path.join(level, "lint-baseline.json")
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(level)
        if parent == level:
            break
        level = parent
    return None


def load_baseline(path: str) -> Baseline:
    """Parse a baseline file (raises ``ValueError`` on malformed input)."""
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("version") != _FORMAT_VERSION:
        raise ValueError(f"{path}: not a version-{_FORMAT_VERSION} baseline")
    entries: dict[str, dict[str, str]] = {}
    for entry in data.get("entries", ()):
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValueError(f"{path}: malformed baseline entry: {entry!r}")
        entries[str(entry["fingerprint"])] = {
            key: str(value) for key, value in entry.items()
        }
    return Baseline(path=path, entries=entries)


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of filtering a report against a baseline."""

    report: LintReport  #: The report with baselined findings removed.
    suppressed: int  #: How many findings the baseline absorbed.
    stale: tuple[str, ...]  #: Fingerprints matching no current finding.


def apply_baseline(report: LintReport, baseline: Baseline) -> BaselineResult:
    """Suppress baselined findings; report stale entries for expiry."""
    kept: list[Diagnostic] = []
    matched: set[str] = set()
    suppressed = 0
    for diag in report:
        if _is_baselinable(diag):
            fp = fingerprint(diag)
            if fp in baseline.entries:
                matched.add(fp)
                suppressed += 1
                continue
        kept.append(diag)
    stale = tuple(sorted(set(baseline.entries) - matched))
    return BaselineResult(
        report=LintReport(kept), suppressed=suppressed, stale=stale
    )


def write_baseline(path: str, report: LintReport) -> int:
    """Record every baselinable finding of ``report`` at ``path``.

    Returns the number of entries written.  The file is deterministic:
    entries are sorted by fingerprint and duplicates collapse.
    """
    entries: dict[str, dict[str, str]] = {}
    for diag in report:
        if not _is_baselinable(diag):
            continue
        fp = fingerprint(diag)
        anchor, sep, line = diag.location.rpartition(":")
        entries[fp] = {
            "fingerprint": fp,
            "code": diag.code,
            "path": anchor if sep and line.isdigit() else diag.location,
            "message": diag.message,
        }
    payload = {
        "version": _FORMAT_VERSION,
        "comment": "Accepted pre-existing dataflow findings; must only "
                   "shrink. Regenerate with: ftmc selfcheck "
                   "--update-baseline",
        "entries": [entries[fp] for fp in sorted(entries)],
    }
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(entries)
