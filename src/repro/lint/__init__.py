"""``repro.lint`` — static analysis for task sets, profiles and the code.

Two front ends:

- **Model linting** — a rule registry (``FTMC0xx`` codes) over the
  sporadic task model, fault/profile consistency, the Vestal MC model
  and the Lemma 4.1 conversion round trip.  Entry points:
  :func:`lint_taskset`, :func:`lint_mc_taskset`, :func:`lint_profiles`,
  :func:`lint_conversion`, :func:`lint_file`, :func:`validate_taskset`.
- **Code self-analysis** — a syntactic AST pass (``FTMCC0x`` codes) plus
  the project-level dataflow passes (``FTMCD``/``FTMCF``/``FTMCP``:
  determinism taint, fork safety, analysis purity) enforcing repository
  invariants over ``src/repro`` itself:
  :func:`repro.lint.codecheck.selfcheck`, with SARIF output
  (:mod:`repro.lint.sarif`), baseline suppression
  (:mod:`repro.lint.baseline`) and provable autofixes
  (:mod:`repro.lint.fixes`).

The full rule catalog with severities and exit-code semantics lives in
``docs/lint.md``.

.. note::
   The model layer imports :mod:`repro.lint.checks` for its constructor
   validation, so this ``__init__`` must not import the engine (which
   imports the model) at module scope.  Engine-level names are loaded
   lazily via PEP 562 ``__getattr__`` instead — ``from repro.lint import
   lint_taskset`` works as usual, without the circular import.
"""

from __future__ import annotations

from typing import Any

from repro.lint.checks import (
    check_mc_task_fields,
    check_task_fields,
    check_unique_names,
    raise_on_error,
)
from repro.lint.diagnostics import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_STRICT_WARNINGS,
    Diagnostic,
    LintError,
    LintReport,
    Severity,
)

__all__ = [
    "Diagnostic",
    "LintError",
    "LintReport",
    "Severity",
    "EXIT_CLEAN",
    "EXIT_ERRORS",
    "EXIT_STRICT_WARNINGS",
    "check_task_fields",
    "check_mc_task_fields",
    "check_unique_names",
    "raise_on_error",
    # Lazily loaded (see __getattr__):
    "lint_taskset",
    "lint_mc_taskset",
    "lint_profiles",
    "lint_conversion",
    "lint_file",
    "validate_taskset",
    "selfcheck",
    "check_path",
    "rule_catalog",
    "RULES",
    "build_index",
    "analyze_index",
    "TAINT_RULE_CATALOG",
    "render_sarif",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
    "rewrite_source",
]

_ENGINE_NAMES = frozenset(
    {
        "lint_taskset",
        "lint_mc_taskset",
        "lint_profiles",
        "lint_conversion",
        "lint_file",
        "validate_taskset",
    }
)
_CODECHECK_NAMES = frozenset({"selfcheck", "check_path"})
_REGISTRY_NAMES = frozenset({"rule_catalog", "RULES"})
#: Dataflow-layer names → owning submodule (all lazily loaded).
_DATAFLOW_NAMES = {
    "build_index": "project",
    "analyze_index": "taint",
    "TAINT_RULE_CATALOG": "taint",
    "render_sarif": "sarif",
    "apply_baseline": "baseline",
    "load_baseline": "baseline",
    "write_baseline": "baseline",
    "rewrite_source": "fixes",
}


def __getattr__(name: str) -> Any:
    if name in _ENGINE_NAMES:
        from repro.lint import engine

        return getattr(engine, name)
    if name in _CODECHECK_NAMES:
        from repro.lint import codecheck

        return getattr(codecheck, name)
    if name in _DATAFLOW_NAMES:
        import importlib

        module = importlib.import_module(f"repro.lint.{_DATAFLOW_NAMES[name]}")
        return getattr(module, name)
    if name in _REGISTRY_NAMES:
        # The registry is importable eagerly, but rules register on first
        # engine import — load the engine so the catalog is complete.
        from repro.lint import engine  # noqa: F401
        from repro.lint import registry

        return getattr(registry, name)
    raise AttributeError(f"module 'repro.lint' has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
