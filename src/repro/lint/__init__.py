"""``repro.lint`` — static analysis for task sets, profiles and the code.

Two front ends:

- **Model linting** — a rule registry (``FTMC0xx`` codes) over the
  sporadic task model, fault/profile consistency, the Vestal MC model
  and the Lemma 4.1 conversion round trip.  Entry points:
  :func:`lint_taskset`, :func:`lint_mc_taskset`, :func:`lint_profiles`,
  :func:`lint_conversion`, :func:`lint_file`, :func:`validate_taskset`.
- **Code self-analysis** — an AST pass (``FTMCC0x`` codes) enforcing
  repository invariants over ``src/repro`` itself:
  :func:`repro.lint.codecheck.selfcheck`.

The full rule catalog with severities and exit-code semantics lives in
``docs/lint.md``.

.. note::
   The model layer imports :mod:`repro.lint.checks` for its constructor
   validation, so this ``__init__`` must not import the engine (which
   imports the model) at module scope.  Engine-level names are loaded
   lazily via PEP 562 ``__getattr__`` instead — ``from repro.lint import
   lint_taskset`` works as usual, without the circular import.
"""

from __future__ import annotations

from typing import Any

from repro.lint.checks import (
    check_mc_task_fields,
    check_task_fields,
    check_unique_names,
    raise_on_error,
)
from repro.lint.diagnostics import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_STRICT_WARNINGS,
    Diagnostic,
    LintError,
    LintReport,
    Severity,
)

__all__ = [
    "Diagnostic",
    "LintError",
    "LintReport",
    "Severity",
    "EXIT_CLEAN",
    "EXIT_ERRORS",
    "EXIT_STRICT_WARNINGS",
    "check_task_fields",
    "check_mc_task_fields",
    "check_unique_names",
    "raise_on_error",
    # Lazily loaded (see __getattr__):
    "lint_taskset",
    "lint_mc_taskset",
    "lint_profiles",
    "lint_conversion",
    "lint_file",
    "validate_taskset",
    "selfcheck",
    "rule_catalog",
    "RULES",
]

_ENGINE_NAMES = frozenset(
    {
        "lint_taskset",
        "lint_mc_taskset",
        "lint_profiles",
        "lint_conversion",
        "lint_file",
        "validate_taskset",
    }
)
_CODECHECK_NAMES = frozenset({"selfcheck"})
_REGISTRY_NAMES = frozenset({"rule_catalog", "RULES"})


def __getattr__(name: str) -> Any:
    if name in _ENGINE_NAMES:
        from repro.lint import engine

        return getattr(engine, name)
    if name in _CODECHECK_NAMES:
        from repro.lint import codecheck

        return getattr(codecheck, name)
    if name in _REGISTRY_NAMES:
        # The registry is importable eagerly, but rules register on first
        # engine import — load the engine so the catalog is complete.
        from repro.lint import engine  # noqa: F401
        from repro.lint import registry

        return getattr(registry, name)
    raise AttributeError(f"module 'repro.lint' has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
