"""Diagnostics: the value objects every lint front end produces.

A :class:`Diagnostic` is one finding — an ``FTMC0xx`` code, a severity, a
location (task name, file position, or the whole task set), a message and
an optional suggested fix.  A :class:`LintReport` aggregates the findings
of one run and knows how to render itself (text or JSON) and how to map
severities onto the CLI exit-code contract:

======  ==========================================================
exit    meaning
======  ==========================================================
0       no errors (warnings/infos may be present, non-strict mode)
1       at least one error-severity diagnostic
2       warnings present and ``--strict`` requested
======  ==========================================================

This module is deliberately dependency-free (standard library only) so
that the model layer can import it without cycles.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "Severity",
    "TracePoint",
    "Diagnostic",
    "LintReport",
    "LintError",
    "EXIT_CLEAN",
    "EXIT_ERRORS",
    "EXIT_STRICT_WARNINGS",
]

#: Exit-code contract of ``ftmc lint`` / ``ftmc selfcheck``.
EXIT_CLEAN: int = 0
EXIT_ERRORS: int = 1
EXIT_STRICT_WARNINGS: int = 2


class Severity(enum.IntEnum):
    """Severity of a diagnostic, ordered so that ``ERROR`` is largest."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class TracePoint:
    """One step of a dataflow trace attached to a diagnostic.

    ``location`` is a ``file:line`` anchor; ``note`` says what happens
    there ("source: random.random() (unseeded RNG)", "assigned to
    'payload'", "sink: append_jsonl(...)").  The dataflow rules
    (``FTMCD``/``FTMCP``) attach ordered traces so a finding can be read
    source → sink without re-running the analysis.
    """

    location: str
    note: str

    def render(self) -> str:
        return f"{self.location}: {self.note}"

    def as_dict(self) -> dict[str, str]:
        return {"location": self.location, "note": self.note}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Parameters
    ----------
    code:
        Stable rule identifier (``FTMC0xx`` for model rules, ``FTMCC0x``
        for the code self-analysis).  Documented in ``docs/lint.md``.
    severity:
        :class:`Severity` of the finding.
    location:
        Where the finding anchors: a task name, ``"taskset"`` for
        aggregate findings, or ``"file:line"`` for code findings.
    message:
        Human-readable description.  Task-level messages are prefixed
        with the task name by convention.
    suggestion:
        Optional actionable fix ("set deadline <= period", ...).
    trace:
        Optional ordered dataflow trace (source → sink) for findings
        produced by the taint passes.
    """

    code: str
    severity: Severity
    location: str
    message: str
    suggestion: str | None = None
    trace: tuple[TracePoint, ...] = ()

    def render(self) -> str:
        """One-line ``code severity location: message (hint)`` form.

        Task-level messages already carry their task name as a prefix;
        the location is elided then to avoid ``a: a: ...`` stutter.
        Dataflow traces render as indented continuation lines.
        """
        if self.message.startswith(f"{self.location}:"):
            text = f"{self.code} {self.severity}: {self.message}"
        else:
            text = f"{self.code} {self.severity}: {self.location}: {self.message}"
        if self.suggestion:
            text += f" [fix: {self.suggestion}]"
        for i, point in enumerate(self.trace, start=1):
            text += f"\n    {i}. {point.render()}"
        return text

    def as_dict(self) -> dict[str, object]:
        """Plain-data form used by ``--format json``."""
        data: dict[str, object] = {
            "code": self.code,
            "severity": str(self.severity),
            "location": self.location,
            "message": self.message,
        }
        if self.suggestion is not None:
            data["suggestion"] = self.suggestion
        if self.trace:
            data["trace"] = [point.as_dict() for point in self.trace]
        return data


class LintReport:
    """The ordered findings of one lint run."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()) -> None:
        self._diagnostics: tuple[Diagnostic, ...] = tuple(diagnostics)

    # -- collection protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __bool__(self) -> bool:
        """Truthy when *any* diagnostic was produced."""
        return bool(self._diagnostics)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LintReport(errors={len(self.errors)}, "
            f"warnings={len(self.warnings)}, infos={len(self.infos)})"
        )

    @property
    def diagnostics(self) -> tuple[Diagnostic, ...]:
        return self._diagnostics

    # -- severity partitions ---------------------------------------------------

    def of_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity is severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.of_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.of_severity(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.of_severity(Severity.INFO)

    @property
    def is_clean(self) -> bool:
        """No errors and no warnings (infos are allowed)."""
        return not self.errors and not self.warnings

    def codes(self) -> tuple[str, ...]:
        """The distinct rule codes present, in first-seen order."""
        seen: dict[str, None] = {}
        for d in self._diagnostics:
            seen.setdefault(d.code, None)
        return tuple(seen)

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.code == code)

    def has_code(self, code: str) -> bool:
        return any(d.code == code for d in self._diagnostics)

    # -- composition -----------------------------------------------------------

    def extend(self, other: "LintReport | Iterable[Diagnostic]") -> "LintReport":
        """A new report with the other findings appended."""
        return LintReport((*self._diagnostics, *other))

    # -- rendering -------------------------------------------------------------

    def exit_code(self, strict: bool = False) -> int:
        """Map severities onto the documented CLI exit codes."""
        if self.errors:
            return EXIT_ERRORS
        if strict and self.warnings:
            return EXIT_STRICT_WARNINGS
        return EXIT_CLEAN

    def render_text(self, subject: str | None = None) -> str:
        """Multi-line human-readable report with a summary footer."""
        lines = [d.render() for d in self._diagnostics]
        summary = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        )
        if subject:
            summary = f"{subject}: {summary}"
        lines.append(summary)
        return "\n".join(lines)

    def as_dicts(self) -> list[dict[str, object]]:
        return [d.as_dict() for d in self._diagnostics]

    def render_json(self, subject: str | None = None) -> str:
        """Stable JSON document for ``--format json`` and golden tests."""
        payload: dict[str, object] = {
            "subject": subject,
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
            },
            "diagnostics": self.as_dicts(),
        }
        return json.dumps(payload, indent=2, sort_keys=True)


class LintError(ValueError):
    """Raised by ``validate=True`` entry points when error rules fire.

    Carries the full :class:`LintReport` so callers can render every
    finding, not just the first.
    """

    def __init__(self, report: LintReport, subject: str = "taskset") -> None:
        self.report = report
        self.subject = subject
        errors = report.errors
        head = errors[0].render() if errors else "lint failed"
        extra = f" (+{len(errors) - 1} more)" if len(errors) > 1 else ""
        super().__init__(f"{subject}: {head}{extra}")
