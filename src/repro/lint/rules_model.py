"""Lint rules for the sporadic dual-criticality model (FTMC001-013).

Structural per-task rules delegate to :mod:`repro.lint.checks` (the same
checks the constructors raise from); aggregate and safety rules reason
about the whole :class:`~repro.lint.records.TaskSetRecord`, constructing
real model objects only when the record is structurally sound.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from repro.lint.checks import check_task_fields, check_unique_names
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.records import TaskSetRecord
from repro.lint.registry import rule
from repro.model.criticality import CriticalityRole
from repro.model.task import Task, TaskSet
from repro.safety.pfh import DEFAULT_MAX_REEXECUTIONS, minimal_uniform_reexecution

__all__ = ["as_model_taskset"]


def _structural(subject: TaskSetRecord) -> list[Diagnostic]:
    """All per-task structural findings (cached per subject would be
    premature: sets are small and rules run once)."""
    diags: list[Diagnostic] = []
    for t in subject.tasks:
        diags.extend(
            check_task_fields(
                t.name, t.period, t.deadline, t.wcet, t.failure_probability
            )
        )
    return diags


def _select(diags: Iterable[Diagnostic], code: str) -> Iterator[Diagnostic]:
    return (d for d in diags if d.code == code)


def as_model_taskset(subject: TaskSetRecord) -> TaskSet | None:
    """Build a real :class:`TaskSet` from a record, or ``None`` if the
    record is structurally invalid (some rule already reports why)."""
    try:
        tasks = [
            Task(
                name=t.name,
                period=t.period,
                deadline=t.deadline,
                wcet=t.wcet,
                criticality=t.criticality,
                failure_probability=t.failure_probability,
            )
            for t in subject.tasks
            if t.criticality is not None
        ]
        if len(tasks) != len(subject.tasks):
            return None
        return TaskSet(tasks, spec=subject.spec, name=subject.name)
    except (ValueError, TypeError):
        return None


@rule("FTMC001", Severity.ERROR, "taskset", "period must be positive")
def _r_period(subject: TaskSetRecord) -> Iterator[Diagnostic]:
    return _select(_structural(subject), "FTMC001")


@rule("FTMC002", Severity.ERROR, "taskset", "deadline must be positive")
def _r_deadline(subject: TaskSetRecord) -> Iterator[Diagnostic]:
    return _select(_structural(subject), "FTMC002")


@rule("FTMC003", Severity.ERROR, "taskset", "WCET must be non-negative")
def _r_wcet(subject: TaskSetRecord) -> Iterator[Diagnostic]:
    return _select(_structural(subject), "FTMC003")


@rule(
    "FTMC004",
    Severity.ERROR,
    "taskset",
    "WCET exceeds both deadline and period (single execution can never fit)",
)
def _r_wcet_window(subject: TaskSetRecord) -> Iterator[Diagnostic]:
    return _select(_structural(subject), "FTMC004")


@rule(
    "FTMC005",
    Severity.WARNING,
    "taskset",
    "arbitrary deadline D > T (analyses assuming constrained deadlines "
    "may not apply)",
)
def _r_arbitrary_deadline(subject: TaskSetRecord) -> Iterator[Diagnostic]:
    for t in subject.tasks:
        if (
            math.isfinite(t.deadline)
            and math.isfinite(t.period)
            and t.period > 0
            and t.deadline > t.period
            and not math.isclose(t.deadline, t.period)
        ):
            yield Diagnostic(
                "FTMC005",
                Severity.WARNING,
                t.name,
                f"{t.name}: deadline {t.deadline} exceeds period {t.period} "
                "(arbitrary-deadline task)",
                suggestion="set D <= T unless the target analysis supports "
                "arbitrary deadlines",
            )


@rule("FTMC006", Severity.ERROR, "taskset", "duplicate task names")
def _r_duplicates(subject: TaskSetRecord) -> list[Diagnostic]:
    return check_unique_names([t.name for t in subject.tasks])


@rule(
    "FTMC007",
    Severity.ERROR,
    "taskset",
    "single-execution utilization exceeds 1 (unschedulable on a "
    "uniprocessor before any re-execution)",
)
def _r_overutilized(subject: TaskSetRecord) -> Iterator[Diagnostic]:
    total = subject.utilization()
    if math.isfinite(total) and total > 1.0 + 1e-9:
        yield Diagnostic(
            "FTMC007",
            Severity.ERROR,
            "taskset",
            f"total utilization {total:.5f} exceeds 1 even without "
            "re-executions",
            suggestion="no uniprocessor schedule exists; shed load before "
            "running any analysis",
        )


@rule(
    "FTMC008",
    Severity.INFO,
    "taskset",
    "one-sided criticality partition (no HI or no LO tasks)",
)
def _r_one_sided(subject: TaskSetRecord) -> Iterator[Diagnostic]:
    if not subject.tasks:
        return
    if any(t.criticality is None for t in subject.tasks):
        return  # FTMC042 reports unparsable criticalities instead.
    for role, members in (
        (CriticalityRole.HI, subject.hi_tasks),
        (CriticalityRole.LO, subject.lo_tasks),
    ):
        if not members:
            yield Diagnostic(
                "FTMC008",
                Severity.INFO,
                "taskset",
                f"no {role.name} tasks: not a dual-criticality system "
                "(single-criticality analyses suffice)",
            )


@rule(
    "FTMC009",
    Severity.INFO,
    "taskset",
    "no dual-criticality spec attached (safety rules are skipped)",
)
def _r_no_spec(subject: TaskSetRecord) -> Iterator[Diagnostic]:
    if subject.spec is None:
        yield Diagnostic(
            "FTMC009",
            Severity.INFO,
            "taskset",
            "no DualCriticalitySpec attached; PFH ceilings cannot be "
            "checked",
            suggestion='bind HI/LO to DO-178B levels, e.g. a '
            '{"criticality": {"hi": "B", "lo": "C"}} header',
        )


@rule(
    "FTMC010",
    Severity.ERROR,
    "taskset",
    "failure probability outside [0, 1)",
)
def _r_failure_probability(subject: TaskSetRecord) -> Iterator[Diagnostic]:
    return _select(_structural(subject), "FTMC010")


@rule(
    "FTMC011",
    Severity.WARNING,
    "taskset",
    "zero failure probability on a safety-related task (fault model "
    "degenerates; re-execution is pointless)",
)
def _r_zero_probability(subject: TaskSetRecord) -> Iterator[Diagnostic]:
    if subject.spec is None:
        return
    for t in subject.tasks:
        # Exactly the unset default (0.0) counts as "not supplied";
        # negative values are FTMC010 errors, not warnings.
        if t.criticality is None or not (
            0.0 <= t.failure_probability <= 0.0
        ):
            continue
        if subject.spec.level(t.criticality).is_safety_related:
            yield Diagnostic(
                "FTMC011",
                Severity.WARNING,
                t.name,
                f"{t.name}: no positive failure probability but its level "
                f"{subject.spec.level(t.criticality).name} carries a PFH "
                "ceiling",
                suggestion="supply the per-job failure probability f of "
                "the target hardware (paper: 1e-3..1e-5)",
            )


@rule(
    "FTMC012",
    Severity.ERROR,
    "taskset",
    "PFH ceiling unreachable within the re-execution search bound",
)
def _r_unreachable_ceiling(subject: TaskSetRecord) -> Iterator[Diagnostic]:
    if subject.spec is None:
        return
    taskset = as_model_taskset(subject)
    if taskset is None:
        return
    for role in (CriticalityRole.HI, CriticalityRole.LO):
        ceiling = subject.spec.pfh_requirement(role)
        if not math.isfinite(ceiling) or not taskset.by_criticality(role):
            continue
        n = minimal_uniform_reexecution(taskset, role, ceiling)
        if n is None:
            yield Diagnostic(
                "FTMC012",
                Severity.ERROR,
                "taskset",
                f"{role.name} level (DO-178B "
                f"{subject.spec.level(role).name}): no re-execution "
                f"profile n <= {DEFAULT_MAX_REEXECUTIONS} reaches the PFH "
                f"ceiling {ceiling:g}",
                suggestion="lower the per-job failure probabilities "
                "(better hardware) or certify at a less critical level",
            )


@rule(
    "FTMC013",
    Severity.WARNING,
    "taskset",
    "utilization with minimal safe re-execution profiles exceeds 1 "
    "(FT-S cannot succeed)",
)
def _r_inflated_utilization(subject: TaskSetRecord) -> Iterator[Diagnostic]:
    if subject.spec is None:
        return
    taskset = as_model_taskset(subject)
    if taskset is None:
        return
    inflated = 0.0
    for role in (CriticalityRole.HI, CriticalityRole.LO):
        if not taskset.by_criticality(role):
            continue
        ceiling = subject.spec.pfh_requirement(role)
        n = minimal_uniform_reexecution(taskset, role, ceiling)
        if n is None:
            return  # FTMC012 already reports the unreachable ceiling.
        inflated += taskset.scaled_utilization(role, lambda _t, _n=n: _n)
    if inflated > 1.0 + 1e-9:
        yield Diagnostic(
            "FTMC013",
            Severity.WARNING,
            "taskset",
            f"utilization inflated by the minimal safe re-execution "
            f"profiles is {inflated:.5f} > 1; no scheduler backend can "
            "accept this set",
            suggestion="reduce base utilization or improve the hardware "
            "failure probability",
        )
