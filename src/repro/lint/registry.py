"""Rule registry: the catalog of model-level lint rules.

Every rule is a function ``subject -> Iterable[Diagnostic]`` registered
under a stable ``FTMC0xx`` code with a default severity, a *kind* naming
the subject it understands, and a one-line summary.  The engine
(:mod:`repro.lint.engine`) collects the rules of a kind and runs them in
code order; tests and ``docs/lint.md`` enumerate the catalog through
:func:`rule_catalog`.

Kinds
-----
``taskset``
    A :class:`repro.lint.records.TaskSetRecord` (sporadic model + spec).
``profiles``
    A :class:`ProfilesSubject` (task set + re-execution/adaptation maps).
``mc``
    A :class:`repro.lint.records.MCTaskSetRecord` (Vestal model).
``conversion``
    A :class:`ConversionSubject` (source set, profiles, converted set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.records import MCTaskSetRecord, TaskSetRecord

__all__ = [
    "Rule",
    "RULES",
    "rule",
    "rules_for",
    "rule_catalog",
    "ProfilesSubject",
    "ConversionSubject",
]

RuleFunc = Callable[..., Iterable[Diagnostic]]


@dataclass(frozen=True)
class ProfilesSubject:
    """Subject of the ``profiles`` rules.

    ``reexecution``/``adaptation`` are plain name->int mappings so that
    invalid profiles (which :class:`repro.model.faults.ReexecutionProfile`
    would reject) can still be diagnosed.
    """

    taskset: TaskSetRecord
    reexecution: Mapping[str, int] = field(default_factory=dict)
    adaptation: Mapping[str, int] | None = None


@dataclass(frozen=True)
class ConversionSubject:
    """Subject of the ``conversion`` round-trip rules (Lemma 4.1)."""

    taskset: TaskSetRecord
    n_hi: int
    n_lo: int
    n_prime: int
    converted: MCTaskSetRecord


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    code: str
    severity: Severity
    kind: str
    summary: str
    func: RuleFunc

    def run(self, subject) -> list[Diagnostic]:
        return list(self.func(subject))


#: The global registry, keyed by rule code.
RULES: dict[str, Rule] = {}

_KINDS = ("taskset", "profiles", "mc", "conversion")


def rule(code: str, severity: Severity, kind: str, summary: str):
    """Class of decorators registering a rule function under ``code``."""
    if kind not in _KINDS:
        raise ValueError(f"unknown rule kind {kind!r}; expected one of {_KINDS}")
    if code in RULES:
        raise ValueError(f"duplicate rule code {code!r}")

    def decorator(func: RuleFunc) -> RuleFunc:
        RULES[code] = Rule(
            code=code, severity=severity, kind=kind, summary=summary, func=func
        )
        return func

    return decorator


def rules_for(kind: str) -> tuple[Rule, ...]:
    """All rules of a kind, in ascending code order."""
    return tuple(
        RULES[code] for code in sorted(RULES) if RULES[code].kind == kind
    )


def rule_catalog() -> tuple[Rule, ...]:
    """Every registered rule, in ascending code order."""
    return tuple(RULES[code] for code in sorted(RULES))
