"""Unvalidated record views of task sets for the lint rules.

The model constructors (:class:`repro.model.task.Task`, ...) reject
invalid parameters outright, which is exactly what an analysis pipeline
wants — but a *linter* must be able to hold broken data and report every
problem at once.  These records are permissive twins of the model
classes: plain dataclasses with no ``__post_init__`` validation, plus
converters from model objects and from raw JSON documents.

Field parsing is forgiving: values that cannot be coerced to ``float``
are recorded as ``nan`` (and surface through the document rules), so a
single bad field never aborts the run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

from repro.model.criticality import CriticalityRole, DualCriticalitySpec

__all__ = ["TaskRecord", "TaskSetRecord", "MCTaskRecord", "MCTaskSetRecord"]


def _coerce(value: Any, default: float = math.nan) -> float:
    """``float(value)`` with ``nan`` (or ``default``) on failure."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return default


def _coerce_role(value: Any) -> CriticalityRole | None:
    """Parse HI/LO from a role object or string; ``None`` when invalid."""
    if isinstance(value, CriticalityRole):
        return value
    try:
        return CriticalityRole[str(value).strip().upper()]
    except KeyError:
        return None


@dataclass(frozen=True)
class TaskRecord:
    """One sporadic task, as claimed — not as validated."""

    name: str
    period: float
    deadline: float
    wcet: float
    criticality: CriticalityRole | None
    failure_probability: float = 0.0
    #: Raw criticality token when it failed to parse (for diagnostics).
    raw_criticality: str | None = None

    @classmethod
    def from_task(cls, task: Any) -> "TaskRecord":
        """View a :class:`repro.model.task.Task` (duck-typed)."""
        return cls(
            name=str(task.name),
            period=float(task.period),
            deadline=float(task.deadline),
            wcet=float(task.wcet),
            criticality=task.criticality,
            failure_probability=float(getattr(task, "failure_probability", 0.0)),
        )

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any], index: int) -> "TaskRecord":
        """Parse one JSON task entry without rejecting anything."""
        period = _coerce(raw.get("period"))
        role = _coerce_role(raw.get("criticality"))
        return cls(
            name=str(raw.get("name", f"tau{index + 1}")),
            period=period,
            deadline=_coerce(raw.get("deadline", period)),
            wcet=_coerce(raw.get("wcet")),
            criticality=role,
            failure_probability=_coerce(raw.get("failure_probability", 0.0), 0.0),
            raw_criticality=(
                None if role is not None else repr(raw.get("criticality"))
            ),
        )

    @property
    def utilization(self) -> float:
        """``C/T``; ``nan``/``inf`` propagate rather than raise."""
        if self.period == 0:
            return math.inf
        return self.wcet / self.period


@dataclass(frozen=True)
class TaskSetRecord:
    """A task set as claimed: records plus the optional HI/LO spec."""

    name: str
    tasks: tuple[TaskRecord, ...]
    spec: DualCriticalitySpec | None = None

    @classmethod
    def from_taskset(cls, taskset: Any) -> "TaskSetRecord":
        """View a :class:`repro.model.task.TaskSet` (duck-typed)."""
        return cls(
            name=str(taskset.name),
            tasks=tuple(TaskRecord.from_task(t) for t in taskset),
            spec=getattr(taskset, "spec", None),
        )

    def by_criticality(self, role: CriticalityRole) -> tuple[TaskRecord, ...]:
        return tuple(t for t in self.tasks if t.criticality is role)

    @property
    def hi_tasks(self) -> tuple[TaskRecord, ...]:
        return self.by_criticality(CriticalityRole.HI)

    @property
    def lo_tasks(self) -> tuple[TaskRecord, ...]:
        return self.by_criticality(CriticalityRole.LO)

    def utilization(self) -> float:
        return sum(t.utilization for t in self.tasks)


@dataclass(frozen=True)
class MCTaskRecord:
    """One Vestal-model task, as claimed — not as validated."""

    name: str
    period: float
    deadline: float
    wcet_lo: float
    wcet_hi: float
    criticality: CriticalityRole | None

    @classmethod
    def from_mc_task(cls, task: Any) -> "MCTaskRecord":
        """View a :class:`repro.model.mc_task.MCTask` (duck-typed)."""
        return cls(
            name=str(task.name),
            period=float(task.period),
            deadline=float(task.deadline),
            wcet_lo=float(task.wcet_lo),
            wcet_hi=float(task.wcet_hi),
            criticality=task.criticality,
        )

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any], index: int) -> "MCTaskRecord":
        period = _coerce(raw.get("period"))
        return cls(
            name=str(raw.get("name", f"tau{index + 1}")),
            period=period,
            deadline=_coerce(raw.get("deadline", period)),
            wcet_lo=_coerce(raw.get("wcet_lo")),
            wcet_hi=_coerce(raw.get("wcet_hi")),
            criticality=_coerce_role(raw.get("criticality")),
        )


@dataclass(frozen=True)
class MCTaskSetRecord:
    """A Vestal-model task set as claimed."""

    name: str
    tasks: tuple[MCTaskRecord, ...]

    @classmethod
    def from_mc_taskset(cls, taskset: Any) -> "MCTaskSetRecord":
        return cls(
            name=str(taskset.name),
            tasks=tuple(MCTaskRecord.from_mc_task(t) for t in taskset),
        )

    def utilization_lo(self) -> float:
        """LO-mode utilization ``sum C_i(LO) / T_i`` over all tasks."""
        return sum(
            math.inf if t.period == 0 else t.wcet_lo / t.period for t in self.tasks
        )
