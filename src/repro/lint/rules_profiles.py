"""Lint rules for re-execution and adaptation profiles (FTMC014-017).

Subjects are :class:`~repro.lint.registry.ProfilesSubject` instances:
the task-set record plus plain ``name -> int`` mappings, so profiles the
:class:`repro.model.faults` value objects would refuse to construct can
still be diagnosed in full.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import ProfilesSubject, rule
from repro.model.criticality import CriticalityRole


@rule(
    "FTMC014",
    Severity.ERROR,
    "profiles",
    "degenerate re-execution profile n_i < 1 (a job must run at least "
    "once)",
)
def _r_degenerate_reexecution(subject: ProfilesSubject) -> Iterator[Diagnostic]:
    for name, n in subject.reexecution.items():
        if n < 1:
            yield Diagnostic(
                "FTMC014",
                Severity.ERROR,
                name,
                f"{name}: re-execution profile n={n} is below 1; every "
                "instance executes at least once",
                suggestion="use n_i >= 1 (n_i = 1 means no re-execution)",
            )


@rule(
    "FTMC015",
    Severity.ERROR,
    "profiles",
    "profile does not cover every task it must cover",
)
def _r_missing_coverage(subject: ProfilesSubject) -> Iterator[Diagnostic]:
    for t in subject.taskset.tasks:
        if t.name not in subject.reexecution:
            yield Diagnostic(
                "FTMC015",
                Severity.ERROR,
                t.name,
                f"{t.name}: re-execution profile defines no n_i for this "
                "task",
                suggestion="the profile N must map every task of the set",
            )
    if subject.adaptation is None:
        return
    for t in subject.taskset.tasks:
        if t.criticality is CriticalityRole.HI and t.name not in subject.adaptation:
            yield Diagnostic(
                "FTMC015",
                Severity.ERROR,
                t.name,
                f"{t.name}: adaptation profile defines no n'_i for this "
                "HI task",
                suggestion="the profile N'_HI must map every HI task",
            )


@rule(
    "FTMC016",
    Severity.ERROR,
    "profiles",
    "adaptation profile exceeds the re-execution profile (n'_i > n_i)",
)
def _r_adaptation_exceeds(subject: ProfilesSubject) -> Iterator[Diagnostic]:
    if subject.adaptation is None:
        return
    for name, n_prime in subject.adaptation.items():
        n = subject.reexecution.get(name)
        if n is not None and n_prime > n:
            yield Diagnostic(
                "FTMC016",
                Severity.ERROR,
                name,
                f"{name}: adaptation profile n'={n_prime} exceeds its "
                f"re-execution profile n={n}",
                suggestion="the (n'+1)-th execution must exist to trigger "
                "adaptation: keep n'_i <= n_i",
            )


@rule(
    "FTMC017",
    Severity.ERROR,
    "profiles",
    "degenerate adaptation profile n'_i < 1",
)
def _r_degenerate_adaptation(subject: ProfilesSubject) -> Iterator[Diagnostic]:
    if subject.adaptation is None:
        return
    for name, n_prime in subject.adaptation.items():
        if n_prime < 1:
            yield Diagnostic(
                "FTMC017",
                Severity.ERROR,
                name,
                f"{name}: adaptation profile n'={n_prime} is below 1; "
                "adaptation cannot trigger before the first execution",
                suggestion="use n'_i >= 1 (n'_i = n_i encodes 'never "
                "adapt')",
            )
