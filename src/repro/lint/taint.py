"""The dataflow rule families: FTMCD, FTMCF and FTMCP.

Built on the project index (:mod:`repro.lint.project`) and the taint
engine (:mod:`repro.lint.flow`), three families of machine-checked
invariants back the campaign runner's determinism contract and the
analysis layer's certification argument:

======= ======================================================================
code    invariant
======= ======================================================================
FTMCD01 no unseeded-RNG value may reach a result/checkpoint sink —
        campaign payloads must be a pure function of the shard plan
        (``backoff_rng``-style seeded per-shard streams are sanctioned)
FTMCD02 no wall-clock or entropy value (``time.time``, ``os.urandom``,
        ``uuid4``, ...) may reach a result/checkpoint sink
FTMCD03 no unordered-iteration result (``set`` iteration, ``os.listdir``
        order) may reach a result/checkpoint sink; ``sorted()`` sanitises
FTMCF01 no module-level mutable state may be mutated inside
        :mod:`repro.runner` functions — a forked worker mutates its own
        copy while the supervisor's goes stale
FTMCF02 no pipe ``send()`` after ``close()`` on the same connection (the
        worker protocol is one-shot; send-after-close raises at runtime)
FTMCF03 every ``Process(target=...)`` entry point must call
        ``reset_inherited_session()`` before doing traced work — a
        forked child must never write to the parent's trace stream
FTMCP01 functions in :mod:`repro.analysis`/:mod:`repro.safety` must not
        write files — analyses are pure; emission belongs to callers
FTMCP02 functions in :mod:`repro.analysis`/:mod:`repro.safety` must not
        mutate module-level state (``functools.lru_cache`` is the
        sanctioned memo mechanism)
FTMCP03 functions in :mod:`repro.analysis`/:mod:`repro.safety` must not
        read the environment at call time, except the sanctioned
        ``REPRO_*`` toggles (``REPRO_NO_NUMPY``)
======= ======================================================================

All are error severity.  Pre-existing findings are suppressed through
``lint-baseline.json`` (:mod:`repro.lint.baseline`) so the rules are
strict on new code only.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.diagnostics import Diagnostic, Severity, TracePoint
from repro.lint.flow import (
    FunctionSummary,
    TaintedFlow,
    analyze_function,
    analyze_module_body,
    module_environment,
    register_params,
)
from repro.lint.project import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    attribute_chain,
)

__all__ = ["TAINT_RULE_CATALOG", "analyze_index"]

#: code → (severity, summary); consumed by docs-sync tests and SARIF.
TAINT_RULE_CATALOG: dict[str, tuple[Severity, str]] = {
    "FTMCD01": (Severity.ERROR,
                "unseeded RNG value flows into a result/checkpoint sink"),
    "FTMCD02": (Severity.ERROR,
                "wall-clock or entropy value flows into a result/checkpoint "
                "sink"),
    "FTMCD03": (Severity.ERROR,
                "unordered iteration result flows into a result/checkpoint "
                "sink"),
    "FTMCF01": (Severity.ERROR,
                "module-level mutable state mutated in a runner function"),
    "FTMCF02": (Severity.ERROR,
                "pipe send() after close() on the same connection"),
    "FTMCF03": (Severity.ERROR,
                "fork target does not reset the inherited obs session"),
    "FTMCP01": (Severity.ERROR,
                "analysis/safety function writes files at call time"),
    "FTMCP02": (Severity.ERROR,
                "analysis/safety function mutates module-level state"),
    "FTMCP03": (Severity.ERROR,
                "analysis/safety function reads the environment at call time "
                "outside the sanctioned REPRO_* toggles"),
}

_KIND_TO_CODE = {
    "rng": "FTMCD01",
    "wallclock": "FTMCD02",
    "entropy": "FTMCD02",
    "order": "FTMCD03",
}

_KIND_TO_NOUN = {
    "rng": "unseeded RNG value",
    "wallclock": "wall-clock value",
    "entropy": "entropy value",
    "order": "unordered iteration result",
}

_KIND_TO_SUGGESTION = {
    "rng": "draw from a seeded stream: random.Random(seed), "
           "np.random.default_rng(seed) or a backoff_rng-style per-shard "
           "generator",
    "wallclock": "derive record fields from the shard plan; keep timing in "
                 "coverage/trace files excluded from the byte-identical "
                 "contract",
    "entropy": "derive identifiers from the shard plan (id/index/seed), "
               "never from os.urandom/uuid4",
    "order": "wrap the iterable in sorted(...) before it reaches an emitted "
             "record",
}

#: Container-mutating method names (FTMCF01/FTMCP02).
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "remove",
    "discard", "clear", "pop", "popitem", "appendleft", "extendleft",
})

#: Call-time write APIs (FTMCP01) besides write-mode ``open``.
_WRITE_CALLS = frozenset({
    "repro.io.atomic_write_text", "repro.io.atomic_write_json",
    "repro.io.append_jsonl",
    "os.makedirs", "os.mkdir", "os.remove", "os.unlink", "os.rename",
    "os.replace", "os.rmdir",
    "shutil.copy", "shutil.copy2", "shutil.copyfile", "shutil.copytree",
    "shutil.move", "shutil.rmtree",
})

#: ``pathlib.Path`` mutating methods (FTMCP01 / FTMCC05 routing).
_PATH_WRITE_METHODS = frozenset({
    "write_text", "write_bytes", "touch", "mkdir", "unlink", "rmdir",
    "rename", "replace", "symlink_to", "hardlink_to",
})

#: Environment keys analyses may read at call time (FTMCP03).
_SANCTIONED_ENV_PREFIX = "REPRO_"

_SUMMARY_ROUNDS = 4


def _runner_scoped(module: ModuleInfo) -> bool:
    return module.relpath.startswith("runner/") or "/runner/" in module.relpath


def _purity_scoped(module: ModuleInfo) -> bool:
    for prefix in ("analysis/", "safety/"):
        if module.relpath.startswith(prefix) or f"/{prefix}" in module.relpath:
            return True
    return False


def _functions_in_order(module: ModuleInfo) -> list[FunctionInfo]:
    return sorted(module.functions.values(), key=lambda f: f.lineno)


# -- FTMCD: determinism taint --------------------------------------------------


def _taint_diagnostics(index: ProjectIndex) -> list[Diagnostic]:
    register_params(
        {
            info.qualname: info.params
            for module in index.ordered()
            for info in module.functions.values()
        }
    )
    summaries: dict[str, FunctionSummary] = {}
    discard = lambda flow: None  # noqa: E731 - summary rounds do not emit
    for _ in range(_SUMMARY_ROUNDS):
        envs = {
            module.module: module_environment(module, summaries)
            for module in index.ordered()
        }
        round_summaries: dict[str, FunctionSummary] = {}
        for module in index.ordered():
            for info in _functions_in_order(module):
                round_summaries[info.qualname] = analyze_function(
                    module, info, summaries, envs[module.module], discard
                )
        if round_summaries == summaries:
            break
        summaries = round_summaries

    diagnostics: list[Diagnostic] = []
    seen: set[tuple[str, str, str]] = set()

    def emitter(module: ModuleInfo):
        def emit(flow: TaintedFlow) -> None:
            code = _KIND_TO_CODE.get(flow.kind)
            if code is None:
                return
            location = f"{module.relpath}:{flow.lineno}"
            message = (
                f"{_KIND_TO_NOUN[flow.kind]} reaches {flow.sink} — emitted "
                "records must be a deterministic function of the plan"
            )
            key = (code, location, message)
            if key in seen:
                return
            seen.add(key)
            diagnostics.append(
                Diagnostic(
                    code,
                    Severity.ERROR,
                    location,
                    message,
                    suggestion=_KIND_TO_SUGGESTION[flow.kind],
                    trace=tuple(flow.trace),
                )
            )

        return emit

    for module in index.ordered():
        emit = emitter(module)
        analyze_module_body(module, summaries, emit)
        env = module_environment(module, summaries)
        for info in _functions_in_order(module):
            analyze_function(module, info, summaries, env, emit)
    return diagnostics


# -- FTMCF: fork/concurrency safety --------------------------------------------


def _global_mutations(
    module: ModuleInfo, info: FunctionInfo
) -> Iterable[tuple[int, str, str]]:
    """``(line, name, how)`` mutations of module-level state in a function."""
    declared_global: set[str] = set()
    for node in ast.walk(info.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    for node in ast.walk(info.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in declared_global
                ):
                    yield node.lineno, target.id, "rebound via 'global'"
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ) and target.value.id in module.mutable_globals:
                    yield node.lineno, target.value.id, "item-assigned"
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            base = node.func.value
            if (
                isinstance(base, ast.Name)
                and base.id in module.mutable_globals
                and node.func.attr in _MUTATOR_METHODS
            ):
                yield node.lineno, base.id, f".{node.func.attr}()"
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ) and target.value.id in module.mutable_globals:
                    yield node.lineno, target.value.id, "item-deleted"


def _send_after_close(info: FunctionInfo) -> Iterable[tuple[int, str]]:
    """``(line, name)`` for pipe sends that follow a close on all paths."""

    def conn_of(call: ast.Call) -> str | None:
        if isinstance(call.func, ast.Attribute):
            chain = attribute_chain(call.func.value)
            if chain:
                return ".".join(chain)
        return None

    findings: list[tuple[int, str]] = []

    def walk(body: list[ast.stmt], closed: set[str]) -> set[str]:
        for stmt in body:
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                call = stmt.value
                if isinstance(call.func, ast.Attribute):
                    name = conn_of(call)
                    if name is not None:
                        if call.func.attr == "close":
                            closed.add(name)
                        elif call.func.attr == "send" and name in closed:
                            findings.append((stmt.lineno, name))
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        closed.discard(target.id)
            elif isinstance(stmt, ast.If):
                then = walk(stmt.body, set(closed))
                other = walk(stmt.orelse, set(closed))
                closed = then & other
            elif isinstance(stmt, (ast.For, ast.While)):
                walk(stmt.body, set(closed))
                walk(stmt.orelse, set(closed))
            elif isinstance(stmt, ast.Try):
                after_body = walk(stmt.body, set(closed))
                for handler in stmt.handlers:
                    walk(handler.body, set(closed))
                after_else = walk(stmt.orelse, set(after_body))
                closed = walk(stmt.finalbody, after_else)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                closed = walk(stmt.body, closed)
        return closed

    walk(info.node.body, set())
    return findings


def _calls_name(node: ast.AST, name: str) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            leaf = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if leaf == name:
                return True
    return False


def _fork_diagnostics(index: ProjectIndex) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for module in index.ordered():
        if _runner_scoped(module):
            for info in _functions_in_order(module):
                for line, name, how in sorted(
                    set(_global_mutations(module, info))
                ):
                    diagnostics.append(
                        Diagnostic(
                            "FTMCF01",
                            Severity.ERROR,
                            f"{module.relpath}:{line}",
                            f"module-level mutable '{name}' {how} inside "
                            f"{info.name}() — a forked worker mutates its own "
                            "copy while the supervisor's copy goes stale",
                            suggestion="thread the state through parameters "
                            "or move it into the supervisor object",
                        )
                    )
                for line, name in _send_after_close(info):
                    diagnostics.append(
                        Diagnostic(
                            "FTMCF02",
                            Severity.ERROR,
                            f"{module.relpath}:{line}",
                            f"{name}.send() after {name}.close() — the "
                            "one-shot worker pipe protocol sends exactly "
                            "once, then closes",
                            suggestion="send the outcome first; close in a "
                            "finally block",
                        )
                    )
        # FTMCF03 applies wherever workers are forked.
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)):
                continue
            func_chain = attribute_chain(node.func)
            if not func_chain or func_chain[-1] != "Process":
                continue
            target = next(
                (kw.value for kw in node.keywords if kw.arg == "target"), None
            )
            if target is None:
                continue
            dotted = module.resolve(target)
            if dotted is None:
                continue
            info = index.resolve_function(dotted)
            if info is None:
                info = index.resolve_function(f"{module.module}.{dotted}")
            if info is None:
                continue
            if not _calls_name(info.node, "reset_inherited_session"):
                diagnostics.append(
                    Diagnostic(
                        "FTMCF03",
                        Severity.ERROR,
                        f"{module.relpath}:{node.lineno}",
                        f"fork target {info.name}() never calls "
                        "reset_inherited_session() — the child would write "
                        "to the parent's inherited trace stream",
                        suggestion="call repro.obs.trace."
                        "reset_inherited_session() first in the worker entry "
                        "point",
                        trace=(
                            TracePoint(
                                f"{module.relpath}:{node.lineno}",
                                f"worker forked with target={info.name}",
                            ),
                            TracePoint(
                                f"{info.module.rpartition('.')[2]}: "
                                f"{info.name}() defined at line {info.lineno}",
                                "entry point does not reset the obs session",
                            ),
                        ),
                    )
                )
    return diagnostics


# -- FTMCP: purity of the analysis layer ---------------------------------------


def _open_write_mode(node: ast.Call) -> str | None:
    mode_node: ast.expr | None = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    else:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode_node = keyword.value
    if mode_node is None:
        return None  # default "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value if set(mode_node.value) & set("wax+") else None
    return None


def _env_key(node: ast.Call | ast.Subscript, module: ModuleInfo) -> str | None:
    """The (resolved) key of an environment read, if literal."""
    key_node: ast.expr | None = None
    if isinstance(node, ast.Call) and node.args:
        key_node = node.args[0]
    elif isinstance(node, ast.Subscript):
        key_node = node.slice
    if isinstance(key_node, ast.Constant) and isinstance(key_node.value, str):
        return key_node.value
    if isinstance(key_node, ast.Name):
        return module.constants.get(key_node.id)
    if isinstance(key_node, ast.Attribute):
        return module.constants.get(key_node.attr)
    return None


def _purity_diagnostics(index: ProjectIndex) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for module in index.ordered():
        if not _purity_scoped(module):
            continue
        for info in _functions_in_order(module):
            for line, name, how in sorted(set(_global_mutations(module, info))):
                diagnostics.append(
                    Diagnostic(
                        "FTMCP02",
                        Severity.ERROR,
                        f"{module.relpath}:{line}",
                        f"module-level state '{name}' {how} inside "
                        f"{info.name}() — analyses must be pure so results "
                        "depend only on their inputs",
                        suggestion="use functools.lru_cache for memoisation, "
                        "or return the data to the caller",
                    )
                )
            for node in ast.walk(info.node):
                if isinstance(node, ast.Call):
                    dotted = module.resolve(node.func)
                    leaf = dotted.rpartition(".")[2] if dotted else None
                    if dotted == "open":
                        mode = _open_write_mode(node)
                        if mode is not None:
                            diagnostics.append(
                                Diagnostic(
                                    "FTMCP01",
                                    Severity.ERROR,
                                    f"{module.relpath}:{node.lineno}",
                                    f"file write (open mode {mode!r}) inside "
                                    f"{info.name}() — analyses are pure; "
                                    "emission belongs to the caller",
                                    suggestion="return the data; let the "
                                    "experiment driver write it via repro.io",
                                )
                            )
                    elif dotted in _WRITE_CALLS or (
                        leaf in _PATH_WRITE_METHODS
                        and isinstance(node.func, ast.Attribute)
                    ):
                        what = dotted if dotted in _WRITE_CALLS else f".{leaf}()"
                        diagnostics.append(
                            Diagnostic(
                                "FTMCP01",
                                Severity.ERROR,
                                f"{module.relpath}:{node.lineno}",
                                f"filesystem mutation {what} inside "
                                f"{info.name}() — analyses are pure; emission "
                                "belongs to the caller",
                                suggestion="return the data; let the "
                                "experiment driver write it via repro.io",
                            )
                        )
                    elif dotted == "os.getenv" or (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "get"
                        and module.resolve(node.func.value) == "os.environ"
                    ):
                        key = _env_key(node, module)
                        if key is None or not key.startswith(
                            _SANCTIONED_ENV_PREFIX
                        ):
                            diagnostics.append(
                                _env_diagnostic(module, info, node.lineno, key)
                            )
                elif isinstance(node, ast.Subscript) and isinstance(
                    node.ctx, ast.Load
                ):
                    if module.resolve(node.value) == "os.environ":
                        key = _env_key(node, module)
                        if key is None or not key.startswith(
                            _SANCTIONED_ENV_PREFIX
                        ):
                            diagnostics.append(
                                _env_diagnostic(module, info, node.lineno, key)
                            )
    return diagnostics


def _env_diagnostic(
    module: ModuleInfo, info: FunctionInfo, lineno: int, key: str | None
) -> Diagnostic:
    shown = f"{key!r}" if key is not None else "a dynamic key"
    return Diagnostic(
        "FTMCP03",
        Severity.ERROR,
        f"{module.relpath}:{lineno}",
        f"environment read of {shown} at call time inside {info.name}() — "
        "outside the sanctioned REPRO_* toggles this makes results depend on "
        "ambient process state",
        suggestion="read configuration at import time, pass it as a "
        "parameter, or use a REPRO_*-prefixed toggle",
    )


# -- entry point ---------------------------------------------------------------


def _sort_key(diag: Diagnostic) -> tuple[str, int, str]:
    path, _, line = diag.location.rpartition(":")
    try:
        return (path, int(line), diag.code)
    except ValueError:
        return (diag.location, 0, diag.code)


def analyze_index(index: ProjectIndex) -> list[Diagnostic]:
    """Run every dataflow rule family over a built project index."""
    diagnostics = [
        *_taint_diagnostics(index),
        *_fork_diagnostics(index),
        *_purity_diagnostics(index),
    ]
    return sorted(diagnostics, key=_sort_key)
