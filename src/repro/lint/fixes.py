"""Safe autofixes for the determinism rules (``ftmc selfcheck --fix``).

Only rewrites with a *provable* safety argument are applied; everything
else stays a diagnostic for a human.  Two rewrite families:

**sorted()-wrapping** — an iteration whose iterable is provably a
``set``/``frozenset`` (a literal, a ``set(...)`` call, or a name bound
exactly once in scope to one of those) is wrapped in ``sorted(...)``.
Guarantee: the iteration visits the same elements; only the (previously
unspecified) order changes, becoming deterministic.  Sites already
wrapped in ``sorted(...)`` are left alone, which is what makes the
rewrite idempotent.

**seed-threading** — a zero-argument RNG constructor
(``random.Random()``, ``numpy.random.default_rng()``, ...) inside a
function that has a ``seed`` parameter becomes ``Random(seed)``.
Guarantee: the constructor draws from the caller-supplied seed instead
of system entropy; no other expression changes.  Constructors that
already take arguments never match, so this too is idempotent.

Rewrites splice the original source at AST column offsets (applied in
reverse document order so earlier edits cannot shift later ones);
everything outside the spliced spans is byte-identical.  Files are
written through :func:`repro.io.atomic_write_text`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.io import atomic_write_text
from repro.lint.project import ModuleInfo, module_from_source

__all__ = ["Fix", "rewrite_source", "fix_file"]

#: Zero-argument constructors that accept a seed as first argument.
_SEEDABLE_CONSTRUCTORS = frozenset({
    "random.Random",
    "numpy.random.default_rng",
    "numpy.random.RandomState",
})

#: Builtins that materialise their (set) argument in iteration order.
_MATERIALIZERS = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})


@dataclass(frozen=True)
class Fix:
    """One applied rewrite, for reporting."""

    lineno: int
    description: str

    def render(self) -> str:
        return f"line {self.lineno}: {self.description}"


def _is_set_constructor(node: ast.expr, module: ModuleInfo) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return module.resolve(node.func) in ("set", "frozenset")
    return False


def _walk_scope(scope: ast.AST):
    """Walk a scope's nodes without descending into nested scopes."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue  # analysed as its own scope
        stack.extend(ast.iter_child_nodes(node))


def _assignment_counts(scope: ast.AST) -> dict[str, int]:
    """How many times each name is (re)bound inside a scope body."""
    counts: dict[str, int] = {}

    def bump(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            counts[target.id] = counts.get(target.id, 0) + 1
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                bump(element)

    for node in _walk_scope(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                bump(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            bump(node.target)
        elif isinstance(node, ast.For):
            bump(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bump(item.optional_vars)
        elif isinstance(node, ast.comprehension):
            bump(node.target)
    return counts


def _provable_sets(scope: ast.AST, module: ModuleInfo) -> set[str]:
    """Names bound exactly once in ``scope``, to a set constructor."""
    counts = _assignment_counts(scope)
    provable: set[str] = set()
    for node in _walk_scope(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and counts.get(target.id) == 1
                and _is_set_constructor(node.value, module)
            ):
                provable.add(target.id)
    return provable


def _provably_set(node: ast.expr, provable: set[str], module: ModuleInfo) -> bool:
    if _is_set_constructor(node, module):
        return True
    return isinstance(node, ast.Name) and node.id in provable


def _scopes(tree: ast.Module):
    """The module plus every function, outermost first."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@dataclass(frozen=True)
class _Splice:
    lineno: int  #: 1-based
    col: int  #: 0-based column offset
    text: str


def _apply_splices(source: str, splices: list[_Splice]) -> str:
    lines = source.splitlines(keepends=True)
    # Reverse document order: later edits first, so offsets stay valid.
    for splice in sorted(splices, key=lambda s: (s.lineno, s.col), reverse=True):
        line = lines[splice.lineno - 1]
        lines[splice.lineno - 1] = (
            line[: splice.col] + splice.text + line[splice.col :]
        )
    return "".join(lines)


def _wrap(node: ast.expr, text_before: str, text_after: str) -> list[_Splice]:
    return [
        _Splice(node.lineno, node.col_offset, text_before),
        _Splice(node.end_lineno or node.lineno,
                node.end_col_offset or node.col_offset, text_after),
    ]


def rewrite_source(
    source: str, relpath: str = "<string>"
) -> tuple[str, list[Fix]]:
    """Apply every provable rewrite; return ``(new_source, fixes)``.

    The input is returned unchanged (and ``fixes`` is empty) when
    nothing provable is found or the source does not parse.
    """
    module = module_from_source(source, relpath)
    if module is None:
        return source, []

    splices: list[_Splice] = []
    fixes: list[Fix] = []

    def wrap_sorted(node: ast.expr, what: str) -> None:
        splices.extend(_wrap(node, "sorted(", ")"))
        fixes.append(Fix(node.lineno, f"wrapped {what} in sorted(...)"))

    for scope in _scopes(module.tree):
        provable = _provable_sets(scope, module)
        for node in _walk_scope(scope):
            if isinstance(node, ast.For) and _provably_set(
                node.iter, provable, module
            ):
                wrap_sorted(node.iter, "loop iterable")
            elif isinstance(node, ast.comprehension) and _provably_set(
                node.iter, provable, module
            ):
                wrap_sorted(node.iter, "comprehension iterable")
            elif (
                isinstance(node, ast.Call)
                and module.resolve(node.func) in _MATERIALIZERS
                and len(node.args) == 1
                and not node.keywords
                and _provably_set(node.args[0], provable, module)
            ):
                wrap_sorted(node.args[0], "materialised set")

    # Seed-threading: zero-arg RNG constructors in seed-taking functions.
    for scope in _scopes(module.tree):
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = scope.args
        params = {a.arg for a in (*args.posonlyargs, *args.args,
                                  *args.kwonlyargs)}
        if "seed" not in params:
            continue
        for node in _walk_scope(scope):
            if (
                isinstance(node, ast.Call)
                and not node.args
                and not node.keywords
                and module.resolve(node.func) in _SEEDABLE_CONSTRUCTORS
            ):
                # Insert just before the closing paren of ``ctor()``.
                end_line = node.end_lineno or node.lineno
                end_col = (node.end_col_offset or node.col_offset) - 1
                splices.append(_Splice(end_line, end_col, "seed"))
                fixes.append(Fix(
                    node.lineno,
                    "threaded the in-scope 'seed' parameter into the RNG "
                    "constructor",
                ))

    if not splices:
        return source, []
    rewritten = _apply_splices(source, splices)
    # A rewrite that breaks the parse is a bug; never emit it.
    try:
        ast.parse(rewritten)
    except SyntaxError:  # pragma: no cover - safety net
        return source, []
    fixes.sort(key=lambda fix: fix.lineno)
    return rewritten, fixes


def fix_file(path: str) -> list[Fix]:
    """Rewrite one file in place (atomically); return the applied fixes."""
    with open(path) as handle:
        source = handle.read()
    rewritten, fixes = rewrite_source(source, relpath=path)
    if fixes and rewritten != source:
        atomic_write_text(path, rewritten)
    return fixes
