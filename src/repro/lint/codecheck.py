"""AST-based code self-analysis (``ftmc selfcheck``).

Enforces repository invariants that generic linters do not know about:

======== =====================================================================
code     invariant
======== =====================================================================
FTMCC01  no ``==``/``!=`` on probability/PFH floats — certification maths
         must compare with ``math.isclose`` or an explicit epsilon
FTMCC02  no mutable default arguments (shared-state bugs across calls)
FTMCC03  no bare ``except:`` (swallows ``KeyboardInterrupt``/``SystemExit``
         and hides real faults — anathema for a certification tool)
FTMCC04  no ``print()`` outside the CLI and the experiment drivers —
         library code reports through return values and diagnostics
FTMCC05  no bare write-mode ``open(...)`` outside :mod:`repro.io` —
         results and checkpoints must go through the crash-safe writers
         (``atomic_write_text``/``atomic_write_json``/``append_jsonl``)
         so a kill can never leave a torn artifact
FTMCC06  no raw epsilon literals inside :mod:`repro.analysis` or
         :mod:`repro.experiments` outside the tolerance module — ad-hoc
         ``1e-9``/``1e-12`` comparisons are how the demand tests (and
         later the sweep's ``u_mc`` feasibility column) diverged; use the
         named constants and helpers of :mod:`repro.analysis.tolerance`
FTMCC07  no direct clock reads (``time.time``/``time.monotonic``/
         ``perf_counter`` and friends) inside ``analysis/``, ``sim/`` or
         ``runner/`` — mixing wall and monotonic clocks is how the
         supervisor once produced negative durations; go through
         :mod:`repro.obs.clock` (``time.sleep`` stays allowed)
======== =====================================================================

The pass is purely syntactic (:mod:`ast`), needs no third-party
packages, and is wired into CI next to ``ruff`` and ``mypy`` — it covers
the project-specific rules those tools cannot express.
"""

from __future__ import annotations

import ast
import os

from repro.lint.diagnostics import Diagnostic, LintReport, Severity

__all__ = ["check_source", "check_path", "selfcheck", "default_root"]

#: Identifier fragments that mark a value as a probability/PFH quantity.
_PROBABILITY_MARKERS = ("pfh", "prob")

#: Files (relative to the package root) where ``print`` is the interface.
_PRINT_ALLOWED = ("cli.py", "__main__.py")
_PRINT_ALLOWED_DIRS = ("experiments",)

#: Files (relative to the package root) that own the write primitives.
_WRITE_ALLOWED = ("io.py",)

#: ``open()`` mode characters implying a write (FTMCC05).
_WRITE_MODE_CHARS = frozenset("wax+")

#: Directories whose files must not carry their own epsilons (FTMCC06)
#: and the single file that owns them.
_EPSILON_SCOPED_DIRS = ("analysis", "experiments")
_EPSILON_ALLOWED = ("analysis/tolerance.py",)

#: A float literal of at most this magnitude is assumed to be a numeric
#: tolerance rather than a model quantity (periods, budgets and
#: probabilities used in the analyses are all far larger).
_EPSILON_THRESHOLD = 1e-6

#: Directories whose files must read clocks through ``repro.obs.clock``
#: (FTMCC07); :mod:`repro.obs` and :mod:`repro.perf.bench` live outside
#: them and keep their deliberate raw access.
_CLOCK_SCOPED_DIRS = ("analysis", "sim", "runner")

#: ``time.<attr>`` reads flagged by FTMCC07 (``time.sleep`` is not a read).
_CLOCK_READS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
    "thread_time", "thread_time_ns", "clock_gettime", "clock_gettime_ns",
})

#: Bare names unambiguous enough to flag when called directly (i.e. after
#: ``from time import perf_counter``).  ``time``/``monotonic`` alone are
#: excluded: they collide with ``repro.obs.clock``'s own exports.
_CLOCK_BARE_READS = frozenset({
    "perf_counter", "perf_counter_ns", "monotonic_ns",
    "process_time", "process_time_ns", "thread_time", "thread_time_ns",
    "clock_gettime", "clock_gettime_ns",
})

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


def _identifier_of(node: ast.expr) -> str | None:
    """The rightmost identifier of a Name/Attribute/Call chain, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _identifier_of(node.func)
    return None


def _mentions_probability(node: ast.expr) -> bool:
    identifier = _identifier_of(node)
    if identifier is None:
        return False
    lowered = identifier.lower()
    return any(marker in lowered for marker in _PROBABILITY_MARKERS)


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


def _open_mode(node: ast.Call) -> str | None:
    """The literal mode of an ``open()`` call; ``None`` when dynamic."""
    mode_node: ast.expr | None = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    else:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode_node = keyword.value
                break
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


class _Checker(ast.NodeVisitor):
    def __init__(
        self,
        filename: str,
        allow_print: bool,
        allow_write: bool = False,
        forbid_epsilon: bool = False,
        forbid_clock: bool = False,
    ) -> None:
        self.filename = filename
        self.allow_print = allow_print
        self.allow_write = allow_write
        self.forbid_epsilon = forbid_epsilon
        self.forbid_clock = forbid_clock
        self.diagnostics: list[Diagnostic] = []

    def _emit(self, code: str, line: int, message: str, suggestion: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                code,
                Severity.ERROR,
                f"{self.filename}:{line}",
                message,
                suggestion=suggestion,
            )
        )

    # FTMCC01 ------------------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _mentions_probability(left) or _mentions_probability(right):
                self._emit(
                    "FTMCC01",
                    node.lineno,
                    "exact equality on a probability/PFH float",
                    "compare with math.isclose(...) or an explicit epsilon",
                )
                break
        self.generic_visit(node)

    # FTMCC02 ------------------------------------------------------------------

    def _check_defaults(self, node: ast.arguments, line: int) -> None:
        for default in (*node.defaults, *node.kw_defaults):
            if default is not None and _is_mutable_default(default):
                self._emit(
                    "FTMCC02",
                    getattr(default, "lineno", line),
                    "mutable default argument",
                    "default to None and create the container inside the "
                    "function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node.args, node.lineno)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node.args, node.lineno)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node.args, node.lineno)
        self.generic_visit(node)

    # FTMCC03 ------------------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(
                "FTMCC03",
                node.lineno,
                "bare 'except:' clause",
                "catch a specific exception type (at minimum "
                "'except Exception:')",
            )
        self.generic_visit(node)

    # FTMCC07 ------------------------------------------------------------------

    def _clock_read_name(self, node: ast.Call) -> str | None:
        """The flagged clock identifier of a call, or ``None``."""
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and func.attr in _CLOCK_READS
        ):
            return f"time.{func.attr}"
        if isinstance(func, ast.Name) and func.id in _CLOCK_BARE_READS:
            return func.id
        return None

    # FTMCC04 / FTMCC05 / FTMCC07 ----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if (
            not self.allow_print
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            self._emit(
                "FTMCC04",
                node.lineno,
                "print() in library code",
                "return data or diagnostics; only cli.py, __main__.py and "
                "experiments/ may print",
            )
        if (
            not self.allow_write
            and isinstance(node.func, ast.Name)
            and node.func.id == "open"
        ):
            mode = _open_mode(node)
            if mode is not None and _WRITE_MODE_CHARS & set(mode):
                self._emit(
                    "FTMCC05",
                    node.lineno,
                    f"non-atomic file write (open mode {mode!r})",
                    "write through repro.io: atomic_write_text / "
                    "atomic_write_json / append_jsonl (crash-safe)",
                )
        if self.forbid_clock:
            clock_read = self._clock_read_name(node)
            if clock_read is not None:
                self._emit(
                    "FTMCC07",
                    node.lineno,
                    f"direct clock read {clock_read}() in a clock-disciplined "
                    "module",
                    "read clocks through repro.obs.clock (monotonic / "
                    "monotonic_ns for durations, wall_time for timestamps)",
                )
        self.generic_visit(node)

    # FTMCC06 ------------------------------------------------------------------

    def visit_Constant(self, node: ast.Constant) -> None:
        if (
            self.forbid_epsilon
            and isinstance(node.value, float)
            and 0.0 < abs(node.value) <= _EPSILON_THRESHOLD
        ):
            self._emit(
                "FTMCC06",
                node.lineno,
                f"raw epsilon literal {node.value!r} in an epsilon-scoped "
                "module",
                "use the named tolerances and comparison helpers of "
                "repro.analysis.tolerance (REL_EPS, exceeds, floor_div, ...)",
            )
        self.generic_visit(node)


def _print_allowed(relpath: str) -> bool:
    parts = relpath.replace(os.sep, "/").split("/")
    if parts[-1] in _PRINT_ALLOWED:
        return True
    return any(part in _PRINT_ALLOWED_DIRS for part in parts[:-1])


def _write_allowed(relpath: str) -> bool:
    return relpath.replace(os.sep, "/") in _WRITE_ALLOWED


def _epsilon_forbidden(relpath: str) -> bool:
    normalized = relpath.replace(os.sep, "/")
    if normalized in _EPSILON_ALLOWED:
        return False
    return normalized.split("/")[0] in _EPSILON_SCOPED_DIRS


def _clock_forbidden(relpath: str) -> bool:
    return relpath.replace(os.sep, "/").split("/")[0] in _CLOCK_SCOPED_DIRS


def check_source(
    source: str,
    filename: str = "<string>",
    allow_print: bool = False,
    allow_write: bool = False,
    forbid_epsilon: bool = False,
    forbid_clock: bool = False,
) -> list[Diagnostic]:
    """Run the code rules over one source string."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            Diagnostic(
                "FTMCC00",
                Severity.ERROR,
                f"{filename}:{exc.lineno or 0}",
                f"syntax error: {exc.msg}",
            )
        ]
    checker = _Checker(
        filename, allow_print, allow_write, forbid_epsilon, forbid_clock
    )
    checker.visit(tree)
    return sorted(checker.diagnostics, key=lambda d: d.location)


def default_root() -> str:
    """The ``src/repro`` directory of the running installation."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def check_path(root: str) -> LintReport:
    """Walk a directory tree and check every ``.py`` file under it."""
    diags: list[Diagnostic] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relpath = os.path.relpath(path, root)
            with open(path) as handle:
                source = handle.read()
            diags.extend(
                check_source(
                    source,
                    relpath,
                    allow_print=_print_allowed(relpath),
                    allow_write=_write_allowed(relpath),
                    forbid_epsilon=_epsilon_forbidden(relpath),
                    forbid_clock=_clock_forbidden(relpath),
                )
            )
    return LintReport(diags)


def selfcheck(root: str | None = None) -> LintReport:
    """Check the installed ``repro`` package itself (``ftmc selfcheck``)."""
    return check_path(root if root is not None else default_root())
