"""AST-based code self-analysis (``ftmc selfcheck``).

Enforces repository invariants that generic linters do not know about:

======== =====================================================================
code     invariant
======== =====================================================================
FTMCC01  no ``==``/``!=`` on probability/PFH floats — certification maths
         must compare with ``math.isclose`` or an explicit epsilon
FTMCC02  no mutable default arguments (shared-state bugs across calls)
FTMCC03  no bare ``except:`` (swallows ``KeyboardInterrupt``/``SystemExit``
         and hides real faults — anathema for a certification tool)
FTMCC04  no ``print()`` outside the CLI and the experiment drivers —
         library code reports through return values and diagnostics
FTMCC05  no bare write-mode ``open(...)`` outside :mod:`repro.io` —
         results and checkpoints must go through the crash-safe writers
         (``atomic_write_text``/``atomic_write_json``/``append_jsonl``)
         so a kill can never leave a torn artifact
FTMCC06  no raw epsilon literals inside :mod:`repro.analysis` or
         :mod:`repro.experiments` outside the tolerance module — ad-hoc
         ``1e-9``/``1e-12`` comparisons are how the demand tests (and
         later the sweep's ``u_mc`` feasibility column) diverged; use the
         named constants and helpers of :mod:`repro.analysis.tolerance`
FTMCC07  no direct clock reads (``time.time``/``time.monotonic``/
         ``perf_counter`` and friends) inside ``analysis/``, ``sim/`` or
         ``runner/`` — mixing wall and monotonic clocks is how the
         supervisor once produced negative durations; go through
         :mod:`repro.obs.clock` (``time.sleep`` stays allowed)
======== =====================================================================

The pass is purely syntactic (:mod:`ast`), needs no third-party
packages, and is wired into CI next to ``ruff`` and ``mypy`` — it covers
the project-specific rules those tools cannot express.
"""

from __future__ import annotations

import ast
import os

from repro.lint.diagnostics import Diagnostic, LintReport, Severity

__all__ = ["check_source", "check_path", "selfcheck", "default_root"]

#: Identifier fragments that mark a value as a probability/PFH quantity.
_PROBABILITY_MARKERS = ("pfh", "prob")

#: Files (relative to the package root) where ``print`` is the interface.
_PRINT_ALLOWED = ("cli.py", "__main__.py")
_PRINT_ALLOWED_DIRS = ("experiments",)

#: Files (relative to the package root) that own the write primitives.
_WRITE_ALLOWED = ("io.py",)

#: ``open()`` mode characters implying a write (FTMCC05).
_WRITE_MODE_CHARS = frozenset("wax+")

#: Directories whose files must not carry their own epsilons (FTMCC06)
#: and the single file that owns them.
_EPSILON_SCOPED_DIRS = ("analysis", "experiments")
_EPSILON_ALLOWED = ("analysis/tolerance.py",)

#: A float literal of at most this magnitude is assumed to be a numeric
#: tolerance rather than a model quantity (periods, budgets and
#: probabilities used in the analyses are all far larger).
_EPSILON_THRESHOLD = 1e-6

#: Directories whose files must read clocks through ``repro.obs.clock``
#: (FTMCC07); :mod:`repro.obs` and :mod:`repro.perf.bench` live outside
#: them and keep their deliberate raw access.
_CLOCK_SCOPED_DIRS = ("analysis", "sim", "runner")

#: ``time.<attr>`` reads flagged by FTMCC07 (``time.sleep`` is not a read).
_CLOCK_READS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
    "thread_time", "thread_time_ns", "clock_gettime", "clock_gettime_ns",
})

#: Bare names unambiguous enough to flag when called directly (i.e. after
#: ``from time import perf_counter``).  ``time``/``monotonic`` alone are
#: excluded: they collide with ``repro.obs.clock``'s own exports.
_CLOCK_BARE_READS = frozenset({
    "perf_counter", "perf_counter_ns", "monotonic_ns",
    "process_time", "process_time_ns", "thread_time", "thread_time_ns",
    "clock_gettime", "clock_gettime_ns",
})

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


def _is_probability_name(identifier: str | None) -> bool:
    if not identifier:
        return False
    lowered = identifier.lower()
    return any(marker in lowered for marker in _PROBABILITY_MARKERS)


def _mentions_probability(node: ast.expr) -> bool:
    """Any probability-marked identifier in the (sub)expression.

    Scans every name, attribute and keyword argument, so
    ``estimate.pfh``, ``pfh_bound.value`` and ``f(prob=p)`` all count —
    not just bare ``pfh``-named identifiers.
    """
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            identifier: str | None = child.id
        elif isinstance(child, ast.Attribute):
            identifier = child.attr
        elif isinstance(child, ast.keyword):
            identifier = child.arg
        else:
            continue
        if _is_probability_name(identifier):
            return True
    return False


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


def _mode_of(mode_node: ast.expr | None) -> str | None:
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


def _open_mode(node: ast.Call) -> str | None:
    """The literal mode of an ``open()`` call; ``None`` when dynamic."""
    mode_node: ast.expr | None = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    else:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode_node = keyword.value
                break
    return _mode_of(mode_node)


def _method_open_mode(node: ast.Call) -> str | None:
    """The literal mode of a ``path.open(...)`` call (first positional)."""
    mode_node: ast.expr | None = node.args[0] if node.args else None
    if mode_node is None:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode_node = keyword.value
                break
    return _mode_of(mode_node)


#: ``pathlib`` constructors whose results are tracked as path values.
_PATH_CONSTRUCTORS = ("Path", "PurePath", "PosixPath", "WindowsPath")

#: Path methods whose result is again a path (keeps taint through chains).
_PATH_PRODUCING_METHODS = frozenset({
    "joinpath", "with_suffix", "with_name", "with_stem", "resolve",
    "absolute", "expanduser", "relative_to",
})

#: ``Path`` methods that write to the filesystem directly (FTMCC05).
_PATH_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


class _PathTable:
    """Names provably bound to ``pathlib.Path`` values in one file.

    Built from the import statements plus a small assignment fixpoint:
    ``p = Path(x)``, ``q = p / "out"``, ``r = q.with_suffix(".json")``
    and ``Path``-annotated parameters all count; anything else does not
    (so ``gzip.open(...)`` and unknown objects stay unflagged).
    """

    def __init__(self, tree: ast.Module) -> None:
        self.constructors: set[str] = set()
        self.modules: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "pathlib":
                for alias in node.names:
                    if alias.name in _PATH_CONSTRUCTORS:
                        self.constructors.add(alias.asname or alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "pathlib":
                        self.modules.add(alias.asname or "pathlib")
        self.names: set[str] = set()
        self._collect(tree)

    def _collect(self, tree: ast.Module) -> None:
        annotated: list[tuple[str, ast.expr | None]] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                    annotated.append((arg.arg, arg.annotation))
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                annotated.append((node.target.id, node.annotation))
        for name, annotation in annotated:
            if self._is_path_annotation(annotation):
                self.names.add(name)
        for _ in range(3):  # propagate through chained rebindings
            grown = False
            for node in ast.walk(tree):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None or not self.is_path_expr(value):
                    continue
                for target in targets:
                    if isinstance(target, ast.Name) and target.id not in \
                            self.names:
                        self.names.add(target.id)
                        grown = True
            if not grown:
                break

    def _is_path_annotation(self, annotation: ast.expr | None) -> bool:
        if annotation is None:
            return False
        if isinstance(annotation, ast.Name):
            return annotation.id in self.constructors
        if isinstance(annotation, ast.Attribute):
            return (
                annotation.attr in _PATH_CONSTRUCTORS
                and isinstance(annotation.value, ast.Name)
                and annotation.value.id in self.modules
            )
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            return annotation.value.strip() in self.constructors
        return False

    def is_path_expr(self, node: ast.expr) -> bool:
        """Conservatively: is this expression certainly a path value?"""
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in self.constructors:
                return True
            if isinstance(func, ast.Attribute):
                if (
                    func.attr in _PATH_CONSTRUCTORS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in self.modules
                ):
                    return True
                if func.attr in _PATH_PRODUCING_METHODS:
                    return self.is_path_expr(func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return self.is_path_expr(node.left) or self.is_path_expr(node.right)
        if isinstance(node, ast.Attribute) and node.attr == "parent":
            return self.is_path_expr(node.value)
        return False


class _Checker(ast.NodeVisitor):
    def __init__(
        self,
        filename: str,
        allow_print: bool,
        allow_write: bool = False,
        forbid_epsilon: bool = False,
        forbid_clock: bool = False,
        path_table: _PathTable | None = None,
        allow_prob_eq: bool = False,
    ) -> None:
        self.filename = filename
        self.allow_print = allow_print
        self.allow_write = allow_write
        self.forbid_epsilon = forbid_epsilon
        self.forbid_clock = forbid_clock
        self.path_table = path_table
        self.allow_prob_eq = allow_prob_eq
        self.diagnostics: list[Diagnostic] = []

    def _emit(self, code: str, line: int, message: str, suggestion: str) -> None:
        self.diagnostics.append(
            Diagnostic(
                code,
                Severity.ERROR,
                f"{self.filename}:{line}",
                message,
                suggestion=suggestion,
            )
        )

    # FTMCC01 ------------------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.allow_prob_eq:
            self.generic_visit(node)
            return
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _mentions_probability(left) or _mentions_probability(right):
                self._emit(
                    "FTMCC01",
                    node.lineno,
                    "exact equality on a probability/PFH float",
                    "compare with math.isclose(...) or an explicit epsilon",
                )
                break
        self.generic_visit(node)

    # FTMCC02 ------------------------------------------------------------------

    def _check_defaults(self, node: ast.arguments, line: int) -> None:
        for default in (*node.defaults, *node.kw_defaults):
            if default is not None and _is_mutable_default(default):
                self._emit(
                    "FTMCC02",
                    getattr(default, "lineno", line),
                    "mutable default argument",
                    "default to None and create the container inside the "
                    "function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node.args, node.lineno)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node.args, node.lineno)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node.args, node.lineno)
        self.generic_visit(node)

    # FTMCC03 ------------------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(
                "FTMCC03",
                node.lineno,
                "bare 'except:' clause",
                "catch a specific exception type (at minimum "
                "'except Exception:')",
            )
        self.generic_visit(node)

    # FTMCC07 ------------------------------------------------------------------

    def _clock_read_name(self, node: ast.Call) -> str | None:
        """The flagged clock identifier of a call, or ``None``."""
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and func.attr in _CLOCK_READS
        ):
            return f"time.{func.attr}"
        if isinstance(func, ast.Name) and func.id in _CLOCK_BARE_READS:
            return func.id
        return None

    # FTMCC04 / FTMCC05 / FTMCC07 ----------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if (
            not self.allow_print
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            self._emit(
                "FTMCC04",
                node.lineno,
                "print() in library code",
                "return data or diagnostics; only cli.py, __main__.py and "
                "experiments/ may print",
            )
        if (
            not self.allow_write
            and isinstance(node.func, ast.Name)
            and node.func.id == "open"
        ):
            mode = _open_mode(node)
            if mode is not None and _WRITE_MODE_CHARS & set(mode):
                self._emit(
                    "FTMCC05",
                    node.lineno,
                    f"non-atomic file write (open mode {mode!r})",
                    "write through repro.io: atomic_write_text / "
                    "atomic_write_json / append_jsonl (crash-safe)",
                )
        if (
            not self.allow_write
            and self.path_table is not None
            and isinstance(node.func, ast.Attribute)
            and self.path_table.is_path_expr(node.func.value)
        ):
            attr = node.func.attr
            if attr in _PATH_WRITE_METHODS:
                self._emit(
                    "FTMCC05",
                    node.lineno,
                    f"non-atomic file write (Path.{attr})",
                    "write through repro.io: atomic_write_text / "
                    "atomic_write_json / append_jsonl (crash-safe)",
                )
            elif attr == "open":
                mode = _method_open_mode(node)
                if mode is not None and _WRITE_MODE_CHARS & set(mode):
                    self._emit(
                        "FTMCC05",
                        node.lineno,
                        f"non-atomic file write (Path.open mode {mode!r})",
                        "write through repro.io: atomic_write_text / "
                        "atomic_write_json / append_jsonl (crash-safe)",
                    )
        if self.forbid_clock:
            clock_read = self._clock_read_name(node)
            if clock_read is not None:
                self._emit(
                    "FTMCC07",
                    node.lineno,
                    f"direct clock read {clock_read}() in a clock-disciplined "
                    "module",
                    "read clocks through repro.obs.clock (monotonic / "
                    "monotonic_ns for durations, wall_time for timestamps)",
                )
        self.generic_visit(node)

    # FTMCC06 ------------------------------------------------------------------

    def visit_Constant(self, node: ast.Constant) -> None:
        if (
            self.forbid_epsilon
            and isinstance(node.value, float)
            and 0.0 < abs(node.value) <= _EPSILON_THRESHOLD
        ):
            self._emit(
                "FTMCC06",
                node.lineno,
                f"raw epsilon literal {node.value!r} in an epsilon-scoped "
                "module",
                "use the named tolerances and comparison helpers of "
                "repro.analysis.tolerance (REL_EPS, exceeds, floor_div, ...)",
            )
        self.generic_visit(node)


def _print_allowed(relpath: str) -> bool:
    parts = relpath.replace(os.sep, "/").split("/")
    if parts[-1] in _PRINT_ALLOWED:
        return True
    return any(part in _PRINT_ALLOWED_DIRS for part in parts[:-1])


def _write_allowed(relpath: str) -> bool:
    return relpath.replace(os.sep, "/") in _WRITE_ALLOWED


def _epsilon_forbidden(relpath: str) -> bool:
    normalized = relpath.replace(os.sep, "/")
    if normalized in _EPSILON_ALLOWED:
        return False
    return normalized.split("/")[0] in _EPSILON_SCOPED_DIRS


def _clock_forbidden(relpath: str) -> bool:
    return relpath.replace(os.sep, "/").split("/")[0] in _CLOCK_SCOPED_DIRS


def check_source(
    source: str,
    filename: str = "<string>",
    allow_print: bool = False,
    allow_write: bool = False,
    forbid_epsilon: bool = False,
    forbid_clock: bool = False,
    allow_prob_eq: bool = False,
) -> list[Diagnostic]:
    """Run the code rules over one source string."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            Diagnostic(
                "FTMCC00",
                Severity.ERROR,
                f"{filename}:{exc.lineno or 0}",
                f"syntax error: {exc.msg}",
            )
        ]
    checker = _Checker(
        filename, allow_print, allow_write, forbid_epsilon, forbid_clock,
        path_table=_PathTable(tree),
        allow_prob_eq=allow_prob_eq,
    )
    checker.visit(tree)
    return sorted(checker.diagnostics, key=lambda d: d.location)


def default_root() -> str:
    """The ``src/repro`` directory of the running installation."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def check_path(root: str, profile: str = "src") -> LintReport:
    """Walk a directory tree and check every ``.py`` file under it.

    ``profile`` selects the scoping rules: ``"src"`` applies the full
    library discipline; ``"tests"`` relaxes the rules that do not apply
    to test/benchmark code (printing, direct writes to ``tmp_path``,
    epsilon literals and exact probability assertions on stored
    constants, clock reads in timing tests) while keeping the universal
    ones (FTMCC02/03).
    """
    relaxed = profile == "tests"
    diags: list[Diagnostic] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relpath = os.path.relpath(path, root)
            with open(path) as handle:
                source = handle.read()
            diags.extend(
                check_source(
                    source,
                    relpath,
                    allow_print=relaxed or _print_allowed(relpath),
                    allow_write=relaxed or _write_allowed(relpath),
                    forbid_epsilon=not relaxed and _epsilon_forbidden(relpath),
                    forbid_clock=not relaxed and _clock_forbidden(relpath),
                    allow_prob_eq=relaxed,
                )
            )
    return LintReport(diags)


def selfcheck(
    root: str | None = None,
    profile: str = "src",
    jobs: int | None = None,
    baseline_path: str | None = "auto",
    dataflow: bool = True,
) -> LintReport:
    """Check the installed ``repro`` package itself (``ftmc selfcheck``).

    Runs the syntactic pass, then (``dataflow=True``) the project-level
    taint/fork/purity passes, and finally suppresses findings recorded
    in the baseline (``baseline_path="auto"`` discovers
    ``lint-baseline.json`` near ``root``; ``None`` disables suppression).
    """
    target = root if root is not None else default_root()
    report = check_path(target, profile=profile)
    if dataflow:
        from repro.lint.project import build_index
        from repro.lint.taint import analyze_index

        index = build_index(target, jobs=jobs)
        report = report.extend(analyze_index(index))
    if baseline_path == "auto":
        from repro.lint.baseline import default_baseline_path

        baseline_path = default_baseline_path(target)
    if baseline_path is not None:
        from repro.lint.baseline import apply_baseline, load_baseline

        report = apply_baseline(report, load_baseline(baseline_path)).report
    return report
