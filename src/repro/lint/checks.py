"""Shared structural checks: one implementation for lint and model.

These functions are the single source of truth for the per-task
invariants of the sporadic model (Section 2.1) and the Vestal MC model
(Section 2.2).  The lint rules call them to produce diagnostics; the
model constructors (:class:`repro.model.task.Task`,
:class:`repro.model.mc_task.MCTask`, ...) call them and raise
``ValueError`` on the first error, so validation messages are identical
no matter which path rejects the input.

Only :mod:`repro.lint.diagnostics` and the dependency-free
:mod:`repro.model.criticality` are imported here — keeping the module
safely importable from inside the model layer.
"""

from __future__ import annotations

import math

from repro.lint.diagnostics import Diagnostic, Severity
from repro.model.criticality import CriticalityRole

__all__ = [
    "check_task_fields",
    "check_mc_task_fields",
    "check_unique_names",
    "raise_on_error",
]


def _bad_number(value: float) -> bool:
    """Whether a claimed numeric field failed to parse or is non-finite."""
    return not math.isfinite(value)


def check_task_fields(
    name: str,
    period: float,
    deadline: float,
    wcet: float,
    failure_probability: float,
) -> list[Diagnostic]:
    """Structural invariants of one sporadic task (FTMC001-004, FTMC010).

    Every message is prefixed with the task name so reports stay readable
    when many tasks are diagnosed at once.
    """
    diags: list[Diagnostic] = []
    if _bad_number(period) or period <= 0:
        diags.append(
            Diagnostic(
                "FTMC001",
                Severity.ERROR,
                name,
                f"{name}: period must be positive, got {period}",
                suggestion="set a positive minimal inter-arrival time T",
            )
        )
    if _bad_number(deadline) or deadline <= 0:
        diags.append(
            Diagnostic(
                "FTMC002",
                Severity.ERROR,
                name,
                f"{name}: deadline must be positive, got {deadline}",
                suggestion="set a positive relative deadline D",
            )
        )
    if _bad_number(wcet) or wcet < 0:
        diags.append(
            Diagnostic(
                "FTMC003",
                Severity.ERROR,
                name,
                f"{name}: WCET must be non-negative, got {wcet}",
                suggestion="set a non-negative worst-case execution time C",
            )
        )
    if not 0.0 <= failure_probability < 1.0 or _bad_number(failure_probability):
        diags.append(
            Diagnostic(
                "FTMC010",
                Severity.ERROR,
                name,
                f"{name}: failure probability must lie in [0, 1), "
                f"got {failure_probability}",
                suggestion="use a per-job failure probability f in [0, 1)",
            )
        )
    # Only meaningful when the window fields themselves are sane.
    if (
        not _bad_number(wcet)
        and wcet >= 0
        and not _bad_number(deadline)
        and deadline > 0
        and not _bad_number(period)
        and period > 0
        and wcet > deadline
        and wcet > period
    ):
        diags.append(
            Diagnostic(
                "FTMC004",
                Severity.ERROR,
                name,
                f"{name}: WCET {wcet} exceeds both deadline {deadline} "
                f"and period {period}",
                suggestion="a single execution can never fit; reduce C "
                "or relax D/T",
            )
        )
    return diags


def check_mc_task_fields(
    name: str,
    period: float,
    deadline: float,
    wcet_lo: float,
    wcet_hi: float,
    criticality: CriticalityRole | None,
) -> list[Diagnostic]:
    """Structural invariants of one Vestal task (FTMC001/002/003, 020/021)."""
    diags: list[Diagnostic] = []
    if _bad_number(period) or period <= 0:
        diags.append(
            Diagnostic(
                "FTMC001",
                Severity.ERROR,
                name,
                f"{name}: period must be positive, got {period}",
                suggestion="set a positive minimal inter-arrival time T",
            )
        )
    if _bad_number(deadline) or deadline <= 0:
        diags.append(
            Diagnostic(
                "FTMC002",
                Severity.ERROR,
                name,
                f"{name}: deadline must be positive, got {deadline}",
                suggestion="set a positive relative deadline D",
            )
        )
    if _bad_number(wcet_lo) or _bad_number(wcet_hi) or wcet_lo < 0 or wcet_hi < 0:
        diags.append(
            Diagnostic(
                "FTMC003",
                Severity.ERROR,
                name,
                f"{name}: WCETs must be non-negative, "
                f"got C(LO)={wcet_lo}, C(HI)={wcet_hi}",
                suggestion="set non-negative per-level WCETs",
            )
        )
        return diags
    if wcet_lo > wcet_hi + 1e-12:
        diags.append(
            Diagnostic(
                "FTMC020",
                Severity.ERROR,
                name,
                f"{name}: C(LO)={wcet_lo} exceeds C(HI)={wcet_hi}; "
                "Vestal monotonicity violated",
                suggestion="WCETs must be non-decreasing with the level: "
                "ensure C(LO) <= C(HI)",
            )
        )
    elif criticality is CriticalityRole.LO and not math.isclose(wcet_lo, wcet_hi):
        diags.append(
            Diagnostic(
                "FTMC021",
                Severity.ERROR,
                name,
                f"{name}: LO-criticality task must have C(LO) == C(HI), "
                f"got {wcet_lo} != {wcet_hi}",
                suggestion="a LO task is never budgeted beyond its own "
                "level; set both WCETs equal",
            )
        )
    return diags


def check_unique_names(names: list[str] | tuple[str, ...]) -> list[Diagnostic]:
    """Duplicate-name detection shared by both task-set classes (FTMC006)."""
    diags: list[Diagnostic] = []
    seen: set[str] = set()
    for name in names:
        if name in seen:
            diags.append(
                Diagnostic(
                    "FTMC006",
                    Severity.ERROR,
                    name,
                    f"duplicate task name: {name!r}",
                    suggestion="task names must be unique within a set",
                )
            )
        seen.add(name)
    return diags


def raise_on_error(diags: list[Diagnostic]) -> None:
    """Raise ``ValueError`` with the first error message, if any.

    The constructors' contract is fail-fast with a single message; the
    lint front end uses the full list instead.
    """
    for diag in diags:
        if diag.severity is Severity.ERROR:
            raise ValueError(diag.message)
