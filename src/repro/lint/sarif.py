"""SARIF 2.1.0 rendering for lint reports.

`SARIF <https://sarifweb.azurewebsites.net/>`_ is the interchange format
GitHub code scanning (and most editors) ingest; ``ftmc lint --format
sarif`` / ``ftmc selfcheck --format sarif`` emit one run per invocation
so CI can upload findings as code-scanning alerts.

The mapping is deliberately small and deterministic (goldens diff it):

- each distinct rule code present in the report becomes one entry in
  ``tool.driver.rules`` (described from the rule catalogs when known,
  from the first finding's message otherwise);
- each diagnostic becomes one ``result``; ``file:line`` locations map to
  ``physicalLocation``, non-file locations (task names, ``"taskset"``)
  are carried in the message only;
- a diagnostic's dataflow trace becomes a single-thread ``codeFlow`` so
  the source → sink path is clickable in code-scanning UIs.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.lint.diagnostics import Diagnostic, LintReport, Severity

__all__ = ["render_sarif", "SARIF_VERSION", "SARIF_SCHEMA"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_NAME = "ftmc-lint"

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _split_location(location: str) -> tuple[str, int] | None:
    """``path:line`` → ``(uri, line)``; None for non-file locations."""
    path, sep, line = location.rpartition(":")
    if not sep:
        return None
    try:
        lineno = int(line)
    except ValueError:
        return None
    return path.replace("\\", "/"), max(1, lineno)


def _physical_location(uri: str, line: int) -> dict[str, object]:
    return {
        "artifactLocation": {"uri": uri, "uriBaseId": "SRCROOT"},
        "region": {"startLine": line},
    }


def _result(diag: Diagnostic, rule_index: int) -> dict[str, object]:
    text = diag.message
    if diag.suggestion:
        text += f" [fix: {diag.suggestion}]"
    result: dict[str, object] = {
        "ruleId": diag.code,
        "ruleIndex": rule_index,
        "level": _LEVELS[diag.severity],
        "message": {"text": text},
    }
    parsed = _split_location(diag.location)
    if parsed is not None:
        uri, line = parsed
        result["locations"] = [{"physicalLocation": _physical_location(uri, line)}]
    else:
        result["message"] = {"text": f"{diag.location}: {text}"}
    if diag.trace:
        flow_locations = []
        for point in diag.trace:
            step = _split_location(point.location)
            entry: dict[str, object] = {"message": {"text": point.note}}
            if step is not None:
                entry["physicalLocation"] = _physical_location(*step)
            flow_locations.append({"location": entry})
        result["codeFlows"] = [
            {"threadFlows": [{"locations": flow_locations}]}
        ]
    return result


def render_sarif(
    report: LintReport,
    subject: str | None = None,
    rule_catalog: Mapping[str, tuple[Severity, str]] | None = None,
) -> str:
    """The report as a SARIF 2.1.0 JSON document (stable output).

    ``rule_catalog`` supplies ``code → (severity, summary)`` metadata for
    the ``tool.driver.rules`` array; codes missing from it are described
    by the first finding's message.
    """
    catalog = dict(rule_catalog or {})

    rule_ids: list[str] = []
    first_message: dict[str, Diagnostic] = {}
    for diag in report:
        if diag.code not in first_message:
            first_message[diag.code] = diag
            rule_ids.append(diag.code)
    rule_ids.sort()
    rule_index = {code: i for i, code in enumerate(rule_ids)}

    rules = []
    for code in rule_ids:
        if code in catalog:
            severity, summary = catalog[code]
        else:
            diag = first_message[code]
            severity, summary = diag.severity, diag.message
        rules.append(
            {
                "id": code,
                "shortDescription": {"text": summary},
                "defaultConfiguration": {"level": _LEVELS[severity]},
            }
        )

    document: dict[str, object] = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri":
                            "https://example.invalid/ftmc/docs/lint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {
                        "text": subject or "scanned tree"
                    }}
                },
                "results": [
                    _result(diag, rule_index[diag.code]) for diag in report
                ],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
