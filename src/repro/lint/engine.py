"""Lint engine: run the registered rules over task sets, profiles,
converted sets and JSON documents.

Front-end functions (all return a :class:`~repro.lint.diagnostics.LintReport`):

- :func:`lint_taskset` — a :class:`~repro.model.task.TaskSet`, a raw
  JSON-style document ``dict``, or a prepared record;
- :func:`lint_mc_taskset` — a Vestal-model set (object or record);
- :func:`lint_profiles` — re-execution/adaptation profiles against a set;
- :func:`lint_conversion` — Lemma 4.1 round-trip: profiles plus an
  (optionally external) converted set;
- :func:`lint_file` — a task-set JSON file; unreadable or malformed
  input becomes an ``FTMC040`` diagnostic, never an exception;
- :func:`validate_taskset` — raising front end for the ``validate=True``
  paths of :mod:`repro.core`.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

# Importing the rule modules populates the registry as a side effect.
from repro.lint import rules_conversion  # noqa: F401
from repro.lint import rules_mc  # noqa: F401
from repro.lint import rules_model  # noqa: F401
from repro.lint import rules_profiles  # noqa: F401
from repro.lint.diagnostics import Diagnostic, LintError, LintReport, Severity
from repro.lint.records import (
    MCTaskRecord,
    MCTaskSetRecord,
    TaskRecord,
    TaskSetRecord,
)
from repro.lint.registry import ConversionSubject, ProfilesSubject, rules_for
from repro.model.criticality import DualCriticalitySpec
from repro.model.mc_task import MCTaskSet
from repro.model.task import TaskSet

__all__ = [
    "lint_taskset",
    "lint_mc_taskset",
    "lint_profiles",
    "lint_conversion",
    "lint_file",
    "validate_taskset",
]


def _run(kind: str, subject: Any) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for rule in rules_for(kind):
        diags.extend(rule.run(subject))
    return diags


# -- document parsing ----------------------------------------------------------


def _document_to_record(
    data: Mapping[str, Any],
) -> tuple[TaskSetRecord, list[Diagnostic]]:
    """Parse a raw JSON-style document leniently into a record.

    Document-shape problems (FTMC041) and unparsable values (FTMC042)
    become diagnostics; whatever *can* be parsed still reaches the rules.
    """
    diags: list[Diagnostic] = []
    raw_tasks = data.get("tasks")
    if not isinstance(raw_tasks, list):
        diags.append(
            Diagnostic(
                "FTMC041",
                Severity.ERROR,
                "document",
                "task-set document needs a 'tasks' list",
                suggestion="see repro.io for the expected JSON format",
            )
        )
        raw_tasks = []
    records: list[TaskRecord] = []
    for i, raw in enumerate(raw_tasks):
        if not isinstance(raw, Mapping):
            diags.append(
                Diagnostic(
                    "FTMC041",
                    Severity.ERROR,
                    f"task #{i}",
                    f"task #{i}: entry must be an object, got "
                    f"{type(raw).__name__}",
                )
            )
            continue
        record = TaskRecord.from_dict(raw, i)
        if record.criticality is None:
            diags.append(
                Diagnostic(
                    "FTMC042",
                    Severity.ERROR,
                    record.name,
                    f"{record.name}: criticality must be 'HI' or 'LO', "
                    f"got {record.raw_criticality}",
                    suggestion="multi-level documents use repro.io."
                    "load_multilevel instead",
                )
            )
        records.append(record)
    spec = None
    header = data.get("criticality")
    if header is not None:
        try:
            spec = DualCriticalitySpec.from_names(header["hi"], header["lo"])
        except (TypeError, KeyError, ValueError) as exc:
            diags.append(
                Diagnostic(
                    "FTMC042",
                    Severity.ERROR,
                    "document",
                    f"invalid criticality header {header!r}: {exc}",
                    suggestion='use {"hi": "<A-E>", "lo": "<A-E>"} with '
                    "hi strictly more critical",
                )
            )
    record = TaskSetRecord(
        name=str(data.get("name", "taskset")), tasks=tuple(records), spec=spec
    )
    return record, diags


def _as_taskset_record(subject: Any) -> tuple[TaskSetRecord, list[Diagnostic]]:
    if isinstance(subject, TaskSetRecord):
        return subject, []
    if isinstance(subject, TaskSet):
        return TaskSetRecord.from_taskset(subject), []
    if isinstance(subject, Mapping):
        return _document_to_record(subject)
    raise TypeError(
        "lint_taskset expects a TaskSet, a TaskSetRecord or a document "
        f"mapping, got {type(subject).__name__}"
    )


# -- front ends ----------------------------------------------------------------


def lint_taskset(subject: TaskSet | TaskSetRecord | Mapping[str, Any]) -> LintReport:
    """Run every ``taskset`` rule over the subject."""
    record, diags = _as_taskset_record(subject)
    diags.extend(_run("taskset", record))
    return LintReport(diags)


def lint_mc_taskset(subject: MCTaskSet | MCTaskSetRecord) -> LintReport:
    """Run every ``mc`` rule over a Vestal-model set."""
    if isinstance(subject, MCTaskSet):
        record = MCTaskSetRecord.from_mc_taskset(subject)
    elif isinstance(subject, MCTaskSetRecord):
        record = subject
    else:
        raise TypeError(
            "lint_mc_taskset expects an MCTaskSet or MCTaskSetRecord, got "
            f"{type(subject).__name__}"
        )
    return LintReport(_run("mc", record))


def _as_profile_map(profile: Any) -> dict[str, int]:
    if profile is None:
        return {}
    if hasattr(profile, "as_dict"):
        return dict(profile.as_dict())
    return dict(profile)


def lint_profiles(
    taskset: TaskSet | TaskSetRecord,
    reexecution: Any,
    adaptation: Any = None,
) -> LintReport:
    """Run every ``profiles`` rule (FTMC014-017).

    ``reexecution``/``adaptation`` may be the
    :mod:`repro.model.faults` value objects or plain ``name -> int``
    mappings (which is how *invalid* profiles are expressed, since the
    value objects refuse to hold them).
    """
    record, diags = _as_taskset_record(taskset)
    subject = ProfilesSubject(
        taskset=record,
        reexecution=_as_profile_map(reexecution),
        adaptation=None if adaptation is None else _as_profile_map(adaptation),
    )
    diags.extend(_run("profiles", subject))
    return LintReport(diags)


def lint_conversion(
    taskset: TaskSet,
    n_hi: int,
    n_lo: int,
    n_prime: int,
    converted: MCTaskSet | MCTaskSetRecord | None = None,
) -> LintReport:
    """Lemma 4.1 round-trip check (FTMC016/030/031).

    With ``converted=None`` the set is derived via
    :func:`repro.core.conversion.convert_uniform` and checked against the
    source — a self-test of the conversion code path.  Passing an
    external ``converted`` set verifies a *claimed* conversion instead.
    """
    from repro.core.conversion import convert_uniform

    record = TaskSetRecord.from_taskset(taskset)
    hi_names = [t.name for t in record.hi_tasks]
    profile_subject = ProfilesSubject(
        taskset=record,
        reexecution={t.name: (n_hi if t.name in hi_names else n_lo)
                     for t in record.tasks},
        adaptation={name: n_prime for name in hi_names},
    )
    diags = _run("profiles", profile_subject)
    if converted is None:
        if any(d.severity is Severity.ERROR for d in diags):
            return LintReport(diags)  # profiles invalid; nothing to derive
        converted = convert_uniform(taskset, n_hi, n_lo, n_prime)
    if isinstance(converted, MCTaskSet):
        converted = MCTaskSetRecord.from_mc_taskset(converted)
    subject = ConversionSubject(
        taskset=record,
        n_hi=n_hi,
        n_lo=n_lo,
        n_prime=n_prime,
        converted=converted,
    )
    diags.extend(_run("conversion", subject))
    diags.extend(_run("mc", converted))
    return LintReport(diags)


def lint_file(path: str) -> LintReport:
    """Lint a task-set JSON file.

    I/O and parse failures are reported as ``FTMC040`` diagnostics so the
    CLI can keep its one-line-per-problem contract without catching
    exceptions.
    """
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as exc:
        return LintReport(
            [
                Diagnostic(
                    "FTMC040",
                    Severity.ERROR,
                    path,
                    f"cannot read {path}: {exc.strerror or exc}",
                )
            ]
        )
    except json.JSONDecodeError as exc:
        return LintReport(
            [
                Diagnostic(
                    "FTMC040",
                    Severity.ERROR,
                    f"{path}:{exc.lineno}",
                    f"invalid JSON: {exc.msg} (line {exc.lineno}, "
                    f"column {exc.colno})",
                )
            ]
        )
    if not isinstance(data, Mapping):
        return LintReport(
            [
                Diagnostic(
                    "FTMC040",
                    Severity.ERROR,
                    path,
                    "task-set document must be a JSON object, got "
                    f"{type(data).__name__}",
                )
            ]
        )
    return lint_taskset(data)


def validate_taskset(taskset: TaskSet, strict: bool = False) -> LintReport:
    """Run the model rules; raise :class:`LintError` on errors.

    This is the ``validate=True`` hook of :mod:`repro.core`: analyses
    call it before searching profiles so that garbage inputs are rejected
    with diagnostics instead of producing wrong answers.  With
    ``strict=True`` warnings are promoted to failures as well.
    """
    report = lint_taskset(taskset)
    threshold = Severity.WARNING if strict else Severity.ERROR
    if any(d.severity >= threshold for d in report):
        raise LintError(report, subject=taskset.name)
    return report
