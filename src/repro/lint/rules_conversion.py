"""Lemma 4.1 conversion round-trip rules (FTMC030-031).

Given a source task set, uniform profiles ``(n_HI, n_LO, n'_HI)`` and a
set *claimed* to be the corresponding conversion, these rules re-derive
what Lemma 4.1 prescribes and flag every disagreement:

- FTMC030 — the converted set's *structure* diverges from the source
  (missing/extra tasks, or a task whose period, deadline or criticality
  was not carried over unchanged);
- FTMC031 — a converted WCET is not the prescribed multiple of the base
  WCET (``C(HI) = n_chi * C``; HI tasks additionally ``C(LO) = n' * C``).

The engine uses them in two modes: checking an externally supplied
converted set against its source, and self-checking
:func:`repro.core.conversion.convert_uniform` output (which must always
be clean — a failure indicates a bug in the conversion itself).
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.registry import ConversionSubject, rule
from repro.model.criticality import CriticalityRole

#: Relative tolerance for WCET-multiple comparisons; conversions are exact
#: float products, so anything beyond noise is a genuine mismatch.
_REL_TOL = 1e-9


@rule(
    "FTMC030",
    Severity.ERROR,
    "conversion",
    "converted set structure disagrees with the source task set",
)
def _r_structure(subject: ConversionSubject) -> Iterator[Diagnostic]:
    source = {t.name: t for t in subject.taskset.tasks}
    converted = {t.name: t for t in subject.converted.tasks}
    for name in source:
        if name not in converted:
            yield Diagnostic(
                "FTMC030",
                Severity.ERROR,
                name,
                f"{name}: task missing from the converted set",
                suggestion="Lemma 4.1 converts every task; none may be "
                "dropped",
            )
    for name in converted:
        if name not in source:
            yield Diagnostic(
                "FTMC030",
                Severity.ERROR,
                name,
                f"{name}: task not present in the source set",
                suggestion="the conversion must not invent tasks",
            )
    for name, src in source.items():
        mc = converted.get(name)
        if mc is None:
            continue
        for field in ("period", "deadline"):
            a, b = getattr(src, field), getattr(mc, field)
            if not math.isclose(a, b, rel_tol=_REL_TOL):
                yield Diagnostic(
                    "FTMC030",
                    Severity.ERROR,
                    name,
                    f"{name}: {field} changed across the conversion "
                    f"({a} -> {b})",
                    suggestion="periods and deadlines carry over "
                    "unchanged (Lemma 4.1)",
                )
        if src.criticality is not mc.criticality:
            yield Diagnostic(
                "FTMC030",
                Severity.ERROR,
                name,
                f"{name}: criticality changed across the conversion",
                suggestion="criticalities carry over unchanged",
            )


@rule(
    "FTMC031",
    Severity.ERROR,
    "conversion",
    "converted WCET is not the Lemma 4.1 multiple of the base WCET",
)
def _r_wcet_multiples(subject: ConversionSubject) -> Iterator[Diagnostic]:
    converted = {t.name: t for t in subject.converted.tasks}
    for src in subject.taskset.tasks:
        mc = converted.get(src.name)
        if mc is None or src.criticality is None:
            continue  # FTMC030 reports structural problems.
        if src.criticality is CriticalityRole.HI:
            expect_hi = subject.n_hi * src.wcet
            expect_lo = subject.n_prime * src.wcet
        else:
            expect_hi = expect_lo = subject.n_lo * src.wcet
        for level, got, expect in (
            ("C(HI)", mc.wcet_hi, expect_hi),
            ("C(LO)", mc.wcet_lo, expect_lo),
        ):
            if not math.isclose(got, expect, rel_tol=_REL_TOL, abs_tol=1e-12):
                yield Diagnostic(
                    "FTMC031",
                    Severity.ERROR,
                    src.name,
                    f"{src.name}: {level}={got} but Lemma 4.1 prescribes "
                    f"{expect:g} (profiles n_HI={subject.n_hi}, "
                    f"n_LO={subject.n_lo}, n'={subject.n_prime}, base "
                    f"C={src.wcet:g})",
                    suggestion="re-derive the converted set with "
                    "repro.core.conversion.convert_uniform",
                )
