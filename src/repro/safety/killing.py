"""Safety quantification under task killing (Section 3.3, Lemmas 3.2/3.3).

When the killing mechanism is armed, the LO tasks' safety depends on *when*
they are killed.  The paper bounds this in two steps:

- Lemma 3.2 / eq. (3): the probability that no HI task instance ever starts
  its ``(n'_i + 1)``-th execution within ``[0, t]`` is at least

  ``R(N'_HI, t) = prod_{tau_i in tau_HI} (1 - f_i^{n'_i})^{r_i(n'_i, t)}``

  so ``1 - R(N'_HI, t)`` upper-bounds the probability that the LO tasks
  have been killed by time ``t``.

- Lemma 3.3 / eqs. (4)-(5): placing the rounds of a LO task ``tau_i`` as
  late as possible maximises the kill probability each round is exposed to.
  The per-round finishing instants are the *timing points*

  ``pi_i(t) = {t - n_i C_i - m T_i + D_i | 1 <= m < r_i(n_i, t)} U {t}``

  and the LO-level PFH is bounded by

  ``pfh(LO) = (1/OS) * sum_{tau_i in tau_LO} sum_{alpha in pi_i(t)}
              [1 - R(N'_HI, alpha) * (1 - f_i^{n_i})]``  with ``t = OS`` hours.

The sums run over tens of thousands of timing points per task over a
10-hour mission, so the evaluator is numpy-vectorised; products of many
near-one factors are accumulated in log space via ``log1p``.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from repro.analysis import kernels
from repro.obs.trace import register_fork_reset
from repro.model.faults import (
    AdaptationProfile,
    ReexecutionProfile,
    round_failure_probability,
)
from repro.model.task import HOUR_MS, Task, TaskSet
from repro.safety.pfh import max_rounds

__all__ = [
    "survival_probability",
    "survival_probability_at",
    "kill_probability",
    "timing_points",
    "pfh_lo_killing",
]


def _hi_arrays(
    hi_tasks: Sequence[Task],
    adaptation: AdaptationProfile,
    assume_full_wcet: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-HI-task vectors (setup time n'C, period T, log(1 - f^n'))."""
    setups = np.array(
        [
            (adaptation[t] * t.wcet if assume_full_wcet else 0.0)
            for t in hi_tasks
        ]
    )
    periods = np.array([t.period for t in hi_tasks])
    log_success = np.array(
        [
            math.log1p(-round_failure_probability(t.failure_probability, adaptation[t]))
            for t in hi_tasks
        ]
    )
    return setups, periods, log_success


def survival_probability_at(
    taskset: TaskSet,
    adaptation: AdaptationProfile,
    horizons: np.ndarray | Sequence[float],
    assume_full_wcet: bool = True,
) -> np.ndarray:
    """Vectorised ``R(N'_HI, t)`` (eq. 3) over an array of horizons ``t``.

    Returns an array of the same shape as ``horizons``.  Computation is in
    log space: ``log R = sum_i r_i(n'_i, t) * log(1 - f_i^{n'_i})``.
    """
    t = np.asarray(horizons, dtype=float)
    if np.any(t < 0):
        raise ValueError("horizons must be non-negative")
    hi_tasks = taskset.hi_tasks
    if not hi_tasks:
        return np.ones_like(t)
    setups, periods, log_success = _hi_arrays(hi_tasks, adaptation, assume_full_wcet)
    flat = t.ravel()
    # rounds[i, k] = r_i(n'_i, t_k), vectorised form of eq. (1)
    ratio = (flat[np.newaxis, :] - setups[:, np.newaxis]) / periods[:, np.newaxis]
    rounds = np.maximum(np.floor(ratio + 1e-9) + 1.0, 0.0)
    log_r = rounds.T @ log_success
    return np.exp(log_r).reshape(t.shape)


def survival_probability(
    taskset: TaskSet,
    adaptation: AdaptationProfile,
    horizon: float,
    assume_full_wcet: bool = True,
) -> float:
    """``R(N'_HI, t)`` of eq. (3) at a single horizon ``t``.

    The probability that *no* instance of any HI task executes its
    ``(n'_i + 1)``-th time within ``[0, t]`` — i.e. that the LO tasks have
    not been killed/degraded by ``t``.
    """
    return float(
        survival_probability_at(taskset, adaptation, np.array([horizon]),
                                assume_full_wcet)[0]
    )


def kill_probability(
    taskset: TaskSet,
    adaptation: AdaptationProfile,
    horizon: float,
    assume_full_wcet: bool = True,
) -> float:
    """Upper bound ``1 - R(N'_HI, t)`` on the LO tasks being killed by ``t``."""
    return 1.0 - survival_probability(taskset, adaptation, horizon, assume_full_wcet)


def timing_points(
    task: Task,
    executions: int,
    horizon: float,
    assume_full_wcet: bool = True,
) -> np.ndarray:
    """``pi_i(t)`` of eq. (4): worst-case per-round finishing instants.

    For LO task ``tau_i`` with ``r = r_i(n_i, t)`` rounds packed as late as
    possible before ``t``, round ``r`` finishes at ``t`` and round ``r - m``
    finishes no later than ``t - n_i C_i - m T_i + D_i`` (proof of
    Lemma 3.3).  Points that fall at or below zero are dropped: a round that
    cannot finish inside the window contributes nothing.

    Returns the points sorted ascending, ending with ``t`` itself.
    """
    rounds = max_rounds(task, executions, horizon, assume_full_wcet)
    if rounds <= 0:
        return np.array([])
    setup = executions * task.wcet if assume_full_wcet else 0.0
    m = np.arange(1, rounds)
    points = horizon - setup - m * task.period + task.deadline
    points = points[points > 0.0]
    # `points` descends as m ascends, so ascending order is a reversal —
    # no sort needed (it used to be ~20% of the eq. (5) evaluation).
    return np.concatenate([points[::-1], [horizon]])


@lru_cache(maxsize=4096)
def _timing_points_cached(
    task: Task, executions: int, horizon: float, assume_full_wcet: bool
) -> np.ndarray:
    """Memoized :func:`timing_points`.

    The points depend on the *re-execution* profile ``n_i`` but not on the
    adaptation profile ``n'``, while the line-4 search of Algorithm 1
    re-evaluates eq. (5) for every candidate ``n'`` — without the memo it
    rebuilt identical arrays ``n_HI`` times per task set.  ``Task`` is a
    frozen dataclass (hashable by value), so the cache also unifies
    repeated analyses of equal tasks.  Treat the result as read-only.
    """
    points = timing_points(task, executions, horizon, assume_full_wcet)
    points.setflags(write=False)
    return points


# Fork safety (FTMCF rules): a campaign/serve worker forked mid-run
# inherits this module's lru_cache pages; clearing it alongside the
# inherited trace session keeps children cold instead of pinning the
# parent's arrays through copy-on-write references.
register_fork_reset(_timing_points_cached.cache_clear)


def pfh_lo_killing(
    taskset: TaskSet,
    reexecution: ReexecutionProfile,
    adaptation: AdaptationProfile,
    operation_hours: float,
    assume_full_wcet: bool = True,
) -> float:
    """``pfh(LO)`` under task killing — eq. (5) of Lemma 3.3.

    Parameters
    ----------
    taskset:
        The dual-criticality task set.
    reexecution:
        ``N``: executions per round for every task (``n_i`` of LO tasks
        enters the per-round success ``1 - f_i^{n_i}`` and the spacing of
        the timing points).
    adaptation:
        ``N'_HI``: the killing profile of the HI tasks.
    operation_hours:
        ``OS``: system operation duration in hours (the paper cites
        1-10 h for commercial aircraft).  The bound is the cumulative
        failure rate over ``OS`` hours divided by ``OS``.
    assume_full_wcet:
        Footnote 1 (see :func:`repro.safety.pfh.max_rounds`).

    Notes
    -----
    The PFH of the HI level is *unaffected* by killing (HI tasks are never
    killed) and remains eq. (2); use :func:`repro.safety.pfh.pfh_plain`.
    """
    if operation_hours <= 0:
        raise ValueError(f"operation hours must be positive, got {operation_hours}")
    adaptation.validate_for(taskset, reexecution)
    if not kernels.numpy_enabled():
        # ``REPRO_NO_NUMPY`` selects the scalar reference paths everywhere,
        # including this evaluator (used by ``ftmc bench`` for baselines).
        return pfh_lo_killing_reference(
            taskset, reexecution, adaptation, operation_hours, assume_full_wcet
        )
    horizon = operation_hours * HOUR_MS
    # Gather every LO task's timing points first and evaluate eq. (3) over
    # the concatenation in one shot: the survival probabilities dominate
    # the cost and batching them amortises the per-call setup of the
    # rounds matrix in :func:`survival_probability_at`.
    segments: list[tuple[np.ndarray, float]] = []
    for task in taskset.lo_tasks:
        n = reexecution[task]
        points = _timing_points_cached(task, n, horizon, assume_full_wcet)
        if points.size == 0:
            continue
        round_success = 1.0 - round_failure_probability(task.failure_probability, n)
        segments.append((points, round_success))
    if not segments:
        return 0.0
    survival = survival_probability_at(
        taskset,
        adaptation,
        np.concatenate([points for points, _ in segments]),
        assume_full_wcet,
    )
    total = 0.0
    offset = 0
    for points, round_success in segments:
        chunk = survival[offset : offset + points.size]
        offset += points.size
        # Per-round failure bound: 1 - R(alpha) * (1 - f^n)  (eq. 8)
        total += float(np.sum(1.0 - chunk * round_success))
    return total / operation_hours


def pfh_lo_killing_reference(
    taskset: TaskSet,
    reexecution: ReexecutionProfile,
    adaptation: AdaptationProfile,
    operation_hours: float,
    assume_full_wcet: bool = True,
) -> float:
    """Pure-Python reference implementation of eq. (5).

    Mathematically identical to :func:`pfh_lo_killing`; kept as an oracle
    for the vectorised evaluator in the test suite.  Orders of magnitude
    slower — do not use in experiments.
    """
    if operation_hours <= 0:
        raise ValueError(f"operation hours must be positive, got {operation_hours}")
    horizon = operation_hours * HOUR_MS
    total = 0.0
    for task in taskset.lo_tasks:
        n = reexecution[task]
        rounds = max_rounds(task, n, horizon, assume_full_wcet)
        if rounds <= 0:
            continue
        setup = n * task.wcet if assume_full_wcet else 0.0
        points = [horizon]
        for m in range(1, rounds):
            alpha = horizon - setup - m * task.period + task.deadline
            if alpha > 0:
                points.append(alpha)
        round_success = 1.0 - round_failure_probability(task.failure_probability, n)
        for alpha in points:
            r = _survival_scalar(taskset, adaptation, alpha, assume_full_wcet)
            total += 1.0 - r * round_success
    return total / operation_hours


def _survival_scalar(
    taskset: TaskSet,
    adaptation: AdaptationProfile,
    horizon: float,
    assume_full_wcet: bool,
) -> float:
    """Scalar log-space evaluation of eq. (3) without numpy."""
    log_r = 0.0
    for task in taskset.hi_tasks:
        n_prime = adaptation[task]
        rounds = max_rounds(task, n_prime, horizon, assume_full_wcet)
        failure = round_failure_probability(task.failure_probability, n_prime)
        log_r += rounds * math.log1p(-failure)
    return math.exp(log_r)


__all__.append("pfh_lo_killing_reference")
