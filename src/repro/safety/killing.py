"""Safety quantification under task killing (Section 3.3, Lemmas 3.2/3.3).

When the killing mechanism is armed, the LO tasks' safety depends on *when*
they are killed.  The paper bounds this in two steps:

- Lemma 3.2 / eq. (3): the probability that no HI task instance ever starts
  its ``(n'_i + 1)``-th execution within ``[0, t]`` is at least

  ``R(N'_HI, t) = prod_{tau_i in tau_HI} (1 - f_i^{n'_i})^{r_i(n'_i, t)}``

  so ``1 - R(N'_HI, t)`` upper-bounds the probability that the LO tasks
  have been killed by time ``t``.

- Lemma 3.3 / eqs. (4)-(5): placing the rounds of a LO task ``tau_i`` as
  late as possible maximises the kill probability each round is exposed to.
  The per-round finishing instants are the *timing points*

  ``pi_i(t) = {t - n_i C_i - m T_i + D_i | 1 <= m < r_i(n_i, t)} U {t}``

  and the LO-level PFH is bounded by

  ``pfh(LO) = (1/OS) * sum_{tau_i in tau_LO} sum_{alpha in pi_i(t)}
              [1 - R(N'_HI, alpha) * (1 - f_i^{n_i})]``  with ``t = OS`` hours.

The sums run over tens of thousands of timing points per task over a
10-hour mission, so the evaluator is numpy-vectorised; products of many
near-one factors are accumulated in log space via ``log1p``.
"""

from __future__ import annotations

import math
import weakref
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from repro.analysis import kernels
from repro.obs import metrics as obs_metrics
from repro.obs.trace import register_fork_reset
from repro.model.faults import (
    AdaptationProfile,
    ReexecutionProfile,
    round_failure_probability,
)
from repro.model.task import HOUR_MS, Task, TaskSet
from repro.safety.pfh import max_rounds

__all__ = [
    "survival_probability",
    "survival_probability_at",
    "kill_probability",
    "timing_points",
    "pfh_lo_killing",
    "pfh_lo_killing_uniform",
]


def _hi_arrays(
    hi_tasks: Sequence[Task],
    adaptation: AdaptationProfile,
    assume_full_wcet: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-HI-task vectors (setup time n'C, period T, log(1 - f^n'))."""
    setups = np.array(
        [
            (adaptation[t] * t.wcet if assume_full_wcet else 0.0)
            for t in hi_tasks
        ]
    )
    periods = np.array([t.period for t in hi_tasks])
    log_success = np.array(
        [
            math.log1p(-round_failure_probability(t.failure_probability, adaptation[t]))
            for t in hi_tasks
        ]
    )
    return setups, periods, log_success


def survival_probability_at(
    taskset: TaskSet,
    adaptation: AdaptationProfile,
    horizons: np.ndarray | Sequence[float],
    assume_full_wcet: bool = True,
) -> np.ndarray:
    """Vectorised ``R(N'_HI, t)`` (eq. 3) over an array of horizons ``t``.

    Returns an array of the same shape as ``horizons``.  Computation is in
    log space: ``log R = sum_i r_i(n'_i, t) * log(1 - f_i^{n'_i})``.
    """
    t = np.asarray(horizons, dtype=float)
    if np.any(t < 0):
        raise ValueError("horizons must be non-negative")
    hi_tasks = taskset.hi_tasks
    if not hi_tasks:
        return np.ones_like(t)
    setups, periods, log_success = _hi_arrays(hi_tasks, adaptation, assume_full_wcet)
    flat = t.ravel()
    # rounds[i, k] = r_i(n'_i, t_k), vectorised form of eq. (1)
    ratio = (flat[np.newaxis, :] - setups[:, np.newaxis]) / periods[:, np.newaxis]
    rounds = np.maximum(np.floor(ratio + 1e-9) + 1.0, 0.0)
    log_r = rounds.T @ log_success
    return np.exp(log_r).reshape(t.shape)


def survival_probability(
    taskset: TaskSet,
    adaptation: AdaptationProfile,
    horizon: float,
    assume_full_wcet: bool = True,
) -> float:
    """``R(N'_HI, t)`` of eq. (3) at a single horizon ``t``.

    The probability that *no* instance of any HI task executes its
    ``(n'_i + 1)``-th time within ``[0, t]`` — i.e. that the LO tasks have
    not been killed/degraded by ``t``.
    """
    return float(
        survival_probability_at(taskset, adaptation, np.array([horizon]),
                                assume_full_wcet)[0]
    )


def kill_probability(
    taskset: TaskSet,
    adaptation: AdaptationProfile,
    horizon: float,
    assume_full_wcet: bool = True,
) -> float:
    """Upper bound ``1 - R(N'_HI, t)`` on the LO tasks being killed by ``t``."""
    return 1.0 - survival_probability(taskset, adaptation, horizon, assume_full_wcet)


def timing_points(
    task: Task,
    executions: int,
    horizon: float,
    assume_full_wcet: bool = True,
) -> np.ndarray:
    """``pi_i(t)`` of eq. (4): worst-case per-round finishing instants.

    For LO task ``tau_i`` with ``r = r_i(n_i, t)`` rounds packed as late as
    possible before ``t``, round ``r`` finishes at ``t`` and round ``r - m``
    finishes no later than ``t - n_i C_i - m T_i + D_i`` (proof of
    Lemma 3.3).  Points that fall at or below zero are dropped: a round that
    cannot finish inside the window contributes nothing.

    Returns the points sorted ascending, ending with ``t`` itself.
    """
    rounds = max_rounds(task, executions, horizon, assume_full_wcet)
    if rounds <= 0:
        return np.array([])
    setup = executions * task.wcet if assume_full_wcet else 0.0
    m = np.arange(1, rounds)
    points = horizon - setup - m * task.period + task.deadline
    points = points[points > 0.0]
    # `points` descends as m ascends, so ascending order is a reversal —
    # no sort needed (it used to be ~20% of the eq. (5) evaluation).
    return np.concatenate([points[::-1], [horizon]])


@lru_cache(maxsize=4096)
def _timing_points_cached(
    task: Task, executions: int, horizon: float, assume_full_wcet: bool
) -> np.ndarray:
    """Memoized :func:`timing_points`.

    The points depend on the *re-execution* profile ``n_i`` but not on the
    adaptation profile ``n'``, while the line-4 search of Algorithm 1
    re-evaluates eq. (5) for every candidate ``n'`` — without the memo it
    rebuilt identical arrays ``n_HI`` times per task set.  ``Task`` is a
    frozen dataclass (hashable by value), so the cache also unifies
    repeated analyses of equal tasks.  Treat the result as read-only.
    """
    points = timing_points(task, executions, horizon, assume_full_wcet)
    points.setflags(write=False)
    return points


# Fork safety (FTMCF rules): a campaign/serve worker forked mid-run
# inherits this module's lru_cache pages; clearing it alongside the
# inherited trace session keeps children cold instead of pinning the
# parent's arrays through copy-on-write references.
register_fork_reset(_timing_points_cached.cache_clear)


#: Memo for :func:`pfh_lo_killing_uniform`: Algorithm 1 evaluates eq. (5)
#: for the line-4 candidates *and again* at the adopted profile once line 8
#: settles — under uniform profiles those are all evaluations of one
#: candidate family, so the gathered timing-point context is built once per
#: ``(task set, n_HI, n_LO, OS, wcet-flag)`` and every candidate value is
#: memoized as it is first demanded (lazily: a panel that only ever asks
#: for the adopted profile pays for one candidate, not ``n_HI``).  Keyed
#: weakly so retiring a generated set frees its entry; cleared on fork
#: like every module-level memo (FTMCF rules).
_killing_series_memo: "weakref.WeakKeyDictionary[TaskSet, dict]" = (
    weakref.WeakKeyDictionary()
)
register_fork_reset(_killing_series_memo.clear)


class _KillingContext:
    """Candidate-independent state of the eq. (5) family for one task set.

    :meth:`value_at` evaluates one uniform candidate ``n'`` through a
    breakpoint reformulation of eq. (5) whose cost is independent of the
    number of LO timing points.  Each LO task's points (eq. 4) form an
    arithmetic grid ``alpha_m = G - m*T_LO`` (plus the singleton ``t``),
    and the survival probability ``s(alpha) = R(N', alpha)`` of eq. (3) is
    a step function that only jumps where some HI task gains a round —
    at the ``B = sum_h r_h(n', t)`` breakpoints ``beta = n'C_h + k*T_h``.
    Writing the step function through its jumps,
    ``s(alpha) = 1 + sum_{beta_j <= alpha} delta_j`` with
    ``delta_j = s(beta_j) * (1 - 1/(1 - f_h^n'))``, the grid sum
    telescopes to

        ``sum_m s(alpha_m) = M + sum_j delta_j * c_j``,

    where ``c_j = #{m : alpha_m >= beta_j}`` is a closed-form floor of
    ``(G - beta_j)/T_LO`` — no per-point work at all.  The per-task bound
    then assembles cancellation-free:

        ``(M+1) * f_LO^n  -  (1 - f_LO^n) * (sum_j delta_j c_j + expm1(log s(t)))``

    (the matrix path's ``sum(1 - s*rs)`` subtracts ~1e-11 quantities from
    1.0 point by point; here every addend is small and same-signed).
    Values agree with :func:`pfh_lo_killing` within the documented
    float-tolerance contract — the floor epsilons on both paths absorb
    the ~1e-11 quotient noise of the reassociated expressions, so verdict
    flips require a true value within that noise of a decision boundary.
    """

    __slots__ = (
        "lo_grid_starts", "lo_periods", "lo_counts", "lo_round_failures",
        "lo_inv_periods", "lo_scaled_starts",
        "hi_wcets", "hi_periods", "hi_failures", "hi_inv_periods",
        "horizon", "operation_hours", "assume_full_wcet", "trivial",
    )

    def __init__(
        self,
        taskset: TaskSet,
        n_hi: int,
        n_lo: int,
        operation_hours: float,
        assume_full_wcet: bool,
    ) -> None:
        reexecution = ReexecutionProfile.uniform(taskset, n_hi, n_lo)
        AdaptationProfile.uniform(taskset, n_hi).validate_for(
            taskset, reexecution
        )
        self.operation_hours = operation_hours
        self.assume_full_wcet = assume_full_wcet
        self.horizon = operation_hours * HOUR_MS
        starts: list[float] = []
        periods: list[float] = []
        counts: list[float] = []
        failures: list[float] = []
        for task in taskset.lo_tasks:
            n = reexecution[task]
            points = _timing_points_cached(
                task, n, self.horizon, assume_full_wcet
            )
            if points.size == 0:
                continue
            setup = n * task.wcet if assume_full_wcet else 0.0
            # alpha_m = (horizon - setup + D) - m*T for m = 1..M, all > 0,
            # plus the singleton alpha = horizon (see timing_points).
            starts.append(self.horizon - setup + task.deadline)
            periods.append(task.period)
            counts.append(float(points.size - 1))
            failures.append(
                round_failure_probability(task.failure_probability, n)
            )
        if not starts:
            self.trivial = 0.0
            return
        self.lo_grid_starts = np.array(starts)
        self.lo_periods = np.array(periods)
        self.lo_counts = np.array(counts)
        self.lo_round_failures = np.array(failures)
        # (G - beta)/T is evaluated as G/T + eps - beta*(1/T): one multiply
        # instead of a broadcast divide (~2x on the dominant pass), at the
        # cost of reassociation noise well inside the epsilon the floor
        # already carries.
        self.lo_inv_periods = 1.0 / self.lo_periods
        self.lo_scaled_starts = (
            self.lo_grid_starts / self.lo_periods + 1e-9
        )
        hi_tasks = taskset.hi_tasks
        if not hi_tasks:
            # No HI task can ever trigger a kill: R = 1 at every point, so
            # every point contributes exactly its plain round failure.
            self.trivial = float(
                np.sum((self.lo_counts + 1.0) * self.lo_round_failures)
            ) / operation_hours
            return
        self.trivial = None
        self.hi_wcets = np.fromiter(
            (t.wcet for t in hi_tasks), float, len(hi_tasks)
        )
        self.hi_periods = np.fromiter(
            (t.period for t in hi_tasks), float, len(hi_tasks)
        )
        self.hi_failures = np.fromiter(
            (t.failure_probability for t in hi_tasks), float, len(hi_tasks)
        )
        self.hi_inv_periods = 1.0 / self.hi_periods

    def value_at(self, n_prime: int) -> float:
        if self.trivial is not None:
            return self.trivial
        n_hi_tasks = len(self.hi_wcets)
        setups = (
            n_prime * self.hi_wcets
            if self.assume_full_wcet
            else np.zeros(n_hi_tasks)
        )
        round_failures = [
            round_failure_probability(float(f), n_prime)
            for f in self.hi_failures
        ]
        log_successes = [math.log1p(-f) for f in round_failures]
        # r_h(n', t): rounds of HI task h over the full mission — also the
        # number of breakpoints of h inside (0, t].
        tops = [
            max(
                int(
                    math.floor(
                        (self.horizon - float(setups[h]))
                        / float(self.hi_periods[h])
                        + 1e-9
                    )
                )
                + 1,
                0,
            )
            for h in range(n_hi_tasks)
        ]
        log_s_horizon = sum(
            log_successes[h] * tops[h] for h in range(n_hi_tasks)
        )
        delta_parts: list[np.ndarray] = []
        beta_parts: list[np.ndarray] = []
        for h in range(n_hi_tasks):
            if tops[h] == 0:
                continue
            ks = np.arange(float(tops[h]))
            # The k-th breakpoint lifts r_h from k to k+1; the 1e-9 shift
            # mirrors the epsilon inside the floor of eq. (1).
            beta = (ks - 1e-9) * float(self.hi_periods[h]) + float(setups[h])
            # log s just *above* beta: own task contributes k+1 rounds
            # (exact, by construction); the other tasks are evaluated by
            # the eq. (1) formula at generic (non-resonant) positions.
            log_s = ks
            log_s += 1.0
            log_s *= log_successes[h]
            for h2 in range(n_hi_tasks):
                if h2 == h:
                    continue
                inv2 = float(self.hi_inv_periods[h2])
                r2 = beta * inv2
                r2 -= float(setups[h2]) * inv2 - 1e-9
                np.floor(r2, out=r2)
                r2 += 1.0
                np.maximum(r2, 0.0, out=r2)
                r2 *= log_successes[h2]
                log_s += r2
            # Jump size in s-space: s_above - s_below = s_above*(1 - 1/q).
            jump = -round_failures[h] / (1.0 - round_failures[h])
            delta = np.exp(log_s)
            delta *= jump
            delta_parts.append(delta)
            beta_parts.append(beta)
        per_task = (self.lo_counts + 1.0) * self.lo_round_failures
        survivals = -math.expm1(log_s_horizon)
        successes = 1.0 - self.lo_round_failures
        if delta_parts:
            deltas = np.concatenate(delta_parts)
            betas = np.concatenate(beta_parts)
            # c[l, j] = #{m in 1..M_l : G_l - m*T_l >= beta_j}, i.e.
            # clip(floor(G_l/T_l + eps - beta_j/T_l), 0, M_l).
            c = np.multiply.outer(self.lo_inv_periods, betas)
            np.subtract(self.lo_scaled_starts[:, np.newaxis], c, out=c)
            np.floor(c, out=c)
            np.clip(c, 0.0, self.lo_counts[:, np.newaxis], out=c)
            grid_kill = -(c @ deltas)
        else:
            grid_kill = np.zeros(len(self.lo_periods))
        total = float(
            np.sum(per_task + successes * (grid_kill + survivals))
        )
        return total / self.operation_hours


def pfh_lo_killing_uniform(
    taskset: TaskSet,
    n_hi: int,
    n_lo: int,
    n_prime: int,
    operation_hours: float,
    assume_full_wcet: bool = True,
) -> float:
    """``pfh(LO)`` of eq. (5) at uniform profiles ``(n_hi, n_lo, n')``.

    The sweep-batch form of the line-4 search: the timing points (eq. 4)
    and their per-round successes do not depend on ``n'``, so they are
    gathered once per ``(task set, n_HI, n_LO, OS, wcet-flag)`` and shared
    by every candidate — including the re-evaluation at the adopted
    profile after line 8, which becomes a memo hit.  Per candidate, the
    survival probabilities ``R(N', α)`` (eq. 3) are evaluated through
    per-HI-task geometric tables ``(1 - f^{n'})^r`` indexed by the round
    counts instead of re-running the full rounds-matrix/exp pipeline of
    :func:`survival_probability_at`.  Values agree with
    :func:`pfh_lo_killing` within the documented float-reordering
    tolerance (observed well under 1e-6 relative); the verdict-level
    equivalence is pinned by the test suite.
    """
    if operation_hours <= 0:
        raise ValueError(f"operation hours must be positive, got {operation_hours}")
    if not 1 <= n_prime <= n_hi:
        raise ValueError(
            f"adaptation profile must lie in 1..{n_hi}, got {n_prime}"
        )
    memo = _killing_series_memo.setdefault(taskset, {})
    knobs = (n_hi, n_lo, operation_hours, assume_full_wcet)
    entry = memo.get(knobs)
    if entry is None:
        context = _KillingContext(
            taskset, n_hi, n_lo, operation_hours, assume_full_wcet
        )
        entry = memo[knobs] = (context, {})
    context, values = entry
    if n_prime in values:
        obs_metrics.inc("safety.killing_series.hits")
        return values[n_prime]
    obs_metrics.inc("safety.killing_series.misses")
    value = context.value_at(n_prime)
    values[n_prime] = value
    return value


def pfh_lo_killing(
    taskset: TaskSet,
    reexecution: ReexecutionProfile,
    adaptation: AdaptationProfile,
    operation_hours: float,
    assume_full_wcet: bool = True,
) -> float:
    """``pfh(LO)`` under task killing — eq. (5) of Lemma 3.3.

    Parameters
    ----------
    taskset:
        The dual-criticality task set.
    reexecution:
        ``N``: executions per round for every task (``n_i`` of LO tasks
        enters the per-round success ``1 - f_i^{n_i}`` and the spacing of
        the timing points).
    adaptation:
        ``N'_HI``: the killing profile of the HI tasks.
    operation_hours:
        ``OS``: system operation duration in hours (the paper cites
        1-10 h for commercial aircraft).  The bound is the cumulative
        failure rate over ``OS`` hours divided by ``OS``.
    assume_full_wcet:
        Footnote 1 (see :func:`repro.safety.pfh.max_rounds`).

    Notes
    -----
    The PFH of the HI level is *unaffected* by killing (HI tasks are never
    killed) and remains eq. (2); use :func:`repro.safety.pfh.pfh_plain`.
    """
    if operation_hours <= 0:
        raise ValueError(f"operation hours must be positive, got {operation_hours}")
    adaptation.validate_for(taskset, reexecution)
    if not kernels.numpy_enabled():
        # ``REPRO_NO_NUMPY`` selects the scalar reference paths everywhere,
        # including this evaluator (used by ``ftmc bench`` for baselines).
        return pfh_lo_killing_reference(
            taskset, reexecution, adaptation, operation_hours, assume_full_wcet
        )
    horizon = operation_hours * HOUR_MS
    # Gather every LO task's timing points first and evaluate eq. (3) over
    # the concatenation in one shot: the survival probabilities dominate
    # the cost and batching them amortises the per-call setup of the
    # rounds matrix in :func:`survival_probability_at`.
    segments: list[tuple[np.ndarray, float]] = []
    for task in taskset.lo_tasks:
        n = reexecution[task]
        points = _timing_points_cached(task, n, horizon, assume_full_wcet)
        if points.size == 0:
            continue
        round_success = 1.0 - round_failure_probability(task.failure_probability, n)
        segments.append((points, round_success))
    if not segments:
        return 0.0
    survival = survival_probability_at(
        taskset,
        adaptation,
        np.concatenate([points for points, _ in segments]),
        assume_full_wcet,
    )
    total = 0.0
    offset = 0
    for points, round_success in segments:
        chunk = survival[offset : offset + points.size]
        offset += points.size
        # Per-round failure bound: 1 - R(alpha) * (1 - f^n)  (eq. 8)
        total += float(np.sum(1.0 - chunk * round_success))
    return total / operation_hours


def pfh_lo_killing_reference(
    taskset: TaskSet,
    reexecution: ReexecutionProfile,
    adaptation: AdaptationProfile,
    operation_hours: float,
    assume_full_wcet: bool = True,
) -> float:
    """Pure-Python reference implementation of eq. (5).

    Mathematically identical to :func:`pfh_lo_killing`; kept as an oracle
    for the vectorised evaluator in the test suite.  Orders of magnitude
    slower — do not use in experiments.
    """
    if operation_hours <= 0:
        raise ValueError(f"operation hours must be positive, got {operation_hours}")
    horizon = operation_hours * HOUR_MS
    total = 0.0
    for task in taskset.lo_tasks:
        n = reexecution[task]
        rounds = max_rounds(task, n, horizon, assume_full_wcet)
        if rounds <= 0:
            continue
        setup = n * task.wcet if assume_full_wcet else 0.0
        points = [horizon]
        for m in range(1, rounds):
            alpha = horizon - setup - m * task.period + task.deadline
            if alpha > 0:
                points.append(alpha)
        round_success = 1.0 - round_failure_probability(task.failure_probability, n)
        for alpha in points:
            r = _survival_scalar(taskset, adaptation, alpha, assume_full_wcet)
            total += 1.0 - r * round_success
    return total / operation_hours


def _survival_scalar(
    taskset: TaskSet,
    adaptation: AdaptationProfile,
    horizon: float,
    assume_full_wcet: bool,
) -> float:
    """Scalar log-space evaluation of eq. (3) without numpy."""
    log_r = 0.0
    for task in taskset.hi_tasks:
        n_prime = adaptation[task]
        rounds = max_rounds(task, n_prime, horizon, assume_full_wcet)
        failure = round_failure_probability(task.failure_probability, n_prime)
        log_r += rounds * math.log1p(-failure)
    return math.exp(log_r)


__all__.append("pfh_lo_killing_reference")
