"""Safety margins and inverse analyses (library extension).

The paper's forward direction is: given the hardware quality ``f_i``,
find profiles meeting the PFH ceilings.  Certification practice often
needs the *inverse* questions:

- :func:`safety_margin` — by how much does a configuration beat its
  ceiling (the certification headroom)?
- :func:`max_tolerable_failure_probability` — what is the worst per-job
  failure probability a given re-execution profile can absorb?  This
  derives the hardware requirement ("any part with f below X works"),
  e.g. when selecting COTS processors by soft-error rate.
- :func:`required_profile_for_probability` — how does the minimal
  profile grow as hardware degrades?  (The quantified version of the
  paper's "with safer and more expensive hardware, the system
  schedulability will be improved".)

All searches exploit the monotonicity of eq. (2) in ``f`` (raising every
``f_i`` raises the bound) and bisect to a relative precision of ~1e-6.
"""

from __future__ import annotations

import math

from repro.model.criticality import CriticalityRole
from repro.model.faults import ReexecutionProfile
from repro.model.task import Task, TaskSet
from repro.safety.pfh import (
    DEFAULT_MAX_REEXECUTIONS,
    minimal_uniform_reexecution,
    pfh_of_tasks,
)

__all__ = [
    "safety_margin",
    "max_tolerable_failure_probability",
    "required_profile_for_probability",
]

#: Bisection iterations: 60 halvings of (0, 1) reach ~1e-18 absolute.
_BISECTION_STEPS: int = 60


def safety_margin(
    taskset: TaskSet,
    role: CriticalityRole,
    profile: ReexecutionProfile,
    assume_full_wcet: bool = True,
) -> float:
    """``ceiling / pfh``: the factor by which the level beats its ceiling.

    Values above 1 mean certified with headroom; below 1, violation.
    ``inf`` when the level has no quantified ceiling or a zero bound.
    """
    if taskset.spec is None:
        raise ValueError("task set has no dual-criticality spec attached")
    ceiling = taskset.spec.pfh_requirement(role)
    value = pfh_of_tasks(
        taskset.by_criticality(role), profile, assume_full_wcet=assume_full_wcet
    )
    # `value` is a PFH bound: non-negative by construction, so `<=` is the
    # epsilon-free way to guard the division (repo rule FTMCC01 bans exact
    # float equality on probabilities).
    if value <= 0.0 or math.isinf(ceiling):
        return math.inf
    return ceiling / value


def _with_probability(taskset: TaskSet, role: CriticalityRole, f: float) -> list[Task]:
    return [
        Task(t.name, t.period, t.deadline, t.wcet, t.criticality, f)
        for t in taskset.by_criticality(role)
    ]


def max_tolerable_failure_probability(
    taskset: TaskSet,
    role: CriticalityRole,
    executions: int,
    pfh_ceiling: float | None = None,
    assume_full_wcet: bool = True,
) -> float:
    """Largest uniform ``f`` the profile ``n = executions`` can absorb.

    Bisects the monotone map ``f -> pfh(role)`` for the level's ceiling
    (or an explicit one).  Returns 0.0 when even perfect hardware fails
    the ceiling (only possible for a ceiling of 0) and a value < 1.
    """
    if pfh_ceiling is None:
        if taskset.spec is None:
            raise ValueError("need an explicit ceiling or an attached spec")
        pfh_ceiling = taskset.spec.pfh_requirement(role)
    if math.isinf(pfh_ceiling):
        return 1.0 - 1e-12  # any hardware works for non-safety levels
    tasks = taskset.by_criticality(role)
    if not tasks:
        return 1.0 - 1e-12

    def bound_at(f: float) -> float:
        substituted = _with_probability(taskset, role, f)
        profile = ReexecutionProfile.constant(substituted, executions)
        return pfh_of_tasks(substituted, profile, assume_full_wcet=assume_full_wcet)

    low, high = 0.0, 1.0 - 1e-12
    if bound_at(high) <= pfh_ceiling:
        return high
    if bound_at(low) > pfh_ceiling:
        return 0.0
    for _ in range(_BISECTION_STEPS):
        mid = (low + high) / 2.0
        if bound_at(mid) <= pfh_ceiling:
            low = mid
        else:
            high = mid
    return low


def required_profile_for_probability(
    taskset: TaskSet,
    role: CriticalityRole,
    failure_probability: float,
    pfh_ceiling: float | None = None,
    max_n: int = DEFAULT_MAX_REEXECUTIONS,
    assume_full_wcet: bool = True,
) -> int | None:
    """Minimal uniform ``n`` for hardware of the given quality.

    Substitutes ``failure_probability`` into every task of ``role`` and
    reruns the line-2 search of Algorithm 1.  ``None`` when no profile up
    to ``max_n`` suffices.
    """
    if pfh_ceiling is None:
        if taskset.spec is None:
            raise ValueError("need an explicit ceiling or an attached spec")
        pfh_ceiling = taskset.spec.pfh_requirement(role)
    substituted = _with_probability(taskset, role, failure_probability)
    if not substituted:
        return 1
    scratch = TaskSet(substituted, spec=None, name="scratch")
    return minimal_uniform_reexecution(
        scratch, role, pfh_ceiling, max_n=max_n, assume_full_wcet=assume_full_wcet
    )
