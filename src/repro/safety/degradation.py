"""Safety quantification under service degradation (Section 3.4, Lemma 3.4).

Service degradation stretches the inter-arrival time of every LO task by a
factor ``df > 1`` (``T_hat_i = df * T_i``) instead of killing them, and is
triggered exactly like killing: when any HI task instance starts its
``(n'_i + 1)``-th execution.

- eq. (6): ``omega(df, t) = sum_{tau_i in tau_LO}
  max(floor((t - n_i C_i)/(df T_i)) + 1, 0) * f_i^{n_i}`` — the cumulative
  failure rate of the LO tasks over ``[0, t]`` when running with stretched
  periods ``df * T_i``.

- eq. (7): ``pfh(LO) = (1 - R(N'_HI, t)) * omega(1, t) / OS`` with
  ``t = OS`` hours.  The worst case places the degradation trigger at the
  very end of the mission (proof of Lemma 3.4), which is why the bound uses
  the *undegraded* rate ``omega(1, t)`` — the degradation factor ``df``
  influences schedulability (eq. 12), not this safety bound.

The intermediate scenario bound, eq. (9), is exposed as
:func:`pfh_lo_degradation_scenario` for analysis and for the monotonicity
property tests.
"""

from __future__ import annotations

import weakref

from repro.model.faults import (
    AdaptationProfile,
    ReexecutionProfile,
    round_failure_probability,
)
from repro.model.task import HOUR_MS, TaskSet
from repro.obs.trace import register_fork_reset
from repro.safety.killing import survival_probability
from repro.safety.pfh import max_rounds

__all__ = [
    "omega",
    "pfh_lo_degradation",
    "pfh_lo_degradation_uniform",
    "pfh_lo_degradation_scenario",
]


def omega(
    taskset: TaskSet,
    reexecution: ReexecutionProfile,
    degradation_factor: float,
    horizon: float,
    assume_full_wcet: bool = True,
) -> float:
    """``omega(df, t)`` of eq. (6).

    Total failure rate of the LO tasks over ``[0, t]`` when their periods
    are stretched to ``df * T_i``.  ``df = 1`` recovers the undegraded
    rate (the LO-task part of eq. (2) before the per-hour normalisation).
    """
    if degradation_factor < 1.0:
        raise ValueError(
            f"degradation factor must be >= 1, got {degradation_factor}"
        )
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    total = 0.0
    for task in taskset.lo_tasks:
        n = reexecution[task]
        stretched = task.with_period(task.period * degradation_factor)
        rounds = max_rounds(stretched, n, horizon, assume_full_wcet)
        total += rounds * round_failure_probability(task.failure_probability, n)
    return total


def pfh_lo_degradation(
    taskset: TaskSet,
    reexecution: ReexecutionProfile,
    adaptation: AdaptationProfile,
    operation_hours: float,
    assume_full_wcet: bool = True,
) -> float:
    """``pfh(LO)`` under service degradation — eq. (7) of Lemma 3.4.

    The bound is ``(1 - R(N'_HI, t)) * omega(1, t) / OS`` at
    ``t = OS`` hours: the probability that degradation is ever triggered,
    times the undegraded cumulative LO failure rate, averaged per hour.

    Note that this is always at most the plain (no-adaptation) LO-level PFH
    of eq. (2), because ``1 - R <= 1`` — degradation can only *improve* LO
    safety relative to doing nothing (Section 3.4, closing remark).
    """
    if operation_hours <= 0:
        raise ValueError(f"operation hours must be positive, got {operation_hours}")
    adaptation.validate_for(taskset, reexecution)
    horizon = operation_hours * HOUR_MS
    trigger = 1.0 - survival_probability(
        taskset, adaptation, horizon, assume_full_wcet
    )
    return trigger * omega(taskset, reexecution, 1.0, horizon, assume_full_wcet) / (
        operation_hours
    )


#: Memo for :func:`pfh_lo_degradation_uniform` — same role and lifecycle as
#: ``killing._killing_series_memo`` (weak per-set entries, lazy
#: per-candidate values, fork-cleared).
_degradation_series_memo: "weakref.WeakKeyDictionary[TaskSet, dict]" = (
    weakref.WeakKeyDictionary()
)
register_fork_reset(_degradation_series_memo.clear)


def pfh_lo_degradation_uniform(
    taskset: TaskSet,
    n_hi: int,
    n_lo: int,
    n_prime: int,
    operation_hours: float,
    assume_full_wcet: bool = True,
) -> float:
    """``pfh(LO)`` of eq. (7) at uniform profiles ``(n_hi, n_lo, n')``.

    The sweep-batch form of the line-4 search under degradation: the
    undegraded rate ``omega(1, t)`` is candidate-independent, so it is
    computed once per ``(task set, n_HI, n_LO, OS, wcet-flag)`` and shared
    by every candidate; per candidate only the trigger probability
    ``1 - R(N', t)`` remains, a single-horizon eq. (3) evaluation.  Equals
    :func:`pfh_lo_degradation` at the same profiles bit-for-bit (the same
    functions run in the same order).  Values are memoized lazily per
    candidate.
    """
    if operation_hours <= 0:
        raise ValueError(f"operation hours must be positive, got {operation_hours}")
    if not 1 <= n_prime <= n_hi:
        raise ValueError(
            f"adaptation profile must lie in 1..{n_hi}, got {n_prime}"
        )
    memo = _degradation_series_memo.setdefault(taskset, {})
    knobs = (n_hi, n_lo, operation_hours, assume_full_wcet)
    entry = memo.get(knobs)
    if entry is None:
        reexecution = ReexecutionProfile.uniform(taskset, n_hi, n_lo)
        AdaptationProfile.uniform(taskset, n_hi).validate_for(
            taskset, reexecution
        )
        horizon = operation_hours * HOUR_MS
        rate = omega(taskset, reexecution, 1.0, horizon, assume_full_wcet)
        entry = memo[knobs] = (rate, {})
    rate, values = entry
    if n_prime in values:
        return values[n_prime]
    horizon = operation_hours * HOUR_MS
    adaptation = AdaptationProfile.uniform(taskset, n_prime)
    trigger = 1.0 - survival_probability(
        taskset, adaptation, horizon, assume_full_wcet
    )
    value = trigger * rate / operation_hours
    values[n_prime] = value
    return value


def pfh_lo_degradation_scenario(
    taskset: TaskSet,
    reexecution: ReexecutionProfile,
    adaptation: AdaptationProfile,
    degradation_factor: float,
    trigger_time: float,
    operation_hours: float,
    assume_full_wcet: bool = True,
) -> float:
    """Scenario bound eq. (9): degradation triggered at ``t0 = trigger_time``.

    ``(1 - R(N'_HI, t0)) * (omega(1, t0) + omega(df, t - t0)) / OS``.

    The proof of Lemma 3.4 shows this is maximised at ``t0 = t``, where it
    collapses to eq. (7); the property is exercised by the test suite.
    """
    if operation_hours <= 0:
        raise ValueError(f"operation hours must be positive, got {operation_hours}")
    horizon = operation_hours * HOUR_MS
    if not 0.0 <= trigger_time <= horizon:
        raise ValueError(
            f"trigger time must lie in [0, {horizon}], got {trigger_time}"
        )
    trigger = 1.0 - survival_probability(
        taskset, adaptation, trigger_time, assume_full_wcet
    )
    before = omega(taskset, reexecution, 1.0, trigger_time, assume_full_wcet)
    after = omega(
        taskset,
        reexecution,
        degradation_factor,
        horizon - trigger_time,
        assume_full_wcet,
    )
    return trigger * (before + after) / operation_hours
