"""Plain safety quantification (Section 3.1, Lemma 3.1).

Without task killing or service degradation, the failure of a criticality
level is driven purely by how many *rounds* each of its tasks can fit into
an hour and by the per-round failure probability ``f_i^{n_i}``:

- eq. (1): ``r_i(n_i, t) = max(floor((t - n_i*C_i)/T_i) + 1, 0)`` — the
  maximum number of rounds of ``tau_i`` the interval ``[0, t]`` can
  accommodate, where one round is up to ``n_i`` executions of one job.
- eq. (2): ``pfh(chi) = sum_{tau_i in tau_chi} r_i(n_i, t) * f_i^{n_i}``
  with ``t`` = 1 hour.

Footnote 1 of the paper: eq. (1) assumes each execution takes its full
WCET ``C_i`` at runtime.  If that assumption is dropped, ``C_i`` must be
replaced by 0 (more rounds fit, a *larger* and therefore still-safe
bound).  The ``assume_full_wcet`` flag selects between the two readings;
the default follows the paper (``True``).
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.analysis import kernels
from repro.model.criticality import CriticalityRole
from repro.model.faults import ReexecutionProfile, round_failure_probability
from repro.model.task import HOUR_MS, Task, TaskSet

__all__ = [
    "max_rounds",
    "pfh_plain",
    "pfh_of_tasks",
    "minimal_uniform_reexecution",
    "DEFAULT_MAX_REEXECUTIONS",
]

#: Search ceiling for the ``inf{n in N : ...}`` computations.  Re-execution
#: profiles beyond this are useless in practice: with f <= 1e-1 a profile of
#: 30 drives per-round failure below 1e-30, far under any DO-178B ceiling.
DEFAULT_MAX_REEXECUTIONS: int = 30

#: Tolerance used before flooring ratios of times; absorbs float noise in
#: quantities such as ``(3.6e6 - 15) / 60`` without changing non-degenerate
#: results (time scales here are >= 1e-3 ms).
_FLOOR_EPS: float = 1e-9


def _floor(x: float) -> int:
    """Floor with a small forgiving epsilon for float round-off."""
    return math.floor(x + _FLOOR_EPS)


def max_rounds(
    task: Task, executions: int, horizon: float, assume_full_wcet: bool = True
) -> int:
    """``r_i(n, t)`` of eq. (1): max rounds of ``task`` within ``[0, t]``.

    One round is ``executions`` back-to-back executions of one job.  The
    shortest interval accommodating ``k`` rounds is
    ``(k-1)*T_i + n*C_i`` (see the proof of Lemma 3.1), hence the formula.

    Parameters
    ----------
    task:
        The sporadic task.
    executions:
        ``n``: executions per round (>= 1).
    horizon:
        ``t``: length of the time window, in ms.
    assume_full_wcet:
        Footnote 1.  When ``False``, the ``n*C_i`` term is dropped.
    """
    if executions < 1:
        raise ValueError(f"executions must be >= 1, got {executions}")
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    setup = executions * task.wcet if assume_full_wcet else 0.0
    return max(_floor((horizon - setup) / task.period) + 1, 0)


def pfh_of_tasks(
    tasks: Iterable[Task],
    profile: ReexecutionProfile,
    horizon: float = HOUR_MS,
    assume_full_wcet: bool = True,
) -> float:
    """Failure rate of ``tasks`` over ``horizon``, normalised per hour.

    This is the summand structure of eq. (2) generalised to an arbitrary
    window: ``sum_i r_i(n_i, t) * f_i^{n_i}`` scaled by ``HOUR_MS / t`` so
    the result is always per-hour.  With the default one-hour horizon it is
    exactly eq. (2).
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    total = 0.0
    for task in tasks:
        n = profile[task]
        rounds = max_rounds(task, n, horizon, assume_full_wcet)
        total += rounds * round_failure_probability(task.failure_probability, n)
    return total * (HOUR_MS / horizon)


def pfh_plain(
    taskset: TaskSet,
    role: CriticalityRole,
    profile: ReexecutionProfile,
    assume_full_wcet: bool = True,
) -> float:
    """``pfh(chi)`` of eq. (2): plain PFH bound on criticality ``role``.

    Valid when tasks of ``role`` are never killed or degraded — i.e. always
    for the HI level, and for the LO level only when no adaptation is used.
    """
    return pfh_of_tasks(
        taskset.by_criticality(role), profile, HOUR_MS, assume_full_wcet
    )


def minimal_uniform_reexecution(
    taskset: TaskSet,
    role: CriticalityRole,
    pfh_ceiling: float,
    max_n: int = DEFAULT_MAX_REEXECUTIONS,
    assume_full_wcet: bool = True,
    strict: bool = False,
) -> int | None:
    """``n_chi = inf{n in N : pfh(chi) <= PFH_chi}`` (Algorithm 1, line 2).

    Searches the smallest uniform re-execution profile for all tasks of
    ``role`` meeting the given PFH ceiling.  ``strict=True`` demands
    ``pfh < ceiling`` instead of ``<=`` (Table 1 states the requirements as
    strict inequalities; Algorithm 1 line 2 writes ``<=`` — the two differ
    only at exact boundaries).

    Returns ``None`` when no profile up to ``max_n`` suffices.  With an
    infinite ceiling (levels D/E) the result is always 1.
    """
    tasks = taskset.by_criticality(role)
    if not tasks:
        return 1
    if kernels.batch_enabled():
        # Sweep-batch tier: evaluate eq. (2) for every candidate n at once.
        # rounds[n-1, i] and f_i^n form (max_n, tasks) matrices; the scalar
        # loop below stays the oracle (the per-candidate sums commute only
        # up to float reordering, within the documented tolerance).
        np = kernels.np
        wcets = np.fromiter((t.wcet for t in tasks), float, len(tasks))
        periods = np.fromiter((t.period for t in tasks), float, len(tasks))
        failures = np.fromiter(
            (t.failure_probability for t in tasks), float, len(tasks)
        )
        ns = np.arange(1.0, max_n + 1.0)
        setups = (
            ns[:, None] * wcets[None, :]
            if assume_full_wcet
            else np.zeros((max_n, len(tasks)))
        )
        rounds = np.maximum(
            np.floor((HOUR_MS - setups) / periods[None, :] + _FLOOR_EPS) + 1.0, 0.0
        )
        values = (rounds * (failures[None, :] ** ns[:, None])).sum(axis=1)
        ok = (values < pfh_ceiling) if strict else (values <= pfh_ceiling)
        hits = np.nonzero(ok)[0]
        return int(hits[0]) + 1 if hits.size else None
    for n in range(1, max_n + 1):
        profile = ReexecutionProfile.constant(tasks, n)
        value = pfh_of_tasks(tasks, profile, HOUR_MS, assume_full_wcet)
        if (value < pfh_ceiling) if strict else (value <= pfh_ceiling):
            return n
    return None
