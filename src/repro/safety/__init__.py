"""Safety (PFH) quantification — Section 3 of the paper.

- :mod:`repro.safety.pfh`: plain bounds, no adaptation (Lemma 3.1);
- :mod:`repro.safety.killing`: bounds under task killing (Lemmas 3.2/3.3);
- :mod:`repro.safety.degradation`: bounds under service degradation
  (Lemma 3.4).
"""

from repro.safety.degradation import (
    omega,
    pfh_lo_degradation,
    pfh_lo_degradation_scenario,
)
from repro.safety.killing import (
    kill_probability,
    pfh_lo_killing,
    pfh_lo_killing_reference,
    survival_probability,
    survival_probability_at,
    timing_points,
)
from repro.safety.margins import (
    max_tolerable_failure_probability,
    required_profile_for_probability,
    safety_margin,
)
from repro.safety.pfh import (
    DEFAULT_MAX_REEXECUTIONS,
    max_rounds,
    minimal_uniform_reexecution,
    pfh_of_tasks,
    pfh_plain,
)

__all__ = [
    "max_tolerable_failure_probability",
    "required_profile_for_probability",
    "safety_margin",
    "omega",
    "pfh_lo_degradation",
    "pfh_lo_degradation_scenario",
    "kill_probability",
    "pfh_lo_killing",
    "pfh_lo_killing_reference",
    "survival_probability",
    "survival_probability_at",
    "timing_points",
    "DEFAULT_MAX_REEXECUTIONS",
    "max_rounds",
    "minimal_uniform_reexecution",
    "pfh_of_tasks",
    "pfh_plain",
]
