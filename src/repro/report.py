"""Certification-style analysis report for a dual-criticality system.

Runs the complete FT-S toolchain on a task set — plain safety
quantification, the no-adaptation baseline, FT-EDF-VD with killing and
with degradation — and renders one human-readable report: the artifact a
certification engineer would file next to the DO-178B evidence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.edf import schedulable_without_adaptation
from repro.core.ftmc import (
    DEFAULT_OPERATION_HOURS,
    FTSResult,
    ft_edf_vd,
    ft_edf_vd_degradation,
)
from repro.core.profiles import minimal_reexecution_profiles
from repro.model.criticality import CriticalityRole
from repro.model.faults import ReexecutionProfile
from repro.model.task import TaskSet
from repro.safety.pfh import pfh_plain

__all__ = [
    "AnalysisReport",
    "analyse_system",
    "render_report",
    "analyse_multilevel_system",
    "render_multilevel_report",
]


@dataclass
class AnalysisReport:
    """Everything :func:`analyse_system` derives about one system."""

    taskset: TaskSet
    operation_hours: float
    degradation_factor: float
    #: Line-2 profiles, or ``None`` if no profile meets the ceilings.
    n_hi: int | None
    n_lo: int | None
    #: PFH bounds at the minimal profiles (``nan`` when undefined).
    pfh_hi: float
    pfh_lo_plain: float
    #: Plain EDF feasibility with every re-execution budgeted.
    baseline_schedulable: bool
    kill_result: FTSResult | None
    degrade_result: FTSResult | None

    @property
    def feasible(self) -> bool:
        """Whether *some* strategy certifies the system."""
        return bool(
            self.baseline_schedulable
            or (self.kill_result and self.kill_result.success)
            or (self.degrade_result and self.degrade_result.success)
        )

    @property
    def recommendation(self) -> str:
        """The cheapest certifying strategy, in preference order."""
        if self.n_hi is None:
            return "infeasible: no re-execution profile meets the PFH ceilings"
        if self.baseline_schedulable:
            return "plain EDF with re-execution (no runtime adaptation needed)"
        if self.degrade_result is not None and self.degrade_result.success:
            return (
                "EDF-VD with service degradation "
                f"(df={self.degradation_factor:g}, "
                f"n'_HI={self.degrade_result.adaptation})"
            )
        if self.kill_result is not None and self.kill_result.success:
            return f"EDF-VD with task killing (n'_HI={self.kill_result.adaptation})"
        return "infeasible: no evaluated strategy satisfies safety + schedulability"


def analyse_system(
    taskset: TaskSet,
    operation_hours: float = DEFAULT_OPERATION_HOURS,
    degradation_factor: float = 6.0,
) -> AnalysisReport:
    """Run the complete toolchain on ``taskset``.

    Degradation is preferred over killing in the recommendation whenever
    both succeed, per the paper's conclusion that killing is improper when
    LO tasks carry safety requirements (and harmless to prefer when they
    do not).
    """
    if taskset.spec is None:
        raise ValueError("task set needs a dual-criticality spec to analyse")
    profiles = minimal_reexecution_profiles(taskset)
    if profiles is None:
        return AnalysisReport(
            taskset=taskset,
            operation_hours=operation_hours,
            degradation_factor=degradation_factor,
            n_hi=None,
            n_lo=None,
            pfh_hi=math.nan,
            pfh_lo_plain=math.nan,
            baseline_schedulable=False,
            kill_result=None,
            degrade_result=None,
        )
    reexecution = ReexecutionProfile.uniform(taskset, profiles.n_hi, profiles.n_lo)
    return AnalysisReport(
        taskset=taskset,
        operation_hours=operation_hours,
        degradation_factor=degradation_factor,
        n_hi=profiles.n_hi,
        n_lo=profiles.n_lo,
        pfh_hi=pfh_plain(taskset, CriticalityRole.HI, reexecution),
        pfh_lo_plain=pfh_plain(taskset, CriticalityRole.LO, reexecution),
        baseline_schedulable=schedulable_without_adaptation(taskset, reexecution),
        kill_result=ft_edf_vd(taskset, operation_hours=operation_hours),
        degrade_result=ft_edf_vd_degradation(
            taskset, degradation_factor, operation_hours=operation_hours
        ),
    )


def _fts_line(label: str, result: FTSResult | None) -> str:
    if result is None:
        return f"  {label:<28} not evaluated"
    if result.success:
        detail = (
            f"SUCCESS  n'_HI={result.adaptation}  "
            f"pfh(LO)={result.pfh_lo:.3e}"
        )
        if not math.isnan(result.u_mc):
            detail += f"  U_MC={result.u_mc:.4f}"
    else:
        detail = f"FAILURE  ({result.failure.value})"  # type: ignore[union-attr]
    return f"  {label:<28} {detail}"


def render_report(report: AnalysisReport) -> str:
    """Render an :class:`AnalysisReport` as a plain-text document."""
    taskset = report.taskset
    spec = taskset.spec
    assert spec is not None
    lines = [
        "=" * 72,
        f"FAULT-TOLERANT MIXED-CRITICALITY ANALYSIS — {taskset.name}",
        "=" * 72,
        "",
        taskset.describe(),
        "",
        f"criticality binding: HI={spec.hi_level.name} "
        f"(PFH < {spec.pfh_requirement(CriticalityRole.HI):g}), "
        f"LO={spec.lo_level.name} "
        f"(PFH < {spec.pfh_requirement(CriticalityRole.LO):g})",
        f"mission duration OS = {report.operation_hours:g} h",
        "",
        "-- safety (Lemma 3.1, no adaptation) " + "-" * 34,
    ]
    if report.n_hi is None:
        lines.append("  NO re-execution profile meets the PFH ceilings")
    else:
        lines += [
            f"  minimal re-execution profiles: n_HI={report.n_hi}, "
            f"n_LO={report.n_lo}",
            f"  pfh(HI) = {report.pfh_hi:.3e}",
            f"  pfh(LO) = {report.pfh_lo_plain:.3e}",
            "",
            "-- schedulability " + "-" * 53,
            f"  {'plain EDF (inflated)':<28} "
            + ("SCHEDULABLE" if report.baseline_schedulable else "NOT schedulable"),
            _fts_line("FT-EDF-VD (killing)", report.kill_result),
            _fts_line(
                f"FT-EDF-VD (degrade df={report.degradation_factor:g})",
                report.degrade_result,
            ),
        ]
    lines += [
        "",
        "-- verdict " + "-" * 60,
        f"  {'CERTIFIABLE' if report.feasible else 'INFEASIBLE'}: "
        f"{report.recommendation}",
        "=" * 72,
    ]
    return "\n".join(lines)


# -- multi-level reporting -----------------------------------------------------


def analyse_multilevel_system(
    taskset,
    operation_hours: float = DEFAULT_OPERATION_HOURS,
    degradation_factor: float = 6.0,
):
    """Run FT-S-ML with both mechanisms on a multi-level system.

    Returns ``(kill_result, degrade_result)`` — two
    :class:`repro.multilevel.ftml.MLResult` values.
    """
    from repro.core.backends import EDFVDBackend, EDFVDDegradationBackend
    from repro.multilevel.ftml import ft_schedule_multilevel

    kill = ft_schedule_multilevel(
        taskset, EDFVDBackend(), operation_hours=operation_hours
    )
    degrade = ft_schedule_multilevel(
        taskset,
        EDFVDDegradationBackend(degradation_factor),
        operation_hours=operation_hours,
    )
    return kill, degrade


def _ml_outcome_lines(label: str, result) -> list[str]:
    lines = [f"  {label}:"]
    if not result.success:
        lines.append(f"    FAILURE — {result.reason}")
        return lines
    lines.append(f"    SUCCESS — {result.reason}")
    if result.boundary is not None:
        lines.append(
            f"    boundary {result.boundary.name}: levels >= "
            f"{result.boundary.name} protected, below adapted "
            f"(n'={result.adaptation})"
        )
        for level, value in sorted(
            result.pfh_adapted.items(), key=lambda kv: -kv[0]
        ):
            ceiling = level.pfh_ceiling
            lines.append(
                f"      pfh({level.name}) adapted = {value:.3e} "
                f"(ceiling {ceiling:g})"
            )
    return lines


def render_multilevel_report(taskset, kill_result, degrade_result) -> str:
    """Plain-text report for a multi-level FT-S-ML analysis."""
    lines = [
        "=" * 72,
        f"MULTI-LEVEL FAULT-TOLERANT ANALYSIS — {taskset.name}",
        "=" * 72,
        "",
        taskset.describe(),
        "",
        "-- per-level safety (plain, eq. 2) " + "-" * 36,
    ]
    source = kill_result if kill_result.level_profiles else degrade_result
    if not source.level_profiles:
        lines.append("  no re-execution profile meets some level's ceiling")
    else:
        for level in sorted(source.level_profiles, key=lambda lv: -lv):
            n = source.level_profiles[level]
            pfh = source.pfh_plain.get(level, float("nan"))
            lines.append(
                f"  level {level.name}: n = {n}, pfh = {pfh:.3e} "
                f"(ceiling {level.pfh_ceiling:g})"
            )
    lines.append("")
    lines.append("-- strategies " + "-" * 57)
    lines += _ml_outcome_lines("task killing (EDF-VD)", kill_result)
    lines += _ml_outcome_lines(
        "service degradation (EDF-VD)", degrade_result
    )
    feasible = kill_result.success or degrade_result.success
    lines += [
        "",
        "-- verdict " + "-" * 60,
        f"  {'CERTIFIABLE' if feasible else 'INFEASIBLE'}",
        "=" * 72,
    ]
    return "\n".join(lines)
